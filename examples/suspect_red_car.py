"""The Figures 9–10 query: a suspect getting into a red car.

Three sub-queries — a suspect person (re-identified against a gallery
feature vector), a red car, and the spatial "getting into" relationship —
compose into one pipeline.  The example prints the operator DAG the planner
builds (compare with Figure 9) and then runs it.

Run with:  python examples/suspect_red_car.py
"""

import numpy as np

from repro import QuerySession, PlannerConfig
from repro.frontend import Query, compute, stateless
from repro.frontend.builtin import Car, Person
from repro.frontend.registry import get_library_zoo
from repro.videosim import datasets

SIMILARITY_THRESHOLD = 0.8


def suspect_gallery_embedding(video) -> np.ndarray:
    """The officer's gallery image of the suspect, as a re-id embedding.

    In the synthetic world the suspect is the scripted person with the
    ``is_suspect`` attribute; its noiseless embedding stands in for the
    image the officer provides.
    """
    reid = get_library_zoo().get("reid_feature")
    suspect = next(o for o in video.objects if o.attributes.get("is_suspect"))
    return reid.embed_object(suspect.object_id)


def build_query(gallery: np.ndarray) -> Query:
    class Suspect(Person):
        """A person matching the suspect's gallery image."""

        @stateless(model="reid_feature", intrinsic=True)
        def feature_vector(self, image):
            ...

    class SuspectIntoRedCar(Query):
        def __init__(self):
            self.person = Suspect("suspect")
            self.car = Car("red_car")

        def frame_constraint(self):
            similarity = compute(
                lambda v: float(np.dot(v, gallery) / (np.linalg.norm(v) * np.linalg.norm(gallery))),
                self.person.feature_vector,
                label="similarity",
            )
            proximity = compute(
                lambda a, b: a.edge_distance(b), self.person.bbox, self.car.bbox, label="gap"
            )
            return (
                (self.person.score > 0.5)
                & (similarity > SIMILARITY_THRESHOLD)
                & (self.car.score > 0.6)
                & (self.car.color == "red")
                & (proximity < 40)
            )

        def frame_output(self):
            return (self.car.track_id, self.car.license_plate, self.person.track_id)

    return SuspectIntoRedCar()


def main() -> None:
    video = datasets.suspect_scenario_clip(duration_s=120, seed=3)
    gallery = suspect_gallery_embedding(video)
    query = build_query(gallery)

    session = QuerySession(video, config=PlannerConfig(profile_plans=False))
    print("=== Operator DAG (compare with paper Figure 9) ===")
    print(session.explain(query))

    result = session.execute(query)
    print(f"\nframes where the suspect is at the red car: {len(result.matched_frames)}")
    plates = {r.outputs[1] for r in result.all_records() if r.frame_match and r.outputs[1]}
    print(f"license plate(s) of the car involved: {sorted(plates)}")
    print(f"virtual runtime: {result.total_ms / 1000:.2f} s")


if __name__ == "__main__":
    main()
