"""Amber-alert: registered optimizations, then a multi-camera manhunt.

Stage 1 is the single-camera query of the paper (§4.2, §4.4): a red car
whose license plate ends in "45" — both intrinsic properties, so
object-level computation reuse applies — with the RedCar VObj's registered
binary classifier and specialized detector giving the planner alternative
execution paths to profile.

Stage 2 is what an amber alert actually needs: the same vehicle chased
across a *network* of cameras.  Cross-camera re-identification links each
camera's tracks into global identities, and the alert becomes a
cross-camera sequence query: "the suspect car on the first camera, then the
same car downstream within a minute".

Run with:  python examples/amber_alert.py
"""

from repro import MultiCameraSession, QuerySession, PlannerConfig
from repro.backend.crosscamera import CrossCameraSequence
from repro.frontend import Query
from repro.frontend.builtin import RedCar
from repro.videosim import datasets
from repro.videosim.multicam import CameraPlacement, handoff_scenario


class AmberAlertQuery(Query):
    """A red car with a license plate ending in '45'."""

    def __init__(self):
        self.car = RedCar("red_car")

    def frame_constraint(self):
        return (
            (self.car.score > 0.5)
            & (self.car.color == "red")
            & self.car.license_plate.endswith("45")
        )

    def frame_output(self):
        return (self.car.track_id, self.car.license_plate, self.car.bbox)


class RedCarSightingQuery(Query):
    """Any red-car sighting (the per-camera side of the chase)."""

    def __init__(self):
        self.car = RedCar("red_car")

    def frame_constraint(self):
        return (self.car.score > 0.5) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.license_plate)


def main() -> None:
    # ---- stage 1: the classic single-camera query with planner profiling --
    video = datasets.camera_clip("jackson", duration_s=90, seed=11)
    config = PlannerConfig(profile_plans=True, canary_frames=45)
    session = QuerySession(video, config=config)

    plan = session.plan(AmberAlertQuery())
    print(f"planner chose variant: {plan.variant}")
    print(plan.describe())

    result = session.execute(AmberAlertQuery())
    hits = {r.outputs[1] for r in result.all_records() if r.frame_match}
    print(f"\nmatching plates: {sorted(hits) or 'none in this clip'}")
    print(f"matched frames : {len(result.matched_frames)}")
    print(f"virtual runtime: {result.total_ms / 1000:.2f} s "
          f"(reuse avoided {result.reuse_hits} property computations)")

    # ---- stage 2: chain the cameras along the alert corridor -------------
    scenario = handoff_scenario(
        cameras=(
            CameraPlacement("school_zone", fps=15, start_offset_s=0.0),
            CameraPlacement("main_street", fps=10, start_offset_s=5.0),
            CameraPlacement("interstate_onramp", fps=20, start_offset_s=10.0),
        ),
        num_entities=2,
        dwell_s=5.0,
        travel_gap_s=8.0,
        background_vehicles_per_minute=5.0,
        seed=45,
    )
    chase_config = PlannerConfig(profile_plans=False, enable_cross_camera_reid=True)
    network = MultiCameraSession(
        scenario.videos, config=chase_config, start_offsets=scenario.start_offsets
    )
    alert = CrossCameraSequence(
        RedCarSightingQuery(),
        first_camera="school_zone",
        max_gap_s=60.0,
    )
    pairs = network.execute_sequence(alert)
    timeline = network.timeline()

    print("\namber alert across the camera network:")
    print(f"  cameras: {', '.join(network.cameras)}")
    print(f"  identities linked: {network.last_links.num_identities}")
    if not pairs:
        print("  suspect not re-acquired downstream")
    for pair in pairs:
        (cam_a, ev_a), (cam_b, ev_b) = pair.segments
        lost = timeline.event_interval(cam_a, ev_a)[1]
        found = timeline.event_interval(cam_b, ev_b)[0]
        print(
            f"  identity {pair.global_id}: left {cam_a} at {lost:.1f}s, "
            f"re-acquired on {cam_b} at {found:.1f}s (+{found - lost:.1f}s)"
        )


if __name__ == "__main__":
    main()
