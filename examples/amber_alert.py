"""Amber-alert style query with registered optimizations (§4.2, §4.4).

Searches for a red car whose license plate ends in "45" — both intrinsic
properties, so object-level computation reuse applies — and shows how the
RedCar VObj's registered binary classifier and specialized detector give the
planner alternative execution paths to profile.

Run with:  python examples/amber_alert.py
"""

from repro import QuerySession, PlannerConfig
from repro.frontend import Query
from repro.frontend.builtin import RedCar
from repro.videosim import datasets


class AmberAlertQuery(Query):
    """A red car with a license plate ending in '45'."""

    def __init__(self):
        self.car = RedCar("red_car")

    def frame_constraint(self):
        return (
            (self.car.score > 0.5)
            & (self.car.color == "red")
            & self.car.license_plate.endswith("45")
        )

    def frame_output(self):
        return (self.car.track_id, self.car.license_plate, self.car.bbox)


def main() -> None:
    video = datasets.camera_clip("jackson", duration_s=90, seed=11)

    # Let the planner profile alternative DAGs (general detector + color
    # filter vs the registered specialized red-car detector, with the
    # "no_red_on_road" binary classifier in front) on a canary prefix.
    config = PlannerConfig(profile_plans=True, canary_frames=45)
    session = QuerySession(video, config=config)

    plan = session.plan(AmberAlertQuery())
    print(f"planner chose variant: {plan.variant}")
    print(plan.describe())

    result = session.execute(AmberAlertQuery())
    hits = {r.outputs[1] for r in result.all_records() if r.frame_match}
    print(f"\nmatching plates: {sorted(hits) or 'none in this clip'}")
    print(f"matched frames : {len(result.matched_frames)}")
    print(f"virtual runtime: {result.total_ms / 1000:.2f} s "
          f"(reuse avoided {result.reuse_hits} property computations)")


if __name__ == "__main__":
    main()
