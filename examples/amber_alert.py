"""Amber-alert as a *standing query*: live monitoring with immediate alerts.

The paper's amber-alert query (§4.2, §4.4) — a red car whose license plate
ends in "45" — is not a question you ask of a recording once; it is a query
that stands against a camera feed indefinitely, alerting the moment the
vehicle is seen.  This demo runs it in live mode (`enable_live=True`):

* Stage 1 registers two standing queries against a paced live feed with
  an alert-sink callback — the plate-specific alert and the broadcast
  "be on the lookout for a red car" sighting — and every closed event
  prints the moment the engine closes it, mid-stream, instead of
  accumulating in a `QueryResult`.  A mid-stream disconnect shows the
  watchdog reconnecting with standing-query state intact.
* Stage 2 turns the pressure up — the feed delivers 8x faster than the
  scan can process, with jitter and out-of-order delivery — and shows
  graceful degradation: the stride coarsens before any frame is dropped
  and the final accounting is exact (delivered == processed + shed +
  late).
* Stage 3 chases the same vehicle across a camera network with
  cross-camera re-identification (the batch side of an actual manhunt).

Run with:  python examples/amber_alert.py
"""

from dataclasses import replace

from repro import LiveSession, MultiCameraSession, PlannerConfig
from repro.backend.crosscamera import CrossCameraSequence
from repro.backend.live import CallbackSink
from repro.frontend import Query
from repro.frontend.builtin import RedCar
from repro.videosim import datasets
from repro.videosim.livefeed import LiveFeed
from repro.videosim.multicam import CameraPlacement, handoff_scenario


class AmberAlertQuery(Query):
    """A red car with a license plate ending in '45'."""

    def __init__(self):
        self.car = RedCar("red_car")

    def frame_constraint(self):
        return (
            (self.car.score > 0.5)
            & (self.car.color == "red")
            & self.car.license_plate.endswith("45")
        )

    def frame_output(self):
        return (self.car.track_id, self.car.license_plate, self.car.bbox)


class RedCarSightingQuery(Query):
    """Any red-car sighting (the per-camera side of the chase)."""

    def __init__(self):
        self.car = RedCar("red_car")

    def frame_constraint(self):
        return (self.car.score > 0.5) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.license_plate)


def on_alert(alert) -> None:
    event = alert.event
    print(
        f"  ALERT [{alert.feed}] {alert.query_name}: "
        f"frames {event.start_frame}-{event.end_frame} "
        f"(emitted at t={alert.emitted_at_ms / 1000:.1f}s virtual)"
    )


def main() -> None:
    # ---- stage 1: standing queries, alerting as events close --------------
    video = datasets.camera_clip("jackson", duration_s=90, seed=11)
    live_cfg = replace(
        PlannerConfig(profile_plans=False, enable_live=True),
        live_config=replace(PlannerConfig().live_config, stall_timeout_ms=500.0),
    )

    print("standing queries against the live feed (with a 2 s outage):")
    feed = LiveFeed(video, disconnects=[(30_000.0, 32_000.0)])
    session = LiveSession(feed, config=live_cfg, sinks=[CallbackSink(on_alert)])
    stats = session.run([AmberAlertQuery(), RedCarSightingQuery()])
    print(
        f"  feed ended: {stats.frames_processed}/{stats.frames_delivered} "
        f"frames processed, {stats.alerts_emitted} alert(s)"
    )
    print(
        f"  watchdog: {stats.stalls} stall(s), {stats.reconnects} reconnect(s), "
        f"{stats.frames_lost} frame(s) lost to the outage — "
        f"standing-query state survived"
    )

    # ---- stage 2: sustained overload, degrading gracefully ----------------
    print("\nsame queries, 8x overload with jitter and reordering:")
    stressed = LiveFeed(
        video, fps=video.fps * 8, jitter_ms=5.0, reorder_rate=0.05, seed=11
    )
    stress_config = PlannerConfig(
        profile_plans=False, enable_live=True, enable_stride_sampling=True
    )
    session = LiveSession(stressed, config=stress_config)
    stats = session.run([AmberAlertQuery(), RedCarSightingQuery()])
    print(
        f"  accounting: delivered={stats.frames_delivered} = "
        f"processed {stats.frames_processed} + shed {stats.frames_shed} "
        f"+ late-dropped {stats.frames_late_dropped}"
    )
    print(
        f"  degradation: peak stride {stats.peak_pressure_stride} "
        f"(raised {stats.pressure_raises}x before any drop), "
        f"peak buffered {stats.peak_buffered}, "
        f"{stats.alerts_emitted} alert(s) still emitted"
    )

    # ---- stage 3: chain the cameras along the alert corridor --------------
    scenario = handoff_scenario(
        cameras=(
            CameraPlacement("school_zone", fps=15, start_offset_s=0.0),
            CameraPlacement("main_street", fps=10, start_offset_s=5.0),
            CameraPlacement("interstate_onramp", fps=20, start_offset_s=10.0),
        ),
        num_entities=2,
        dwell_s=5.0,
        travel_gap_s=8.0,
        background_vehicles_per_minute=5.0,
        seed=45,
    )
    chase_config = PlannerConfig(profile_plans=False, enable_cross_camera_reid=True)
    network = MultiCameraSession(
        scenario.videos, config=chase_config, start_offsets=scenario.start_offsets
    )
    alert = CrossCameraSequence(
        RedCarSightingQuery(),
        first_camera="school_zone",
        max_gap_s=60.0,
    )
    pairs = network.execute_sequence(alert)
    timeline = network.timeline()

    print("\namber alert across the camera network:")
    print(f"  cameras: {', '.join(network.cameras)}")
    print(f"  identities linked: {network.last_links.num_identities}")
    if not pairs:
        print("  suspect not re-acquired downstream")
    for pair in pairs:
        (cam_a, ev_a), (cam_b, ev_b) = pair.segments
        lost = timeline.event_interval(cam_a, ev_a)[1]
        found = timeline.event_interval(cam_b, ev_b)[0]
        print(
            f"  identity {pair.global_id}: left {cam_a} at {lost:.1f}s, "
            f"re-acquired on {cam_b} at {found:.1f}s (+{found - lost:.1f}s)"
        )


if __name__ == "__main__":
    main()
