"""Quickstart: define a VObj-based query and run it on a synthetic camera clip.

This is the reproduction's equivalent of the paper's Figure 5 ("retrieve the
license plates of red cars"): a ``Car`` VObj from the built-in library, a
``Query`` with a frame constraint and frame outputs, and a ``QuerySession``
that plans and executes the pipeline.

Run with:  python examples/quickstart.py
"""

from repro import QuerySession, PlannerConfig
from repro.frontend import Query
from repro.frontend.builtin import Car
from repro.videosim import datasets


class RedCarLicenseQuery(Query):
    """Retrieve the license plates of red cars (paper Figure 5)."""

    def __init__(self):
        self.car = Car("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.license_plate, self.car.bbox)


def main() -> None:
    # A 60-second synthetic clip from the Jackson Hole camera preset (Table 3).
    video = datasets.camera_clip("jackson", duration_s=60, seed=13)
    session = QuerySession(video, config=PlannerConfig(profile_plans=False))

    print("=== Chosen operator DAG ===")
    print(session.explain(RedCarLicenseQuery()))

    result = session.execute(RedCarLicenseQuery())
    print("\n=== Results ===")
    print(f"frames processed : {result.num_frames_processed}")
    print(f"matching frames  : {len(result.matched_frames)}")
    print(f"virtual runtime  : {result.total_ms / 1000:.2f} s ({result.ms_per_frame:.1f} ms/frame)")
    print(f"intrinsic reuse  : {result.reuse_hits} property computations avoided")

    plates = {}
    for record in result.all_records():
        track_id, plate, _bbox = record.outputs
        if plate:
            plates[track_id] = plate
    print("\nLicense plates of red cars seen in the clip:")
    for track_id, plate in sorted(plates.items()):
        print(f"  track {track_id}: {plate}")


if __name__ == "__main__":
    main()
