"""Cross-camera chase: re-identification + a wall-clock global timeline.

A suspect vehicle moves between camera coverage areas.  Per-feed queries
find red-car sightings; cross-camera re-identification (cosine matching of
the tracks' re-id embeddings) recognises the *same* car when it reappears
on the next camera, and the global timeline places every sighting on one
wall-clock axis even though the feeds record at different frame rates and
started at different moments.  The chase itself is expressed with the
cross-camera temporal operator: "a red car on the highway camera, then the
same car on the bridge camera within 40 seconds".

Run with:  python examples/cross_camera_chase.py
"""

from repro import MultiCameraSession, PlannerConfig
from repro.backend.crosscamera import CrossCameraSequence
from repro.frontend import Query
from repro.frontend.builtin import Car
from repro.videosim.multicam import CameraPlacement, handoff_scenario


class SuspectRedCarQuery(Query):
    """A red vehicle sighting; plates are read out for cross-referencing."""

    def __init__(self):
        self.car = Car("suspect")

    def frame_constraint(self):
        return (self.car.score > 0.5) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.license_plate)


def main() -> None:
    # Three cameras along the escape route: different frame rates, staggered
    # recording starts, and background traffic as distractors.  The scripted
    # entities cross all three in order; entity 0 is the red suspect car.
    scenario = handoff_scenario(
        cameras=(
            CameraPlacement("highway_north", fps=10, start_offset_s=0.0),
            CameraPlacement("downtown", fps=15, start_offset_s=4.0),
            CameraPlacement("bridge_cam", fps=20, start_offset_s=8.0),
        ),
        num_entities=3,
        dwell_s=6.0,
        travel_gap_s=5.0,
        background_vehicles_per_minute=4.0,
        seed=12,
    )
    config = PlannerConfig(profile_plans=False, enable_cross_camera_reid=True)
    session = MultiCameraSession(
        scenario.videos, config=config, start_offsets=scenario.start_offsets
    )

    merged = session.execute(SuspectRedCarQuery())
    links = session.last_links

    print(f"cameras searched: {', '.join(merged.cameras)}")
    print(f"tracks linked   : {len(links.identities)} -> {links.num_identities} global identities")
    print(f"cross-camera ids: {sorted(links.cross_camera_identities())}\n")

    print("sightings on the global wall clock:")
    timeline = merged.timeline
    for camera, event in merged.merged_events():
        start_ts, end_ts = timeline.event_interval(camera, event)
        gids = sorted(
            {
                links.global_id(camera, tid)
                for _, tid in event.signature
                if isinstance(tid, int) and links.global_id(camera, tid) is not None
            }
        )
        print(
            f"  {start_ts:7.2f}s - {end_ts:7.2f}s  [{camera:>13}]  "
            f"frames {event.start_frame}-{event.end_frame}, identity {gids or '?'}"
        )

    print("\nstitched chase arcs (one span per identity):")
    for span in merged.global_events():
        if not span.is_cross_camera:
            continue
        print(
            f"  identity {span.global_id}: {span.start_ts:.2f}s -> {span.end_ts:.2f}s "
            f"across {' -> '.join(span.cameras)} ({span.num_segments} sightings)"
        )

    chase = CrossCameraSequence(
        SuspectRedCarQuery(),
        first_camera="highway_north",
        second_camera="bridge_cam",
        max_gap_s=40.0,
    )
    pairs = session.execute_sequence(chase)
    print("\n'red car on highway_north, then the SAME car on bridge_cam within 40s':")
    if not pairs:
        print("  no matching chase in these clips")
    for pair in pairs:
        (cam_a, ev_a), (cam_b, ev_b) = pair.segments
        gap = timeline.event_interval(cam_b, ev_b)[0] - timeline.event_interval(cam_a, ev_a)[1]
        print(
            f"  identity {pair.global_id}: seen on {cam_a} until {timeline.event_interval(cam_a, ev_a)[1]:.2f}s, "
            f"reappears on {cam_b} {gap:.1f}s later"
        )


if __name__ == "__main__":
    main()
