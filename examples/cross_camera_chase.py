"""Cross-camera amber-alert chase: one query set, several feeds.

The single-video session cannot express a suspect vehicle moving between
camera coverage areas.  :class:`MultiCameraSession` shards the same query
set across feeds (each feed still executes its whole batch in one streaming
pass) and merges the per-camera results deterministically, so the chase can
be reconstructed as a camera-tagged event timeline.

Run with:  python examples/cross_camera_chase.py
"""

from repro import MultiCameraSession, PlannerConfig
from repro.frontend import Query
from repro.frontend.builtin import Car
from repro.frontend.higher_order import DurationQuery
from repro.videosim import datasets


class SuspectRedCarQuery(Query):
    """A red vehicle sighting; plates are read out for cross-referencing."""

    def __init__(self):
        self.car = Car("suspect")

    def frame_constraint(self):
        return (self.car.score > 0.5) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.license_plate, self.car.bbox)


def main() -> None:
    feeds = {
        "highway_north": datasets.camera_clip("jackson", duration_s=60, seed=12),
        "downtown": datasets.camera_clip("banff", duration_s=60, seed=14),
        "bridge_cam": datasets.camera_clip("jackson", duration_s=60, seed=13),
    }
    session = MultiCameraSession(feeds, config=PlannerConfig(profile_plans=False))

    sighting = SuspectRedCarQuery()
    lingering = DurationQuery(SuspectRedCarQuery(), duration_s=2.0)
    sightings, lingerings = session.execute_many([sighting, lingering])

    print(f"cameras searched: {', '.join(sightings.cameras)}")
    print(f"total virtual compute: {sightings.total_ms / 1000:.2f} s\n")

    for camera, result in sightings:
        plates = {r.outputs[1] for r in result.all_records() if r.frame_match}
        print(
            f"[{camera:>14}] {len(result.matched_frames):4d} matching frames, "
            f"plates: {sorted(plates) or 'none'}"
        )

    print("\nchase timeline (camera-tagged duration events):")
    timeline = lingerings.merged_events()
    if not timeline:
        print("  no lingering sightings in these clips")
    for camera, event in timeline:
        print(
            f"  frames {event.start_frame:4d}-{event.end_frame:4d} on {camera} "
            f"({event.num_frames} frames)"
        )


if __name__ == "__main__":
    main()
