"""Queue analytics for retail (the second §5.4 use case, Figure 19b).

A video-level aggregation query: the average and maximum number of people
waiting in the checkout region over the clip, using ``video_constraint`` /
``video_output`` (paper Figure 7's aggregation style).

Run with:  python examples/queue_analysis.py
"""

from repro import QuerySession, PlannerConfig
from repro.frontend import Query, predicate
from repro.frontend.query import average_per_frame, max_per_frame
from repro.frontend.builtin import Person
from repro.videosim import datasets

#: The checkout region of the retail camera, in pixels.
QUEUE_REGION = (250.0, 320.0, 800.0, 480.0)


class QueueLengthQuery(Query):
    def __init__(self):
        self.person = Person("person")

    def video_constraint(self):
        def in_queue_region(bbox):
            x, y = bbox.bottom_center
            x0, y0, x1, y1 = QUEUE_REGION
            return x0 <= x <= x1 and y0 <= y <= y1

        return (self.person.score > 0.5) & predicate(in_queue_region, self.person.bbox, label="in_queue")

    def video_output(self):
        return (
            average_per_frame(self.person.track_id, label="avg_queue_length"),
            max_per_frame(self.person.track_id, label="max_queue_length"),
        )


def main() -> None:
    video = datasets.queue_clip(duration_s=120, seed=6, queue_length=6)
    session = QuerySession(video, config=PlannerConfig(profile_plans=False))
    result = session.execute(QueueLengthQuery())

    print("Queue analytics over the clip:")
    print(f"  average queue length : {result.aggregates['avg_queue_length']:.2f} people")
    print(f"  maximum queue length : {result.aggregates['max_queue_length']} people")
    print(f"  virtual runtime      : {result.total_ms / 1000:.2f} s")


if __name__ == "__main__":
    main()
