"""Traffic-hazard query: a speeding car passing close to a person (Figure 6).

Combines an object property constraint (speed, a stateful property) with a
spatial relationship between two video objects (distance between the car and
the person), expressed directly over VObjs — no joins, no UDF plumbing.

Run with:  python examples/traffic_hazard.py
"""

from repro import QuerySession, PlannerConfig
from repro.frontend import Query, compute
from repro.frontend.builtin import Car, Person
from repro.videosim import datasets


class TrafficHazardQuery(Query):
    """A speeding car within 150 px of a pedestrian on the same frame."""

    SPEED_THRESHOLD = 10.0  # pixels/frame
    DISTANCE_THRESHOLD = 150.0

    def __init__(self):
        self.car = Car("car")
        self.person = Person("person")

    def frame_constraint(self):
        distance = compute(
            lambda a, b: a.center_distance(b), self.car.bbox, self.person.bbox, label="distance"
        )
        return (
            (self.car.score > 0.6)
            & (self.car.speed > self.SPEED_THRESHOLD)
            & (self.person.score > 0.5)
            & (distance < self.DISTANCE_THRESHOLD)
        )

    def frame_output(self):
        return (self.car.track_id, self.person.track_id, self.car.speed)


def main() -> None:
    # Southampton has the densest, fastest traffic of the Table-3 cameras.
    video = datasets.camera_clip("southampton", duration_s=60, seed=7)
    session = QuerySession(video, config=PlannerConfig(profile_plans=False))

    print(session.explain(TrafficHazardQuery()))
    result = session.execute(TrafficHazardQuery())

    print(f"\nframes with a speeding car near a pedestrian: {len(result.matched_frames)}")
    for frame_id in result.matched_frames[:10]:
        for record in result.matches[frame_id]:
            if not record.frame_match:
                continue
            car_track, person_track, speed = record.outputs
            print(f"  frame {frame_id}: car {car_track} at {speed:.1f} px/frame near person {person_track}")
    print(f"\nvirtual runtime: {result.total_ms / 1000:.2f} s")


if __name__ == "__main__":
    main()
