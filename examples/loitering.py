"""Loitering alert (the Cisco DeepVision use case of §5.4, Figure 19a).

A :class:`DurationQuery` over a Person VObj restricted to a region: alert
when someone stays inside the watched region for longer than a threshold.

Run with:  python examples/loitering.py
"""

from repro import QuerySession, PlannerConfig
from repro.frontend import Query, predicate
from repro.frontend.builtin import Person
from repro.frontend.higher_order import DurationQuery
from repro.videosim import datasets

#: Watched region (pixels) and minimum dwell time for an alert.
REGION = (200.0, 300.0, 700.0, 700.0)
LOITER_SECONDS = 60.0


class PersonInRegionQuery(Query):
    def __init__(self):
        self.person = Person("person")

    def frame_constraint(self):
        def inside(bbox):
            x, y = bbox.bottom_center
            x0, y0, x1, y1 = REGION
            return x0 <= x <= x1 and y0 <= y <= y1

        return (self.person.score > 0.5) & predicate(inside, self.person.bbox, label="in_region")

    def frame_output(self):
        return (self.person.track_id, self.person.bbox)


def main() -> None:
    video = datasets.loitering_clip(duration_s=240, seed=5, loiter_seconds=150)
    session = QuerySession(video, config=PlannerConfig(profile_plans=False))

    alert_query = DurationQuery(PersonInRegionQuery(), duration_s=LOITER_SECONDS, max_gap_frames=15)
    result = session.execute(alert_query)

    print(f"loitering alerts: {len(result.events)}")
    for event in result.events:
        dwell = event.num_frames / video.fps
        print(f"  ALERT: person {event.signature} stayed {dwell:.0f}s in the watched region "
              f"(frames {event.start_frame}-{event.end_frame})")
    print(f"virtual runtime: {result.total_ms / 1000:.2f} s")


if __name__ == "__main__":
    main()
