"""Hit-and-run detection with higher-order query composition (Figure 8).

Two events are composed temporally:

1. ``car-hit-person`` — a :class:`CollisionQuery` (a SpatialQuery) between a
   Car VObj and a Person VObj;
2. ``car-run-away`` — a :class:`SpeedQuery` on the Car VObj;

and a :class:`SequentialQuery` requires the second to follow the first
within a time window.

Run with:  python examples/hit_and_run.py
"""

from repro import QuerySession, PlannerConfig
from repro.frontend.builtin import Car, Person
from repro.frontend.higher_order import CollisionQuery, SequentialQuery, SpeedQuery
from repro.videosim import datasets

VELOCITY_THRESHOLD = 12.0  # pixels/frame
TIME_WINDOW_S = 30.0


def build_query() -> SequentialQuery:
    car_hit_person = CollisionQuery(Car("car"), Person("person"), max_distance=80)
    car_run_away = SpeedQuery(Car("fleeing_car"), min_speed=VELOCITY_THRESHOLD)
    return SequentialQuery(car_hit_person, car_run_away, max_gap_s=TIME_WINDOW_S)


def main() -> None:
    # A clip with a scripted collision followed by the car fleeing at speed.
    video = datasets.hit_and_run_clip(duration_s=90, seed=4)
    session = QuerySession(video, config=PlannerConfig(profile_plans=False))

    result = session.execute(build_query())
    print(f"hit-and-run event pairs found: {result.aggregates['num_event_pairs']}")
    for event in result.events[:5]:
        start_s = event.start_frame / video.fps
        end_s = event.end_frame / video.fps
        print(f"  collision at ~{start_s:.1f}s, car fleeing until ~{end_s:.1f}s (objects: {event.signature})")
    print(f"virtual runtime: {result.total_ms / 1000:.2f} s")


if __name__ == "__main__":
    main()
