"""Integration tests for the experiment harnesses (scaled-down runs).

These verify the *shape* of each paper result on small inputs: who wins and
roughly by how much, plus that the formatted tables carry the expected rows.
"""

import pytest

from repro.experiments import ablations, cityflow, eva_comparison, mllm_comparison


@pytest.fixture(scope="module")
def cityflow_result():
    return cityflow.run_cityflow_experiment(num_clips=2, clip_seconds=15, tracks_per_clip=4, seed=1)


@pytest.fixture(scope="module")
def eva_result():
    return eva_comparison.run_eva_comparison(cameras=("banff",), durations_s=(("3 min", 30.0),), seed=1)


@pytest.fixture(scope="module")
def mllm_result():
    return mllm_comparison.run_mllm_comparison(duration_s=60.0, num_images=60, seed=1)


class TestCityFlowExperiment:
    def test_five_queries_reported(self, cityflow_result):
        assert [r.query_id for r in cityflow_result.per_query] == ["Q1", "Q2", "Q3", "Q4", "Q5"]

    def test_vqpy_beats_cvip(self, cityflow_result):
        for row in cityflow_result.per_query:
            assert row.vqpy_s < row.cvip_s
            assert row.vqpy_annotated_s <= row.vqpy_s * 1.05

    def test_annotation_gives_large_additional_speedup(self, cityflow_result):
        avg_annotated = sum(r.annotated_speedup for r in cityflow_result.per_query) / 5
        avg_vanilla = sum(r.vqpy_speedup for r in cityflow_result.per_query) / 5
        assert avg_annotated > avg_vanilla
        assert avg_annotated > 5.0  # the paper reports ~11-14x

    def test_cvip_runtime_flat_across_queries(self, cityflow_result):
        values = [r.cvip_s for r in cityflow_result.per_query]
        assert max(values) / min(values) < 1.05

    def test_per_frame_series_and_reports(self, cityflow_result):
        series = cityflow_result.per_frame_series
        assert set(series) == {"CVIP", "VQPy", "VQPy with annotation"}
        # Intrinsic annotation flattens the curve: later frames much cheaper than CVIP's.
        tail_cvip = sum(series["CVIP"][-10:]) / 10
        tail_annotated = sum(series["VQPy with annotation"][-10:]) / 10
        assert tail_annotated < tail_cvip / 3
        assert "Figure 13(a)" in cityflow.format_fig13a(cityflow_result).to_text()
        assert "Figure 13(b)" in cityflow.format_fig13b(cityflow_result).to_text()


class TestEvaComparisonExperiment:
    def test_vqpy_faster_on_every_query(self, eva_result):
        for cell in eva_result.cells:
            assert cell.vqpy_s < cell.eva_s

    def test_speedup_ordering_matches_paper(self, eva_result):
        red = eva_result.for_query("red_car")[0]
        speeding = eva_result.for_query("speeding_car")[0]
        both = eva_result.for_query("red_speeding_car")[0]
        # Paper: red ~5x, speeding ~1.5x, red+speeding ~7.5-15x.
        assert speeding.vqpy_speedup < red.vqpy_speedup < both.vqpy_speedup
        assert speeding.vqpy_speedup > 1.0
        assert both.vqpy_speedup > 4.0

    def test_refined_between_vqpy_and_unrefined(self, eva_result):
        both = eva_result.for_query("red_speeding_car")[0]
        assert both.vqpy_s < both.eva_refined_s < both.eva_s

    def test_reports_render(self, eva_result):
        assert "Figure 14" in eva_comparison.format_fig14(eva_result).to_text()
        assert "Figure 15" in eva_comparison.format_fig15(eva_result).to_text()
        assert "EVA_refined" in eva_comparison.format_fig16(eva_result).to_text()


class TestMLLMComparisonExperiment:
    def test_vqpy_much_faster_than_videochat(self, mllm_result):
        for query_id in ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6"):
            vqpy = mllm_result.get("vqpy", query_id)
            chat = mllm_result.get("videochat-7b", query_id)
            assert vqpy.ms_per_frame < chat.ms_per_frame

    def test_13b_slower_than_7b(self, mllm_result):
        assert (
            mllm_result.get("videochat-13b", "Q1").ms_per_frame
            > mllm_result.get("videochat-7b", "Q1").ms_per_frame
        )

    def test_vqpy_more_accurate_on_q6(self, mllm_result):
        vqpy = mllm_result.get("vqpy", "Q6")
        chat = mllm_result.get("videochat-7b", "Q6")
        assert vqpy.f1 > chat.f1

    def test_vqpy_opt_cheaper_than_individual(self, mllm_result):
        individual = sum(mllm_result.get("vqpy", q).ms_per_frame for q in ("Q1", "Q2", "Q3", "Q4", "Q5"))
        combined = mllm_result.get("vqpy-opt", "Q1-Q5").ms_per_frame
        assert combined < individual

    def test_aggregation_answers_inflated_for_mllm(self, mllm_result):
        chat = mllm_result.get("videochat-7b", "Q4")
        vqpy = mllm_result.get("vqpy", "Q4")
        assert chat.avg_response is None or vqpy.avg_response is None or chat.avg_response > vqpy.avg_response

    def test_tables_render(self, mllm_result):
        assert "Table 5" in mllm_comparison.format_table5(mllm_result).to_text()
        assert "Table 6" in mllm_comparison.format_table6(mllm_result).to_text()
        assert "Table 7" in mllm_comparison.format_table7(mllm_result).to_text()

    def test_table4_query_set(self):
        assert len(mllm_comparison.MLLM_QUERIES) == 6
        kinds = [k for _, k, _ in mllm_comparison.MLLM_QUERIES]
        assert kinds.count("boolean") == 4 and kinds.count("aggregation") == 2


class TestAblations:
    def test_intrinsic_reuse_helps(self):
        result = ablations.run_intrinsic_ablation(duration_s=20, seed=2)
        assert result.row("reuse on").total_ms < result.row("reuse off").total_ms
        assert result.row("reuse on").f1_vs_reference > 0.9

    def test_planner_optimizations_monotone(self):
        result = ablations.run_planner_ablation(duration_s=20, seed=2)
        base = result.row("no pull-up, no fusion").total_ms
        best = result.row("pull-up + fusion + reuse").total_ms
        assert best < base
        assert "Ablation" in result.to_report().to_text()

    def test_multiquery_reuse(self):
        result = ablations.run_multiquery_ablation(duration_s=20, seed=2)
        shared = result.row("executed in one pass (shared)").total_ms
        individual = result.row("executed individually").total_ms
        assert shared < individual / 1.5
