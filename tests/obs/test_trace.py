"""Unit tests for the hierarchical span tracer and its exporters."""

from __future__ import annotations

import json
import threading

from repro.common.clock import SimClock
from repro.obs.trace import NullTracer, Tracer


def test_span_nesting_and_parenting():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            pass
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert [s.name for s in tracer.spans()] == ["outer", "inner"]


def test_span_attrs_and_set():
    tracer = Tracer()
    with tracer.span("scan", frames=12) as span:
        span.set("matched", 3)
    d = span.as_dict()
    assert d["attrs"] == {"frames": 12, "matched": 3}
    assert d["name"] == "scan"


def test_virtual_ms_comes_from_the_clock():
    tracer = Tracer()
    clock = SimClock()
    with tracer.span("work", clock=clock):
        clock.charge("detector", 42.0)
    (span,) = tracer.spans("work")
    assert span.virt_ms == 42.0
    assert tracer.total_virt_ms("work") == 42.0
    # spans only *snapshot* the clock — they never charge it
    assert clock.elapsed_ms == 42.0


def test_span_without_clock_has_no_virtual_time():
    tracer = Tracer()
    with tracer.span("wall-only"):
        pass
    (span,) = tracer.spans()
    assert span.virt_ms is None
    assert span.wall_ms >= 0.0


def test_lane_inheritance():
    tracer = Tracer()
    with tracer.span("feed", lane="cam-1"):
        with tracer.span("child"):
            pass
    feed, child = tracer.spans()
    assert feed.lane == "cam-1"
    assert child.lane == "cam-1"
    assert tracer.lanes() == ["cam-1"]


def test_explicit_parent_across_threads():
    tracer = Tracer()
    with tracer.span("root") as root:
        def worker():
            with tracer.span("feed", parent=root, lane="cam-2"):
                pass
        t = threading.Thread(target=worker)
        t.start()
        t.join()
    feed = tracer.spans("feed")[0]
    assert feed.parent_id == root.span_id
    assert feed.lane == "cam-2"


def test_max_spans_cap_counts_drops():
    tracer = Tracer(max_spans=2)
    for i in range(5):
        with tracer.span(f"s{i}"):
            pass
    assert len(tracer.spans()) == 2
    assert tracer.dropped == 3


def test_null_tracer_is_inert():
    tracer = NullTracer()
    with tracer.span("anything", clock=SimClock(), attr=1) as span:
        pass
    assert span.span_id == -1


def test_json_export_roundtrips(tmp_path):
    tracer = Tracer()
    clock = SimClock()
    with tracer.span("scan", clock=clock, video="jackson"):
        clock.charge("yolox", 7.0)
    path = tmp_path / "trace.json"
    tracer.to_json(path)
    data = json.loads(path.read_text())
    assert data["dropped"] == 0
    (span,) = data["spans"]
    assert span["name"] == "scan"
    assert span["virt_ms"] == 7.0
    assert span["attrs"]["video"] == "jackson"


def test_chrome_trace_structure(tmp_path):
    tracer = Tracer()
    with tracer.span("batch") as root:
        with tracer.span("feed-a", parent=root, lane="a"):
            pass
        with tracer.span("feed-b", parent=root, lane="b"):
            pass
    doc = tracer.to_chrome_trace()
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    metas = [e for e in events if e["ph"] == "M"]
    xs = [e for e in events if e["ph"] == "X"]
    lane_names = [e["args"]["name"] for e in metas if e["name"] == "thread_name"]
    assert lane_names == ["main", "a", "b"]
    assert len(xs) == 3
    # each lane gets its own tid; durations are in microseconds
    assert len({e["tid"] for e in xs}) == 3
    assert all(e["dur"] >= 0 for e in xs)
    path = tmp_path / "chrome.json"
    tracer.export_chrome(path)
    assert json.loads(path.read_text())["traceEvents"]
