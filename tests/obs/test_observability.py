"""Integration tests for engine-wide observability.

The contract under test: ``PlannerConfig(enable_tracing=True)`` yields
spans, metrics, decision records, and ``explain()`` — while leaving every
result byte-identical to an untraced run; ``enable_tracing=False`` (the
default) leaves the engine completely inert (no obs objects anywhere).
"""

from __future__ import annotations

import pytest

from repro.backend.planner import PlannerConfig
from repro.backend.session import MultiCameraSession, QuerySession
from repro.common.config import VideoSpec
from repro.frontend.builtin import Car, Person, RedCar
from repro.frontend.query import Query
from repro.videosim.datasets import camera_clip
from repro.videosim.entities import ObjectSpec
from repro.videosim.trajectory import LinearTrajectory
from repro.videosim.video import SyntheticVideo


class RedCarQuery(Query):
    def __init__(self):
        self.car = Car("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id,)


class GatedRedCarQuery(RedCarQuery):
    """RedCar VObj: carries the registered ``no_red_on_road`` frame filter."""

    def __init__(self):
        self.car = RedCar("car")


class PersonQuery(Query):
    def __init__(self):
        self.person = Person("person")

    def frame_constraint(self):
        return self.person.score > 0.5

    def frame_output(self):
        return (self.person.track_id,)


@pytest.fixture(scope="module")
def clip():
    return camera_clip("jackson", duration_s=8, seed=2)


@pytest.fixture(scope="module")
def stable_video():
    """Two red cars drifting linearly: fully predictable (stride raises)."""
    spec = VideoSpec("stable", fps=10, width=640, height=480, duration_s=40)
    cars = [
        ObjectSpec(
            object_id=i + 1,
            class_name="car",
            trajectory=LinearTrajectory((30 + 150 * i, 300), (0.8, 0.0)),
            size=(100, 50),
            attributes={"color": "red", "vehicle_type": "sedan"},
        )
        for i in range(2)
    ]
    return SyntheticVideo(spec, cars, seed=3)


def batch():
    return [GatedRedCarQuery(), PersonQuery()]


# -- disabled mode is inert -------------------------------------------------------


class TestDisabledMode:
    def test_default_config_builds_no_obs(self, clip, zoo):
        session = QuerySession(clip, zoo=zoo)
        assert session.config.enable_tracing is False
        results = session.execute_many(batch())
        assert session.last_obs is None
        assert session.last_trace is None
        assert all(r.obs is None for r in results)

    def test_explain_raises_without_tracing(self, clip, zoo):
        session = QuerySession(clip, zoo=zoo, config=PlannerConfig(enable_tracing=False))
        (result, _) = session.execute_many(batch())
        with pytest.raises(ValueError, match="enable_tracing"):
            result.explain()

    def test_results_byte_identical_with_tracing(self, clip, zoo):
        plain = QuerySession(clip, zoo=zoo, config=PlannerConfig())
        traced = QuerySession(clip, zoo=zoo, config=PlannerConfig(enable_tracing=True))
        base = plain.execute_many(batch())
        tr = traced.execute_many(batch())
        # dataclass equality covers matches, events, aggregates, per-frame
        # costs, and total_ms (the obs field is excluded via compare=False)
        assert tr == base
        assert plain.last_context.clock.elapsed_ms == traced.last_context.clock.elapsed_ms
        assert plain.last_scan_stats == traced.last_scan_stats


# -- traced single-video runs -----------------------------------------------------


class TestTracedRun:
    @pytest.fixture(scope="class")
    def traced(self, clip, zoo):
        session = QuerySession(clip, zoo=zoo, config=PlannerConfig(enable_tracing=True))
        results = session.execute_many(batch())
        return session, results

    def test_span_taxonomy(self, traced):
        session, _ = traced
        tracer = session.last_trace
        names = {s.name for s in tracer.spans()}
        assert {"execute-batch", "plan", "profile", "scan", "frame-gate-eval", "model-invocation"} <= names
        (root,) = tracer.spans("execute-batch")
        (scan,) = tracer.spans("scan")
        assert scan.parent_id == root.span_id
        assert all(s.parent_id is not None for s in tracer.spans("model-invocation"))

    def test_scan_span_carries_virtual_time(self, traced):
        session, _ = traced
        (scan,) = session.last_trace.spans("scan")
        assert scan.virt_ms is not None and scan.virt_ms > 0
        assert scan.wall_ms is not None

    def test_explain_reports_every_candidate(self, traced):
        _, results = traced
        report = results[0].explain()
        assert "EXPLAIN ANALYZE" in report
        data = results[0].obs
        # the gated query registers a frame filter, so the planner had a
        # real choice: every candidate shows estimated + profiled cost
        assert len(data.candidates) >= 2
        assert sum(c.chosen for c in data.candidates) == 1
        for candidate in data.candidates:
            assert candidate.estimated_cost_ms is not None
            assert candidate.profiled_cost_ms is not None
            assert candidate.variant in report
        assert "Frame gate:" in report
        assert "Detector budget:" in report

    def test_metrics_registry_counts_model_invocations(self, traced):
        session, _ = traced
        obs = session.last_obs
        ctx = session.last_context
        yolox_calls = ctx.clock.calls.get("yolox", 0)
        assert obs.metrics.counter("detector_invocations", model="yolox") == yolox_calls
        assert obs.metrics.histogram("gate_eval_ms", model="no_red_on_road").count > 0

    def test_decision_log_accounts_for_all_gated_frames(self, traced):
        session, _ = traced
        stats = session.last_scan_stats
        obs = session.last_obs
        assert stats["leaf_frames_gated"] > 0
        assert obs.decisions.count("frame-gated") == stats["leaf_frames_gated"]
        assert obs.decisions.count("frame-deferred") == stats["frames_deferred"]


# -- stride decisions -------------------------------------------------------------


class TestStrideDecisions:
    def test_defer_interpolate_and_stride_moves_are_recorded(self, stable_video, zoo):
        config = PlannerConfig(
            profile_plans=False, enable_stride_sampling=True, enable_tracing=True
        )
        session = QuerySession(stable_video, zoo=zoo, config=config)
        session.execute(RedCarQuery())
        stats = session.last_scan_stats
        obs = session.last_obs
        assert stats["frames_deferred"] > 0
        assert obs.decisions.count("frame-deferred", "stride-skip") == stats["frames_deferred"]
        assert obs.decisions.count("frame-interpolated") == stats["frames_interpolated"]
        assert obs.decisions.count("frame-rescanned") == stats["frames_rescanned"]
        assert obs.decisions.count("stride-raised", "stable-streak") == stats["stride_raises"]
        raises = obs.decisions.records("stride-raised")
        assert raises
        assert all(dict(d.attrs)["stride_to"] > dict(d.attrs)["stride_from"] for d in raises)
        assert obs.metrics.histogram("stride_level").count > 0


# -- multi-camera -----------------------------------------------------------------


class TestMultiCamera:
    def feeds(self):
        return {
            "north": camera_clip("jackson", duration_s=6, seed=2),
            "south": camera_clip("banff", duration_s=6, seed=1),
        }

    def test_parallel_lanes_and_determinism(self, zoo):
        config = PlannerConfig(enable_tracing=True)
        par = MultiCameraSession(self.feeds(), zoo=zoo, config=config, max_workers=2)
        ser = MultiCameraSession(self.feeds(), zoo=zoo, config=config, max_workers=1)
        rp = par.execute_many(batch())
        rs = ser.execute_many(batch())
        for name in par.sessions:
            assert rp[0].camera(name) == rs[0].camera(name)
            assert rp[1].camera(name) == rs[1].camera(name)
        # virtual time is worker-count independent (wall time is not)
        assert par.last_obs.tracer.total_virt_ms("scan") == ser.last_obs.tracer.total_virt_ms("scan")
        assert set(par.last_obs.tracer.lanes()) == {"main", "north", "south"}

    def test_feed_spans_parent_under_the_batch_root(self, zoo):
        session = MultiCameraSession(
            self.feeds(), zoo=zoo, config=PlannerConfig(enable_tracing=True), max_workers=2
        )
        session.execute_many(batch())
        tracer = session.last_obs.tracer
        (root,) = tracer.spans("execute-batch")
        feed_spans = tracer.spans("feed-scan")
        assert {s.lane for s in feed_spans} == {"north", "south"}
        assert all(s.parent_id == root.span_id for s in feed_spans)

    def test_last_scan_stats_per_feed(self, zoo):
        session = MultiCameraSession(self.feeds(), zoo=zoo)
        assert session.last_scan_stats is None
        session.execute_many(batch())
        stats = session.last_scan_stats
        assert set(stats) == {"north", "south"}
        for per_feed in stats.values():
            assert per_feed["frames_scanned"] > 0

    def test_execute_over_exposes_trace_via_session(self, clip, zoo):
        session = QuerySession(clip, zoo=zoo, config=PlannerConfig(enable_tracing=True))
        session.execute_over({"other": camera_clip("banff", duration_s=6, seed=1)}, batch())
        assert session.last_trace is session.last_multi.last_obs.tracer
        assert "feed-scan" in {s.name for s in session.last_trace.spans()}

    def test_reid_link_span_and_decisions(self, zoo):
        config = PlannerConfig(enable_tracing=True, enable_cross_camera_reid=True)
        session = MultiCameraSession(self.feeds(), zoo=zoo, config=config, max_workers=2)
        session.execute_many(batch())
        tracer = session.last_obs.tracer
        (link,) = tracer.spans("reid-link")
        assert link.virt_ms is not None
        summary = session.last_obs.decisions.summary()
        reid_actions = {a for a in summary if a.startswith("reid-")}
        assert "reid-unmatched" in reid_actions or "reid-excluded" in reid_actions
