"""Unit tests for the labeled metrics registry and the ScanStats view."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.backend.scheduler import ScanStats
from repro.obs.metrics import MetricsRegistry, format_key


def test_counters_with_labels():
    reg = MetricsRegistry()
    reg.inc("detector_invocations", model="yolox")
    reg.inc("detector_invocations", model="yolox")
    reg.inc("detector_invocations", model="reid_feature", value=3)
    assert reg.counter("detector_invocations", model="yolox") == 2
    assert reg.counter("detector_invocations", model="reid_feature") == 3
    assert reg.counter("detector_invocations", model="nope") == 0


def test_gauges():
    reg = MetricsRegistry()
    assert reg.gauge("stride") is None
    assert reg.gauge("stride", default=1) == 1
    reg.set_gauge("stride", 4)
    assert reg.gauge("stride") == 4


def test_histograms():
    reg = MetricsRegistry()
    for v in (1.0, 3.0, 2.0):
        reg.observe("gate_eval_ms", v, model="no_red_on_road")
    h = reg.histogram("gate_eval_ms", model="no_red_on_road")
    assert h.count == 3
    assert h.total == 6.0
    assert h.min == 1.0 and h.max == 3.0
    assert h.mean == 2.0


def test_snapshot_is_sorted_and_formatted():
    reg = MetricsRegistry()
    reg.inc("b_counter", tag="z")
    reg.inc("a_counter")
    reg.set_gauge("g", 1)
    reg.observe("h", 2.0)
    snap = reg.snapshot()
    assert list(snap) == ["counters", "gauges", "histograms"]
    assert list(snap["counters"]) == ["a_counter", "b_counter{tag=z}"]
    assert snap["histograms"]["h"]["count"] == 1


def test_format_key_orders_labels():
    assert format_key(("m", (("a", "1"), ("b", "2")))) == "m{a=1,b=2}"
    assert format_key(("m", ())) == "m"


def test_counter_aggregation_is_thread_order_independent():
    reg = MetricsRegistry()
    def bump(_):
        for _ in range(100):
            reg.inc("hits", worker="any")
    with ThreadPoolExecutor(max_workers=4) as pool:
        list(pool.map(bump, range(8)))
    assert reg.counter("hits", worker="any") == 800


# -- ScanStats as a registry view -------------------------------------------------


def test_scan_stats_fields_live_in_the_registry():
    stats = ScanStats()
    stats.frames_scanned += 5
    stats.peak_stride = 4
    assert stats.frames_scanned == 5
    assert stats.registry.gauge("frames_scanned") == 5
    assert stats.registry.gauge("peak_stride") == 4


def test_scan_stats_as_dict_compatibility_view():
    stats = ScanStats(frames_scanned=3, leaf_frames_gated=2)
    d = stats.as_dict()
    assert d["frames_scanned"] == 3
    assert d["leaf_frames_gated"] == 2
    assert d["early_exit_frame"] is None
    assert ScanStats.from_dict(d) == stats
    assert ScanStats(**d) == stats


def test_scan_stats_shared_registry():
    reg = MetricsRegistry()
    stats = ScanStats(registry=reg)
    stats.frames_deferred += 2
    assert reg.gauge("frames_deferred") == 2
