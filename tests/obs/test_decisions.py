"""Unit tests for the bounded-memory structured decision log."""

from __future__ import annotations

import pytest

from repro.obs.decisions import DecisionLog


def test_record_and_query():
    log = DecisionLog()
    log.record("frame-gated", "frame-filter-rejected", frame_id=7, subject="q1", model="m")
    log.record("frame-deferred", "stride-skip", frame_id=8)
    assert len(log) == 2
    assert log.count("frame-gated") == 1
    assert log.count("frame-gated", "frame-filter-rejected") == 1
    assert log.count("frame-gated", "other") == 0
    (gated,) = log.records("frame-gated")
    assert gated.frame_id == 7
    assert gated.subject == "q1"
    assert dict(gated.attrs) == {"model": "m"}


def test_records_filter_by_reason():
    log = DecisionLog()
    log.record("reid-unmatched", "empty-gallery")
    log.record("reid-unmatched", "below-threshold")
    assert len(log.records("reid-unmatched")) == 2
    assert len(log.records("reid-unmatched", "below-threshold")) == 1
    assert log.records("nope") == []


def test_summary_groups_by_action_then_reason():
    log = DecisionLog()
    for _ in range(3):
        log.record("frame-gated", "frame-filter-rejected")
    log.record("stride-raised", "stable-streak")
    assert log.summary() == {
        "frame-gated": {"frame-filter-rejected": 3},
        "stride-raised": {"stable-streak": 1},
    }


def test_bounded_memory_keeps_counts():
    log = DecisionLog(max_records=4)
    for i in range(10):
        log.record("frame-deferred", "stride-skip", frame_id=i)
    # the deque trims to the most recent records...
    assert len(log) == 4
    assert [d.frame_id for d in log.records()] == [6, 7, 8, 9]
    assert log.evicted == 6
    # ...but the counters never forget (100% accounting survives eviction)
    assert log.count("frame-deferred") == 10


def test_as_dict():
    log = DecisionLog()
    log.record("stream-retired", "answer-determined", frame_id=3, subject="q", extra=1)
    d = log.records()[0].as_dict()
    assert d == {
        "action": "stream-retired",
        "reason": "answer-determined",
        "frame_id": 3,
        "subject": "q",
        "extra": 1,
    }


def test_max_records_validation():
    with pytest.raises(ValueError):
        DecisionLog(max_records=0)
