"""Tests for accuracy metrics and runtime reporting."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.accuracy import PrecisionRecall, f1_score, f1_score_sets, precision_recall_f1
from repro.metrics.runtime import RuntimeReport, speedup


class TestPrecisionRecallF1:
    def test_perfect_predictions(self):
        assert f1_score([True, False, True], [True, False, True]) == 1.0

    def test_all_wrong(self):
        assert f1_score([True, True], [False, False]) == 0.0

    def test_counts(self):
        stats = precision_recall_f1([True, True, False, False], [True, False, True, False])
        assert (stats.true_positives, stats.false_positives, stats.false_negatives) == (1, 1, 1)
        assert stats.precision == 0.5 and stats.recall == 0.5 and stats.f1 == 0.5

    def test_none_predictions_dropped(self):
        stats = precision_recall_f1([None, True], [True, True])
        assert stats.true_positives == 1 and stats.false_negatives == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            precision_recall_f1([True], [True, False])

    def test_empty_counts_zero(self):
        assert PrecisionRecall(0, 0, 0).f1 == 0.0

    @given(st.lists(st.booleans(), min_size=1, max_size=50))
    def test_f1_bounded(self, labels):
        predictions = [not l for l in labels[: len(labels) // 2]] + labels[len(labels) // 2 :]
        assert 0.0 <= f1_score(predictions, labels) <= 1.0


class TestF1Sets:
    def test_identical_sets(self):
        assert f1_score_sets({1, 2, 3}, {1, 2, 3}) == 1.0

    def test_disjoint_sets(self):
        assert f1_score_sets({1, 2}, {3, 4}) == 0.0

    def test_both_empty_is_perfect(self):
        assert f1_score_sets(set(), set()) == 1.0

    def test_partial_overlap(self):
        assert 0 < f1_score_sets({1, 2, 3}, {2, 3, 4}) < 1

    @given(st.sets(st.integers(0, 100)), st.sets(st.integers(0, 100)))
    def test_symmetry(self, a, b):
        assert f1_score_sets(a, b) == pytest.approx(f1_score_sets(b, a))


class TestRuntimeReport:
    def test_speedup(self):
        assert speedup(100, 10) == 10.0
        assert speedup(100, 0) == float("inf")

    def test_report_rendering(self):
        report = RuntimeReport("Demo", unit="ms")
        report.add_row(system="VQPy", runtime=12.345)
        report.add_row(system="EVA", runtime=100.0, note="slower")
        text = report.to_text()
        assert "Demo" in text and "VQPy" in text and "12.35" in text and "note" in text

    def test_empty_report(self):
        assert "(no data)" in RuntimeReport("Empty").to_text()

    def test_columns_union_preserves_order(self):
        report = RuntimeReport("t")
        report.add_row(a=1)
        report.add_row(b=2, a=3)
        assert report.columns() == ["a", "b"]

    def test_columns_is_linear_in_cells(self):
        # 60 rows x 40 distinct columns: first-appearance order, no O(n^2) scan
        report = RuntimeReport("wide")
        for i in range(60):
            report.add_row(**{f"c{j}": i for j in range(40)})
        cols = report.columns()
        assert cols == [f"c{j}" for j in range(40)]

    def test_fmt_renders_none_and_bools_explicitly(self):
        report = RuntimeReport("t")
        report.add_row(chosen=True, cost=None, other=False)
        text = report.to_text()
        assert "true" in text and "false" in text
        assert "-" in text  # None renders as a dash, not "None"
        assert "None" not in text
