"""Tests for the predicate expression AST."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import QueryDefinitionError
from repro.frontend.expr import (
    And,
    Comparison,
    Environment,
    Literal,
    MISSING,
    Not,
    Or,
    PropertyRef,
    TRUE,
    compute,
    conjunction,
    predicate,
    split_by_variable,
)
from repro.frontend.builtin import Car, Person


class FakeState:
    def __init__(self, values):
        self.values = values

    def get(self, name):
        return self.values.get(name)


def env_for(var, **values):
    return Environment({var: FakeState(values)})


class TestComparisons:
    def test_equality_predicate(self):
        car = Car("c")
        pred = car.color == "red"
        assert isinstance(pred, Comparison)
        assert pred.evaluate(env_for(car, color="red"))
        assert not pred.evaluate(env_for(car, color="blue"))

    def test_numeric_comparisons(self):
        car = Car("c")
        assert (car.score > 0.5).evaluate(env_for(car, score=0.9))
        assert not (car.score >= 0.5).evaluate(env_for(car, score=0.4))
        assert (car.score < 1).evaluate(env_for(car, score=0.4))
        assert (car.score <= 0.4).evaluate(env_for(car, score=0.4))
        assert (car.score != 1).evaluate(env_for(car, score=0.4))

    def test_missing_property_is_false(self):
        car = Car("c")
        assert not (car.color == "red").evaluate(env_for(car))
        assert not (car.color == "red").evaluate(Environment({}))

    def test_type_error_is_false(self):
        car = Car("c")
        assert not (car.score > 0.5).evaluate(env_for(car, score="not a number"))

    def test_string_helpers(self):
        car = Car("c")
        assert car.license_plate.endswith("45").evaluate(env_for(car, license_plate="ABC1245"))
        assert car.license_plate.startswith("ABC").evaluate(env_for(car, license_plate="ABC1245"))
        assert car.license_plate.contains("C12").evaluate(env_for(car, license_plate="ABC1245"))
        assert car.license_plate.matches(r"\d{2}45$").evaluate(env_for(car, license_plate="ABC1245"))
        assert car.color.in_(["red", "blue"]).evaluate(env_for(car, color="red"))

    def test_ref_vs_ref_comparison(self):
        car = Car("c")
        person = Person("p")
        pred = car.frame_id == person.frame_id
        env = Environment({car: FakeState({"frame_id": 3}), person: FakeState({"frame_id": 3})})
        assert pred.evaluate(env)


class TestLogicalConnectives:
    def test_and_or_not(self):
        car = Car("c")
        pred = (car.color == "red") & ((car.score > 0.5) | ~(car.vehicle_type == "suv"))
        assert pred.evaluate(env_for(car, color="red", score=0.3, vehicle_type="sedan"))
        assert not pred.evaluate(env_for(car, color="blue", score=0.9, vehicle_type="sedan"))

    def test_and_flattens(self):
        car = Car("c")
        pred = (car.score > 0.1) & (car.score > 0.2) & (car.score > 0.3)
        assert len(pred.conjuncts()) == 3

    def test_python_bool_context_rejected(self):
        car = Car("c")
        with pytest.raises(QueryDefinitionError):
            bool(car.color == "red")
        with pytest.raises(QueryDefinitionError):
            if car.score > 0.5:  # noqa: PLR1722 - intentionally wrong usage
                pass

    def test_and_with_non_predicate_rejected(self):
        car = Car("c")
        with pytest.raises(QueryDefinitionError):
            (car.color == "red") & 5

    def test_true_predicate(self):
        assert TRUE.evaluate(Environment({})) is True
        assert TRUE.conjuncts() == []
        assert conjunction([]) is TRUE
        assert conjunction([TRUE, TRUE]) is TRUE


class TestDerivedAndFunctionPredicates:
    def test_compute_over_two_variables(self):
        car, person = Car("c"), Person("p")
        from repro.common.geometry import BBox

        distance = compute(lambda a, b: a.center_distance(b), car.bbox, person.bbox, label="distance")
        pred = distance < 50
        env = Environment(
            {
                car: FakeState({"bbox": BBox.from_center(0, 0, 10, 10)}),
                person: FakeState({"bbox": BBox.from_center(30, 40, 10, 10)}),
            }
        )
        assert not pred.evaluate(env)
        assert (distance < 51).evaluate(env)

    def test_missing_input_propagates(self):
        car, person = Car("c"), Person("p")
        derived = compute(lambda a, b: a + b, car.score, person.score)
        env = Environment({car: FakeState({"score": 1.0})})
        assert derived.resolve(env) is MISSING

    def test_predicate_helper(self):
        car = Car("c")
        pred = predicate(lambda color: color.startswith("r"), car.color)
        assert pred.evaluate(env_for(car, color="red"))
        assert not pred.evaluate(env_for(car, color="blue"))


class TestAnalysis:
    def test_variables_and_required_properties(self):
        car, person = Car("c"), Person("p")
        pred = (car.color == "red") & (person.action == "crossing") & (car.score > 0.5)
        assert pred.variables() == {car, person}
        props = pred.required_properties()
        assert props[car] == {"color", "score"}
        assert props[person] == {"action"}

    def test_split_by_variable(self):
        car, person = Car("c"), Person("p")
        distance = compute(lambda a, b: a.center_distance(b), car.bbox, person.bbox)
        pred = (car.color == "red") & (person.score > 0.5) & (distance < 100)
        per_var, multi = split_by_variable(pred)
        assert len(per_var[car]) == 1
        assert len(per_var[person]) == 1
        assert len(multi) == 1

    def test_or_required_properties_merged(self):
        car = Car("c")
        pred = (car.color == "red") | (car.vehicle_type == "suv")
        assert pred.required_properties()[car] == {"color", "vehicle_type"}

    def test_not_passthrough(self):
        car = Car("c")
        pred = ~(car.color == "red")
        assert pred.variables() == {car}
        assert pred.evaluate(env_for(car, color="blue"))

    def test_repr_readable(self):
        car = Car("mycar")
        text = repr((car.color == "red") & (car.score > 0.5))
        assert "mycar.color" in text and "red" in text
