"""Tests for Query definitions, aggregates, and higher-order composition rules."""

import pytest

from repro.common.errors import QueryDefinitionError
from repro.frontend.builtin import Ball, Car, Person, PersonBallInteraction
from repro.frontend.expr import TRUE
from repro.frontend.higher_order import (
    CollisionQuery,
    DurationQuery,
    SequentialQuery,
    SpatialQuery,
    SpeedQuery,
    TemporalQuery,
)
from repro.frontend.query import Aggregate, Query, average_per_frame, collect, count_distinct, max_per_frame


class RedCarQuery(Query):
    def __init__(self):
        self.car = Car("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.bbox)


class TurnCountQuery(Query):
    """Figure 7: count vehicles turning right over the whole video."""

    def __init__(self):
        self.car = Car("car")

    def video_constraint(self):
        return (self.car.score > 0.5) & (self.car.direction == "turn_right")

    def video_output(self):
        return (count_distinct(self.car.track_id, label="num_turning"),)


class TestQueryIntrospection:
    def test_vobj_variables_discovered(self):
        query = RedCarQuery()
        assert query.vobj_variables() == [query.car]

    def test_required_properties(self):
        query = RedCarQuery()
        props = query.required_properties()[query.car]
        assert {"score", "color", "track_id", "bbox"} <= props

    def test_frame_outputs_normalised(self):
        assert len(RedCarQuery().frame_outputs()) == 2

    def test_video_level_detection(self):
        assert not RedCarQuery().is_video_level()
        assert TurnCountQuery().is_video_level()

    def test_validation_passes(self):
        RedCarQuery().validate()
        TurnCountQuery().validate()

    def test_validation_requires_vobj(self):
        class Empty(Query):
            def frame_constraint(self):
                return TRUE

        with pytest.raises(QueryDefinitionError):
            Empty().validate()

    def test_validation_requires_constraint_or_output(self):
        class NoConstraint(Query):
            def __init__(self):
                self.car = Car("c")

        with pytest.raises(QueryDefinitionError):
            NoConstraint().validate()

    def test_validation_rejects_unknown_property(self):
        class Bad(Query):
            def __init__(self):
                self.car = Car("c")

            def frame_constraint(self):
                from repro.frontend.expr import PropertyRef

                return PropertyRef(self.car, "altitude") == 3

        with pytest.raises(QueryDefinitionError):
            Bad().validate()

    def test_constraint_must_be_predicate(self):
        class Wrong(Query):
            def __init__(self):
                self.car = Car("c")

            def frame_constraint(self):
                return True

        with pytest.raises(QueryDefinitionError):
            Wrong().frame_predicate()

    def test_query_inheritance_strengthens_constraint(self):
        class RedSedanQuery(RedCarQuery):
            def frame_constraint(self):
                return super().frame_constraint() & (self.car.vehicle_type == "sedan")

        assert len(RedSedanQuery().frame_predicate().conjuncts()) == 3

    def test_relation_variables_discovered(self):
        class HitQuery(Query):
            def __init__(self):
                self.person = Person("p")
                self.ball = Ball("b")
                self.rel = PersonBallInteraction(self.person, self.ball)

            def frame_constraint(self):
                return self.rel.interaction == "hit"

        query = HitQuery()
        assert query.relation_variables() == [query.rel]
        assert set(query.vobj_variables()) == {query.person, query.ball}


class TestAggregates:
    def test_aggregate_kinds(self):
        car = Car("c")
        assert count_distinct(car.track_id).kind == "count_distinct"
        assert average_per_frame(car.track_id).kind == "average_per_frame"
        assert max_per_frame(car.track_id).kind == "max_per_frame"
        assert collect(car.license_plate).kind == "collect"

    def test_invalid_kind_rejected(self):
        with pytest.raises(QueryDefinitionError):
            Aggregate("median", Car("c").track_id)


class TestHigherOrderComposition:
    def test_spatial_query_merges_constraints(self):
        collision = CollisionQuery(Car("car"), Person("person"))
        pred = collision.frame_predicate()
        assert len(pred.conjuncts()) >= 3
        assert len(collision.vobj_variables()) == 2

    def test_spatial_accepts_vobjs_or_queries(self):
        CollisionQuery(RedCarQuery(), Person("p"))
        CollisionQuery(Car("c"), Person("p"))

    def test_rule1_spatial_rejects_higher_order(self):
        inner = CollisionQuery(Car("c"), Person("p"))
        with pytest.raises(QueryDefinitionError):
            SpatialQuery(inner, Person("p2"))

    def test_rule2_duration_accepts_basic_and_spatial(self):
        DurationQuery(RedCarQuery(), duration_s=5)
        DurationQuery(CollisionQuery(Car("c"), Person("p")), duration_frames=10)
        with pytest.raises(QueryDefinitionError):
            DurationQuery(DurationQuery(RedCarQuery(), duration_s=1), duration_s=1)

    def test_duration_requires_a_duration(self):
        with pytest.raises(QueryDefinitionError):
            DurationQuery(RedCarQuery())

    def test_duration_frames_conversion(self):
        query = DurationQuery(RedCarQuery(), duration_s=2.0)
        assert query.required_duration_frames(fps=15) == 30
        explicit = DurationQuery(RedCarQuery(), duration_frames=7)
        assert explicit.required_duration_frames(fps=15) == 7

    def test_rule3_temporal_accepts_everything(self):
        basic = RedCarQuery()
        duration = DurationQuery(RedCarQuery(), duration_s=1)
        spatial = CollisionQuery(Car("c"), Person("p"))
        temporal = TemporalQuery(basic, spatial, max_gap_s=5)
        TemporalQuery(temporal, duration, max_gap_s=5)  # nesting a TemporalQuery is allowed

    def test_temporal_gap_validation(self):
        with pytest.raises(QueryDefinitionError):
            TemporalQuery(RedCarQuery(), RedCarQuery(), max_gap_s=1, min_gap_s=2)

    def test_sequential_is_temporal(self):
        assert issubclass(SequentialQuery, TemporalQuery)

    def test_speed_query_requires_speed_property(self):
        SpeedQuery(Car("c"), min_speed=10)
        with pytest.raises(QueryDefinitionError):
            SpeedQuery(Ball("b"), min_speed=10)

    def test_hit_and_run_composition(self):
        """The Figure 8 composition builds without error."""
        car, person = Car("car"), Person("person")
        car_hit_person = CollisionQuery(car, person)
        car_run_away = SpeedQuery(Car("car2"), min_speed=12)
        hit_and_run = SequentialQuery(car_hit_person, car_run_away, max_gap_s=20)
        assert hit_and_run.is_video_level()
        assert len(hit_and_run.vobj_variables()) == 3
