"""Tests for VObj/Relation declarations, inheritance, and validation."""

import pytest

from repro.common.errors import QueryDefinitionError
from repro.frontend.builtin import Ball, Car, CloseTo, Person, PersonBallInteraction, RedCar, Vehicle
from repro.frontend.expr import PropertyRef
from repro.frontend.properties import FilterSpec, PropertySpec, frame_filter, stateful, stateless, vobj_filter
from repro.frontend.relation import Relation
from repro.frontend.vobj import Scene, VObj


class TestPropertyDecorators:
    def test_stateless_spec(self):
        spec = stateless(model="color_detect", intrinsic=True)(lambda self, image: None)
        assert spec.kind == "stateless" and spec.intrinsic and spec.model == "color_detect"
        assert spec.func is None  # model-backed bodies are declaration-only

    def test_stateful_spec(self):
        spec = stateful(inputs=("center",), history_len=5)(lambda self, centers: centers)
        assert spec.kind == "stateful" and spec.history_len == 5
        assert spec.func is not None

    def test_stateful_cannot_be_intrinsic(self):
        with pytest.raises(QueryDefinitionError):
            PropertySpec(name="x", kind="stateful", func=lambda s, v: v, intrinsic=True)

    def test_history_len_validated(self):
        with pytest.raises(QueryDefinitionError):
            PropertySpec(name="x", kind="stateful", func=lambda s, v: v, history_len=0)

    def test_property_needs_model_or_body(self):
        with pytest.raises(QueryDefinitionError):
            PropertySpec(name="x", kind="stateless")

    def test_filter_decorators(self):
        spec = vobj_filter(model="no_red_on_road")(lambda self, frame: None)
        assert isinstance(spec, FilterSpec) and spec.kind == "binary_classifier"
        spec2 = frame_filter(history=3)(lambda self, frames: True)
        assert spec2.kind == "frame_filter" and spec2.history == 3 and spec2.func is not None


class TestVObjDeclaration:
    def test_builtin_vehicle_properties(self):
        props = Vehicle.declared_properties()
        assert {"center", "color", "vehicle_type", "license_plate", "direction", "speed"} <= set(props)
        assert props["color"].intrinsic
        assert props["direction"].kind == "stateful"

    def test_inheritance_of_properties(self):
        assert set(Car.declared_properties()) == set(Vehicle.declared_properties())
        assert Car.class_names == ("car",)

    def test_redcar_registers_optimizations(self):
        assert RedCar.specialized_models == ("red_car_detector",)
        filters = RedCar.registered_filters()
        assert any(f.model == "no_red_on_road" for f in filters)
        # Inherited properties still present.
        assert "color" in RedCar.declared_properties()

    def test_unknown_dependency_rejected(self):
        with pytest.raises(QueryDefinitionError):

            class Broken(VObj):
                class_names = ("car",)

                @stateless(inputs=("nonexistent",))
                def prop(self, nonexistent):
                    return nonexistent

    def test_dependency_cycle_rejected(self):
        with pytest.raises(QueryDefinitionError):

            class Cyclic(VObj):
                class_names = ("car",)

                @stateless(inputs=("b",))
                def a(self, b):
                    return b

                @stateless(inputs=("a",))
                def b(self, a):
                    return a

    def test_dependency_order(self):
        order = Vehicle.dependency_order(["direction"])
        assert order.index("center") < order.index("direction")

    def test_requires_tracking(self):
        assert Vehicle.requires_tracking(["direction"])
        assert not Vehicle.requires_tracking(["color"])

    def test_intrinsic_properties(self):
        assert {"color", "vehicle_type", "license_plate"} <= Vehicle.intrinsic_properties()

    def test_super_vobjs(self):
        assert Vehicle in RedCar.super_vobjs()
        assert Car in RedCar.super_vobjs()

    def test_scene_vobj(self):
        assert issubclass(Scene, VObj)
        assert "time_of_day" in Scene.available_properties()


class TestVObjInstances:
    def test_attribute_access_builds_refs(self):
        car = Car("my_car")
        ref = car.color
        assert isinstance(ref, PropertyRef)
        assert ref.variable is car and ref.property_name == "color"
        assert isinstance(car.bbox, PropertyRef)

    def test_unknown_property_raises(self):
        with pytest.raises(AttributeError):
            Car("c").wingspan

    def test_var_name_default(self):
        assert Car().var_name.startswith("car")
        assert Car("explicit").var_name == "explicit"

    def test_instances_are_hashable(self):
        a, b = Car("a"), Car("b")
        assert len({a, b}) == 2


class TestRelations:
    def test_close_to_relation(self):
        rel = CloseTo(Car("c"), Person("p"))
        assert rel.subject.var_name == "c"
        assert isinstance(rel.distance, PropertyRef)
        assert isinstance(rel.is_close, PropertyRef)

    def test_relation_requires_vobj_instances(self):
        with pytest.raises(QueryDefinitionError):
            CloseTo(Car, Person("p"))

    def test_relation_unknown_property(self):
        rel = CloseTo(Car("c"), Person("p"))
        with pytest.raises(AttributeError):
            rel.nonsense

    def test_interaction_relation_model(self):
        rel = PersonBallInteraction(Person("p"), Ball("b"))
        assert type(rel).model == "upt"
        assert "interaction" in type(rel).declared_properties()
        assert "hit" in type(rel).interaction_kinds

    def test_relation_endpoint_type_constraint(self):
        class PersonOnly(Relation):
            subject_types = (Person,)

        with pytest.raises(QueryDefinitionError):
            PersonOnly(Car("c"), Ball("b"))
        PersonOnly(Person("p"), Ball("b"))  # accepted

    def test_relation_inheritance(self):
        class TightCloseTo(CloseTo):
            threshold = 10.0

        assert "is_close" in TightCloseTo.declared_properties()
