"""Index write-path safety under thread-pooled multi-camera scans.

A :class:`MultiCameraSession` shares ONE :class:`VideoIndexStore` across
all of its feeds, and the feeds scan concurrently on a thread pool — every
index write from every feed interleaves on the same tables.  The store's
write path is serialized by a re-entrant lock and its canonical
serialization is key-sorted, so the resulting index must be *identical*
whatever ``max_workers`` was, and identical to the bytes a serial run
produces.
"""

from __future__ import annotations

import json

import pytest

from repro.backend.planner import PlannerConfig
from repro.backend.session import MultiCameraSession
from repro.frontend.builtin import Car, Person
from repro.frontend.query import Query
from repro.videosim.multicam import CameraPlacement, handoff_scenario


class CarQuery(Query):
    def __init__(self):
        self.car = Car("car")

    def frame_constraint(self):
        return self.car.score > 0.5

    def frame_output(self):
        return (self.car.track_id,)


class PersonQuery(Query):
    def __init__(self):
        self.person = Person("person")

    def frame_constraint(self):
        return self.person.score > 0.5

    def frame_output(self):
        return (self.person.track_id,)


FOUR_FEEDS = (
    CameraPlacement("cam_a", fps=10, start_offset_s=0.0),
    CameraPlacement("cam_b", fps=15, start_offset_s=2.0),
    CameraPlacement("cam_c", fps=10, start_offset_s=4.0),
    CameraPlacement("cam_d", fps=20, start_offset_s=6.0),
)


@pytest.fixture(scope="module")
def scenario():
    return handoff_scenario(
        cameras=FOUR_FEEDS,
        num_entities=3,
        background_pedestrians_per_minute=4.0,
        seed=0,
    )


def run_and_dump(scenario, max_workers):
    session = MultiCameraSession(
        scenario.videos,
        config=PlannerConfig(
            profile_plans=False,
            enable_cross_camera_reid=True,
            enable_video_index=True,
        ),
        max_workers=max_workers,
        start_offsets=scenario.start_offsets,
    )
    results = session.execute_many([CarQuery(), PersonQuery()])
    return session, results, session.index_store.to_json()


class TestConcurrentWrites:
    def test_index_is_identical_across_worker_counts(self, scenario):
        _, serial_results, serial_dump = run_and_dump(scenario, max_workers=1)
        for workers in (2, 4):
            _, results, dump = run_and_dump(scenario, max_workers=workers)
            assert dump == serial_dump, f"index diverged at max_workers={workers}"
            for got, want in zip(results, serial_results):
                assert got.per_camera == want.per_camera

    def test_concurrent_cold_scan_is_complete(self, scenario):
        # The interleaved writes must not lose entries: every feed's scanned
        # frames are present for its detector.
        session, _, dump = run_and_dump(scenario, max_workers=4)
        payload = json.loads(dump)
        for name, feed in session.sessions.items():
            from repro.index.schema import video_key

            kinds = payload["videos"][video_key(feed.video)]["kinds"]
            frames = set()
            for bucket in kinds["detections"].values():
                frames.update(int(f) for f in bucket["entries"])
            scanned = feed.last_context.scan_stats.frames_scanned
            seeded = len(feed.last_context.seeded_frames)
            assert len(frames) == scanned - seeded, f"feed {name} lost index writes"

    def test_warm_multicamera_run_skips_every_detector(self, scenario):
        session, cold_results, _ = run_and_dump(scenario, max_workers=4)
        cold_calls = {
            name: feed.last_context.clock.calls.get("yolox", 0)
            for name, feed in session.sessions.items()
        }
        assert sum(cold_calls.values()) > 0
        warm_results = session.execute_many([CarQuery(), PersonQuery()])
        for name, feed in session.sessions.items():
            assert feed.last_context.clock.calls.get("yolox", 0) == 0, name
        # The warm pass is cheaper (that is the point) but semantically
        # identical: same matches, same events, per feed and per query.
        for got, want in zip(warm_results, cold_results):
            assert set(got.per_camera) == set(want.per_camera)
            for name in got.per_camera:
                g, w = got.per_camera[name], want.per_camera[name]
                assert (g.matched_frames, g.matches, g.events, g.aggregates) == (
                    w.matched_frames,
                    w.matches,
                    w.events,
                    w.aggregates,
                ), name
