"""Tests for the persistent video index (:mod:`repro.index`).

Covers the store primitives (versioned lookup/record, canonical
serialization, corruption recovery), the session-level contract (a re-query
over an indexed video serves detector outputs / filter verdicts / re-id
embeddings from the index with identical results, a stale model version
falls back to live invocation, seeded frames are never persisted, the
disabled path is byte-identical), the planner's consumption of observed
per-video statistics (``enable_video_index`` replacing the
``stride_stable_fraction`` prior), and the observability surface
(``index_hits``/``index_misses`` metrics, decisions, explain section).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.backend.planner import Planner, PlannerConfig
from repro.backend.session import MultiCameraSession, QuerySession
from repro.common.config import IndexConfig
from repro.common.geometry import BBox
from repro.frontend.builtin import Car, Person, RedCar
from repro.frontend.query import Query
from repro.index.schema import detection_key, model_version, video_key
from repro.index.store import VideoIndexStore
from repro.models.base import Detection
from repro.models.zoo import default_zoo
from repro.videosim.datasets import camera_clip
from repro.videosim.multicam import CameraPlacement, handoff_scenario


class RedCarQuery(Query):
    def __init__(self):
        self.car = Car("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.bbox)


class PersonQuery(Query):
    def __init__(self):
        self.person = Person("person")

    def frame_constraint(self):
        return self.person.score > 0.5

    def frame_output(self):
        return (self.person.track_id,)


class CarQuery(Query):
    def __init__(self):
        self.car = Car("car")

    def frame_constraint(self):
        return self.car.score > 0.5

    def frame_output(self):
        return (self.car.track_id,)


class GatedRedCarQuery(Query):
    """RedCar VObj: carries the registered ``no_red_on_road`` frame filter."""

    def __init__(self):
        self.car = RedCar("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.bbox)


@pytest.fixture(scope="module")
def video():
    return camera_clip("banff", duration_s=10, seed=1)


def indexed_config(**kw):
    return PlannerConfig(profile_plans=False, enable_video_index=True, **kw)


def detector_calls(session, model="yolox"):
    return session.last_context.clock.calls.get(model, 0)


def result_signature(result):
    return (result.matched_frames, result.matches, result.events, result.aggregates)


# ---------------------------------------------------------------------------
# Store primitives
# ---------------------------------------------------------------------------


class TestVideoIndexStore:
    def test_lookup_record_round_trip(self):
        store = VideoIndexStore()
        assert store.lookup("v", "detections", "yolox", "D@0", "3") == ("miss", None)
        store.record("v", "detections", "yolox", "D@0", "3", [1, 2])
        assert store.lookup("v", "detections", "yolox", "D@0", "3") == ("hit", [1, 2])

    def test_version_mismatch_is_stale_and_superseded_on_write(self):
        store = VideoIndexStore()
        store.record("v", "detections", "yolox", "D@0", "3", "old")
        assert store.lookup("v", "detections", "yolox", "D@1", "3")[0] == "stale"
        # A fresh-version write replaces the whole stale bucket.
        store.record("v", "detections", "yolox", "D@1", "4", "new")
        assert store.lookup("v", "detections", "yolox", "D@1", "3") == ("miss", None)
        assert store.lookup("v", "detections", "yolox", "D@1", "4") == ("hit", "new")

    def test_canonical_json_is_write_order_independent(self):
        a, b = VideoIndexStore(), VideoIndexStore()
        a.record("v", "filter", "m1", "V", "1", True)
        a.record("v", "filter", "m2", "V", "2", False)
        b.record("v", "filter", "m2", "V", "2", False)
        b.record("v", "filter", "m1", "V", "1", True)
        assert a.to_json() == b.to_json()

    def test_save_and_reload_round_trip(self, tmp_path):
        path = str(tmp_path / "index.json")
        store = VideoIndexStore(path)
        store.record("v", "detections", "yolox", "D@0", "3", [{"x": 1.5}])
        store.save()
        reloaded = VideoIndexStore(path)
        assert reloaded.to_json() == store.to_json()

    def test_corrupt_file_warns_and_starts_empty(self, tmp_path):
        path = str(tmp_path / "index.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"schema_version": 1, "videos": [truncated')
        with pytest.warns(UserWarning, match="unreadable"):
            store = VideoIndexStore(path)
        assert store.lookup("v", "detections", "yolox", "D@0", "0") == ("miss", None)
        # The rebuilt index saves over the corpse and reloads cleanly.
        store.record("v", "detections", "yolox", "D@0", "0", [])
        store.save()
        assert VideoIndexStore(path).lookup("v", "detections", "yolox", "D@0", "0") == ("hit", [])

    def test_wrong_schema_version_is_treated_as_corrupt(self, tmp_path):
        path = str(tmp_path / "index.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"schema_version": 999, "videos": {}}, fh)
        with pytest.warns(UserWarning, match="schema version"):
            VideoIndexStore(path)

    def test_model_version_tracks_class_and_seed(self):
        zoo0, zoo5 = default_zoo(seed=0), default_zoo(seed=5)
        assert model_version(zoo0.get("yolox")) != model_version(zoo5.get("yolox"))
        assert model_version(zoo0.get("yolox")) == model_version(default_zoo(seed=0).get("yolox"))

    def test_detection_key_is_content_addressed(self):
        det = Detection("car", BBox(1.0, 2.0, 3.0, 4.0), 0.9, frame_id=7, track_id=3)
        relabeled = det.with_track(99)
        assert detection_key(det) == detection_key(relabeled)
        moved = Detection("car", BBox(1.0, 2.0, 3.0, 4.5), 0.9, frame_id=7)
        assert detection_key(det) != detection_key(moved)


# ---------------------------------------------------------------------------
# Session-level contract
# ---------------------------------------------------------------------------


class TestRequery:
    def test_warm_requery_serves_detections_from_index(self, video):
        store = VideoIndexStore()
        cold = QuerySession(video, config=indexed_config(), index_store=store)
        cold_result = cold.execute(RedCarQuery())
        cold_calls = detector_calls(cold)
        assert cold_calls > 0
        assert cold.last_context.index.counters["written"] > 0

        warm = QuerySession(video, config=indexed_config(), index_store=store)
        warm_result = warm.execute(RedCarQuery())
        # The warm scan re-invokes the detector on (far fewer than 5% of)
        # the cold invocations — here: zero — with identical results.
        assert detector_calls(warm) <= 0.05 * cold_calls
        assert result_signature(warm_result) == result_signature(cold_result)
        counters = warm.last_context.index.counters
        assert counters["hits"] > 0 and counters["misses"] == 0

    def test_warm_requery_with_different_query_still_hits(self, video):
        store = VideoIndexStore()
        cold = QuerySession(video, config=indexed_config(), index_store=store)
        cold.execute(CarQuery())
        cold_calls = detector_calls(cold)
        # A *different* query over the same video reuses the same detector
        # results: indexing is per (video, model), not per query.
        warm = QuerySession(video, config=indexed_config(), index_store=store)
        baseline = QuerySession(video, config=PlannerConfig(profile_plans=False))
        assert result_signature(warm.execute(RedCarQuery())) == result_signature(
            baseline.execute(RedCarQuery())
        )
        assert detector_calls(warm) <= 0.05 * cold_calls

    def test_disabled_mode_is_byte_identical_and_index_free(self, video):
        plain = QuerySession(video, config=PlannerConfig(profile_plans=False))
        plain_result = plain.execute(RedCarQuery())
        assert plain.last_context.index is None
        assert plain.index_store is None
        # Enabling the index changes nothing about a cold run but the
        # persistence side effect: identical results, identical clock.
        indexed = QuerySession(video, config=indexed_config())
        indexed_result = indexed.execute(RedCarQuery())
        assert result_signature(indexed_result) == result_signature(plain_result)
        assert indexed.last_context.clock.breakdown() == plain.last_context.clock.breakdown()
        # index_config alone (switch off) creates no index objects at all.
        off = QuerySession(
            video, config=PlannerConfig(profile_plans=False, index_config=IndexConfig())
        )
        off.execute(RedCarQuery())
        assert off.last_context.index is None

    def test_stale_model_version_falls_back_to_live_invocation(self, video):
        store = VideoIndexStore()
        cold = QuerySession(video, config=indexed_config(), index_store=store)
        cold.execute(RedCarQuery())
        assert detector_calls(cold) > 0

        # A retrained zoo (new seed => new model version) must not be served
        # the old version's entries: every lookup is stale, the models run
        # live, and results match an index-free session with the same zoo.
        retrained = default_zoo(seed=5)
        stale = QuerySession(
            video, zoo=retrained, config=indexed_config(enable_tracing=True), index_store=store
        )
        stale_result = stale.execute(RedCarQuery())
        assert detector_calls(stale) == detector_calls(cold)
        counters = stale.last_context.index.counters
        assert counters["stale"] > 0 and counters["hits"] == 0
        summary = stale.last_obs.decisions.summary()
        assert "model-version-mismatch" in summary.get("index-stale", {})

        reference = QuerySession(
            video, zoo=default_zoo(seed=5), config=PlannerConfig(profile_plans=False)
        )
        assert result_signature(stale_result) == result_signature(
            reference.execute(RedCarQuery())
        )

    def test_seeded_frames_are_never_persisted(self, video):
        config = indexed_config(enable_stride_sampling=True)
        store = VideoIndexStore()
        cold = QuerySession(video, config=config, index_store=store)
        cold_result = cold.execute(RedCarQuery())
        seeded = cold.last_context.seeded_frames
        assert seeded, "scenario must exercise stride interpolation"
        payload = json.loads(store.to_json())
        buckets = payload["videos"][video_key(video)]["kinds"]["detections"]
        recorded = {
            int(frame_id)
            for bucket in buckets.values()
            for frame_id in bucket["entries"]
        }
        assert recorded, "real detections must be persisted"
        assert not (recorded & seeded), "interpolation-seeded frames leaked into the index"
        # The warm stride run is still equivalent.
        warm = QuerySession(video, config=config, index_store=store)
        assert result_signature(warm.execute(RedCarQuery())) == result_signature(cold_result)

    def test_corrupted_index_file_triggers_full_rescan(self, tmp_path, video):
        path = str(tmp_path / "index.json")
        config = indexed_config(index_config=IndexConfig(path=path))
        cold = QuerySession(video, config=config)
        cold.execute(RedCarQuery())
        cold_calls = detector_calls(cold)

        with open(path, "w", encoding="utf-8") as fh:
            fh.write("not an index at all")
        with pytest.warns(UserWarning, match="unreadable"):
            rebuilt = QuerySession(video, config=config)
        rebuilt.execute(RedCarQuery())
        assert detector_calls(rebuilt) == cold_calls, "corrupt index must rescan in full"
        # ... and the rescan rebuilt the file: the next session is warm again.
        warm = QuerySession(video, config=config)
        warm.execute(RedCarQuery())
        assert detector_calls(warm) == 0


class TestGateVerdicts:
    def test_filter_verdicts_served_from_index(self, video):
        store = VideoIndexStore()
        config = indexed_config()
        cold = QuerySession(video, config=config, index_store=store)
        cold_result = cold.execute(GatedRedCarQuery())
        cold_evals = cold.last_context.scan_stats.gate_evaluations
        assert cold_evals > 0, "GatedRedCarQuery must register a frame filter"

        warm = QuerySession(video, config=config, index_store=store)
        warm_result = warm.execute(GatedRedCarQuery())
        assert warm.last_context.scan_stats.gate_evaluations == 0
        assert result_signature(warm_result) == result_signature(cold_result)


class TestEmbeddings:
    @pytest.fixture(scope="class")
    def scenario(self):
        return handoff_scenario(
            cameras=(
                CameraPlacement("cam_a", fps=10, start_offset_s=0.0),
                CameraPlacement("cam_b", fps=15, start_offset_s=3.0),
            ),
            num_entities=3,
            seed=0,
        )

    def test_reid_embeddings_reused_across_executions(self, scenario):
        config = PlannerConfig(
            profile_plans=False,
            enable_cross_camera_reid=True,
            enable_video_index=True,
        )
        session = MultiCameraSession(
            scenario.videos, config=config, start_offsets=scenario.start_offsets
        )
        first = session.execute(CarQuery())
        cold_reid = session.link_clock.calls.get("reid_feature", 0)
        assert cold_reid > 0, "cold linking must embed at least one track"

        second = session.execute(CarQuery())
        # The second execution re-links from indexed embeddings: zero re-id
        # model invocations, identical identity assignment.
        assert session.link_clock.calls.get("reid_feature", 0) == 0
        assert second.global_tracks() == first.global_tracks()


# ---------------------------------------------------------------------------
# Planner consumption of observed statistics
# ---------------------------------------------------------------------------


class TestObservedStats:
    def test_stride_scan_records_stable_fraction_and_planner_consumes_it(self, video):
        store = VideoIndexStore()
        config = indexed_config(enable_stride_sampling=True)
        session = QuerySession(video, config=config, index_store=store)
        session.execute(RedCarQuery())

        observed = store.observed_stable_fraction(video_key(video), min_frames=1)
        assert observed is not None and 0.0 < observed <= 1.0
        stats = session.last_context.scan_stats
        assert observed == stats.frames_interpolated / stats.frames_scanned
        # The session's planner sees the same number through its store...
        assert session.planner._observed_stable_fraction(video) == observed
        # ...and an index-free planner keeps the configured prior.
        assert Planner(session.zoo, config)._observed_stable_fraction(video) is None

    def test_observed_fraction_shifts_the_stride_discount(self, video):
        store = VideoIndexStore()
        config = indexed_config(enable_stride_sampling=True, stride_stable_fraction=0.5)
        session = QuerySession(video, config=config, index_store=store)
        session.execute(RedCarQuery())
        observed = store.observed_stable_fraction(video_key(video), min_frames=1)
        assert observed != config.stride_stable_fraction

        planner = session.planner
        plan = planner.plan(RedCarQuery(), video)
        breakdown = {name: 100.0 for name in plan.detector_models()}
        with_prior = planner._stride_detector_discount_ms(plan, breakdown, video=None)
        with_observed = planner._stride_detector_discount_ms(plan, breakdown, video)
        assert with_observed == pytest.approx(with_prior * observed / 0.5)

    def test_unindexed_scan_never_records_stable_fraction(self, video):
        # Without stride sampling there is no stability observation: the
        # prior must survive (a recorded 0.0 would zero the discount).
        store = VideoIndexStore()
        session = QuerySession(video, config=indexed_config(), index_store=store)
        session.execute(RedCarQuery())
        assert store.observed_stable_fraction(video_key(video), min_frames=1) is None
        assert "frames_scanned" in store.video_stats(video_key(video))

    def test_noisy_short_observations_are_distrusted(self, video):
        store = VideoIndexStore()
        config = indexed_config(
            enable_stride_sampling=True,
            index_config=IndexConfig(stats_min_frames=10_000),
        )
        session = QuerySession(video, config=config, index_store=store)
        session.execute(RedCarQuery())
        assert session.planner._observed_stable_fraction(video) is None


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


class TestObservability:
    def test_metrics_decisions_and_explain_section(self, video):
        store = VideoIndexStore()
        config = indexed_config(enable_tracing=True)
        cold = QuerySession(video, config=config, index_store=store)
        cold.execute(RedCarQuery())
        cold_counters = cold.last_obs.metrics.snapshot()["counters"]
        assert any(key.startswith("index_misses") for key in cold_counters)
        assert any(key.startswith("index_writes") for key in cold_counters)

        warm = QuerySession(video, config=config, index_store=store)
        result = warm.execute(RedCarQuery())
        warm_counters = warm.last_obs.metrics.snapshot()["counters"]
        assert any(key.startswith("index_hits") for key in warm_counters)
        summary = warm.last_obs.decisions.summary()
        assert "index-hit" in summary
        text = result.explain()
        assert "Index:" in text and "hits=" in text

    def test_disabled_explain_has_no_index_section(self, video):
        session = QuerySession(
            video, config=PlannerConfig(profile_plans=False, enable_tracing=True)
        )
        result = session.execute(RedCarQuery())
        assert "Index:" not in result.explain()
