"""Tests for the CVIP-like pipeline and the MLLM baseline workflow."""

import pytest

from repro.baselines.handcrafted import CVIPPipeline
from repro.baselines.mllm_baseline import MLLMBaseline, split_into_clips
from repro.models.mllm import VIDEOCHAT_7B, VideoChatSim
from repro.videosim.datasets import CityFlowQuery, cityflow_clip, vcoco_images


@pytest.fixture(scope="module")
def cityflow_small():
    return cityflow_clip(0, seed=2, duration_s=15, tracks_per_clip=4)


class TestCVIPPipeline:
    def test_runtime_is_query_independent(self, zoo, cityflow_small):
        cvip = CVIPPipeline(zoo)
        q_green = CityFlowQuery("Q1", "", "green", "sedan", "go_straight")
        q_black = CityFlowQuery("Q4", "", "black", "sedan", "go_straight")
        r_green = cvip.run(cityflow_small, q_green)
        r_black = cvip.run(cityflow_small, q_black)
        # CVIP computes everything regardless of the query: costs are ~equal.
        assert r_green.total_ms == pytest.approx(r_black.total_ms, rel=0.01)

    def test_per_frame_costs_recorded(self, zoo, cityflow_small):
        result = CVIPPipeline(zoo).run(cityflow_small, CityFlowQuery("Q1", "", "red", "sedan", "go_straight"))
        assert len(result.per_frame_ms) == cityflow_small.num_frames
        assert result.total_ms == pytest.approx(sum(result.per_frame_ms), rel=0.05)

    def test_matches_tracks_with_right_attributes(self, zoo, cityflow_small):
        # Pick a query matching an actual track in the clip.
        tracks = [o for o in cityflow_small.objects if o.class_name in ("car", "bus", "truck")]
        target = tracks[0]
        query = CityFlowQuery(
            "QX", "", target.attributes["color"], target.attributes["vehicle_type"], target.attributes["direction"]
        )
        result = CVIPPipeline(zoo).run(cityflow_small, query)
        assert result.aggregates["matched_tracks"] >= 1

    def test_cost_breakdown_includes_all_models(self, zoo, cityflow_small):
        result = CVIPPipeline(zoo).run(cityflow_small, CityFlowQuery("Q1", "", "red", "sedan", "go_straight"))
        for account in ("color_detect", "type_detect", "reid_feature", "direction_classifier"):
            assert account in result.cost_breakdown


class TestMLLMBaseline:
    def test_split_into_clips_covers_video(self, auburn_short):
        clips = split_into_clips(auburn_short, clip_seconds=1.0)
        assert sum(c.num_frames for c in clips) == auburn_short.num_frames
        # Clip frames map back onto the parent's frames.
        assert clips[1].frame(0).frame_id == clips[0].num_frames

    def test_boolean_over_video(self, auburn_short):
        baseline = MLLMBaseline(VideoChatSim(VIDEOCHAT_7B, seed=0))
        answers = baseline.boolean_over_video(auburn_short, "Q3", lambda clip: True)
        assert len(answers.answers) == len(split_into_clips(auburn_short))
        assert answers.ms_per_frame > 0
        assert answers.precompute_ms_per_frame > 0

    def test_count_over_video_records_truths(self, auburn_short):
        baseline = MLLMBaseline(VideoChatSim(VIDEOCHAT_7B, seed=0))
        answers = baseline.count_over_video(auburn_short, "Q4", lambda clip: 2.0)
        assert all(t == 2.0 for t in answers.truths)

    def test_boolean_over_images(self):
        images = vcoco_images(num_images=20, seed=1)
        baseline = MLLMBaseline(VideoChatSim(VIDEOCHAT_7B, seed=0))
        answers = baseline.boolean_over_images(images, "Q6", lambda img: False)
        assert len(answers.answers) == 20
