"""Tests for the mini SQL engine: parser, execution, and EVA workloads."""

import pytest

from repro.baselines.sqlengine.engine import SQLEngine
from repro.baselines.sqlengine.parser import (
    CreateFunction,
    CreateTableAs,
    DropTable,
    LoadVideo,
    Select,
    parse_statement,
    parse_statements,
)
from repro.baselines.sqlengine.relational import ColumnRef, FuncCall, SQLComparison, SQLLiteral, Table
from repro.baselines.sqlengine.workloads import EVA_QUERIES, run_eva_query
from repro.common.clock import SimClock
from repro.common.errors import SQLEngineError


class TestParser:
    def test_load_video(self):
        stmt = parse_statement("LOAD VIDEO 'video.mp4' INTO MyVideo")
        assert isinstance(stmt, LoadVideo)
        assert stmt.path == "video.mp4" and stmt.table == "MyVideo"

    def test_create_function(self):
        stmt = parse_statement("CREATE FUNCTION Color IMPL './color.py'")
        assert isinstance(stmt, CreateFunction) and stmt.name == "Color"

    def test_select_with_lateral(self):
        stmt = parse_statement(
            "SELECT id, Color(Crop(data, bbox)), T.iid FROM MyVideo "
            "JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker)) AS T(iid, label, bbox, score)"
        )
        assert isinstance(stmt, Select)
        assert stmt.lateral is not None
        assert stmt.lateral.detector == "Yolo"
        assert stmt.lateral.columns == ["iid", "label", "bbox", "score"]
        assert isinstance(stmt.items[1], FuncCall)
        assert isinstance(stmt.items[1].args[0], FuncCall)  # nested Crop(...)

    def test_select_with_join_and_where(self):
        stmt = parse_statement(
            "SELECT a.id FROM A JOIN B ON a.id = b.added_id AND a.iid = b.cur_iid "
            "WHERE a.label = 'car' AND Velocity(a.bbox, b.last_bbox) > 1.5"
        )
        assert stmt.joins[0].table == "B"
        assert stmt.joins[0].on == [("a.id", "b.added_id"), ("a.iid", "b.cur_iid")]
        assert len(stmt.where) == 2
        assert isinstance(stmt.where[1], SQLComparison)
        assert isinstance(stmt.where[1].right, SQLLiteral) and stmt.where[1].right.value == 1.5

    def test_create_table_as(self):
        stmt = parse_statement("CREATE TABLE T AS SELECT id FROM MyVideo")
        assert isinstance(stmt, CreateTableAs) and stmt.name == "T"

    def test_drop_statements(self):
        stmt = parse_statement("DROP TABLE IF EXISTS T")
        assert isinstance(stmt, DropTable) and stmt.if_exists
        assert parse_statement("DROP FUNCTION IF EXISTS Color").if_exists

    def test_script_splitting(self):
        script = "LOAD VIDEO 'v' INTO A; SELECT id FROM A;"
        assert len(parse_statements(script)) == 2

    def test_invalid_statement(self):
        with pytest.raises(SQLEngineError):
            parse_statement("UPSERT INTO T VALUES (1)")
        with pytest.raises(SQLEngineError):
            parse_statement("SELECT FROM")

    def test_appendix_scripts_parse(self):
        for name, sql in EVA_QUERIES.items():
            statements = parse_statements(sql.format(speed_threshold=10.0))
            assert statements, name


class TestEngineExecution:
    def _engine(self, zoo, video):
        engine = SQLEngine(zoo, clock=SimClock())
        engine.register_video("video.mp4", video)
        return engine

    def test_load_requires_registered_video(self, zoo):
        engine = SQLEngine(zoo)
        with pytest.raises(SQLEngineError):
            engine.execute("LOAD VIDEO 'missing.mp4' INTO MyVideo;")

    def test_unknown_function_rejected(self, zoo, tiny_video):
        engine = self._engine(zoo, tiny_video)
        engine.execute("LOAD VIDEO 'video.mp4' INTO MyVideo;")
        with pytest.raises(SQLEngineError):
            engine.execute("SELECT Teleport(id) FROM MyVideo;")

    def test_create_function_binds_known_impl(self, zoo, tiny_video):
        engine = self._engine(zoo, tiny_video)
        engine.execute("CREATE FUNCTION Color IMPL './color.py';")
        assert "color" in engine.functions
        with pytest.raises(SQLEngineError):
            engine.execute("CREATE FUNCTION Quantum IMPL './q.py';")

    def test_extract_object_produces_rows(self, zoo, tiny_video):
        engine = self._engine(zoo, tiny_video)
        rows = engine.execute(
            "LOAD VIDEO 'video.mp4' INTO MyVideo;"
            "SELECT id, T.label, T.iid FROM MyVideo "
            "JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker)) AS T(iid, label, bbox, score);"
        )
        assert rows
        assert {r["label"] for r in rows} <= {"car", "person", "ball", "bus", "truck", "bicycle", "bag"}
        assert all(isinstance(r["iid"], int) for r in rows)
        assert all(not k.startswith("_") for r in rows for k in r)

    def test_where_filters_rows(self, zoo, tiny_video):
        engine = self._engine(zoo, tiny_video)
        rows = engine.execute(
            "LOAD VIDEO 'video.mp4' INTO MyVideo;"
            "CREATE TABLE T AS SELECT id, T.label, T.score FROM MyVideo "
            "JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker)) AS T(iid, label, bbox, score);"
            "SELECT id FROM T WHERE label = 'car';"
        )
        assert rows
        baseline = engine.execute("SELECT id FROM T;")
        assert len(rows) < len(baseline)

    def test_udf_overhead_charged_per_row(self, zoo, tiny_video):
        engine = self._engine(zoo, tiny_video)
        engine.execute(
            "LOAD VIDEO 'video.mp4' INTO MyVideo;"
            "CREATE FUNCTION Color IMPL './color.py';"
            "CREATE TABLE T AS SELECT id, Color(Crop(data, bbox)), T.label FROM MyVideo "
            "JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker)) AS T(iid, label, bbox, score);"
        )
        breakdown = engine.clock.breakdown()
        assert breakdown.get("sql:udf_overhead:Color", 0) > 0
        assert breakdown.get("sql:udf_overhead:Crop", 0) > 0
        assert breakdown.get("color_detect", 0) > 0

    def test_drop_table(self, zoo, tiny_video):
        engine = self._engine(zoo, tiny_video)
        engine.execute("LOAD VIDEO 'video.mp4' INTO MyVideo; CREATE TABLE T AS SELECT id FROM MyVideo;")
        engine.execute("DROP TABLE T;")
        with pytest.raises(SQLEngineError):
            engine.execute("DROP TABLE T;")
        engine.execute("DROP TABLE IF EXISTS T;")  # no error with IF EXISTS

    def test_table_visible_columns(self):
        table = Table("t", ["a", "_hidden"], [{"a": 1, "_hidden": 2}])
        assert table.visible_columns() == ["a"]
        assert table.num_rows == 1

    def test_column_resolution_error(self, zoo):
        with pytest.raises(SQLEngineError):
            ColumnRef("nope").evaluate({"a": 1}, None)


class TestEvaWorkloads:
    def test_red_car_query_matches_ground_truth(self, zoo, tiny_video):
        result = run_eva_query("red_car", tiny_video, zoo)
        # The tiny video's car is red, so most frames where it is visible match.
        assert len(result.matched_frames) > 10
        assert result.total_ms > 0

    def test_speeding_query_on_slow_car_matches_little(self, zoo, tiny_video):
        result = run_eva_query("speeding_car", tiny_video, zoo, speed_threshold=10.0)
        assert len(result.matched_frames) <= 3  # the tiny car moves ~6 px/frame

    def test_red_speeding_more_expensive_than_parts(self, zoo, tiny_video):
        red = run_eva_query("red_car", tiny_video, zoo)
        speeding = run_eva_query("speeding_car", tiny_video, zoo)
        both = run_eva_query("red_speeding_car", tiny_video, zoo)
        assert both.total_ms > max(red.total_ms, speeding.total_ms)

    def test_refined_variant_cheaper_than_unrefined(self, zoo, banff_clip):
        unrefined = run_eva_query("red_speeding_car", banff_clip, zoo)
        refined = run_eva_query("red_speeding_car_refined", banff_clip, zoo)
        assert refined.total_ms < unrefined.total_ms

    def test_unknown_query_name(self, zoo, tiny_video):
        with pytest.raises(KeyError):
            run_eva_query("blue_moon", tiny_video, zoo)
