"""Shared fixtures: small synthetic videos, a model zoo, planner configs."""

from __future__ import annotations

import pytest

from repro.backend.planner import PlannerConfig
from repro.common.config import VideoSpec
from repro.models.zoo import default_zoo
from repro.videosim.datasets import auburn_clip, camera_clip, suspect_scenario_clip
from repro.videosim.entities import ObjectSpec
from repro.videosim.trajectory import LinearTrajectory, StationaryTrajectory
from repro.videosim.video import SyntheticVideo


@pytest.fixture(scope="session")
def zoo():
    return default_zoo(seed=0)


@pytest.fixture(scope="session")
def banff_clip():
    """A short clip from the Banff camera preset (~10 seconds)."""
    return camera_clip("banff", duration_s=10, seed=1)


@pytest.fixture(scope="session")
def jackson_clip():
    """A short clip from the Jackson camera preset (~15 seconds)."""
    return camera_clip("jackson", duration_s=15, seed=2)


@pytest.fixture(scope="session")
def auburn_short():
    return auburn_clip(duration_s=20, seed=3)


@pytest.fixture(scope="session")
def suspect_clip():
    return suspect_scenario_clip(duration_s=40, seed=3)


@pytest.fixture
def fast_config():
    """Planner config without canary profiling, for fast deterministic tests."""
    return PlannerConfig(profile_plans=False)


@pytest.fixture
def plain_config():
    """No optimizations: no reuse, no pull-up, no fusion, no filters."""
    return PlannerConfig(
        enable_lazy=False,
        enable_fusion=False,
        enable_reuse=False,
        use_registered_filters=False,
        consider_specialized=False,
        profile_plans=False,
    )


@pytest.fixture
def tiny_video():
    """A deterministic two-object video: one red car driving, one person standing."""
    spec = VideoSpec("tiny", fps=10, width=640, height=480, duration_s=5)
    car = ObjectSpec(
        object_id=1,
        class_name="car",
        trajectory=LinearTrajectory((50, 300), (6.0, 0.0)),
        size=(100, 50),
        attributes={
            "color": "red",
            "vehicle_type": "sedan",
            "license_plate": "ABC1245",
            "direction": "go_straight",
            "speeding": False,
        },
    )
    person = ObjectSpec(
        object_id=2,
        class_name="person",
        trajectory=StationaryTrajectory((400, 350)),
        size=(30, 80),
        attributes={"clothing": "jeans", "hair": "black"},
        default_action="standing",
    )
    return SyntheticVideo(spec, [car, person], seed=7)
