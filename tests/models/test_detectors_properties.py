"""Tests for simulated detectors, property models, filters, and interactions."""

import numpy as np
import pytest

from repro.common.clock import SimClock
from repro.models.detector import BinaryClassifier, GeneralObjectDetector, SpecializedDetector
from repro.models.framefilters import MotionFrameFilter, TextureFrameFilter
from repro.models.interaction import ActionClassifier, InteractionModel
from repro.models.properties import (
    ColorModel,
    DirectionEstimator,
    FeatureVectorModel,
    LicensePlateModel,
    SpeedEstimator,
    VehicleTypeModel,
)
from repro.common.geometry import BBox


class TestGeneralDetector:
    def test_detects_most_objects(self, tiny_video):
        detector = GeneralObjectDetector(miss_rate=0.0, false_positive_rate=0.0)
        frame = tiny_video.frame(0)
        detections = detector.detect(frame)
        assert {d.class_name for d in detections} == {"car", "person"}
        assert all(d.gt_object_id is not None for d in detections)

    def test_results_deterministic(self, tiny_video):
        detector = GeneralObjectDetector(seed=5)
        frame = tiny_video.frame(3)
        a = detector.detect(frame)
        b = detector.detect(frame)
        assert [(d.class_name, d.bbox.as_tuple()) for d in a] == [(d.class_name, d.bbox.as_tuple()) for d in b]

    def test_misses_when_rate_is_one(self, tiny_video):
        detector = GeneralObjectDetector(miss_rate=1.0, false_positive_rate=0.0)
        assert detector.detect(tiny_video.frame(0)) == []

    def test_class_restriction(self, tiny_video):
        detector = GeneralObjectDetector(classes=("person",), miss_rate=0.0, false_positive_rate=0.0)
        detections = detector.detect(tiny_video.frame(0))
        assert {d.class_name for d in detections} == {"person"}

    def test_charges_clock(self, tiny_video):
        clock = SimClock()
        GeneralObjectDetector(name="yolox").detect(tiny_video.frame(0), clock)
        assert clock.by_account["yolox"] >= 30.0

    def test_boxes_clipped_to_frame(self, tiny_video):
        detector = GeneralObjectDetector(bbox_sigma=10.0, miss_rate=0.0)
        for frame_id in range(0, tiny_video.num_frames, 7):
            for d in detector.detect(tiny_video.frame(frame_id)):
                assert d.bbox.x1 >= 0 and d.bbox.y1 >= 0
                assert d.bbox.x2 <= 640 and d.bbox.y2 <= 480


class TestSpecializedAndBinary:
    def test_specialized_only_sees_target_attribute(self, tiny_video):
        red = SpecializedDetector("red_car", "car", attribute="color", attribute_value="red", miss_rate=0.0, false_positive_rate=0.0)
        blue = SpecializedDetector("blue_car", "car", attribute="color", attribute_value="blue", miss_rate=0.0, false_positive_rate=0.0)
        frame = tiny_video.frame(0)
        assert len(red.detect(frame)) == 1
        assert blue.detect(frame) == []

    def test_specialized_cheaper_than_general(self):
        general = GeneralObjectDetector()
        special = SpecializedDetector("s", "car")
        assert special.cost_profile.cost(5) < general.cost_profile.cost(5)

    def test_binary_classifier_mostly_correct(self, tiny_video):
        clf = BinaryClassifier("red_presence", "car", attribute="color", attribute_value="red", false_negative_rate=0.0, false_positive_rate=0.0)
        assert clf.predict(tiny_video.frame(0)) is True
        clf_green = BinaryClassifier("green_presence", "car", attribute="color", attribute_value="green", false_negative_rate=0.0, false_positive_rate=0.0)
        assert clf_green.predict(tiny_video.frame(0)) is False


class TestPropertyModels:
    def _detection(self, tiny_video, object_id=1):
        frame = tiny_video.frame(0)
        inst = frame.instance_by_id(object_id)
        from repro.models.base import Detection

        return Detection(inst.class_name, inst.bbox, 0.9, 0, gt_object_id=object_id), frame

    def test_color_model_reads_truth(self, tiny_video):
        detection, frame = self._detection(tiny_video)
        assert ColorModel(error_rate=0.0).predict(detection, frame) == "red"

    def test_color_model_consistent_per_object(self, tiny_video):
        detection, frame = self._detection(tiny_video)
        model = ColorModel(error_rate=1.0)
        assert model.predict(detection, frame) == model.predict(detection, frame)
        assert model.predict(detection, frame) != "red"

    def test_type_and_plate_models(self, tiny_video):
        detection, frame = self._detection(tiny_video)
        assert VehicleTypeModel(error_rate=0.0).predict(detection, frame) == "sedan"
        assert LicensePlateModel(error_rate=0.0).predict(detection, frame) == "ABC1245"

    def test_plate_corruption_garbles_one_char(self, tiny_video):
        detection, frame = self._detection(tiny_video)
        garbled = LicensePlateModel(error_rate=1.0).predict(detection, frame)
        assert garbled != "ABC1245" and len(garbled) == len("ABC1245")

    def test_false_positive_gets_fallback(self, tiny_video):
        from repro.models.base import Detection

        frame = tiny_video.frame(0)
        fp = Detection("car", BBox(0, 0, 50, 50), 0.5, 0, gt_object_id=None)
        assert ColorModel(error_rate=0.0).predict(fp, frame) == "unknown"

    def test_batch_matches_individual(self, tiny_video):
        detection, frame = self._detection(tiny_video)
        model = ColorModel(error_rate=0.0)
        assert model.predict_batch([detection], frame) == [model.predict(detection, frame)]

    def test_feature_vector_similarity(self, tiny_video):
        det1, frame = self._detection(tiny_video, 1)
        det2, _ = self._detection(tiny_video, 2)
        model = FeatureVectorModel()
        e1 = model.predict(det1, frame)
        e1_again = model.predict(det1, tiny_video.frame(1) if False else frame)
        e2 = model.predict(det2, frame)
        assert FeatureVectorModel.similarity(e1, model.embed_object(1)) > 0.9
        assert FeatureVectorModel.similarity(e1, e2) < 0.5
        assert np.linalg.norm(e1) == pytest.approx(1.0)
        assert FeatureVectorModel.similarity(e1, e1_again) > 0.99

    def test_direction_estimator(self):
        model = DirectionEstimator()
        straight = [(x, 100.0) for x in range(0, 50, 5)]
        assert model.predict(straight) == "go_straight"
        assert model.predict([(0, 0)]) == "unknown"
        assert model.predict([(0, 0), (0.1, 0), (0.15, 0)]) == "stopped"
        turning = [(0, 0), (10, 0), (20, 2), (28, 10), (32, 20)]
        assert model.predict(turning) == "turn_right"

    def test_speed_estimator(self):
        model = SpeedEstimator()
        boxes = [BBox.from_center(0, 0, 10, 10), BBox.from_center(3, 4, 10, 10)]
        assert model.predict(boxes) == pytest.approx(5.0)
        assert model.predict(boxes[:1]) == 0.0


class TestInteractionModels:
    def test_interaction_detected(self, suspect_clip):
        # Find a frame where the scripted get_into interaction is active.
        event = next(e for e in suspect_clip.events if e.kind == "get_into")
        frame = suspect_clip.frame(event.start_frame + 1)
        from repro.models.base import Detection

        person_inst = frame.instance_by_id(event.subject_id)
        car_inst = frame.instance_by_id(event.object_id)
        person = Detection("person", person_inst.bbox, 0.9, frame.frame_id, gt_object_id=event.subject_id)
        car = Detection("car", car_inst.bbox, 0.9, frame.frame_id, gt_object_id=event.object_id)
        model = InteractionModel(false_negative_rate=0.0, false_positive_rate=0.0)
        preds = model.predict([person], [car], frame)
        assert any(p.kind == "get_into" for p in preds)
        # No interaction predicted in the reverse direction.
        assert model.predict([car], [person], frame) == []

    def test_action_classifier_reads_truth(self, tiny_video):
        from repro.models.base import Detection

        frame = tiny_video.frame(0)
        inst = frame.instance_by_id(2)
        detection = Detection("person", inst.bbox, 0.9, 0, gt_object_id=2)
        assert ActionClassifier(error_rate=0.0).predict(detection, frame) == "standing"


class TestFrameFilters:
    def test_motion_filter_keeps_moving_frames(self, tiny_video):
        filt = MotionFrameFilter(error_rate=0.0)
        filt.keep(tiny_video.frame(0))
        assert filt.keep(tiny_video.frame(1)) is True  # the car moves 6 px/frame

    def test_motion_filter_drops_static_scene(self):
        from repro.common.config import VideoSpec
        from repro.videosim.entities import ObjectSpec
        from repro.videosim.trajectory import StationaryTrajectory
        from repro.videosim.video import SyntheticVideo

        spec = VideoSpec("static", 10, 640, 480, 2)
        video = SyntheticVideo(spec, [ObjectSpec(1, "car", StationaryTrajectory((100, 100)), (50, 30))])
        filt = MotionFrameFilter(error_rate=0.0)
        filt.keep(video.frame(0))
        assert filt.keep(video.frame(1)) is False

    def test_texture_filter(self, tiny_video):
        keep_car = TextureFrameFilter("t", "car", false_negative_rate=0.0, false_positive_rate=0.0)
        keep_ball = TextureFrameFilter("t2", "ball", false_negative_rate=0.0, false_positive_rate=0.0)
        assert keep_car.keep(tiny_video.frame(0)) is True
        assert keep_ball.keep(tiny_video.frame(0)) is False
