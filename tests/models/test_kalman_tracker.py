"""Tests for the Kalman filter and the two trackers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.common.geometry import BBox
from repro.models.base import Detection
from repro.models.kalman import KalmanBoxFilter, bbox_to_z, z_to_bbox
from repro.models.tracker import IoUTracker, KalmanTracker


def det(x, y, frame_id=0, cls="car", w=60, h=40, score=0.9):
    return Detection(cls, BBox.from_center(x, y, w, h), score, frame_id, gt_object_id=None)


class TestKalmanFilter:
    def test_bbox_z_roundtrip(self):
        box = BBox(10, 20, 70, 60)
        recovered = z_to_bbox(bbox_to_z(box))
        assert recovered.center == pytest.approx(box.center)
        assert recovered.area == pytest.approx(box.area, rel=1e-6)

    def test_stationary_prediction_stays_close(self):
        box = BBox.from_center(100, 100, 40, 40)
        kf = KalmanBoxFilter(box)
        for _ in range(5):
            kf.predict()
            kf.update(box)
        assert kf.bbox.center == pytest.approx((100, 100), abs=1.0)

    def test_moving_object_velocity_learned(self):
        kf = KalmanBoxFilter(BBox.from_center(0, 100, 40, 40))
        for step in range(1, 20):
            kf.predict()
            kf.update(BBox.from_center(5.0 * step, 100, 40, 40))
        predicted = kf.predict()
        assert predicted.center[0] == pytest.approx(100, abs=5.0)

    def test_scale_never_negative(self):
        kf = KalmanBoxFilter(BBox.from_center(0, 0, 10, 10))
        kf.x[6] = -100.0  # force a large negative scale velocity
        box = kf.predict()
        assert box.area > 0


class TestKalmanTracker:
    def test_track_ids_stable_across_frames(self):
        tracker = KalmanTracker()
        first = tracker.update([det(100, 100, 0), det(400, 300, 0)])
        ids = {d.bbox.center[0]: d.track_id for d in first}
        second = tracker.update([det(104, 100, 1), det(404, 300, 1)])
        for d in second:
            original = min(ids, key=lambda cx: abs(cx - d.bbox.center[0]))
            assert d.track_id == ids[original]

    def test_new_object_gets_new_track(self):
        tracker = KalmanTracker()
        tracker.update([det(100, 100, 0)])
        out = tracker.update([det(103, 100, 1), det(600, 400, 1)])
        assert len({d.track_id for d in out}) == 2

    def test_track_retired_after_misses(self):
        tracker = KalmanTracker(max_misses=2)
        tracker.update([det(100, 100, 0)])
        for frame in range(1, 5):
            tracker.update([])
        assert tracker.active_tracks == []

    def test_output_preserves_input_order(self):
        tracker = KalmanTracker()
        tracker.update([det(100, 100, 0), det(400, 300, 0)])
        out = tracker.update([det(400, 302, 1), det(102, 100, 1)])
        assert [d.bbox.center[1] for d in out] == [302, 100]

    def test_charges_clock(self):
        clock = SimClock()
        KalmanTracker().update([det(1, 1)], clock)
        assert clock.by_account["kalman_tracker"] > 0

    def test_reset_clears_state(self):
        tracker = KalmanTracker()
        tracker.update([det(100, 100, 0)])
        tracker.reset()
        assert tracker.active_tracks == []

    def test_track_history_accessible(self):
        tracker = KalmanTracker()
        out = tracker.update([det(100, 100, 0)])
        tid = out[0].track_id
        tracker.update([det(105, 100, 1)])
        track = tracker.track(tid)
        assert track.length == 2
        assert len(track.bbox_history(5)) == 2

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.floats(50, 600), st.floats(50, 400)), min_size=0, max_size=6))
    def test_every_detection_gets_a_track(self, centers):
        tracker = KalmanTracker()
        detections = [det(x, y) for x, y in centers]
        out = tracker.update(detections)
        assert len(out) == len(detections)
        assert all(d.track_id is not None for d in out)


class TestIoUTracker:
    def test_greedy_association(self):
        tracker = IoUTracker()
        first = tracker.update([det(100, 100, 0)])
        second = tracker.update([det(102, 100, 1)])
        assert second[0].track_id == first[0].track_id

    def test_disjoint_objects_get_distinct_tracks(self):
        tracker = IoUTracker()
        out = tracker.update([det(100, 100, 0), det(500, 400, 0)])
        assert len({d.track_id for d in out}) == 2

    def test_track_retired_after_misses(self):
        tracker = IoUTracker(max_misses=1)
        tracker.update([det(100, 100, 0)])
        tracker.update([])
        tracker.update([])
        assert tracker.active_tracks == []

    def test_output_preserves_input_order(self):
        tracker = IoUTracker()
        tracker.update([det(100, 100, 0), det(400, 300, 0)])
        out = tracker.update([det(401, 300, 1), det(101, 100, 1)])
        assert [round(d.bbox.center[0]) for d in out] == [401, 101]
