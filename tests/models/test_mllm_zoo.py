"""Tests for the VideoChat simulator and the model zoo registry."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ModelError
from repro.models.base import ModelRegistry
from repro.models.detector import GeneralObjectDetector
from repro.models.mllm import VIDEOCHAT_13B, VIDEOCHAT_7B, VideoChatSim
from repro.models.zoo import ModelZoo, default_zoo
from repro.videosim.datasets import camera_clip, vcoco_images


class TestVideoChatSim:
    def test_memory_grows_with_clip_length(self):
        sim = VideoChatSim(VIDEOCHAT_7B)
        short = camera_clip("jackson", duration_s=2, seed=0)
        long = camera_clip("jackson", duration_s=60, seed=0)
        assert sim.clip_memory_gb(long) > sim.clip_memory_gb(short)

    def test_long_clip_does_not_fit_40gb(self):
        sim = VideoChatSim(VIDEOCHAT_7B, gpu_memory_gb=40.0)
        long = camera_clip("jackson", duration_s=60, seed=0)
        assert not sim.fits(long)
        with pytest.raises(ModelError):
            sim.precompute(long)

    def test_low_resource_mode_fits_more(self):
        clip = camera_clip("jackson", duration_s=30, seed=0)
        full = VideoChatSim(VIDEOCHAT_13B, gpu_memory_gb=40.0, low_resource=False)
        low = VideoChatSim(VIDEOCHAT_13B, gpu_memory_gb=40.0, low_resource=True)
        assert low.total_memory_gb(clip) < full.total_memory_gb(clip)

    def test_must_precompute_before_answering(self):
        sim = VideoChatSim(VIDEOCHAT_7B)
        with pytest.raises(ModelError):
            sim.answer_boolean("Q1", True)

    def test_precompute_charges_embedding_cost(self):
        sim = VideoChatSim(VIDEOCHAT_7B)
        clip = camera_clip("banff", duration_s=1, seed=0)
        clock = SimClock()
        sim.precompute(clip, clock)
        assert clock.elapsed_ms == pytest.approx(VIDEOCHAT_7B.embed_ms_per_frame * clip.num_frames)

    def test_boolean_answers_weakly_track_truth(self):
        sim = VideoChatSim(VIDEOCHAT_7B, seed=1)
        yes_when_true = 0
        yes_when_false = 0
        trials = 200
        for i in range(trials):
            clip = camera_clip("banff", duration_s=1, seed=i)
            sim.precompute(clip)
            if sim.answer_boolean(f"q{i}", True):
                yes_when_true += 1
            sim.precompute(clip)
            if sim.answer_boolean(f"qf{i}", False):
                yes_when_false += 1
        assert yes_when_true > yes_when_false

    def test_count_answers_inflated(self):
        sim = VideoChatSim(VIDEOCHAT_7B, seed=2)
        clip = camera_clip("banff", duration_s=1, seed=3)
        sim.precompute(clip)
        answers = []
        for i in range(100):
            sim._loaded_clip = clip
            a = sim.answer_count(f"c{i}", truth=1.0)
            if a is not None:
                answers.append(a)
        assert answers and sum(answers) / len(answers) > 1.5

    def test_image_answering_charges_per_image(self):
        sim = VideoChatSim(VIDEOCHAT_7B, seed=0)
        image = vcoco_images(num_images=1, seed=0)[0]
        clock = SimClock()
        sim.answer_image_boolean("Q6", image, True, clock)
        assert clock.elapsed_ms == pytest.approx(VIDEOCHAT_7B.image_ms_per_frame)


class TestModelRegistryAndZoo:
    def test_register_and_create(self):
        registry = ModelRegistry()
        registry.register("det", lambda: GeneralObjectDetector(), kind="detector")
        assert "det" in registry
        assert isinstance(registry.create("det"), GeneralObjectDetector)
        assert registry.metadata("det")["kind"] == "detector"

    def test_unknown_model_raises(self):
        registry = ModelRegistry()
        with pytest.raises(ModelError):
            registry.create("nope")
        with pytest.raises(ModelError):
            registry.metadata("nope")

    def test_non_callable_factory_rejected(self):
        with pytest.raises(ModelError):
            ModelRegistry().register("bad", factory=42)

    def test_default_zoo_has_paper_models(self, zoo):
        for name in ("yolox", "yolov8m", "color_detect", "license_plate", "upt", "kalman_tracker", "norfair_tracker", "red_car_detector", "no_red_on_road", "dataset_tracks", "direction_classifier"):
            assert name in zoo, name

    def test_zoo_instance_caching(self, zoo):
        a = zoo.get("yolox")
        b = zoo.get("yolox")
        c = zoo.get("yolox", fresh=True)
        assert a is b
        assert c is not a

    def test_zoo_iteration_sorted(self, zoo):
        names = list(zoo)
        assert names == sorted(names)
