"""Tests for the single-pass streaming executor (query compilation, reuse)."""

from collections import Counter

import pytest

from repro.backend.executor import extract_events
from repro.backend.results import Event, MatchRecord, QueryResult
from repro.backend.session import QuerySession
from repro.backend.streaming import OnlineEventGrouper, QueryStream, TemporalStream
from repro.common.config import VideoSpec
from repro.frontend.builtin import Car, Person
from repro.frontend.higher_order import DurationQuery, SequentialQuery
from repro.frontend.query import Query
from repro.models.detector import GeneralObjectDetector
from repro.videosim.entities import ObjectSpec
from repro.videosim.trajectory import LinearTrajectory, StationaryTrajectory
from repro.videosim.video import SyntheticVideo


class RedCarQuery(Query):
    def __init__(self):
        self.car = Car("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.bbox)


class PersonQuery(Query):
    def __init__(self):
        self.person = Person("person")

    def frame_constraint(self):
        return self.person.score > 0.5

    def frame_output(self):
        return (self.person.track_id,)


class UntrackedPersonQuery(Query):
    """Only builtin properties, so the plan carries no tracker."""

    def __init__(self):
        self.person = Person("person")

    def frame_constraint(self):
        return self.person.score > 0.4

    def frame_output(self):
        return (self.person.bbox,)


def mixed_batch():
    return [
        RedCarQuery(),
        DurationQuery(RedCarQuery(), duration_s=1.0),
        SequentialQuery(RedCarQuery(), PersonQuery(), max_gap_s=10),
    ]


def spy_on_detect(monkeypatch):
    """Count invocations of the (shared) detector model per (model, frame)."""
    calls = Counter()
    original = GeneralObjectDetector.detect

    def spy(self, frame, clock=None):
        calls[(self.name, frame.frame_id)] += 1
        return original(self, frame, clock)

    monkeypatch.setattr(GeneralObjectDetector, "detect", spy)
    return calls


class TestSinglePassExecution:
    def test_mixed_batch_invokes_detector_once_per_model_frame(
        self, tiny_video, zoo, fast_config, monkeypatch
    ):
        """Regression: composite queries in execute_many must not re-pay detection.

        The seed executed Duration/Temporal compositions through separate
        post-scan execute() calls; with the per-frame caches already
        released, every composite re-ran the detector over the whole video.
        """
        calls = spy_on_detect(monkeypatch)
        session = QuerySession(tiny_video, zoo=zoo, config=fast_config)
        session.execute_many(mixed_batch())
        assert calls, "spy never saw the detector"
        assert max(calls.values()) == 1

    def test_mixed_batch_scans_the_video_once(self, tiny_video, zoo, fast_config):
        session = QuerySession(tiny_video, zoo=zoo, config=fast_config)
        session.execute_many(mixed_batch())
        # Every decoded frame charges the video_reader account exactly once.
        assert session.last_context.clock.calls["video_reader"] == tiny_video.num_frames

    def test_single_temporal_query_scans_once(self, tiny_video, zoo, fast_config):
        """The seed ran one scan per temporal sub-query even in execute()."""
        session = QuerySession(tiny_video, zoo=zoo, config=fast_config)
        session.execute(SequentialQuery(RedCarQuery(), PersonQuery(), max_gap_s=10))
        assert session.last_context.clock.calls["video_reader"] == tiny_video.num_frames

    def test_batched_composite_matches_standalone_execution(self, tiny_video, zoo, fast_config):
        duration = lambda: DurationQuery(RedCarQuery(), duration_s=1.0)
        standalone = QuerySession(tiny_video, zoo=zoo, config=fast_config).execute(duration())
        session = QuerySession(tiny_video, zoo=zoo, config=fast_config)
        batched = session.execute_many([RedCarQuery(), duration()])[1]
        assert batched.events == standalone.events
        assert batched.matched_frames == standalone.matched_frames
        assert batched.aggregates["num_events"] == standalone.aggregates["num_events"]

    def test_duration_events_match_offline_extraction(self, tiny_video, zoo, fast_config):
        query = DurationQuery(RedCarQuery(), duration_s=1.0)
        result = QuerySession(tiny_video, zoo=zoo, config=fast_config).execute(query)
        required = query.required_duration_frames(tiny_video.fps)
        assert result.events == extract_events(
            result, max_gap=query.max_gap_frames, min_length=required
        )

    def test_shared_batch_is_cheaper_than_individual(self, tiny_video, zoo, fast_config):
        individual = sum(
            QuerySession(tiny_video, zoo=zoo, config=fast_config).execute(q).total_ms
            for q in mixed_batch()
        )
        session = QuerySession(tiny_video, zoo=zoo, config=fast_config)
        shared = sum(r.total_ms for r in session.execute_many(mixed_batch()))
        assert shared < individual


class TestUntrackedSignatures:
    @pytest.fixture
    def two_person_video(self):
        spec = VideoSpec("two_person", fps=10, width=640, height=480, duration_s=4)
        people = [
            ObjectSpec(
                object_id=i,
                class_name="person",
                trajectory=StationaryTrajectory((120 + 300 * i, 240)),
                size=(42, 90),
                default_action="standing",
            )
            for i in (0, 1)
        ]
        return SyntheticVideo(spec, people, seed=3)

    def test_untracked_objects_keep_distinct_signatures(
        self, two_person_video, zoo, fast_config
    ):
        """Regression: every untracked object collapsed into one None signature."""
        session = QuerySession(two_person_video, zoo=zoo, config=fast_config)
        query = UntrackedPersonQuery()
        assert session.plan(query).count_kind("object_tracker") == 0
        result = session.execute(query)
        assert result.matched_frames
        records = result.matches[result.matched_frames[0]]
        assert len(records) == 2
        assert len({r.signature for r in records}) == 2
        # Two persistent objects -> two events, not one merged blob.
        assert len(extract_events(result)) == 2
        # Positional fallback identities are not reported as track ids.
        assert result.distinct_tracks() == set()


class _StubStream(QueryStream):
    def __init__(self, result):
        self.result = result

    def plan_streams(self):
        return []

    def observe_frame(self, frame_id):
        pass

    def finalize(self, video, ctx):
        return self.result


def _stub_result(name, per_frame_ms, events):
    result = QueryResult(query_name=name)
    result.per_frame_ms = per_frame_ms
    result.num_frames_processed = len(per_frame_ms)
    result.events = events
    return result


class TestTemporalStream:
    def test_per_frame_ms_padded_not_truncated(self):
        """Regression: zip() silently dropped the longer sub-result's tail."""
        first = _stub_result("a", [1.0] * 10, [Event(0, 2, signature=(("a", 1),))])
        second = _stub_result("b", [2.0] * 6, [Event(5, 7, signature=(("b", 2),))])
        stream = TemporalStream("t", _StubStream(first), _StubStream(second), 0, 10)
        result = stream.finalize(None, None)
        assert len(result.per_frame_ms) == 10
        assert result.per_frame_ms[:6] == [3.0] * 6
        assert result.per_frame_ms[6:] == [1.0] * 4
        assert result.num_frames_processed == 10

    def test_paired_event_includes_gap_frames(self):
        """Regression: intersecting with sub-query matches dropped the frames
        between the first event's end and the second event's start."""
        first = _stub_result("a", [1.0] * 10, [Event(0, 2, signature=(("a", 1),))])
        second = _stub_result("b", [1.0] * 10, [Event(6, 8, signature=(("b", 2),))])
        stream = TemporalStream("t", _StubStream(first), _StubStream(second), 0, 10)
        result = stream.finalize(None, None)
        assert result.aggregates["num_event_pairs"] == 1
        assert result.matched_frames == list(range(0, 9))  # 3..5 are gap frames

    def test_out_of_window_events_do_not_pair(self):
        first = _stub_result("a", [1.0] * 10, [Event(0, 2, signature=(("a", 1),))])
        second = _stub_result("b", [1.0] * 10, [Event(9, 9, signature=(("b", 2),))])
        stream = TemporalStream("t", _StubStream(first), _StubStream(second), 0, 5)
        result = stream.finalize(None, None)
        assert result.events == []
        assert result.matched_frames == []

    def test_scripted_two_phase_video_pairs_across_the_gap(self, zoo, fast_config):
        """A car leaves, then a person appears later: the pair spans the gap."""
        spec = VideoSpec("two_phase", fps=10, width=640, height=480, duration_s=5)
        car = ObjectSpec(
            object_id=1,
            class_name="car",
            trajectory=LinearTrajectory((100, 240), (2.0, 0.0)),
            size=(100, 50),
            enter_frame=0,
            exit_frame=14,
            attributes={"color": "red", "vehicle_type": "sedan", "license_plate": "XYZ0045"},
        )
        person = ObjectSpec(
            object_id=2,
            class_name="person",
            trajectory=StationaryTrajectory((400, 300)),
            size=(42, 90),
            enter_frame=30,
            exit_frame=44,
            default_action="standing",
        )
        video = SyntheticVideo(spec, [car, person], seed=5)
        query = SequentialQuery(RedCarQuery(), PersonQuery(), max_gap_s=3.0)
        result = QuerySession(video, zoo=zoo, config=fast_config).execute(query)
        assert len(result.events) == 1
        event = result.events[0]
        # The reported range is contiguous: it includes the empty gap frames
        # between the car's exit and the person's entrance.
        assert result.matched_frames == list(range(event.start_frame, event.end_frame + 1))
        assert event.start_frame <= 14 < 30 <= event.end_frame


class TestOnlineEventGrouper:
    def test_streaming_matches_offline_extraction(self):
        frames_by_signature = {
            (("car", 1),): [1, 2, 3, 9, 10, 11, 30],
            (("car", 2),): [2, 4, 6, 8, 25],
        }
        observations = {}
        for signature, frames in frames_by_signature.items():
            for frame_id in frames:
                observations.setdefault(frame_id, []).append(signature)

        grouper = OnlineEventGrouper(max_gap=3, min_length=2)
        for frame_id in range(0, 40):
            grouper.observe(frame_id, observations.get(frame_id, ()))
        online = grouper.finish()

        result = QueryResult(query_name="t")
        for frame_id, signatures in observations.items():
            result.matches[frame_id] = [
                MatchRecord(frame_id=frame_id, binding=s) for s in signatures
            ]
        assert online == extract_events(result, max_gap=3, min_length=2)

    def test_events_close_during_the_stream(self):
        grouper = OnlineEventGrouper(max_gap=2, min_length=1)
        grouper.observe(0, [(("car", 1),)])
        grouper.observe(1, [(("car", 1),)])
        for frame_id in range(2, 5):
            grouper.observe(frame_id, ())
        # The run expired mid-stream without waiting for finish().
        assert grouper._closed == [Event(0, 1, signature=(("car", 1),))]

    def test_finish_is_idempotent(self):
        grouper = OnlineEventGrouper()
        grouper.observe(0, [(("car", 1),)])
        assert grouper.finish() == grouper.finish() == [Event(0, 0, signature=(("car", 1),))]
