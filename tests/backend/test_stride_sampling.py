"""Tests for adaptive frame-stride sampling with tracker interpolation.

Covers the stride controller's raise/reset policy, the interpolated fill of
skipped frames, the gap re-scan on prediction disagreement (event boundaries
stay frame-accurate), the detector-invocation budget, the off-switch
result-identity guarantee, the honesty of ``Event.skipped_frames`` when
gating and stride sampling both skip frames, the ``ScanStats`` round-trip,
and the gate/stride-aware planner cost model.
"""

from __future__ import annotations

import pytest

from repro.backend.planner import Planner, PlannerConfig
from repro.backend.scheduler import ScanStats
from repro.backend.session import QuerySession
from repro.common.config import StrideConfig, VideoSpec
from repro.frontend.builtin import Car, Person, RedCar
from repro.frontend.higher_order import DurationQuery, SequentialQuery
from repro.frontend.properties import vobj_filter
from repro.frontend.query import Query
from repro.models.kalman import KalmanBoxFilter
from repro.models.tracker import KalmanTracker, Track
from repro.models.base import Detection
from repro.common.geometry import BBox
from repro.videosim.entities import ObjectSpec
from repro.videosim.trajectory import LinearTrajectory, StationaryTrajectory
from repro.videosim.video import SyntheticVideo


class RedCarQuery(Query):
    def __init__(self):
        self.car = Car("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.bbox)


class GatedRedCarQuery(RedCarQuery):
    """RedCar VObj: carries the registered ``no_red_on_road`` frame filter."""

    def __init__(self):
        self.car = RedCar("car")


class PersonQuery(Query):
    def __init__(self):
        self.person = Person("person")

    def frame_constraint(self):
        return self.person.score > 0.5

    def frame_output(self):
        return (self.person.track_id,)


def sampling_config(**kw) -> PlannerConfig:
    return PlannerConfig(profile_plans=False, enable_stride_sampling=True, **kw)


@pytest.fixture
def off_config():
    """The PR-2 scheduler: gating + early exit, no stride sampling."""
    return PlannerConfig(profile_plans=False)


@pytest.fixture(scope="module")
def stable_video():
    """Two red cars drifting linearly for the whole clip: fully predictable."""
    spec = VideoSpec("stable", fps=10, width=640, height=480, duration_s=40)
    cars = [
        ObjectSpec(
            object_id=i + 1,
            class_name="car",
            trajectory=LinearTrajectory((30 + 150 * i, 300), (0.8, 0.0)),
            size=(100, 50),
            attributes={"color": "red", "vehicle_type": "sedan"},
        )
        for i in range(2)
    ]
    return SyntheticVideo(spec, cars, seed=3)


@pytest.fixture(scope="module")
def phase_change_video():
    """A stable car, then a person popping in mid-clip (a track birth).

    The birth lands inside a raised-stride gap, so sampling must detect the
    disagreement at the next sampled frame and re-scan the gap to recover
    the exact event boundary.
    """
    spec = VideoSpec("phase_change", fps=10, width=640, height=480, duration_s=30)
    car = ObjectSpec(
        object_id=1,
        class_name="car",
        trajectory=LinearTrajectory((30, 300), (0.8, 0.0)),
        size=(100, 50),
        attributes={"color": "red", "vehicle_type": "sedan"},
    )
    person = ObjectSpec(
        object_id=2,
        class_name="person",
        trajectory=StationaryTrajectory((420, 350)),
        size=(30, 80),
        enter_frame=157,
        exit_frame=220,
        default_action="standing",
    )
    return SyntheticVideo(spec, [car, person], seed=7)


def detector_calls(session: QuerySession) -> int:
    return session.last_context.clock.calls.get("yolox", 0)


class TestStrideSampling:
    def test_stable_scene_cuts_detector_invocations(self, stable_video, zoo, off_config):
        on = QuerySession(stable_video, zoo=zoo, config=sampling_config())
        result_on = on.execute(RedCarQuery())
        off = QuerySession(stable_video, zoo=zoo, config=off_config)
        result_off = off.execute(RedCarQuery())

        assert detector_calls(on) * 2 <= detector_calls(off)
        stats = on.last_scan_stats
        assert stats["peak_stride"] > 1
        assert stats["frames_interpolated"] > 0
        # Interpolation on a stable scene is lossless for the match set.
        assert result_on.matched_frames == result_off.matched_frames

    def test_stride_rises_and_caps_at_max(self, stable_video, zoo):
        session = QuerySession(stable_video, zoo=zoo, config=sampling_config(max_stride=4))
        session.execute(RedCarQuery())
        stats = session.last_scan_stats
        assert stats["peak_stride"] == 4
        assert stats["stride_raises"] >= 2  # 1 -> 2 -> 4

    def test_budget_never_exceeds_stride_one(self, phase_change_video, zoo, off_config):
        """The CI invariant: sampling may only ever *save* detector calls."""
        on = QuerySession(phase_change_video, zoo=zoo, config=sampling_config())
        on.execute_many([RedCarQuery(), PersonQuery()])
        off = QuerySession(phase_change_video, zoo=zoo, config=off_config)
        off.execute_many([RedCarQuery(), PersonQuery()])
        assert detector_calls(on) <= detector_calls(off)

    def test_track_birth_triggers_rescan_with_exact_boundaries(
        self, phase_change_video, zoo, off_config
    ):
        """A mid-gap birth must not blur the event start: the gap is re-scanned."""
        query = lambda: DurationQuery(PersonQuery(), duration_s=2.0)
        on = QuerySession(phase_change_video, zoo=zoo, config=sampling_config())
        result_on = on.execute(query())
        off = QuerySession(phase_change_video, zoo=zoo, config=off_config)
        result_off = off.execute(query())

        stats = on.last_scan_stats
        assert stats["frames_rescanned"] > 0
        assert stats["stride_resets"] > 0
        # Track *ids* may renumber (false positives on sampled-out frames
        # never birth tracks), but every event boundary must be exact.
        ranges = lambda r: [(e.start_frame, e.end_frame) for e in r.events]
        assert ranges(result_on) == ranges(result_off)

    def test_untracked_streams_disable_sampling(self, stable_video, zoo):
        """A plan without a tracker has no identities to interpolate."""

        class UntrackedQuery(Query):
            def __init__(self):
                self.car = Car("car")

            def frame_constraint(self):
                return self.car.score > 0.5

            def frame_output(self):
                return (self.car.bbox,)

        config = sampling_config(enable_reuse=False)
        session = QuerySession(stable_video, zoo=zoo, config=config)
        session.execute(UntrackedQuery())
        stats = session.last_scan_stats
        assert stats["frames_deferred"] == 0
        assert stats["peak_stride"] == 1

    def test_sampling_off_is_byte_identical_to_pr2(self, phase_change_video, zoo, off_config):
        """enable_stride_sampling=False must not perturb any result field."""
        batch = lambda: [
            RedCarQuery(),
            PersonQuery(),
            DurationQuery(RedCarQuery(), duration_s=2.0),
            SequentialQuery(RedCarQuery(), PersonQuery(), max_gap_s=5),
        ]
        explicit_off = PlannerConfig(profile_plans=False, enable_stride_sampling=False)
        a = QuerySession(phase_change_video, zoo=zoo, config=explicit_off).execute_many(batch())
        b = QuerySession(phase_change_video, zoo=zoo, config=off_config).execute_many(batch())
        for res_a, res_b in zip(a, b):
            assert res_a == res_b  # full dataclass equality, every field

    def test_early_exit_composes_with_sampling(self, zoo, off_config):
        """An exists() query still stops at its determining frame mid-gap."""
        spec = VideoSpec("late_car", fps=10, width=640, height=480, duration_s=30)
        car = ObjectSpec(
            object_id=1,
            class_name="car",
            trajectory=StationaryTrajectory((100, 300)),
            size=(100, 50),
            enter_frame=41,
            exit_frame=290,
            attributes={"color": "red", "vehicle_type": "sedan"},
        )
        video = SyntheticVideo(spec, [car], seed=11)
        on = QuerySession(video, zoo=zoo, config=sampling_config())
        result_on = on.execute(RedCarQuery().exists())
        off = QuerySession(video, zoo=zoo, config=off_config)
        result_off = off.execute(RedCarQuery().exists())
        assert result_on.matched_frames == result_off.matched_frames
        assert on.last_scan_stats["early_exit_frame"] == off.last_scan_stats["early_exit_frame"]
        assert detector_calls(on) <= detector_calls(off)

    def test_interpolated_frames_feed_events_and_stay_labelled(self, stable_video, zoo):
        """Events span interpolated frames, which appear in skipped_frames."""
        session = QuerySession(stable_video, zoo=zoo, config=sampling_config())
        result = session.execute(DurationQuery(RedCarQuery(), duration_s=2.0))
        assert result.events
        assert session.last_scan_stats["frames_interpolated"] > 0
        skipped = {f for event in result.events for f in event.skipped_frames}
        assert skipped, "interpolated frames must be labelled"
        for event in result.events:
            for frame_id in event.skipped_frames:
                assert event.start_frame <= frame_id <= event.end_frame
            assert event.num_observed_frames < event.num_frames


class TestGateAndStrideSkipLabels:
    def test_gating_and_sampling_skips_both_recorded(self, zoo):
        """When the gate and the stride sampler both skip frames, closed
        events stay honest about every frame the detector never saw."""
        spec = VideoSpec("gated_stable", fps=10, width=640, height=480, duration_s=40)
        car = ObjectSpec(
            object_id=1,
            class_name="car",
            trajectory=LinearTrajectory((30, 300), (0.8, 0.0)),
            size=(100, 50),
            enter_frame=50,
            exit_frame=350,
            attributes={"color": "red", "vehicle_type": "sedan"},
        )
        video = SyntheticVideo(spec, [car], seed=13)
        session = QuerySession(video, zoo=zoo, config=sampling_config())
        result = session.execute(DurationQuery(GatedRedCarQuery(), duration_s=2.0))

        stats = session.last_scan_stats
        assert stats["leaf_frames_gated"] > 0, "the frame filter must gate the empty lead-in"
        assert stats["frames_interpolated"] > 0, "the stable middle must be stride-sampled"
        assert result.events
        skipped = {f for event in result.events for f in event.skipped_frames}
        assert skipped
        # Every labelled skip sits inside its event's reported range.
        for event in result.events:
            assert all(event.start_frame <= f <= event.end_frame for f in event.skipped_frames)


class TestScanStatsRoundTrip:
    def test_as_dict_round_trip_empty(self):
        stats = ScanStats()
        assert ScanStats(**stats.as_dict()) == stats
        assert ScanStats.from_dict(stats.as_dict()) == stats

    def test_as_dict_round_trip_after_sampled_scan(self, stable_video, zoo):
        session = QuerySession(stable_video, zoo=zoo, config=sampling_config())
        session.execute(RedCarQuery())
        stats = session.last_context.scan_stats
        data = stats.as_dict()
        # Round trip preserves every counter, including the stride ones.
        assert ScanStats.from_dict(data) == stats
        for key in ("frames_deferred", "frames_interpolated", "frames_rescanned", "peak_stride"):
            assert key in data


class TestTrackInterpolation:
    def _track(self, frames_and_boxes):
        track = Track(track_id=1, class_name="car")
        for frame_id, bbox in frames_and_boxes:
            track.detections.append(
                Detection(class_name="car", bbox=bbox, score=0.9, frame_id=frame_id, track_id=1)
            )
        return track

    def test_lerp_between_endpoints(self):
        track = self._track([(10, BBox(0, 0, 10, 10))])
        mid = track.interpolate(15, future_bbox=BBox(10, 0, 20, 10), future_frame_id=20)
        assert mid.as_tuple() == (5.0, 0.0, 15.0, 10.0)

    def test_extrapolation_uses_per_frame_velocity(self):
        # Detections 4 frames apart moving +8px: velocity is 2 px/frame,
        # not 8 px/update — stride-sampled tracks must not over-shoot.
        track = self._track([(0, BBox(0, 0, 10, 10)), (4, BBox(8, 0, 18, 10))])
        predicted = track.interpolate(6)
        assert predicted.as_tuple() == (12.0, 0.0, 22.0, 10.0)

    def test_predict_ahead_does_not_mutate_filter(self):
        kalman = KalmanBoxFilter(BBox(0, 0, 10, 10))
        before = kalman.x.copy()
        kalman.predict_ahead(5)
        assert (kalman.x == before).all()
        assert kalman.age == 0

    def test_tracker_attaches_kalman_to_tracks(self):
        tracker = KalmanTracker()
        det = Detection(class_name="car", bbox=BBox(0, 0, 10, 10), score=0.9, frame_id=0)
        tracker.update([det])
        (track,) = tracker.active_tracks
        assert track.kalman is not None


class FilteredCar(Car):
    """A car VObj registering only a frame filter (no specialized detector)."""

    @vobj_filter(model="no_red_on_road")
    def red_presence(self, frame):
        ...


class FilteredRedCarQuery(Query):
    def __init__(self):
        self.car = FilteredCar("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id,)


class TestCrossCameraWithSampling:
    """Cross-camera re-id composed with stride sampling and early exit."""

    @pytest.fixture(scope="class")
    def handoff(self):
        from repro.videosim.multicam import CameraPlacement, handoff_scenario

        return handoff_scenario(
            cameras=(
                CameraPlacement("cam_a", fps=10),
                CameraPlacement("cam_b", fps=15, start_offset_s=2.0),
            ),
            num_entities=2,
            dwell_s=8.0,
            seed=9,
        )

    def _session(self, handoff, zoo, **kw):
        from repro.backend.session import MultiCameraSession

        config = PlannerConfig(
            profile_plans=False, enable_cross_camera_reid=True, **kw
        )
        return MultiCameraSession(
            handoff.videos, zoo=zoo, config=config, start_offsets=handoff.start_offsets
        )

    def test_interpolated_frames_never_source_embeddings(self, handoff, zoo):
        """Re-id must only ever embed detector-observed crops: a track's
        source detection cannot come from an interpolation-seeded frame."""
        multi = self._session(handoff, zoo, enable_stride_sampling=True)
        multi.execute(RedCarQuery())
        sampled_somewhere = False
        for name, session in multi.sessions.items():
            stats = session.last_scan_stats
            ctx = session.last_context
            sampled_somewhere = sampled_somewhere or stats["frames_interpolated"] > 0
            assert len(ctx.seeded_frames) == stats["frames_interpolated"]
            for profile in multi.last_links.profiles[name]:
                assert profile.source.frame_id not in ctx.seeded_frames
        assert sampled_somewhere, "the stable handoff scene must stride-sample"

    def test_link_quality_unchanged_by_sampling(self, handoff, zoo):
        """Track ids may renumber under sampling, but the identity structure
        against ground truth must not degrade."""
        from repro.backend.crosscamera import reid_identity_scores

        sampled = self._session(handoff, zoo, enable_stride_sampling=True)
        sampled.execute(RedCarQuery())
        plain = self._session(handoff, zoo, enable_stride_sampling=False)
        plain.execute(RedCarQuery())
        assert reid_identity_scores(sampled.last_links).f1 == pytest.approx(
            reid_identity_scores(plain.last_links).f1
        )
        assert (
            sampled.last_links.num_identities == plain.last_links.num_identities
        )

    def test_bounded_cross_camera_query_retires(self, handoff, zoo):
        """An exists() bound composed with sampling + re-id: every feed's
        scan stops at its determining frame, and linking still runs over
        the partial tracks."""
        multi = self._session(handoff, zoo, enable_stride_sampling=True)
        merged = multi.execute(RedCarQuery().exists())
        assert merged.links is not None
        for name, session in multi.sessions.items():
            stats = session.last_scan_stats
            result = merged.camera(name)
            if result.matched_frames:
                assert len(result.matched_frames) == 1
                assert stats["early_exit_frame"] is not None
                assert stats["early_exit_frame"] < session.video.num_frames - 1


class TestGateAwareCostModel:
    @pytest.fixture(scope="class")
    def busy_red_video(self):
        """A red car on screen in every frame: the filter rejects almost
        nothing, so paying it per plan is a loss while paying it once per
        batch is a win — the configuration that exposes the PR-2 mispricing."""
        spec = VideoSpec("busy_red", fps=10, width=640, height=480, duration_s=30)
        car = ObjectSpec(
            object_id=1,
            class_name="car",
            trajectory=LinearTrajectory((50, 300), (1.0, 0.0)),
            size=(100, 50),
            attributes={"color": "red", "vehicle_type": "sedan"},
        )
        return SyntheticVideo(spec, [car], seed=21)

    def _plan_first_of_batch(self, video, zoo, aware: bool):
        config = PlannerConfig(canary_frames=200, enable_gate_aware_costs=aware)
        planner = Planner(zoo, config)
        batch = [FilteredRedCarQuery() for _ in range(4)]
        planner.begin_batch(batch)
        return planner.plan(batch[0], video)

    def test_batch_shared_filter_flips_candidate_selection(self, busy_red_video, zoo):
        """The acceptance scenario: pricing the hoisted filter once per batch
        selects a different (cheaper-under-gating) candidate than the
        unshared PR-2 model did."""
        unaware = self._plan_first_of_batch(busy_red_video, zoo, aware=False)
        aware = self._plan_first_of_batch(busy_red_video, zoo, aware=True)
        assert unaware.variant == "no_frame_filters"
        assert aware.variant == "base"
        # The discount is recorded, never invented: measured cost unchanged.
        assert aware.estimated_cost_ms < aware.profiled_cost_ms

    def test_solo_query_gets_no_sharing_discount(self, busy_red_video, zoo):
        """With nobody to share with, the gate-aware model must agree with
        the unshared one (k=1 -> zero discount)."""
        config = PlannerConfig(canary_frames=200, enable_gate_aware_costs=True)
        planner = Planner(zoo, config)
        query = FilteredRedCarQuery()
        planner.begin_batch([query])
        plan = planner.plan(query, busy_red_video)
        assert plan.variant == "no_frame_filters"

    def test_stride_discount_applies_to_tracked_plans(self, busy_red_video, zoo):
        config = PlannerConfig(canary_frames=100, enable_stride_sampling=True)
        planner = Planner(zoo, config)
        query = GatedRedCarQuery()  # multiple candidates -> profiling runs
        planner.begin_batch([query])
        plan = planner.plan(query, busy_red_video)
        # Every candidate is tracked (intrinsic colour), so the expected-
        # sampling discount bites: selection cost undercuts measured cost.
        assert plan.estimated_cost_ms < plan.profiled_cost_ms

    def test_variant_cache_is_batch_aware(self, busy_red_video, zoo):
        """A cached batch-priced choice must not leak into a solo plan.

        Selection is batch-dependent under gate-aware pricing, so the
        variant cache keys on the batch's filter multiplicities: the same
        planner must pick 'base' inside a 4-query batch and
        'no_frame_filters' for the same query planned alone afterwards."""
        config = PlannerConfig(canary_frames=200, enable_gate_aware_costs=True)
        planner = Planner(zoo, config)
        batch = [FilteredRedCarQuery() for _ in range(4)]
        planner.begin_batch(batch)
        assert planner.plan(batch[0], busy_red_video).variant == "base"
        solo = FilteredRedCarQuery()
        planner.begin_batch([solo])
        assert planner.plan(solo, busy_red_video).variant == "no_frame_filters"

    def test_unaware_costs_equal_measurement(self, busy_red_video, zoo):
        config = PlannerConfig(canary_frames=100, enable_gate_aware_costs=False)
        planner = Planner(zoo, config)
        query = FilteredRedCarQuery()
        planner.begin_batch([query, FilteredRedCarQuery()])
        plan = planner.plan(query, busy_red_video)
        assert plan.estimated_cost_ms == plan.profiled_cost_ms


class NorfairPerson(Person):
    """Person tracked by the IoU tracker: a distinct (tracker, detector) pair."""

    tracker = "norfair_tracker"


class NorfairPersonQuery(Query):
    def __init__(self):
        self.person = NorfairPerson("person")

    def frame_constraint(self):
        return self.person.score > 0.5

    def frame_output(self):
        return (self.person.track_id,)


class TestStrideCohorts:
    """Per-stream deferral: streams defer by cohort, not by batch consensus."""

    def test_disjoint_pairs_form_separate_cohorts(self, phase_change_video, zoo):
        config = sampling_config()
        session = QuerySession(phase_change_video, zoo=zoo, config=config)
        results = session.execute_many([RedCarQuery(), NorfairPersonQuery()])
        stats = session.last_scan_stats
        # The stable car cohort keeps sampling while the person cohort (whose
        # track births mid-clip) resets: frames processed for one cohort but
        # deferred for the other are partial deferrals.
        assert stats["partial_deferrals"] > 0
        assert stats["peak_stride"] > 1
        assert results[0].events is not None

    def test_unstable_cohort_does_not_pin_stable_one(self, phase_change_video, zoo):
        """The stable cohort's detector savings survive the unstable sibling."""
        config = sampling_config(enable_reuse=False)
        together = QuerySession(phase_change_video, zoo=zoo, config=config)
        together.execute_many([RedCarQuery(), NorfairPersonQuery()])
        assert together.last_scan_stats["frames_deferred"] > 0 or (
            together.last_scan_stats["partial_deferrals"] > 0
        )
        # Results must equal a stride-off run (accuracy preserved per cohort).
        off = QuerySession(
            phase_change_video, zoo=zoo,
            config=PlannerConfig(profile_plans=False, enable_reuse=False),
        )
        results_off = off.execute_many([RedCarQuery(), NorfairPersonQuery()])
        results_on = QuerySession(
            phase_change_video, zoo=zoo, config=sampling_config(enable_reuse=False)
        ).execute_many([RedCarQuery(), NorfairPersonQuery()])
        ranges = lambda r: [(e.start_frame, e.end_frame) for e in r.events]
        for a, b in zip(results_on, results_off):
            assert ranges(a) == ranges(b)

    def test_untracked_stream_pins_only_its_own_cohort(self, stable_video, zoo):
        """An untracked stream no longer disables sampling batch-wide."""

        class UntrackedCarQuery(Query):
            def __init__(self):
                self.car = Car("car")

            def frame_constraint(self):
                return self.car.score > 0.5

            def frame_output(self):
                return (self.car.bbox,)

        config = sampling_config(enable_reuse=False)
        session = QuerySession(stable_video, zoo=zoo, config=config)
        session.execute_many([RedCarQuery(), UntrackedCarQuery()])
        stats = session.last_scan_stats
        # The tracked red-car cohort still strides; every one of its
        # deferrals is partial because the untracked cohort samples on.
        assert stats["peak_stride"] > 1
        assert stats["partial_deferrals"] > 0
        assert stats["frames_deferred"] == 0

    def test_partial_deferrals_round_trip(self):
        stats = ScanStats(partial_deferrals=7)
        assert ScanStats.from_dict(stats.as_dict()) == stats
        assert stats.as_dict()["partial_deferrals"] == 7
