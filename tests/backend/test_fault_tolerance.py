"""Chaos tests for the fault-tolerance layer.

Covers the off-switch identity guarantee (``enable_fault_tolerance=False``
is byte-identical to the seed behaviour), deterministic fault injection
(same seed => same results, decision log, and retry counters, regardless
of ``max_workers`` or stride sampling), graceful degradation accounting
(every degraded frame lands in ``Event.skipped_frames`` and the decision
log), per-feed failure isolation, retry/backoff/circuit-breaker unit
semantics, and scan checkpoint/resume after an injected crash.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro.backend.planner import PlannerConfig
from repro.backend.session import MultiCameraSession, QuerySession
from repro.common.clock import SimClock
from repro.common.config import FaultConfig, VideoSpec
from repro.common.errors import (
    CheckpointError,
    ExecutionError,
    FeedFailedError,
    ModelTimeoutError,
    TransientModelError,
)
from repro.faults import CircuitBreaker, FaultManager
from repro.frontend.builtin import Car
from repro.frontend.higher_order import DurationQuery
from repro.frontend.query import Query
from repro.videosim.entities import ObjectSpec
from repro.videosim.trajectory import LinearTrajectory
from repro.videosim.video import SyntheticVideo


class RedCarQuery(Query):
    def __init__(self):
        self.car = Car("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.bbox)


def chaos_video(name: str = "chaos", duration_s: int = 20, seed: int = 3) -> SyntheticVideo:
    """Two red cars drifting linearly — fully predictable ground truth."""
    spec = VideoSpec(name, fps=10, width=640, height=480, duration_s=duration_s)
    cars = [
        ObjectSpec(
            object_id=i + 1,
            class_name="car",
            trajectory=LinearTrajectory((30 + 150 * i, 300), (0.8, 0.0)),
            size=(100, 50),
            attributes={"color": "red", "vehicle_type": "sedan"},
        )
        for i in range(2)
    ]
    return SyntheticVideo(spec, cars, seed=seed)


def ft_config(fault_config: FaultConfig, **kw) -> PlannerConfig:
    return PlannerConfig(
        profile_plans=False,
        enable_fault_tolerance=True,
        fault_config=fault_config,
        **kw,
    )


#: CI's chaos-soak job sweeps this seed; the guarantees hold for any value.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "11"))

CHAOS = FaultConfig(seed=CHAOS_SEED, transient_rate=0.05, corrupt_frame_rate=0.01)


def run_single(video, config, query=None):
    session = QuerySession(video, config=config)
    result = session.execute(query or RedCarQuery())
    return session, result


def signature(session, result):
    """Everything that must be identical across equivalent runs."""
    return (
        result.matched_frames,
        result.matches,
        session.last_context.scan_stats.as_dict(),
        session.last_context.clock.elapsed_ms,
        dict(session.last_context.clock.calls),
    )


class TestOffSwitch:
    def test_disabled_is_byte_identical(self):
        """A populated FaultConfig is inert while the knob is off."""
        base_sig = signature(*run_single(chaos_video(), PlannerConfig(profile_plans=False)))
        armed = PlannerConfig(
            profile_plans=False,
            enable_fault_tolerance=False,
            fault_config=FaultConfig(
                seed=11,
                transient_rate=0.5,
                corrupt_frame_rate=0.2,
                drop_frame_rate=0.2,
                dead_feeds=(("chaos", 10),),
                crash_frames=(("chaos", 20),),
                checkpoint_interval=5,
            ),
        )
        assert signature(*run_single(chaos_video(), armed)) == base_sig

    def test_enabled_with_zero_rates_is_identical(self):
        """The resilience wrapper itself is cost- and result-neutral."""
        base_sig = signature(*run_single(chaos_video(), PlannerConfig(profile_plans=False)))
        assert signature(*run_single(chaos_video(), ft_config(FaultConfig(seed=CHAOS_SEED)))) == base_sig


class TestChaosDeterminism:
    def test_same_seed_same_everything(self):
        cfg = ft_config(CHAOS, enable_tracing=True)
        s1, r1 = run_single(chaos_video(), cfg)
        s2, r2 = run_single(chaos_video(), cfg)
        assert signature(s1, r1) == signature(s2, r2)
        assert s1.last_obs.decisions.summary() == s2.last_obs.decisions.summary()
        stats = s1.last_context.scan_stats
        assert stats.faults_injected > 0
        assert stats.model_retries > 0

    @pytest.mark.parametrize("workers", [1, 4])
    def test_worker_count_invariance(self, workers):
        """Fault draws are keyed, not ordered: thread interleaving is irrelevant."""
        feeds = {name: chaos_video(name) for name in ("cam-a", "cam-b")}
        multi = MultiCameraSession(feeds, config=ft_config(CHAOS), max_workers=workers)
        merged = multi.execute(RedCarQuery())
        serial = MultiCameraSession(
            {name: chaos_video(name) for name in ("cam-a", "cam-b")},
            config=ft_config(CHAOS),
            max_workers=1,
        ).execute(RedCarQuery())
        for name in feeds:
            assert merged.camera(name).matched_frames == serial.camera(name).matched_frames
            assert merged.camera(name).matches == serial.camera(name).matches
        per_feed = {
            name: multi.sessions[name].last_context.scan_stats.as_dict() for name in feeds
        }
        assert all(stats["faults_injected"] > 0 for stats in per_feed.values())

    @pytest.mark.parametrize("stride", [False, True])
    def test_stride_composes_deterministically(self, stride):
        cfg = ft_config(CHAOS, enable_stride_sampling=stride)
        s1, r1 = run_single(chaos_video(), cfg)
        s2, r2 = run_single(chaos_video(), cfg)
        assert signature(s1, r1) == signature(s2, r2)
        assert r1.num_frames_processed == chaos_video().num_frames


#: CHAOS plus a scheduled detector outage near the tail: degradation is then
#: guaranteed for every soak seed, not just ones whose corruption draw fires.
CHAOS_WITH_OUTAGE = replace(CHAOS, dead_models=(("yolox", 190),))


class TestDegradationAccounting:
    def test_chaos_scan_completes_and_degrades_honestly(self):
        """5% transient + 1% corruption + a detector outage from frame 190:
        the scan completes, non-degraded frames are identical to the
        fault-free run, and every degraded frame is accounted in the
        decision log and ``Event.skipped_frames``."""
        query = DurationQuery(RedCarQuery(), duration_s=1.0)
        base_session, base = run_single(chaos_video(), PlannerConfig(profile_plans=False), query)
        cfg = ft_config(CHAOS_WITH_OUTAGE, enable_tracing=True)
        session, result = run_single(chaos_video(), cfg, query)

        assert result.num_frames_processed == chaos_video().num_frames

        stats = session.last_context.scan_stats
        degraded = {
            d.frame_id
            for d in session.last_obs.decisions.records(action="frame-degraded")
        }
        assert degraded, "chaos run produced no degraded frames"
        assert len(degraded) == stats.frames_degraded

        # Non-degraded frames match the fault-free scan exactly.
        base_rows = dict(zip(base.matched_frames, base.matches))
        chaos_rows = dict(zip(result.matched_frames, result.matches))
        for frame_id in set(base_rows) | set(chaos_rows):
            if frame_id in degraded:
                continue
            assert chaos_rows.get(frame_id) == base_rows.get(frame_id), frame_id

        # Degraded frames inside an event span are labelled skipped.
        accounted = set()
        for event in result.events:
            accounted.update(event.skipped_frames)
            for frame_id in degraded:
                if event.start_frame <= frame_id <= event.end_frame:
                    assert frame_id in event.skipped_frames
        assert accounted <= degraded | set(base.matched_frames)

    def test_explain_reports_fault_counters(self):
        cfg = ft_config(CHAOS_WITH_OUTAGE, enable_tracing=True)
        _, result = run_single(chaos_video(), cfg)
        report = result.explain()
        assert "Fault tolerance:" in report
        assert "retries=" in report
        assert "frame-degraded" in report

    def test_fault_free_explain_omits_fault_section(self):
        cfg = ft_config(FaultConfig(seed=CHAOS_SEED), enable_tracing=True)
        _, result = run_single(chaos_video(), cfg)
        assert "Fault tolerance:" not in result.explain()


class TestFeedIsolation:
    @staticmethod
    def feeds():
        return {name: chaos_video(name) for name in ("cam-a", "cam-b", "cam-c")}

    def test_mid_scan_feed_death_is_isolated(self):
        fault_config = FaultConfig(
            seed=11,
            transient_rate=0.05,
            corrupt_frame_rate=0.01,
            dead_feeds=(("cam-b", 80),),
        )
        multi = MultiCameraSession(self.feeds(), config=ft_config(fault_config))
        merged = multi.execute(RedCarQuery())
        assert set(merged.per_camera) == {"cam-a", "cam-c"}
        assert set(merged.feed_failures) == {"cam-b"}
        failure = merged.feed_failures["cam-b"]
        assert failure.frame_id == 80
        assert "cam-b" in failure.error
        assert multi.last_feed_failures == merged.feed_failures
        # Survivors are unaffected by the sibling's death.
        for name in ("cam-a", "cam-c"):
            solo = QuerySession(chaos_video(name), config=ft_config(fault_config)).execute(
                RedCarQuery()
            )
            assert merged.camera(name).matched_frames == solo.matched_frames

    def test_feed_death_without_ft_aborts_the_batch(self):
        cfg = PlannerConfig(
            profile_plans=False,
            enable_fault_tolerance=False,
        )
        # Without the fault layer nothing injects the death; emulate a feed
        # blowing up to check the settle-then-abort contract instead.
        multi = MultiCameraSession(self.feeds(), config=cfg)

        def boom(*a, **kw):
            raise FeedFailedError("feed 'cam-b' died", feed="cam-b", frame_id=80)

        multi.sessions["cam-b"].execute_many = boom
        with pytest.raises(ExecutionError) as excinfo:
            multi.execute(RedCarQuery())
        assert "cam-b" in str(excinfo.value)
        assert set(excinfo.value.failed_feeds) == {"cam-b"}
        assert set(excinfo.value.partial_results) == {"cam-a", "cam-c"}

    def test_all_feeds_dead_aborts_even_with_ft(self):
        fault_config = FaultConfig(
            seed=11, dead_feeds=(("cam-a", 10), ("cam-b", 10), ("cam-c", 10))
        )
        multi = MultiCameraSession(self.feeds(), config=ft_config(fault_config))
        with pytest.raises(ExecutionError):
            multi.execute(RedCarQuery())


class TestCheckpointResume:
    def test_crash_resumes_from_checkpoint_and_matches_baseline(self):
        base_session, base = run_single(chaos_video(), PlannerConfig(profile_plans=False))
        fault_config = FaultConfig(
            seed=11, crash_frames=(("chaos", 120),), checkpoint_interval=50
        )
        session, result = run_single(chaos_video(), ft_config(fault_config))
        assert result.matched_frames == base.matched_frames
        assert result.matches == base.matches
        stats = session.last_context.scan_stats
        assert stats.scan_resumes == 1
        assert stats.checkpoints_taken >= 1
        # The restored timeline is byte-identical to fault-free: the clock
        # rolls back to the checkpoint, and a checkpoint never contains the
        # read charge of its own resume frame (else every resume would
        # double-charge one video_reader call).
        base_clock = base_session.last_context.clock
        clock = session.last_context.clock
        assert clock.elapsed_ms == base_clock.elapsed_ms
        assert dict(clock.calls) == dict(base_clock.calls)
        assert dict(clock.by_account) == dict(base_clock.by_account)

    def test_crash_resume_is_deterministic(self):
        fault_config = FaultConfig(
            seed=11,
            transient_rate=0.05,
            crash_frames=(("chaos", 120),),
            checkpoint_interval=50,
        )
        sig1 = signature(*run_single(chaos_video(), ft_config(fault_config)))
        sig2 = signature(*run_single(chaos_video(), ft_config(fault_config)))
        assert sig1 == sig2

    def test_crash_without_checkpointing_aborts(self):
        fault_config = FaultConfig(seed=CHAOS_SEED, crash_frames=(("chaos", 120),))
        with pytest.raises(ExecutionError, match="injected scan crash"):
            run_single(chaos_video(), ft_config(fault_config))

    def test_checkpointer_rejects_invalid_interval(self):
        from repro.faults import ScanCheckpointer

        with pytest.raises(ValueError):
            ScanCheckpointer(0)
        with pytest.raises(CheckpointError):
            ScanCheckpointer(10).restore()


class TestResilienceUnits:
    def test_breaker_opens_cools_down_and_probes(self):
        breaker = CircuitBreaker(threshold=3, cooldown_ms=100.0)
        assert breaker.state == "closed"
        assert not breaker.record_failure(now_ms=0.0)
        assert not breaker.record_failure(now_ms=1.0)
        assert breaker.record_failure(now_ms=2.0)  # third strike opens it
        assert breaker.state == "open"
        assert not breaker.allow(now_ms=50.0)
        assert breaker.allow(now_ms=102.0)  # half-open probe admitted
        assert not breaker.record_failure(now_ms=102.0)  # probe fails: stays open
        assert not breaker.allow(now_ms=150.0)  # cooldown restarted
        assert breaker.allow(now_ms=250.0)
        assert breaker.record_success()
        assert breaker.state == "closed"

    def test_retries_charge_backoff_and_surface_transient_error(self):
        clock = SimClock()
        manager = FaultManager(
            FaultConfig(seed=1, transient_rate=1.0, max_retries=2), clock, feed="unit"
        )
        calls = []
        with pytest.raises(TransientModelError):
            manager.invoke("yolox", 0, lambda: calls.append(1))
        assert calls == []  # every attempt failed before running the model
        assert clock.by_account.get("fault-backoff", 0.0) > 0.0

    def test_timeout_charges_at_most_the_budget(self):
        clock = SimClock()
        manager = FaultManager(
            FaultConfig(seed=1, latency_spike_rate=1.0, timeout_ms=20.0, max_retries=0),
            clock,
            feed="unit",
        )

        def slow_model():
            clock.charge("model", 10.0)  # spiked 10x => 100ms > 20ms budget

        with pytest.raises(ModelTimeoutError):
            manager.invoke("yolox", 0, slow_model)
        assert clock.by_account["fault-timeout:yolox"] == pytest.approx(10.0)

    def test_open_circuit_fails_fast(self):
        clock = SimClock()
        manager = FaultManager(
            FaultConfig(
                seed=1,
                dead_models=(("yolox", 0),),
                max_retries=0,
                breaker_threshold=1,
                breaker_cooldown_ms=1e9,
            ),
            clock,
            feed="unit",
        )
        with pytest.raises(TransientModelError):
            manager.invoke("yolox", 0, lambda: None)
        assert manager.breaker("yolox").state == "open"
        with pytest.raises(TransientModelError, match="circuit open"):
            manager.invoke("yolox", 1, lambda: None)

    def test_dead_model_degrades_frames_but_scan_completes(self):
        fault_config = FaultConfig(seed=CHAOS_SEED, dead_models=(("yolox", 100),))
        session, result = run_single(chaos_video(), ft_config(fault_config))
        assert result.num_frames_processed == chaos_video().num_frames
        stats = session.last_context.scan_stats
        assert stats.circuit_opens >= 1
        assert stats.frames_degraded > 0
