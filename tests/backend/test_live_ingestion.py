"""Tests for live unbounded ingestion: standing queries, backpressure, recovery.

Covers the ``enable_live`` opt-in switch (off = batch path untouched), the
replay-equality guarantee (a finite recording pushed through a
:class:`LiveSession` with no overload yields the batch path's event set),
exact shed/late-drop accounting under overload, accuracy-first degradation
(stride coarsening strictly before hard drops), the reorder window,
duplicate handling, the stall watchdog's reconnect machinery with
standing-query state surviving the outage, alert sinks, and the live hooks
on :class:`~repro.backend.scheduler.ScanScheduler`.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro.backend.live import Alert, CallbackSink, LiveSession, QueueSink
from repro.backend.planner import PlannerConfig
from repro.backend.runtime import ExecutionContext
from repro.backend.scheduler import ScanScheduler
from repro.backend.session import QuerySession
from repro.common.clock import SimClock
from repro.common.config import LiveConfig, VideoSpec
from repro.common.errors import ExecutionError, FeedFailedError
from repro.frontend.builtin import Car, Person
from repro.frontend.higher_order import DurationQuery
from repro.frontend.query import Query
from repro.videosim.entities import ObjectSpec
from repro.videosim.livefeed import LiveFeed
from repro.videosim.trajectory import LinearTrajectory, StationaryTrajectory
from repro.videosim.video import SyntheticVideo

#: The CI overload-soak job sweeps this seed (11, 23, 47): every ingest
#: guarantee below must hold for *any* deterministic chaos schedule, not
#: just the one the default pins.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "5"))


class RedCarQuery(Query):
    def __init__(self):
        self.car = Car("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.bbox)


class PersonQuery(Query):
    def __init__(self):
        self.person = Person("person")

    def frame_constraint(self):
        return self.person.score > 0.5

    def frame_output(self):
        return (self.person.track_id,)


def live_config(**live_kw) -> PlannerConfig:
    """A PlannerConfig with enable_live=True and LiveConfig overrides."""
    planner_kw = {}
    for key in ("enable_stride_sampling", "enable_tracing", "enable_fault_tolerance"):
        if key in live_kw:
            planner_kw[key] = live_kw.pop(key)
    config = PlannerConfig(profile_plans=False, enable_live=True, **planner_kw)
    if live_kw:
        config = replace(config, live_config=replace(config.live_config, **live_kw))
    return config


@pytest.fixture(scope="module")
def red_car_video():
    """One red car and one person for 30 s: events exist for both queries."""
    spec = VideoSpec("livetest", fps=10, width=640, height=480, duration_s=30)
    car = ObjectSpec(
        object_id=1,
        class_name="car",
        trajectory=LinearTrajectory((50, 300), (2.0, 0.0)),
        size=(100, 50),
        attributes={
            "color": "red",
            "vehicle_type": "sedan",
            "license_plate": "ABC1245",
            "direction": "go_straight",
            "speeding": False,
        },
    )
    person = ObjectSpec(
        object_id=2,
        class_name="person",
        trajectory=StationaryTrajectory((400, 350)),
        size=(30, 80),
        attributes={"clothing": "jeans", "hair": "black"},
        default_action="standing",
    )
    return SyntheticVideo(spec, [car, person], seed=7)


def event_set(alerts):
    return sorted(
        (a.query_name, a.event.start_frame, a.event.end_frame, a.event.signature)
        for a in alerts
    )


def batch_event_set(video, zoo, queries):
    config = PlannerConfig(profile_plans=False)
    results = QuerySession(video, zoo=zoo, config=config).execute_many(
        queries, ensure_events=True
    )
    return sorted(
        (r.query_name, e.start_frame, e.end_frame, e.signature)
        for r in results
        for e in r.events
    )


class TestOptIn:
    def test_live_session_requires_enable_live(self, red_car_video, zoo):
        with pytest.raises(ExecutionError, match="enable_live"):
            LiveSession(
                LiveFeed(red_car_video), zoo=zoo,
                config=PlannerConfig(profile_plans=False, enable_live=False),
            )

    def test_enable_live_flag_does_not_perturb_batch_results(self, red_car_video, zoo):
        """enable_live only gates LiveSession; batch execution is untouched."""
        batch = lambda: [RedCarQuery(), DurationQuery(RedCarQuery(), duration_s=1.0)]
        off = PlannerConfig(profile_plans=False, enable_live=False)
        on = PlannerConfig(profile_plans=False, enable_live=True)
        res_off = QuerySession(red_car_video, zoo=zoo, config=off).execute_many(batch())
        res_on = QuerySession(red_car_video, zoo=zoo, config=on).execute_many(batch())
        for a, b in zip(res_off, res_on):
            assert a == b  # full dataclass equality, every field


class TestReplayEquality:
    def test_unloaded_replay_matches_batch_event_set(self, red_car_video, zoo):
        queries = [RedCarQuery(), PersonQuery()]
        session = LiveSession(LiveFeed(red_car_video), zoo=zoo, config=live_config())
        stats = session.run([RedCarQuery(), PersonQuery()])
        assert event_set(session.alerts()) == batch_event_set(
            red_car_video, zoo, queries
        )
        assert stats.frames_delivered == red_car_video.num_frames
        assert stats.frames_processed == stats.frames_delivered
        assert stats.frames_shed == 0 and stats.frames_late_dropped == 0

    def test_replay_with_reordering_within_window_matches_batch(self, red_car_video, zoo):
        """The reorder window re-sequences; the scan sees frames in order."""
        feed = LiveFeed(red_car_video, seed=CHAOS_SEED, reorder_rate=0.15)
        assert feed.reordered_frame_ids
        session = LiveSession(feed, zoo=zoo, config=live_config())
        stats = session.run([RedCarQuery()])
        assert stats.frames_reordered > 0
        assert stats.frames_late_dropped == 0  # window absorbed the disorder
        assert event_set(session.alerts()) == batch_event_set(
            red_car_video, zoo, [RedCarQuery()]
        )

    def test_duplicates_are_dropped_and_accounted(self, red_car_video, zoo):
        feed = LiveFeed(red_car_video, seed=CHAOS_SEED, duplicate_rate=0.1)
        session = LiveSession(feed, zoo=zoo, config=live_config(enable_tracing=True))
        stats = session.run([RedCarQuery()])
        assert stats.duplicates_delivered > 0
        assert stats.frames_late_dropped == stats.duplicates_delivered
        assert stats.frames_delivered == (
            stats.frames_processed + stats.frames_shed + stats.frames_late_dropped
        )
        decisions = session.last_obs.decisions
        assert decisions.count("late-frame-dropped", "duplicate-delivery") == (
            stats.duplicates_delivered
        )
        assert event_set(session.alerts()) == batch_event_set(
            red_car_video, zoo, [RedCarQuery()]
        )


class TestOverload:
    def test_sustained_overload_bounds_memory_and_accounts_exactly(
        self, red_car_video, zoo
    ):
        """10x ingest: the buffer cap holds and every frame is accounted."""
        feed = LiveFeed(red_car_video, fps=100, seed=CHAOS_SEED)
        config = live_config(enable_tracing=True, max_buffered_frames=32)
        session = LiveSession(feed, zoo=zoo, config=config)
        stats = session.run([RedCarQuery()])
        assert stats.peak_buffered <= 32
        assert stats.frames_shed > 0
        assert stats.frames_delivered == (
            stats.frames_processed + stats.frames_shed + stats.frames_late_dropped
        )
        # Alerts still flowed under overload.
        assert stats.alerts_emitted > 0
        # Shed frames are labelled into event provenance, not silently lost.
        decisions = session.last_obs.decisions
        assert decisions.count("frame-shed", "queue-over-cap") == stats.frames_shed

    def test_stride_coarsens_before_any_hard_drop(self, red_car_video, zoo):
        """Accuracy is shed first: pressure raises precede the first shed."""
        feed = LiveFeed(red_car_video, fps=100, seed=CHAOS_SEED)
        config = live_config(enable_stride_sampling=True, enable_tracing=True)
        session = LiveSession(feed, zoo=zoo, config=config)
        stats = session.run([RedCarQuery()])
        assert stats.pressure_raises > 0
        assert stats.peak_pressure_stride > 1
        records = session.last_obs.decisions.records()
        first_raise = next(
            i for i, d in enumerate(records) if d.action == "pressure-stride-raised"
        )
        sheds = [i for i, d in enumerate(records) if d.action == "frame-shed"]
        if sheds:
            assert first_raise < sheds[0]

    def test_pressure_stride_relaxes_when_queue_drains(self, red_car_video, zoo):
        """After a lag burst the stride floor returns toward 1."""
        feed = LiveFeed(red_car_video, lag_bursts=[(50, 99, 3000.0)], seed=CHAOS_SEED)
        config = live_config(enable_stride_sampling=True)
        session = LiveSession(feed, zoo=zoo, config=config)
        session.run([RedCarQuery()])
        # The session-side floor is private; observe via the scheduler.
        assert session._scheduler.pressure_stride == 1

    def test_shed_frames_label_event_provenance(self, zoo):
        """An event spanning shed frames lists them in skipped_frames."""
        spec = VideoSpec("shedlabel", fps=10, width=640, height=480, duration_s=30)
        car = ObjectSpec(
            object_id=1,
            class_name="car",
            trajectory=StationaryTrajectory((100, 300)),
            size=(100, 50),
            attributes={"color": "red", "vehicle_type": "sedan"},
        )
        video = SyntheticVideo(spec, [car], seed=7)
        feed = LiveFeed(video, fps=100, seed=CHAOS_SEED)
        session = LiveSession(
            feed, zoo=zoo, config=live_config(max_buffered_frames=16)
        )
        stats = session.run([RedCarQuery()])
        assert stats.frames_shed > 0
        skipped = {
            f for a in session.alerts() for f in a.event.skipped_frames
        }
        assert skipped, "shed frames inside events must be labelled"


class TestWatchdog:
    def test_disconnect_recovers_with_standing_state_intact(self, red_car_video, zoo):
        """A mid-stream outage reconnects; the scan continues afterwards."""
        feed = LiveFeed(red_car_video, disconnects=[(1000.0, 1800.0)])
        config = live_config(stall_timeout_ms=300.0)
        session = LiveSession(feed, zoo=zoo, config=config)
        stats = session.run([RedCarQuery()])
        assert stats.stalls >= 1
        assert stats.reconnects >= 1
        assert stats.frames_lost == 8  # captures at 1000..1700 ms
        # Frames on both sides of the outage were processed by one scheduler.
        assert stats.frames_processed == red_car_video.num_frames - stats.frames_lost
        assert stats.frames_delivered == (
            stats.frames_processed + stats.frames_shed + stats.frames_late_dropped
        )

    def test_outage_spanning_event_is_labelled(self, zoo):
        """A short outage inside one long event lands in skipped_frames."""
        spec = VideoSpec("outage", fps=10, width=640, height=480, duration_s=20)
        car = ObjectSpec(
            object_id=1,
            class_name="car",
            trajectory=StationaryTrajectory((100, 300)),
            size=(100, 50),
            attributes={"color": "red", "vehicle_type": "sedan"},
        )
        video = SyntheticVideo(spec, [car], seed=7)
        # 4 lost frames < the grouper's max_gap of 5: the run stays open.
        feed = LiveFeed(video, disconnects=[(1000.0, 1400.0)])
        session = LiveSession(
            feed, zoo=zoo, config=live_config(stall_timeout_ms=200.0)
        )
        stats = session.run([RedCarQuery()])
        assert stats.frames_lost == 4
        spanning = [
            a for a in session.alerts()
            if a.event.start_frame < 10 and a.event.end_frame >= 14
        ]
        assert spanning, "the event must span the outage"
        for alert in spanning:
            assert {10, 11, 12, 13} <= set(alert.event.skipped_frames)

    def test_reconnect_exhaustion_raises_feed_failed(self, red_car_video, zoo):
        """An outage longer than every backoff kills the feed."""
        # Ends before the recording does, so frames remain scheduled and the
        # watchdog (not feed exhaustion) decides the session's fate.
        feed = LiveFeed(red_car_video, disconnects=[(1000.0, 25_000.0)])
        config = live_config(
            stall_timeout_ms=200.0,
            max_reconnect_attempts=3,
            reconnect_backoff_base_ms=10.0,
        )
        session = LiveSession(feed, zoo=zoo, config=config)
        with pytest.raises(FeedFailedError):
            session.run([RedCarQuery()])

    def test_runs_are_deterministic_across_repeats_and_seeds(self, red_car_video, zoo):
        """Same seed → identical stats and alerts; chaos seeds all recover."""

        def run(seed):
            feed = LiveFeed(
                red_car_video, seed=seed, jitter_ms=5.0, reorder_rate=0.1,
                disconnects=[(1500.0, 2100.0)],
            )
            session = LiveSession(
                feed, zoo=zoo, config=live_config(stall_timeout_ms=300.0)
            )
            stats = session.run([RedCarQuery()])
            return stats.as_dict(), event_set(session.alerts())

        for seed in (11, 23, 47):
            first = run(seed)
            second = run(seed)
            assert first == second
            stats, _ = first
            assert stats["reconnects"] >= 1
            assert stats["frames_delivered"] == (
                stats["frames_processed"]
                + stats["frames_shed"]
                + stats["frames_late_dropped"]
            )


class TestAlertSinks:
    def test_callback_sink_sees_every_alert(self, red_car_video, zoo):
        seen = []
        session = LiveSession(
            LiveFeed(red_car_video), zoo=zoo, config=live_config(),
            sinks=[CallbackSink(seen.append)],
        )
        stats = session.run([RedCarQuery(), PersonQuery()])
        assert len(seen) == stats.alerts_emitted > 0
        assert all(isinstance(a, Alert) for a in seen)
        assert event_set(seen) == event_set(session.alerts())

    def test_queue_sink_is_bounded_and_counts_eviction(self):
        sink = QueueSink(max_alerts=2)
        for i in range(5):
            sink.emit(Alert("cam", "q", event=None, emitted_at_ms=float(i)))
        assert len(sink) == 2
        assert sink.evicted == 3
        drained = sink.drain()
        assert [a.emitted_at_ms for a in drained] == [3.0, 4.0]
        assert len(sink) == 0

    def test_alert_timestamps_are_monotone(self, red_car_video, zoo):
        session = LiveSession(LiveFeed(red_car_video), zoo=zoo, config=live_config())
        session.run([PersonQuery()])
        alerts = session.alerts()
        assert alerts
        times = [a.emitted_at_ms for a in alerts]
        assert times == sorted(times)


class TestSchedulerLiveHooks:
    def _scheduler(self, video, zoo, config):
        session = QuerySession(video, zoo=zoo, config=config)
        session.planner.begin_batch([RedCarQuery()])
        stream = session.executor.compile(
            RedCarQuery(), video, session.planner, ensure_events=True
        )
        ctx = ExecutionContext(video, zoo, clock=SimClock())
        return ScanScheduler(
            [stream], ctx, gating=False, early_exit=False, stride=config.stride()
        ), stream, ctx

    def test_set_pressure_stride_requires_stride_machinery(self, red_car_video, zoo):
        config = PlannerConfig(profile_plans=False)
        scheduler, _, _ = self._scheduler(red_car_video, zoo, config)
        assert scheduler.set_pressure_stride(4) is False
        assert scheduler.pressure_stride == 1
        on = PlannerConfig(profile_plans=False, enable_stride_sampling=True)
        scheduler_on, _, _ = self._scheduler(red_car_video, zoo, on)
        assert scheduler_on.set_pressure_stride(4) is True
        assert scheduler_on.pressure_stride == 4

    def test_note_missing_frame_labels_without_processing(self, red_car_video, zoo):
        config = PlannerConfig(profile_plans=False)
        scheduler, stream, ctx = self._scheduler(red_car_video, zoo, config)
        scheduler.step(red_car_video.frame(0))
        scheduler.note_missing_frame(1)
        scheduler.step(red_car_video.frame(2))
        assert scheduler.stats.frames_scanned == 2  # the missing frame is not
        result = stream.finalize(red_car_video, ctx)
        for event in result.events:
            if event.start_frame <= 1 <= event.end_frame:
                assert 1 in event.skipped_frames


class TestExplain:
    def test_explain_renders_live_section(self, red_car_video, zoo):
        feed = LiveFeed(red_car_video, fps=50, seed=CHAOS_SEED)
        session = LiveSession(
            feed, zoo=zoo, config=live_config(enable_tracing=True)
        )
        session.run([RedCarQuery()])
        report = session.explain()
        assert "Live ingestion:" in report
        assert "delivered=" in report and "shed=" in report
        assert "Decisions:" in report

    def test_explain_before_run_raises(self, red_car_video, zoo):
        session = LiveSession(LiveFeed(red_car_video), zoo=zoo, config=live_config())
        with pytest.raises(ExecutionError):
            session.explain()


class TestLiveConfigValidation:
    def test_live_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            LiveConfig(max_buffered_frames=0)
        with pytest.raises(ValueError):
            LiveConfig(pressure_low=0.9, pressure_high=0.2)
        with pytest.raises(ValueError):
            LiveConfig(reorder_window=-1)

    def test_planner_config_live_accessor_carries_flag(self):
        config = PlannerConfig(enable_live=True)
        assert config.live().enabled is True
        assert PlannerConfig().live().enabled is False
