"""Tests for the frame graph and the lazy runtime state (incl. reuse)."""

import pytest

from repro.backend.graph import FrameGraph, RelationEdge
from repro.backend.runtime import ExecutionContext, TrackState, VObjState
from repro.common.clock import SimClock
from repro.common.errors import ExecutionError
from repro.frontend.builtin import Ball, Car, Person, PersonBallInteraction
from repro.models.base import Detection


@pytest.fixture
def ctx(tiny_video, zoo):
    return ExecutionContext(tiny_video, zoo, clock=SimClock(), reuse_enabled=True)


def tracked_detection(ctx, frame, object_id, track_id):
    inst = frame.instance_by_id(object_id)
    return Detection(inst.class_name, inst.bbox, 0.95, frame.frame_id, gt_object_id=object_id, track_id=track_id)


class TestFrameGraph:
    def test_add_and_remove_nodes(self, ctx, tiny_video):
        frame = tiny_video.frame(0)
        graph = FrameGraph(frame)
        car_var = Car("c")
        det = tracked_detection(ctx, frame, 1, 1)
        node = graph.add_node(car_var, ctx.vobj_state(Car, det, frame))
        assert graph.nodes(car_var) == [node]
        graph.remove_node(node.node_id)
        assert graph.nodes(car_var) == []

    def test_edges(self, ctx, tiny_video):
        frame = tiny_video.frame(0)
        graph = FrameGraph(frame)
        car_var, person_var = Car("c"), Person("p")
        n1 = graph.add_node(car_var, ctx.vobj_state(Car, tracked_detection(ctx, frame, 1, 1), frame))
        n2 = graph.add_node(person_var, ctx.vobj_state(Person, tracked_detection(ctx, frame, 2, 2), frame))
        graph.add_edge("spatial", n1, n2, distance=42.0)
        assert len(graph.edges("spatial")) == 1
        assert graph.edges("motion") == []
        graph.remove_node(n1.node_id)
        assert graph.edges("spatial") == []

    def test_invalid_edge_kind(self):
        with pytest.raises(ExecutionError):
            RelationEdge("teleport", 1, 2)

    def test_bindings_product(self, ctx, tiny_video):
        frame = tiny_video.frame(0)
        graph = FrameGraph(frame)
        car_var, person_var = Car("c"), Person("p")
        for track in (1, 2):
            graph.add_node(car_var, ctx.vobj_state(Car, tracked_detection(ctx, frame, 1, track), frame))
        graph.add_node(person_var, ctx.vobj_state(Person, tracked_detection(ctx, frame, 2, 3), frame))
        bindings = list(graph.bindings([car_var, person_var]))
        assert len(bindings) == 2

    def test_bindings_empty_when_variable_unmatched(self, ctx, tiny_video):
        graph = FrameGraph(tiny_video.frame(0))
        assert list(graph.bindings([Car("c")])) == []


class TestVObjState:
    def test_builtin_properties(self, ctx, tiny_video):
        frame = tiny_video.frame(0)
        det = tracked_detection(ctx, frame, 1, 7)
        state = ctx.vobj_state(Car, det, frame)
        assert state.get("bbox") == det.bbox
        assert state.get("track_id") == 7
        assert state.get("class_name") == "car"
        assert state.get("frame_rate") == tiny_video.fps
        assert state.get("center") == det.bbox.center

    def test_model_backed_property_charges_once(self, ctx, tiny_video):
        frame = tiny_video.frame(0)
        state = ctx.vobj_state(Car, tracked_detection(ctx, frame, 1, 7), frame)
        before = ctx.clock.elapsed_ms
        color1 = state.get("color")
        cost_first = ctx.clock.elapsed_ms - before
        color2 = state.get("color")
        assert color1 == color2 == "red"
        assert ctx.clock.elapsed_ms - before == cost_first  # cached within the frame

    def test_intrinsic_reuse_across_frames(self, ctx, tiny_video):
        frame0, frame1 = tiny_video.frame(0), tiny_video.frame(1)
        s0 = ctx.vobj_state(Car, tracked_detection(ctx, frame0, 1, 7), frame0)
        assert s0.get("color") == "red"
        cost_after_first = ctx.clock.elapsed_ms
        s1 = ctx.vobj_state(Car, tracked_detection(ctx, frame1, 1, 7), frame1)
        assert s1.get("color") == "red"
        assert ctx.clock.elapsed_ms == cost_after_first  # reused, no new model charge
        assert ctx.reuse_stats.total_hits == 1

    def test_reuse_disabled_recomputes(self, tiny_video, zoo):
        ctx = ExecutionContext(tiny_video, zoo, reuse_enabled=False)
        frame0, frame1 = tiny_video.frame(0), tiny_video.frame(1)
        ctx.vobj_state(Car, tracked_detection(ctx, frame0, 1, 7), frame0).get("color")
        first = ctx.clock.elapsed_ms
        ctx.vobj_state(Car, tracked_detection(ctx, frame1, 1, 7), frame1).get("color")
        assert ctx.clock.elapsed_ms > first

    def test_python_property(self, ctx, tiny_video):
        frame = tiny_video.frame(0)
        state = ctx.vobj_state(Car, tracked_detection(ctx, frame, 1, 7), frame)
        assert state.get("center") == state.get("bbox").center

    def test_stateful_property_uses_history(self, ctx, tiny_video):
        # Feed two consecutive frames through states sharing the track state.
        for frame_id in (0, 1):
            frame = tiny_video.frame(frame_id)
            state = ctx.vobj_state(Car, tracked_detection(ctx, frame, 1, 7), frame)
            speed = state.get("speed")
        assert speed == pytest.approx(6.0, abs=1.0)  # the tiny car moves 6 px/frame

    def test_stateful_without_track_raises(self, ctx, tiny_video):
        frame = tiny_video.frame(0)
        det = Detection("car", frame.instance_by_id(1).bbox, 0.9, 0, gt_object_id=1, track_id=None)
        state = VObjState(Car, det, frame, ctx, track_state=None)
        with pytest.raises(ExecutionError):
            state.get("speed")

    def test_unknown_property_raises(self, ctx, tiny_video):
        frame = tiny_video.frame(0)
        state = ctx.vobj_state(Car, tracked_detection(ctx, frame, 1, 7), frame)
        with pytest.raises(ExecutionError):
            state.get("altitude")


class TestTrackState:
    def test_record_once_per_frame(self):
        ts = TrackState(Car, 1)
        ts.record("center", 0, (0, 0), window=3)
        ts.record("center", 0, (1, 1), window=3)  # same frame overwrites
        ts.record("center", 1, (2, 2), window=3)
        assert ts.history("center") == [(1, 1), (2, 2)]

    def test_window_bounded(self):
        ts = TrackState(Car, 1)
        for f in range(10):
            ts.record("center", f, (f, f), window=3)
        assert len(ts.history("center")) == 3
        assert ts.history("center")[-1] == (9, 9)

    def test_window_grow_preserves_history(self):
        ts = TrackState(Car, 1)
        for f in range(3):
            ts.record("center", f, (f, f), window=2)
        assert ts.history("center") == [(1, 1), (2, 2)]
        # A property asking for a larger window keeps what was recorded.
        ts.record("center", 3, (3, 3), window=4)
        assert ts.history("center") == [(1, 1), (2, 2), (3, 3)]
        ts.record("center", 4, (4, 4), window=4)
        assert ts.history("center") == [(1, 1), (2, 2), (3, 3), (4, 4)]

    def test_window_shrink_keeps_most_recent(self):
        ts = TrackState(Car, 1)
        for f in range(4):
            ts.record("center", f, (f, f), window=4)
        ts.record("center", 4, (4, 4), window=2)
        assert ts.history("center") == [(3, 3), (4, 4)]

    def test_resize_on_same_frame_still_overwrites(self):
        ts = TrackState(Car, 1)
        ts.record("center", 0, (0, 0), window=2)
        ts.record("center", 0, (9, 9), window=5)  # same frame, new window
        assert ts.history("center") == [(9, 9)]


class TestRelationState:
    def test_builtin_relation_properties(self, ctx, tiny_video):
        frame = tiny_video.frame(0)
        car_state = ctx.vobj_state(Car, tracked_detection(ctx, frame, 1, 1), frame)
        person_state = ctx.vobj_state(Person, tracked_detection(ctx, frame, 2, 2), frame)
        rel_state = ctx.relation_state(PersonBallInteraction, person_state, car_state, frame)
        assert rel_state.get("distance") > 0
        assert 0 <= rel_state.get("iou") <= 1
        assert rel_state.get("frame_id") == 0

    def test_interaction_property_via_model(self, zoo, suspect_clip):
        ctx = ExecutionContext(suspect_clip, zoo)
        event = next(e for e in suspect_clip.events if e.kind == "get_into")
        frame = suspect_clip.frame(event.start_frame + 1)
        person_inst = frame.instance_by_id(event.subject_id)
        car_inst = frame.instance_by_id(event.object_id)
        p_state = ctx.vobj_state(Person, Detection("person", person_inst.bbox, 0.9, frame.frame_id, gt_object_id=event.subject_id, track_id=1), frame)
        c_state = ctx.vobj_state(Car, Detection("car", car_inst.bbox, 0.9, frame.frame_id, gt_object_id=event.object_id, track_id=2), frame)
        from repro.frontend.builtin import GetsInto

        rel_state = ctx.relation_state(GetsInto, p_state, c_state, frame)
        assert rel_state.get("interaction") in ("get_into", None)


class TestExecutionContextSharing:
    def test_detection_cache_shared(self, ctx, tiny_video):
        frame = tiny_video.frame(0)
        a = ctx.detect("yolox", frame)
        cost = ctx.clock.elapsed_ms
        b = ctx.detect("yolox", frame)
        assert a is b
        assert ctx.clock.elapsed_ms == cost

    def test_release_frame_clears_cache(self, ctx, tiny_video):
        frame = tiny_video.frame(0)
        ctx.detect("yolox", frame)
        ctx.release_frame(0)
        cost = ctx.clock.elapsed_ms
        ctx.detect("yolox", frame)
        assert ctx.clock.elapsed_ms > cost

    def test_track_state_identity(self, ctx):
        assert ctx.track_state(Car, 5) is ctx.track_state(Car, 5)
        assert ctx.track_state(Car, 5) is not ctx.track_state(Person, 5)
        assert ctx.track_state(Car, None) is None

    def test_release_frame_keeps_other_frames(self, ctx, tiny_video):
        f0, f1 = tiny_video.frame(0), tiny_video.frame(1)
        ctx.detect("yolox", f0)
        ctx.detect("yolox", f1)
        cost = ctx.clock.elapsed_ms
        ctx.release_frame(0)
        ctx.detect("yolox", f1)  # the other frame's cache survives eviction
        assert ctx.clock.elapsed_ms == cost
        ctx.detect("yolox", f0)  # the released frame is recomputed
        assert ctx.clock.elapsed_ms > cost

    def test_release_unknown_frame_is_a_noop(self, ctx):
        ctx.release_frame(12345)


class TestSceneState:
    def test_scene_state_cached_per_frame(self, ctx, tiny_video):
        from repro.frontend.builtin import TrafficScene

        frame = tiny_video.frame(0)
        state = ctx.scene_state(TrafficScene, frame)
        assert ctx.scene_state(TrafficScene, frame) is state
        assert ctx.scene_state(TrafficScene, tiny_video.frame(1)) is not state
        ctx.release_frame(0)
        assert ctx.scene_state(TrafficScene, frame) is not state

    def test_scene_property_charged_once_per_frame(self, ctx, tiny_video):
        from repro.frontend.builtin import TrafficScene
        from repro.frontend.properties import stateless

        class CrowdScene(TrafficScene):
            @stateless(inputs=("num_objects",))
            def crowded(self, num_objects):
                return num_objects > 1

        frame = tiny_video.frame(0)
        state = ctx.scene_state(CrowdScene, frame)
        first = state.get("crowded")
        cost = ctx.clock.elapsed_ms
        assert cost > 0
        assert state.get("crowded") == first
        assert ctx.clock.elapsed_ms == cost  # memoised: no second python charge
        # Every binding enumerated on the frame sees the same memoised state.
        assert ctx.scene_state(CrowdScene, frame).get("crowded") == first
        assert ctx.clock.elapsed_ms == cost
