"""Tests for the multi-video batch API (MultiCameraSession / execute_over)."""

import pytest

from repro.backend.results import Event, MultiCameraResult, QueryResult
from repro.backend.session import MultiCameraSession, QuerySession, _named_feeds
from repro.common.config import VideoSpec
from repro.frontend.builtin import Car
from repro.frontend.higher_order import DurationQuery
from repro.frontend.query import Query, count_distinct
from repro.videosim.datasets import camera_clip
from repro.videosim.video import SyntheticVideo


class RedCarQuery(Query):
    """The quickstart/amber-alert style example query."""

    def __init__(self):
        self.car = Car("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.bbox)


class CarCountQuery(Query):
    def __init__(self):
        self.car = Car("car")

    def video_constraint(self):
        return self.car.score > 0.5

    def video_output(self):
        return (count_distinct(self.car.track_id, label="num_cars"),)


@pytest.fixture(scope="module")
def feeds():
    return {
        "jackson": camera_clip("jackson", duration_s=5, seed=2),
        "banff": camera_clip("banff", duration_s=5, seed=1),
    }


class TestMultiCameraSession:
    def test_example_query_across_two_feeds(self, feeds, zoo, fast_config):
        multi = MultiCameraSession(feeds, zoo=zoo, config=fast_config)
        merged = multi.execute(RedCarQuery())
        assert isinstance(merged, MultiCameraResult)
        assert merged.cameras == ["jackson", "banff"]
        for name, video in feeds.items():
            assert merged.camera(name).num_frames_processed == video.num_frames
        assert merged.num_frames_processed == sum(v.num_frames for v in feeds.values())
        assert merged.total_ms == pytest.approx(
            sum(r.total_ms for _, r in merged)
        )

    def test_per_feed_results_match_single_sessions(self, feeds, zoo, fast_config):
        merged = MultiCameraSession(feeds, zoo=zoo, config=fast_config).execute(RedCarQuery())
        for name, video in feeds.items():
            solo = QuerySession(video, zoo=zoo, config=fast_config).execute(RedCarQuery())
            assert merged.camera(name).matched_frames == solo.matched_frames
            assert merged.camera(name).num_matches == solo.num_matches

    def test_merge_is_deterministic(self, feeds, zoo, fast_config):
        first = MultiCameraSession(feeds, zoo=zoo, config=fast_config).execute(RedCarQuery())
        second = MultiCameraSession(feeds, zoo=zoo, config=fast_config).execute(RedCarQuery())
        assert first.matched_frames() == second.matched_frames()
        assert first.merged_events() == second.merged_events()
        assert first.merged_aggregates() == second.merged_aggregates()

    def test_count_aggregates_sum_across_feeds(self, feeds, zoo, fast_config):
        merged = MultiCameraSession(feeds, zoo=zoo, config=fast_config).execute(CarCountQuery())
        per_feed = [r.aggregates["num_cars"] for _, r in merged]
        assert merged.merged_aggregates()["num_cars"] == sum(per_feed)
        assert all(count > 0 for count in per_feed)

    def test_sequence_feeds_get_unique_names(self, zoo, fast_config):
        videos = [camera_clip("banff", duration_s=5, seed=1), camera_clip("banff", duration_s=5, seed=4)]
        multi = MultiCameraSession(videos, zoo=zoo, config=fast_config)
        assert multi.cameras == ["banff", "banff#2"]

    def test_execute_many_returns_one_merge_per_query(self, feeds, zoo, fast_config):
        multi = MultiCameraSession(feeds, zoo=zoo, config=fast_config)
        merged = multi.execute_many([RedCarQuery(), CarCountQuery()])
        assert [m.query_name for m in merged] == ["RedCarQuery", "CarCountQuery"]
        assert all(m.cameras == ["jackson", "banff"] for m in merged)

    def test_empty_feed_set_rejected(self, zoo, fast_config):
        with pytest.raises(ValueError):
            MultiCameraSession({}, zoo=zoo, config=fast_config)

    def test_unknown_camera_raises(self, feeds, zoo, fast_config):
        merged = MultiCameraSession(feeds, zoo=zoo, config=fast_config).execute(RedCarQuery())
        with pytest.raises(KeyError):
            merged.camera("nonexistent")


class TestMergedViews:
    """Direct coverage of MultiCameraResult's merged views (previously only
    exercised indirectly through determinism checks)."""

    @staticmethod
    def _feed_result(frames=0, matched=(), events=(), breakdown=None):
        result = QueryResult(query_name="q")
        result.num_frames_processed = frames
        result.matched_frames = list(matched)
        result.events = list(events)
        result.cost_breakdown = dict(breakdown or {})
        return result

    def test_merged_events_orders_by_frame_then_camera(self):
        early = Event(start_frame=5, end_frame=9)
        tie_a = Event(start_frame=10, end_frame=12)
        tie_b = Event(start_frame=10, end_frame=12)
        late = Event(start_frame=20, end_frame=25)
        merged = MultiCameraResult(
            query_name="q",
            per_camera={
                "zebra": self._feed_result(events=[tie_b, early]),
                "alpha": self._feed_result(events=[late, tie_a]),
            },
        )
        # Sorted by (start, end); the (10, 12) tie breaks by camera name.
        assert merged.merged_events() == [
            ("zebra", early),
            ("alpha", tie_a),
            ("zebra", tie_b),
            ("alpha", late),
        ]

    def test_matched_frames_keeps_feed_local_ids_per_camera(self):
        merged = MultiCameraResult(
            query_name="q",
            per_camera={
                "a": self._feed_result(frames=100, matched=[3, 7]),
                "b": self._feed_result(frames=50, matched=[7, 9]),
            },
        )
        assert merged.matched_frames() == {"a": [3, 7], "b": [7, 9]}
        # The view is a copy: mutating it must not corrupt the result.
        merged.matched_frames()["a"].append(99)
        assert merged.matched_frames() == {"a": [3, 7], "b": [7, 9]}

    def test_cost_breakdown_sums_accounts_across_feeds(self):
        merged = MultiCameraResult(
            query_name="q",
            per_camera={
                "a": self._feed_result(breakdown={"yolox": 100.0, "color_detect": 10.0}),
                "b": self._feed_result(breakdown={"yolox": 50.0, "kalman_tracker": 5.0}),
            },
        )
        breakdown = merged.cost_breakdown()
        assert breakdown["yolox"] == pytest.approx(150.0)
        assert breakdown["color_detect"] == pytest.approx(10.0)
        assert breakdown["kalman_tracker"] == pytest.approx(5.0)
        # Sorted by descending cost, like every other breakdown view.
        assert list(breakdown) == sorted(breakdown, key=lambda k: -breakdown[k])

    def test_merged_views_from_a_real_execution(self, feeds, zoo, fast_config):
        multi = MultiCameraSession(feeds, zoo=zoo, config=fast_config)
        merged = multi.execute(DurationQuery(RedCarQuery(), duration_s=1.0))
        tagged = merged.merged_events()
        # Every event is tagged with a real camera and appears in its feed's
        # own result; the merge is (start, end, camera)-ordered.
        keys = [(e.start_frame, e.end_frame, c) for c, e in tagged]
        assert keys == sorted(keys)
        for camera, event in tagged:
            assert event in merged.camera(camera).events
        assert set(merged.matched_frames()) == set(feeds)
        for camera, frames in merged.matched_frames().items():
            assert frames == merged.camera(camera).matched_frames
        # The merged breakdown sums the per-feed scan accounting.
        breakdown = merged.cost_breakdown()
        assert breakdown["yolox"] == pytest.approx(
            sum(merged.camera(c).cost_breakdown.get("yolox", 0.0) for c in merged.cameras)
        )


class TestFeedNaming:
    """Regression tests for the alias-shadowing bug in feed naming."""

    @staticmethod
    def _video(name):
        return SyntheticVideo(
            VideoSpec(name, fps=10, width=64, height=48, duration_s=1), [], seed=0
        )

    def test_alias_never_shadows_a_natural_name(self):
        """[cam, cam, cam#2]: the second 'cam' must NOT take the alias
        'cam#2' — that name belongs to the third feed, and stealing it made
        result.camera('cam#2') address the wrong video."""
        cam1, cam2, real = self._video("cam"), self._video("cam"), self._video("cam#2")
        feeds = _named_feeds([cam1, cam2, real])
        assert list(feeds) == ["cam", "cam#3", "cam#2"]
        assert feeds["cam#2"] is real
        assert feeds["cam#3"] is cam2

    def test_session_addresses_the_right_video(self, zoo, fast_config):
        videos = [
            camera_clip("banff", duration_s=5, seed=1),
            camera_clip("banff", duration_s=5, seed=4),
            camera_clip("banff", duration_s=5, seed=8),
        ]
        # Rename the third feed to collide with the would-be alias.
        videos[2].spec = VideoSpec("banff#2", 15, 1280, 720, 5)
        multi = MultiCameraSession(videos, zoo=zoo, config=fast_config)
        assert multi.cameras == ["banff", "banff#3", "banff#2"]
        assert multi.sessions["banff#2"].video is videos[2]
        assert multi.sessions["banff#3"].video is videos[1]

    def test_plain_duplicates_still_get_dense_suffixes(self):
        feeds = _named_feeds([self._video("cam"), self._video("cam"), self._video("cam")])
        assert list(feeds) == ["cam", "cam#2", "cam#3"]


class TestMergedAggregates:
    @staticmethod
    def _feed_result(frames, aggregates, kinds):
        from repro.backend.results import QueryResult

        result = QueryResult(query_name="q")
        result.num_frames_processed = frames
        result.aggregates = dict(aggregates)
        result.aggregate_kinds = dict(kinds)
        return result

    def test_max_per_frame_takes_the_maximum(self):
        merged = MultiCameraResult(
            query_name="q",
            per_camera={
                "a": self._feed_result(100, {"peak": 3}, {"peak": "max_per_frame"}),
                "b": self._feed_result(100, {"peak": 2}, {"peak": "max_per_frame"}),
            },
        )
        assert merged.merged_aggregates()["peak"] == 3

    def test_counts_sum_and_averages_weight_by_frames(self):
        merged = MultiCameraResult(
            query_name="q",
            per_camera={
                "a": self._feed_result(
                    100,
                    {"n": 4, "avg": 2.0, "plates": ["x"]},
                    {"n": "count_distinct", "avg": "average_per_frame", "plates": "collect"},
                ),
                "b": self._feed_result(
                    300,
                    {"n": 1, "avg": 6.0, "plates": ["y", "z"]},
                    {"n": "count_distinct", "avg": "average_per_frame", "plates": "collect"},
                ),
            },
        )
        out = merged.merged_aggregates()
        assert out["n"] == 5
        assert out["avg"] == pytest.approx((2.0 * 100 + 6.0 * 300) / 400)
        assert out["plates"] == ["x", "y", "z"]


class TestExecuteOver:
    def test_session_video_runs_first_by_default(self, tiny_video, feeds, zoo, fast_config):
        session = QuerySession(tiny_video, zoo=zoo, config=fast_config)
        merged = session.execute_over(feeds, [RedCarQuery()])
        assert len(merged) == 1
        assert merged[0].cameras == ["tiny", "jackson", "banff"]
        # The session's own feed produced the same result it would alone.
        solo = QuerySession(tiny_video, zoo=zoo, config=fast_config).execute(RedCarQuery())
        assert merged[0].camera("tiny").matched_frames == solo.matched_frames

    def test_exclude_own_video(self, tiny_video, feeds, zoo, fast_config):
        session = QuerySession(tiny_video, zoo=zoo, config=fast_config)
        merged = session.execute_over(feeds, [RedCarQuery()], include_self=False)
        assert merged[0].cameras == ["jackson", "banff"]

    def test_name_collision_with_own_video(self, zoo, fast_config):
        own = camera_clip("banff", duration_s=5, seed=9)
        session = QuerySession(own, zoo=zoo, config=fast_config)
        merged = session.execute_over([camera_clip("banff", duration_s=5, seed=1)], [RedCarQuery()])
        assert merged[0].cameras == ["banff#2", "banff"]

    def test_cost_breakdown_tracks_the_multicamera_run(self, tiny_video, feeds, zoo, fast_config):
        session = QuerySession(tiny_video, zoo=zoo, config=fast_config)
        session.execute(RedCarQuery())
        single = session.cost_breakdown()
        session.execute_over(feeds, [RedCarQuery()])
        multi = session.cost_breakdown()
        # The breakdown follows the execute_over run (all feeds summed), not
        # the stale single-video context.
        assert multi != single
        per_feed = session.last_multi.cost_breakdown()
        assert set(per_feed) == {"tiny", "jackson", "banff"}
        assert multi["yolox"] == pytest.approx(sum(bd.get("yolox", 0.0) for bd in per_feed.values()))
        # A later single-video run flips reporting back.
        session.execute(RedCarQuery())
        assert session.last_multi is None
        assert session.cost_breakdown() == single


class TestFeedFailureSettling:
    """Regression tests for the future-settling bug: a failing feed used to
    re-raise immediately, abandoning in-flight siblings and discarding the
    results surviving feeds had already produced."""

    @staticmethod
    def _arm(multi, fail_feed, ran, monkeypatch):
        for name, session in multi.sessions.items():
            if name == fail_feed:
                def boom(*a, **kw):
                    raise RuntimeError("injected feed failure")

                monkeypatch.setattr(session, "execute_many", boom)
            else:
                real = session.execute_many

                def tracked(*a, _real=real, _name=name, **kw):
                    out = _real(*a, **kw)
                    ran.append(_name)
                    return out

                monkeypatch.setattr(session, "execute_many", tracked)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_single_error_names_feed_and_keeps_survivors(
        self, feeds, zoo, fast_config, monkeypatch, workers
    ):
        from repro.common.errors import ExecutionError

        multi = MultiCameraSession(feeds, zoo=zoo, config=fast_config, max_workers=workers)
        ran = []
        self._arm(multi, "banff", ran, monkeypatch)
        with pytest.raises(ExecutionError) as excinfo:
            multi.execute(RedCarQuery())
        # One error, naming the failing feed, with the survivors settled and
        # their finished results attached.
        assert "'banff'" in str(excinfo.value)
        assert set(excinfo.value.failed_feeds) == {"banff"}
        assert ran == ["jackson"]
        assert set(excinfo.value.partial_results) == {"jackson"}
        [result] = excinfo.value.partial_results["jackson"]
        assert result.num_frames_processed == feeds["jackson"].num_frames
