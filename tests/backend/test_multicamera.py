"""Tests for the multi-video batch API (MultiCameraSession / execute_over)."""

import pytest

from repro.backend.results import MultiCameraResult
from repro.backend.session import MultiCameraSession, QuerySession
from repro.frontend.builtin import Car
from repro.frontend.query import Query, count_distinct
from repro.videosim.datasets import camera_clip


class RedCarQuery(Query):
    """The quickstart/amber-alert style example query."""

    def __init__(self):
        self.car = Car("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.bbox)


class CarCountQuery(Query):
    def __init__(self):
        self.car = Car("car")

    def video_constraint(self):
        return self.car.score > 0.5

    def video_output(self):
        return (count_distinct(self.car.track_id, label="num_cars"),)


@pytest.fixture(scope="module")
def feeds():
    return {
        "jackson": camera_clip("jackson", duration_s=5, seed=2),
        "banff": camera_clip("banff", duration_s=5, seed=1),
    }


class TestMultiCameraSession:
    def test_example_query_across_two_feeds(self, feeds, zoo, fast_config):
        multi = MultiCameraSession(feeds, zoo=zoo, config=fast_config)
        merged = multi.execute(RedCarQuery())
        assert isinstance(merged, MultiCameraResult)
        assert merged.cameras == ["jackson", "banff"]
        for name, video in feeds.items():
            assert merged.camera(name).num_frames_processed == video.num_frames
        assert merged.num_frames_processed == sum(v.num_frames for v in feeds.values())
        assert merged.total_ms == pytest.approx(
            sum(r.total_ms for _, r in merged)
        )

    def test_per_feed_results_match_single_sessions(self, feeds, zoo, fast_config):
        merged = MultiCameraSession(feeds, zoo=zoo, config=fast_config).execute(RedCarQuery())
        for name, video in feeds.items():
            solo = QuerySession(video, zoo=zoo, config=fast_config).execute(RedCarQuery())
            assert merged.camera(name).matched_frames == solo.matched_frames
            assert merged.camera(name).num_matches == solo.num_matches

    def test_merge_is_deterministic(self, feeds, zoo, fast_config):
        first = MultiCameraSession(feeds, zoo=zoo, config=fast_config).execute(RedCarQuery())
        second = MultiCameraSession(feeds, zoo=zoo, config=fast_config).execute(RedCarQuery())
        assert first.matched_frames() == second.matched_frames()
        assert first.merged_events() == second.merged_events()
        assert first.merged_aggregates() == second.merged_aggregates()

    def test_count_aggregates_sum_across_feeds(self, feeds, zoo, fast_config):
        merged = MultiCameraSession(feeds, zoo=zoo, config=fast_config).execute(CarCountQuery())
        per_feed = [r.aggregates["num_cars"] for _, r in merged]
        assert merged.merged_aggregates()["num_cars"] == sum(per_feed)
        assert all(count > 0 for count in per_feed)

    def test_sequence_feeds_get_unique_names(self, zoo, fast_config):
        videos = [camera_clip("banff", duration_s=5, seed=1), camera_clip("banff", duration_s=5, seed=4)]
        multi = MultiCameraSession(videos, zoo=zoo, config=fast_config)
        assert multi.cameras == ["banff", "banff#2"]

    def test_execute_many_returns_one_merge_per_query(self, feeds, zoo, fast_config):
        multi = MultiCameraSession(feeds, zoo=zoo, config=fast_config)
        merged = multi.execute_many([RedCarQuery(), CarCountQuery()])
        assert [m.query_name for m in merged] == ["RedCarQuery", "CarCountQuery"]
        assert all(m.cameras == ["jackson", "banff"] for m in merged)

    def test_empty_feed_set_rejected(self, zoo, fast_config):
        with pytest.raises(ValueError):
            MultiCameraSession({}, zoo=zoo, config=fast_config)

    def test_unknown_camera_raises(self, feeds, zoo, fast_config):
        merged = MultiCameraSession(feeds, zoo=zoo, config=fast_config).execute(RedCarQuery())
        with pytest.raises(KeyError):
            merged.camera("nonexistent")


class TestMergedAggregates:
    @staticmethod
    def _feed_result(frames, aggregates, kinds):
        from repro.backend.results import QueryResult

        result = QueryResult(query_name="q")
        result.num_frames_processed = frames
        result.aggregates = dict(aggregates)
        result.aggregate_kinds = dict(kinds)
        return result

    def test_max_per_frame_takes_the_maximum(self):
        merged = MultiCameraResult(
            query_name="q",
            per_camera={
                "a": self._feed_result(100, {"peak": 3}, {"peak": "max_per_frame"}),
                "b": self._feed_result(100, {"peak": 2}, {"peak": "max_per_frame"}),
            },
        )
        assert merged.merged_aggregates()["peak"] == 3

    def test_counts_sum_and_averages_weight_by_frames(self):
        merged = MultiCameraResult(
            query_name="q",
            per_camera={
                "a": self._feed_result(
                    100,
                    {"n": 4, "avg": 2.0, "plates": ["x"]},
                    {"n": "count_distinct", "avg": "average_per_frame", "plates": "collect"},
                ),
                "b": self._feed_result(
                    300,
                    {"n": 1, "avg": 6.0, "plates": ["y", "z"]},
                    {"n": "count_distinct", "avg": "average_per_frame", "plates": "collect"},
                ),
            },
        )
        out = merged.merged_aggregates()
        assert out["n"] == 5
        assert out["avg"] == pytest.approx((2.0 * 100 + 6.0 * 300) / 400)
        assert out["plates"] == ["x", "y", "z"]


class TestExecuteOver:
    def test_session_video_runs_first_by_default(self, tiny_video, feeds, zoo, fast_config):
        session = QuerySession(tiny_video, zoo=zoo, config=fast_config)
        merged = session.execute_over(feeds, [RedCarQuery()])
        assert len(merged) == 1
        assert merged[0].cameras == ["tiny", "jackson", "banff"]
        # The session's own feed produced the same result it would alone.
        solo = QuerySession(tiny_video, zoo=zoo, config=fast_config).execute(RedCarQuery())
        assert merged[0].camera("tiny").matched_frames == solo.matched_frames

    def test_exclude_own_video(self, tiny_video, feeds, zoo, fast_config):
        session = QuerySession(tiny_video, zoo=zoo, config=fast_config)
        merged = session.execute_over(feeds, [RedCarQuery()], include_self=False)
        assert merged[0].cameras == ["jackson", "banff"]

    def test_name_collision_with_own_video(self, zoo, fast_config):
        own = camera_clip("banff", duration_s=5, seed=9)
        session = QuerySession(own, zoo=zoo, config=fast_config)
        merged = session.execute_over([camera_clip("banff", duration_s=5, seed=1)], [RedCarQuery()])
        assert merged[0].cameras == ["banff#2", "banff"]

    def test_cost_breakdown_tracks_the_multicamera_run(self, tiny_video, feeds, zoo, fast_config):
        session = QuerySession(tiny_video, zoo=zoo, config=fast_config)
        session.execute(RedCarQuery())
        single = session.cost_breakdown()
        session.execute_over(feeds, [RedCarQuery()])
        multi = session.cost_breakdown()
        # The breakdown follows the execute_over run (all feeds summed), not
        # the stale single-video context.
        assert multi != single
        per_feed = session.last_multi.cost_breakdown()
        assert set(per_feed) == {"tiny", "jackson", "banff"}
        assert multi["yolox"] == pytest.approx(sum(bd.get("yolox", 0.0) for bd in per_feed.values()))
        # A later single-video run flips reporting back.
        session.execute(RedCarQuery())
        assert session.last_multi is None
        assert session.cost_breakdown() == single
