"""Tests for query analysis, planning, DAG optimization, and execution."""

import pytest

from repro.backend.analysis import analyze_query
from repro.backend.executor import Executor, extract_events
from repro.backend.planner import Planner, PlannerConfig
from repro.backend.results import Event, MatchRecord, QueryResult
from repro.backend.runtime import ExecutionContext
from repro.backend.session import QuerySession
from repro.common.errors import PlanError
from repro.frontend.builtin import Ball, Car, Person, PersonBallInteraction, RedCar
from repro.frontend.higher_order import CollisionQuery, DurationQuery, SequentialQuery, SpeedQuery
from repro.frontend.query import Query, count_distinct


class RedCarQuery(Query):
    def __init__(self):
        self.car = Car("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.bbox, self.car.license_plate)


class PersonQuery(Query):
    def __init__(self):
        self.person = Person("person")

    def frame_constraint(self):
        return self.person.score > 0.5

    def frame_output(self):
        return (self.person.track_id,)


class TurnCountQuery(Query):
    def __init__(self):
        self.car = Car("car")

    def video_constraint(self):
        return (self.car.score > 0.5) & (self.car.direction == "turn_right")

    def video_output(self):
        return (count_distinct(self.car.track_id, label="num_turning"),)


class TestAnalysis:
    def test_variable_info(self):
        analysis = analyze_query(RedCarQuery())
        assert len(analysis.variables) == 1
        info = analysis.variables[0]
        assert info.detector_model == "yolox"
        assert "color" in info.needed_properties
        assert "license_plate" in info.needed_properties
        # The query outputs track ids, so the plan must include a tracker.
        assert info.requires_tracking
        assert "color" in info.intrinsic_properties
        assert len(info.conjuncts) == 2

    def test_variable_info_accepts_equal_but_distinct_vobj(self):
        # A VObj rebuilt outside the analyzed query (e.g. a re-declared query
        # or a plan shipped across a process boundary) names the same logical
        # variable; lookup must fall back to the variable name instead of
        # demanding the identical object.
        analysis = analyze_query(RedCarQuery())
        rebuilt = Car("car")
        info = analysis.variable_info(rebuilt)
        assert info is analysis.variables[0]

    def test_variable_info_unknown_name_still_raises(self):
        analysis = analyze_query(RedCarQuery())
        with pytest.raises(PlanError, match="unknown variable"):
            analysis.variable_info(Car("other_car"))

    def test_video_constraint_pushdown(self):
        analysis = analyze_query(TurnCountQuery())
        assert analysis.filters_from_video_constraint
        assert analysis.variables[0].requires_tracking  # direction is stateful

    def test_multi_variable_residual(self):
        analysis = analyze_query(CollisionQuery(Car("c"), Person("p")))
        assert len(analysis.variables) == 2
        assert len(analysis.residual_conjuncts) == 1  # the distance predicate


class TestPlanner:
    def test_plan_structure(self, banff_clip, zoo, fast_config):
        planner = Planner(zoo, fast_config)
        plan = planner.plan(RedCarQuery(), banff_clip)
        kinds = plan.operator_kinds()
        assert "object_detector" in kinds
        assert "object_tracker" in kinds  # needed for intrinsic reuse
        assert "join" in kinds
        text = plan.describe()
        assert "yolox" in text and "branch [car]" in text

    def test_lazy_plan_interleaves_filters(self, zoo):
        config = PlannerConfig(enable_lazy=True, enable_fusion=False, profile_plans=False)
        plan = Planner(zoo, config).plan(RedCarQuery())
        branch = plan.branches["car"]
        kinds = [op.kind for op in branch]
        # score filter (builtin, no projector needed) comes before the color projector.
        assert kinds.index("object_filter") < kinds.index("projector")

    def test_unlazy_plan_projects_everything_first(self, zoo):
        config = PlannerConfig(enable_lazy=False, enable_fusion=False, profile_plans=False)
        plan = Planner(zoo, config).plan(RedCarQuery())
        kinds = [op.kind for op in plan.branches["car"]]
        assert kinds.index("projector") < kinds.index("object_filter")

    def test_fusion_reduces_operator_count(self, zoo):
        fused = Planner(zoo, PlannerConfig(enable_fusion=True, profile_plans=False)).plan(RedCarQuery())
        unfused = Planner(zoo, PlannerConfig(enable_fusion=False, profile_plans=False)).plan(RedCarQuery())
        assert len(fused.branches["car"]) < len(unfused.branches["car"])

    def test_registered_filters_added(self, zoo):
        class RedCarVObjQuery(Query):
            def __init__(self):
                self.car = RedCar("red")

            def frame_constraint(self):
                return self.car.score > 0.5

            def frame_output(self):
                return (self.car.track_id,)

        config = PlannerConfig(use_registered_filters=True, profile_plans=False)
        plan = Planner(zoo, config).plan(RedCarVObjQuery())
        assert plan.count_kind("frame_filter") == 1

    def test_specialized_candidates_generated(self, zoo):
        class RedCarVObjQuery(Query):
            def __init__(self):
                self.car = RedCar("red")

            def frame_constraint(self):
                return (self.car.score > 0.5) & (self.car.color == "red")

            def frame_output(self):
                return (self.car.track_id,)

        planner = Planner(zoo, PlannerConfig(profile_plans=False))
        candidates = planner.candidate_plans(analyze_query(RedCarVObjQuery()))
        variants = {c.variant for c in candidates}
        assert any(v.startswith("specialized:") for v in variants)
        specialized = next(c for c in candidates if c.variant.startswith("specialized:"))
        assert "red_car_detector" in specialized.describe()

    def test_profiling_selects_accurate_plan(self, jackson_clip, zoo):
        class RedCarVObjQuery(Query):
            def __init__(self):
                self.car = RedCar("red")

            def frame_constraint(self):
                return (self.car.score > 0.5) & (self.car.color == "red")

            def frame_output(self):
                return (self.car.track_id,)

        config = PlannerConfig(profile_plans=True, canary_frames=30, accuracy_target=0.8)
        planner = Planner(zoo, config)
        plan = planner.plan(RedCarVObjQuery(), jackson_clip)
        assert plan.estimated_cost_ms is not None
        assert plan.estimated_f1 is None or plan.estimated_f1 >= 0.8
        # Planning the same query class again on the same video reuses the cached variant.
        again = planner.plan(RedCarVObjQuery(), jackson_clip)
        assert again.variant == plan.variant

    def test_networkx_dag_shape(self, zoo, fast_config):
        plan = Planner(zoo, fast_config).plan(CollisionQuery(Car("c"), Person("p")))
        graph = plan.to_networkx()
        assert "video_reader" in graph
        assert "sink" in graph
        join_nodes = [n for n, data in graph.nodes(data=True) if data.get("kind") == "join"]
        assert len(join_nodes) == 1
        # Two branches converge at the join.
        assert graph.in_degree(join_nodes[0]) == 2


class TestExecutor:
    def test_red_car_query_finds_the_red_car(self, tiny_video, zoo, fast_config):
        session = QuerySession(tiny_video, zoo=zoo, config=fast_config)
        result = session.execute(RedCarQuery())
        assert result.num_frames_processed == tiny_video.num_frames
        # The tiny video's only car is red; most frames should match.
        assert len(result.matched_frames) > tiny_video.num_frames * 0.5
        record = result.matches[result.matched_frames[0]][0]
        assert record.outputs[2].startswith("ABC")  # license plate output

    def test_per_frame_series_length(self, tiny_video, zoo, fast_config):
        result = QuerySession(tiny_video, zoo=zoo, config=fast_config).execute(RedCarQuery())
        assert len(result.per_frame_ms) == tiny_video.num_frames
        assert result.total_ms == pytest.approx(sum(result.per_frame_ms), rel=0.05)

    def test_video_aggregation(self, jackson_clip, zoo, fast_config):
        result = QuerySession(jackson_clip, zoo=zoo, config=fast_config).execute(TurnCountQuery())
        expected = {
            o.object_id
            for o in jackson_clip.ground_truth_tracks()
            if o.class_name in ("car", "bus", "truck") and o.attributes.get("direction") == "turn_right"
        }
        counted = result.aggregates["num_turning"]
        assert abs(counted - len(expected)) <= max(2, len(expected))

    def test_spatial_query_execution(self, suspect_clip, zoo, fast_config):
        query = CollisionQuery(Car("car"), Person("person"), max_distance=200)
        result = QuerySession(suspect_clip, zoo=zoo, config=fast_config).execute(query)
        assert result.matched_frames  # the scripted person approaches the car

    def test_duration_query_filters_short_events(self, banff_clip, zoo, fast_config):
        base = PersonQuery()
        long_duration = DurationQuery(base, duration_s=3600)  # nothing lasts an hour here
        result = QuerySession(banff_clip, zoo=zoo, config=fast_config).execute(long_duration)
        assert result.events == []
        assert result.matched_frames == []

    def test_duration_query_finds_persistent_objects(self, tiny_video, zoo, fast_config):
        query = DurationQuery(RedCarQuery(), duration_s=1.0)
        result = QuerySession(tiny_video, zoo=zoo, config=fast_config).execute(query)
        assert result.events
        assert result.aggregates["num_events"] == len(result.events)

    def test_temporal_query_pairs_events(self, tiny_video, zoo, fast_config):
        first = RedCarQuery()
        second = PersonQuery()
        sequential = SequentialQuery(first, second, max_gap_s=10)
        result = QuerySession(tiny_video, zoo=zoo, config=fast_config).execute(sequential)
        assert "num_event_pairs" in result.aggregates

    def test_execute_many_shares_work(self, tiny_video, zoo, fast_config):
        session = QuerySession(tiny_video, zoo=zoo, config=fast_config)
        individual = sum(session.execute(q).total_ms for q in (RedCarQuery(), PersonQuery()))
        shared = sum(r.total_ms for r in session.execute_many([RedCarQuery(), PersonQuery()]))
        assert shared < individual

    def test_session_plan_and_explain(self, tiny_video, zoo, fast_config):
        session = QuerySession(tiny_video, zoo=zoo, config=fast_config)
        assert "branch [car]" in session.explain(RedCarQuery())
        with pytest.raises(PlanError):
            session.plan(SequentialQuery(RedCarQuery(), PersonQuery()))

    def test_cost_breakdown_populated(self, tiny_video, zoo, fast_config):
        session = QuerySession(tiny_video, zoo=zoo, config=fast_config)
        result = session.execute(RedCarQuery())
        assert "yolox" in result.cost_breakdown
        assert session.cost_breakdown()


class TestExtractEvents:
    def _result_with(self, frames_by_signature):
        result = QueryResult(query_name="t")
        for signature, frames in frames_by_signature.items():
            for f in frames:
                result.matches.setdefault(f, []).append(MatchRecord(frame_id=f, binding=signature))
        return result

    def test_contiguous_run_is_one_event(self):
        result = self._result_with({(("car", 1),): [1, 2, 3, 4, 5]})
        events = extract_events(result)
        assert len(events) == 1
        assert events[0].num_frames == 5

    def test_gap_splits_events(self):
        result = self._result_with({(("car", 1),): [1, 2, 3, 20, 21]})
        events = extract_events(result, max_gap=5)
        assert len(events) == 2

    def test_min_length_filter(self):
        result = self._result_with({(("car", 1),): [1, 2, 3]})
        assert extract_events(result, min_length=5) == []

    def test_signatures_kept_separate(self):
        result = self._result_with({(("car", 1),): [1, 2], (("car", 2),): [1, 2]})
        assert len(extract_events(result)) == 2

    def test_single_frame_event_at_min_length_boundary(self):
        result = self._result_with({(("car", 1),): [7]})
        kept = extract_events(result, min_length=1)
        assert kept == [Event(7, 7, signature=(("car", 1),))]
        assert extract_events(result, min_length=2) == []

    def test_gap_exactly_max_gap_stays_one_event(self):
        result = self._result_with({(("car", 1),): [1, 6]})
        assert len(extract_events(result, max_gap=5)) == 1
        assert len(extract_events(result, max_gap=4)) == 2

    def test_min_length_counts_span_not_observations(self):
        # Frames 1 and 6 span 6 frames even though only 2 were observed.
        result = self._result_with({(("car", 1),): [1, 6]})
        events = extract_events(result, max_gap=5, min_length=6)
        assert events == [Event(1, 6, signature=(("car", 1),))]
        assert extract_events(result, max_gap=5, min_length=7) == []

    def test_interleaved_signatures_grouped_independently(self):
        result = self._result_with(
            {(("car", 1),): [1, 3, 5, 20], (("car", 2),): [2, 4, 6]}
        )
        events = extract_events(result, max_gap=5)
        assert [(e.signature, e.start_frame, e.end_frame) for e in events] == [
            ((("car", 1),), 1, 5),
            ((("car", 2),), 2, 6),
            ((("car", 1),), 20, 20),
        ]
