"""Tests for the adaptive scan scheduler.

Covers the four tentpole pieces — batch-level frame-filter gating,
early-exit streams, incremental temporal pairing, parallel multi-camera
execution — plus the retention-window frame release and the gate-skip
labelling of closed events.
"""

from collections import Counter

import pytest

from repro.backend.planner import PlannerConfig
from repro.backend.results import Event
from repro.backend.runtime import ExecutionContext
from repro.backend.session import MultiCameraSession, QuerySession
from repro.backend.streaming import OnlineEventGrouper, PlanStream
from repro.common.config import VideoSpec
from repro.frontend.builtin import Car, Person, RedCar
from repro.frontend.higher_order import DurationQuery, SequentialQuery
from repro.frontend.query import Query, count_distinct
from repro.models.detector import GeneralObjectDetector
from repro.videosim.datasets import camera_clip
from repro.videosim.entities import ObjectSpec
from repro.videosim.trajectory import LinearTrajectory, StationaryTrajectory
from repro.videosim.video import SyntheticVideo


class RedCarQuery(Query):
    """Plain Car VObj: no registered filters, so the gate never rejects."""

    def __init__(self):
        self.car = Car("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.bbox)


class GatedRedCarQuery(RedCarQuery):
    """RedCar VObj: carries the registered ``no_red_on_road`` frame filter."""

    def __init__(self):
        self.car = RedCar("car")


class PersonQuery(Query):
    def __init__(self):
        self.person = Person("person")

    def frame_constraint(self):
        return self.person.score > 0.5

    def frame_output(self):
        return (self.person.track_id,)


class CarCountQuery(Query):
    def __init__(self):
        self.car = Car("car")

    def video_constraint(self):
        return self.car.score > 0.5

    def video_output(self):
        return (count_distinct(self.car.track_id, label="num_cars"),)


@pytest.fixture
def pr1_config():
    """The pre-scheduler behaviour: filters in-pipeline, exhaustive scan."""
    return PlannerConfig(profile_plans=False, enable_scan_gating=False, enable_early_exit=False)


@pytest.fixture(scope="module")
def phased_video():
    """A red car (frames 20-60), then a person (frames 70-110), in 300 frames.

    Most frames contain no red car, so the registered ``no_red_on_road``
    filter rejects them; the long empty tail is what early exit skips.
    """
    spec = VideoSpec("phased", fps=10, width=640, height=480, duration_s=30)
    car = ObjectSpec(
        object_id=1,
        class_name="car",
        trajectory=LinearTrajectory((50, 300), (3.0, 0.0)),
        size=(100, 50),
        enter_frame=20,
        exit_frame=60,
        attributes={"color": "red", "vehicle_type": "sedan"},
    )
    person = ObjectSpec(
        object_id=2,
        class_name="person",
        trajectory=StationaryTrajectory((400, 350)),
        size=(30, 80),
        enter_frame=70,
        exit_frame=110,
        default_action="standing",
    )
    return SyntheticVideo(spec, [car, person], seed=7)


def spy_on_detect(monkeypatch):
    calls = Counter()
    original = GeneralObjectDetector.detect

    def spy(self, frame, clock=None):
        calls[(self.name, frame.frame_id)] += 1
        return original(self, frame, clock)

    monkeypatch.setattr(GeneralObjectDetector, "detect", spy)
    return calls


class TestFrameFilterGating:
    def test_gate_skips_detector_on_rejected_frames(
        self, phased_video, zoo, fast_config, monkeypatch
    ):
        calls = spy_on_detect(monkeypatch)
        session = QuerySession(phased_video, zoo=zoo, config=fast_config)
        session.execute(GatedRedCarQuery())
        gated_frames = len(calls)
        assert gated_frames < phased_video.num_frames / 2
        stats = session.last_context.scan_stats
        assert stats.leaf_frames_gated > 0
        assert stats.leaf_frames_gated + stats.leaf_frames_processed == phased_video.num_frames

    def test_no_gating_runs_detector_everywhere(self, phased_video, zoo, monkeypatch):
        calls = spy_on_detect(monkeypatch)
        config = PlannerConfig(
            profile_plans=False,
            use_registered_filters=False,
            enable_scan_gating=False,
            enable_early_exit=False,
        )
        QuerySession(phased_video, zoo=zoo, config=config).execute(GatedRedCarQuery())
        assert len(calls) == phased_video.num_frames

    def test_gated_results_match_in_pipeline_filters(
        self, phased_video, zoo, fast_config, pr1_config
    ):
        """Hoisting the filters into the gate must not change any result."""
        gated = QuerySession(phased_video, zoo=zoo, config=fast_config).execute(GatedRedCarQuery())
        piped = QuerySession(phased_video, zoo=zoo, config=pr1_config).execute(GatedRedCarQuery())
        assert gated.matched_frames == piped.matched_frames
        assert gated.matches == piped.matches
        assert gated.num_frames_processed == piped.num_frames_processed

    def test_shared_filter_model_evaluated_once_per_frame(
        self, phased_video, zoo, fast_config, pr1_config
    ):
        """Two queries sharing a filter pay for it once per frame, not twice."""
        batch = [GatedRedCarQuery(), GatedRedCarQuery()]
        gated = QuerySession(phased_video, zoo=zoo, config=fast_config)
        gated.execute_many(batch)
        assert gated.last_context.clock.calls["no_red_on_road"] == phased_video.num_frames
        assert gated.last_context.scan_stats.gate_cache_hits > 0

        piped = QuerySession(phased_video, zoo=zoo, config=pr1_config)
        piped.execute_many([GatedRedCarQuery(), GatedRedCarQuery()])
        assert piped.last_context.clock.calls["no_red_on_road"] == 2 * phased_video.num_frames

    def test_skip_masks_are_per_stream(self, phased_video, zoo, fast_config):
        """A stream without filters still sees every frame of a gated batch."""
        session = QuerySession(phased_video, zoo=zoo, config=fast_config)
        gated, ungated = session.execute_many([GatedRedCarQuery(), PersonQuery()])
        solo = QuerySession(phased_video, zoo=zoo, config=fast_config).execute(PersonQuery())
        assert ungated.matched_frames == solo.matched_frames
        assert session.last_context.scan_stats.leaf_frames_gated > 0


class TestEarlyExit:
    def test_exists_stops_at_first_determining_frame(self, phased_video, zoo, fast_config):
        unbounded = QuerySession(phased_video, zoo=zoo, config=fast_config).execute(RedCarQuery())
        first = unbounded.matched_frames[0]

        session = QuerySession(phased_video, zoo=zoo, config=fast_config)
        result = session.execute(RedCarQuery().exists())
        assert result.matched_frames == [first]
        assert session.last_context.clock.calls["video_reader"] == first + 1
        assert session.last_context.scan_stats.early_exit_frame == first

    def test_bounded_temporal_query_retires_mid_scan(self, phased_video, zoo, fast_config, pr1_config):
        """Incremental pairing makes `done` decidable for temporal queries."""
        unbounded = QuerySession(phased_video, zoo=zoo, config=pr1_config).execute(
            SequentialQuery(RedCarQuery(), PersonQuery(), max_gap_s=3)
        )
        session = QuerySession(phased_video, zoo=zoo, config=fast_config)
        bounded = session.execute(
            SequentialQuery(RedCarQuery(), PersonQuery(), max_gap_s=3).bounded(1)
        )
        assert bounded.events == unbounded.events[:1]
        assert session.last_context.clock.calls["video_reader"] < phased_video.num_frames

    def test_bounded_duration_query_stops_after_event_closes(self, phased_video, zoo, fast_config):
        session = QuerySession(phased_video, zoo=zoo, config=fast_config)
        result = session.execute(DurationQuery(RedCarQuery(), duration_s=2.0).bounded(1))
        assert len(result.events) == 1
        assert session.last_context.clock.calls["video_reader"] < phased_video.num_frames

    def test_aggregating_query_ignores_the_bound(self, phased_video, zoo, fast_config):
        """An aggregate needs the whole video; a declared bound must not truncate it."""
        full = QuerySession(phased_video, zoo=zoo, config=fast_config).execute(CarCountQuery())
        session = QuerySession(phased_video, zoo=zoo, config=fast_config)
        bounded = session.execute(CarCountQuery().bounded(1))
        assert bounded.aggregates == full.aggregates
        assert session.last_context.clock.calls["video_reader"] == phased_video.num_frames

    def test_scan_continues_for_unbounded_streams(self, phased_video, zoo, fast_config):
        session = QuerySession(phased_video, zoo=zoo, config=fast_config)
        bounded, unbounded = session.execute_many([RedCarQuery().exists(), PersonQuery()])
        assert session.last_context.scan_stats.early_exit_frame is None
        assert session.last_context.scan_stats.streams_retired == 1
        solo = QuerySession(phased_video, zoo=zoo, config=fast_config).execute(PersonQuery())
        assert unbounded.matched_frames == solo.matched_frames

    def test_bounded_rejects_non_positive_limits(self):
        from repro.common.errors import QueryDefinitionError

        with pytest.raises(QueryDefinitionError):
            RedCarQuery().bounded(0)
        with pytest.raises(QueryDefinitionError):
            RedCarQuery().bounded(True)  # bool is an int subclass; reject it

    def test_bound_truncates_even_with_early_exit_disabled(
        self, phased_video, zoo, pr1_config, fast_config
    ):
        """bounded(k) shapes the result; enable_early_exit only skips the scan."""
        exhaustive = QuerySession(phased_video, zoo=zoo, config=pr1_config).execute(
            RedCarQuery().bounded(3)
        )
        scheduled = QuerySession(phased_video, zoo=zoo, config=fast_config).execute(
            RedCarQuery().bounded(3)
        )
        assert exhaustive.matched_frames == scheduled.matched_frames
        assert len(exhaustive.matched_frames) == 3

    def test_bounded_duration_reports_first_closed_runs(self, zoo, fast_config, pr1_config):
        """Regression: the limit-th run to CLOSE is the answer.

        An earlier-starting run still open at the early-exit frame gets
        force-closed by finalize with a truncated extent; a start-sorted
        [:limit] cut let it displace the completed run that made ``done()``
        fire, so the same query reported different events with early exit
        on vs off."""
        spec = VideoSpec("two_runs", fps=10, width=640, height=480, duration_s=30)
        long_car = ObjectSpec(
            object_id=1,
            class_name="car",
            trajectory=StationaryTrajectory((100, 300)),
            size=(100, 50),
            enter_frame=10,
            exit_frame=290,
            attributes={"color": "red", "vehicle_type": "sedan"},
        )
        short_car = ObjectSpec(
            object_id=2,
            class_name="car",
            trajectory=StationaryTrajectory((400, 300)),
            size=(100, 50),
            enter_frame=30,
            exit_frame=60,
            attributes={"color": "red", "vehicle_type": "sedan"},
        )
        video = SyntheticVideo(spec, [long_car, short_car], seed=7)
        query = lambda: DurationQuery(RedCarQuery(), duration_s=2.0).bounded(1)

        session = QuerySession(video, zoo=zoo, config=fast_config)
        adaptive = session.execute(query())
        exhaustive = QuerySession(video, zoo=zoo, config=pr1_config).execute(query())

        # The bound did stop the scan early, while the long run was open.
        assert session.last_context.clock.calls["video_reader"] < video.num_frames
        # Identical answer either way: the short run, with its full extent.
        assert adaptive.events == exhaustive.events
        (event,) = adaptive.events
        assert event.end_frame < 100
        assert adaptive.matched_frames == exhaustive.matched_frames
        assert adaptive.matches == exhaustive.matches

    def test_bounded_matches_stay_consistent_with_the_bound(
        self, phased_video, zoo, fast_config, pr1_config
    ):
        """result.matches must cover exactly the bounded matched_frames —
        without early exit the scan still sees the whole video, and records
        past the limit-th frame must not leak into num_matches."""
        adaptive = QuerySession(phased_video, zoo=zoo, config=fast_config).execute(
            RedCarQuery().bounded(3)
        )
        exhaustive = QuerySession(phased_video, zoo=zoo, config=pr1_config).execute(
            RedCarQuery().bounded(3)
        )
        assert sorted(adaptive.matches) == adaptive.matched_frames
        assert adaptive.matches == exhaustive.matches
        assert adaptive.num_matches == exhaustive.num_matches

    def test_bounded_children_do_not_truncate_temporal_events(self, zoo, fast_config, pr1_config):
        """Regression: when both sub-queries are bounded, the temporal stream
        must NOT retire on their bounds — a child's matched-frame limit does
        not determine its event stream, and stopping there truncated the
        first event and fabricated a pair."""
        spec = VideoSpec("overlap", fps=10, width=640, height=480, duration_s=10)
        car = ObjectSpec(
            object_id=1,
            class_name="car",
            trajectory=StationaryTrajectory((100, 300)),
            size=(100, 50),
            enter_frame=20,
            exit_frame=60,
            attributes={"color": "red", "vehicle_type": "sedan"},
        )
        person = ObjectSpec(
            object_id=2,
            class_name="person",
            trajectory=StationaryTrajectory((400, 350)),
            size=(30, 80),
            enter_frame=30,
            exit_frame=90,
            default_action="standing",
        )
        video = SyntheticVideo(spec, [car, person], seed=7)
        query = lambda: SequentialQuery(RedCarQuery().exists(), PersonQuery().exists(), max_gap_s=3)
        adaptive = QuerySession(video, zoo=zoo, config=fast_config).execute(query())
        exhaustive = QuerySession(video, zoo=zoo, config=pr1_config).execute(query())
        # The person starts while the car is still present: no in-window gap
        # exists, so no pair may be reported under either configuration.
        assert adaptive.events == exhaustive.events == []


class TestIncrementalTemporalPairing:
    def test_pairing_matches_finalize_time_pairing(self, phased_video, zoo, fast_config, pr1_config):
        query = lambda: SequentialQuery(RedCarQuery(), PersonQuery(), max_gap_s=3)
        incremental = QuerySession(phased_video, zoo=zoo, config=fast_config).execute(query())
        exhaustive = QuerySession(phased_video, zoo=zoo, config=pr1_config).execute(query())
        assert incremental.events == exhaustive.events
        assert incremental.matched_frames == exhaustive.matched_frames
        assert incremental.aggregates == exhaustive.aggregates

    def test_event_buffers_are_pruned(self, zoo, fast_config):
        """First-side events that can no longer pair must leave the buffer."""
        spec = VideoSpec("bursts", fps=10, width=640, height=480, duration_s=60)
        cars = [
            ObjectSpec(
                object_id=i + 1,
                class_name="car",
                trajectory=StationaryTrajectory((100 + 5 * i, 300)),
                size=(100, 50),
                enter_frame=i * 120,
                exit_frame=i * 120 + 20,
                attributes={"color": "red", "vehicle_type": "sedan"},
            )
            for i in range(5)
        ]
        video = SyntheticVideo(spec, cars, seed=3)
        session = QuerySession(video, zoo=zoo, config=fast_config)
        executor, planner = session.executor, session.planner
        stream = executor.compile(
            SequentialQuery(RedCarQuery(), PersonQuery(), max_gap_s=2), video, planner
        )
        ctx = session._new_context()
        executor.execute_streams([stream], video, ctx)
        # Five separate car events closed, but none can pair with a person
        # event starting this late; the window is 20 frames, so at most the
        # most recent burst survives in the buffer.
        assert len(stream._first_buf) <= 1

    def test_lookback_window_spans_children_and_gap(self, tiny_video, zoo, fast_config):
        session = QuerySession(tiny_video, zoo=zoo, config=fast_config)
        stream = session.executor.compile(
            SequentialQuery(RedCarQuery(), PersonQuery(), max_gap_s=2), tiny_video, session.planner
        )
        assert stream.lookback_frames() == max(5, int(2 * tiny_video.fps))


class TestRetentionRelease:
    def test_frames_released_only_after_lookback_window(
        self, tiny_video, zoo, fast_config, monkeypatch
    ):
        """With duration state in play, caches live until the run can't extend."""
        trace = []
        orig_release = ExecutionContext.release_frame
        orig_process = PlanStream.process_frame

        def release_spy(self, frame_id):
            trace.append(("release", frame_id))
            return orig_release(self, frame_id)

        def process_spy(self, frame, ctx):
            trace.append(("process", frame.frame_id))
            return orig_process(self, frame, ctx)

        monkeypatch.setattr(ExecutionContext, "release_frame", release_spy)
        monkeypatch.setattr(PlanStream, "process_frame", process_spy)

        query = DurationQuery(RedCarQuery(), duration_s=1.0, max_gap_frames=5)
        QuerySession(tiny_video, zoo=zoo, config=fast_config).execute(query)

        released = [f for kind, f in trace if kind == "release"]
        assert released == list(range(tiny_video.num_frames))  # all, once, in order
        last = tiny_video.num_frames - 1
        current = -1
        for kind, frame_id in trace:
            if kind == "process":
                current = frame_id
            elif current < last:  # mid-scan releases (the final drain is exempt)
                assert frame_id <= current - 5

    def test_immediate_release_without_lookback_state(self, tiny_video, zoo, fast_config, monkeypatch):
        trace = []
        orig_release = ExecutionContext.release_frame
        orig_process = PlanStream.process_frame
        monkeypatch.setattr(
            ExecutionContext,
            "release_frame",
            lambda self, fid: (trace.append(("release", fid)), orig_release(self, fid))[1],
        )
        monkeypatch.setattr(
            PlanStream,
            "process_frame",
            lambda self, frame, ctx: (trace.append(("process", frame.frame_id)), orig_process(self, frame, ctx))[1],
        )
        QuerySession(tiny_video, zoo=zoo, config=fast_config).execute(RedCarQuery())
        # A basic query has no lookback: frame f is released right after f runs.
        current = -1
        for kind, frame_id in trace:
            if kind == "process":
                current = frame_id
            else:
                assert frame_id == current


class TestGateSkipLabels:
    def test_closed_events_carry_gate_skipped_frames(self):
        grouper = OnlineEventGrouper(max_gap=3, min_length=1)
        grouper.observe(0, [(("car", 1),)])
        grouper.mark_skipped(1)
        grouper.observe(1, ())
        grouper.observe(2, [(("car", 1),)])
        for frame_id in range(3, 7):
            grouper.observe(frame_id, ())
        (event,) = grouper.finish()
        assert (event.start_frame, event.end_frame) == (0, 2)
        assert event.skipped_frames == (1,)
        assert event.num_frames == 3 and event.num_observed_frames == 2

    def test_skips_outside_the_run_are_not_attached(self):
        grouper = OnlineEventGrouper(max_gap=2, min_length=1)
        grouper.mark_skipped(0)  # before the run
        grouper.observe(0, ())
        grouper.observe(3, [(("car", 1),)])
        grouper.observe(4, [(("car", 1),)])
        grouper.mark_skipped(9)  # after the run closed
        for frame_id in range(5, 10):
            grouper.observe(frame_id, ())
        (event,) = grouper.finish()
        assert event.skipped_frames == ()

    def test_skip_buffer_is_pruned(self):
        grouper = OnlineEventGrouper(max_gap=2, min_length=1)
        for frame_id in range(100):
            grouper.mark_skipped(frame_id)
            grouper.observe(frame_id, ())
        assert len(grouper._skipped) <= 5

    def test_gated_scan_labels_events(self, zoo, fast_config, monkeypatch):
        """End to end: a gate false-negative inside a run shows up as a skip."""
        from repro.models.detector import BinaryClassifier

        # Make the registered classifier reject one specific in-run frame.
        original = BinaryClassifier.predict

        def flaky(self, frame, clock=None):
            if frame.frame_id == 25:
                self.charge(clock)
                return False
            return original(self, frame, clock)

        monkeypatch.setattr(BinaryClassifier, "predict", flaky)
        spec = VideoSpec("gated_run", fps=10, width=640, height=480, duration_s=5)
        car = ObjectSpec(
            object_id=1,
            class_name="car",
            trajectory=StationaryTrajectory((100, 300)),
            size=(100, 50),
            enter_frame=20,
            exit_frame=30,
            attributes={"color": "red", "vehicle_type": "sedan"},
        )
        video = SyntheticVideo(spec, [car], seed=11)
        result = QuerySession(video, zoo=zoo, config=fast_config).execute(
            DurationQuery(GatedRedCarQuery(), duration_s=0.5)
        )
        assert result.events
        assert any(25 in event.skipped_frames for event in result.events)


class TestParallelMultiCamera:
    @pytest.fixture(scope="class")
    def feeds(self):
        return {
            "jackson": camera_clip("jackson", duration_s=6, seed=2),
            "banff": camera_clip("banff", duration_s=6, seed=1),
            "aux": camera_clip("jackson", duration_s=6, seed=9),
        }

    def _batch(self):
        return [
            RedCarQuery(),
            PersonQuery(),
            DurationQuery(RedCarQuery(), duration_s=1.0),
            SequentialQuery(RedCarQuery(), PersonQuery(), max_gap_s=5),
        ]

    def test_parallel_merge_identical_to_serial(self, feeds, zoo, fast_config):
        parallel = MultiCameraSession(feeds, zoo=zoo, config=fast_config).execute_many(self._batch())
        serial = MultiCameraSession(feeds, zoo=zoo, config=fast_config, max_workers=1).execute_many(
            self._batch()
        )
        assert [m.query_name for m in parallel] == [m.query_name for m in serial]
        for par, ser in zip(parallel, serial):
            assert par.cameras == ser.cameras
            for name in feeds:
                # Full dataclass equality: matches, events, aggregates,
                # per-frame costs — the merge must be byte-identical.
                assert par.camera(name) == ser.camera(name)
            assert par.merged_events() == ser.merged_events()
            assert par.merged_aggregates() == ser.merged_aggregates()

    def test_execute_over_accepts_worker_bound(self, tiny_video, feeds, zoo, fast_config):
        session = QuerySession(tiny_video, zoo=zoo, config=fast_config)
        parallel = session.execute_over(feeds, [RedCarQuery()])
        serial = session.execute_over(feeds, [RedCarQuery()], max_workers=1)
        assert parallel[0].cameras == serial[0].cameras == ["tiny", "jackson", "banff", "aux"]
        for name in parallel[0].cameras:
            assert parallel[0].camera(name) == serial[0].camera(name)


class TestCrossCameraWithScheduler:
    """Cross-camera re-id composed with frame-filter gating and early exit."""

    @pytest.fixture(scope="class")
    def handoff(self):
        from repro.videosim.multicam import CameraPlacement, handoff_scenario

        # Entity 0 is red (the gated query's target); entity 1 is blue, so
        # most frames on both feeds carry no red car and the gate bites.
        return handoff_scenario(
            cameras=(
                CameraPlacement("cam_a", fps=10),
                CameraPlacement("cam_b", fps=15, start_offset_s=2.0),
            ),
            num_entities=2,
            dwell_s=6.0,
            travel_gap_s=6.0,
            seed=11,
        )

    def _session(self, handoff, zoo, **kw):
        config = PlannerConfig(profile_plans=False, enable_cross_camera_reid=True, **kw)
        return MultiCameraSession(
            handoff.videos, zoo=zoo, config=config, start_offsets=handoff.start_offsets
        )

    def test_gating_composes_with_reid(self, handoff, zoo):
        """Gate-skipped frames reduce detector work per feed, yet the red
        entity still links across cameras and events stay wall-clock
        ordered."""
        multi = self._session(handoff, zoo)
        merged = multi.execute(GatedRedCarQuery())
        gated_somewhere = False
        for name, session in multi.sessions.items():
            gated_somewhere = gated_somewhere or session.last_scan_stats["leaf_frames_gated"] > 0
        assert gated_somewhere, "the no-red lead-ins must be gate-rejected"
        assert merged.links is not None
        assert multi.last_links.cross_camera_identities(), "the red car must link across feeds"
        intervals = [
            merged.timeline.event_interval(camera, event)
            for camera, event in merged.merged_events()
        ]
        assert intervals == sorted(intervals)

    def test_bounded_query_composes_with_reid(self, handoff, zoo):
        """Feeds that retire early still contribute their partial tracks —
        long enough to pass the quality gate — to the cross-camera link."""
        multi = self._session(handoff, zoo)
        merged = multi.execute(GatedRedCarQuery().bounded(40))
        exited = [
            name
            for name, session in multi.sessions.items()
            if session.last_scan_stats["early_exit_frame"] is not None
        ]
        assert exited, "a bounded query must stop some feed's scan early"
        assert merged.links is not None
        for name in exited:
            assert multi.last_links.profiles[name], (
                "an early-exited feed must still profile the tracks it saw"
            )
        assert multi.last_links.cross_camera_identities(), (
            "the red entity's partial tracks must still link across feeds"
        )

    def test_exists_tracks_fall_below_the_quality_gate(self, handoff, zoo):
        """An exists() scan stops after one matching frame, so its one-frame
        track slivers are (by design) excluded from linking by the re-id
        quality gate — linking still runs and reports no identities."""
        multi = self._session(handoff, zoo)
        merged = multi.execute(GatedRedCarQuery().exists())
        assert merged.links is not None
        assert all(not profiles for profiles in multi.last_links.profiles.values())
        assert multi.last_links.num_identities == 0
