"""Tests for the standing-query protocol: watermarks, trimming, live pruning.

A standing query never finalizes from history, so correctness of live mode
rests on three stream-level guarantees exercised here: the event grouper's
watermarks bound what may still close (and gate what history may be
released), ``trim_closed``/``prune_live`` keep memory bounded without
touching open runs, and the re-sequencer feeds the scan strictly in order
even when the wire delivers frames out of order or twice.
"""

from __future__ import annotations

import pytest

from repro.backend.live import LiveSession
from repro.backend.planner import PlannerConfig
from repro.backend.scheduler import ScanScheduler
from repro.backend.session import QuerySession
from repro.backend.streaming import OnlineEventGrouper
from repro.common.config import VideoSpec
from repro.frontend.builtin import Car
from repro.frontend.query import Query
from repro.videosim.entities import ObjectSpec
from repro.videosim.livefeed import LiveFeed
from repro.videosim.trajectory import StationaryTrajectory
from repro.videosim.video import SyntheticVideo

SIG_A = (("car", 1),)
SIG_B = (("car", 2),)


class RedCarQuery(Query):
    def __init__(self):
        self.car = Car("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id,)


def burst_video(bursts, duration_s=20, fps=10):
    """A red car present only during the given (enter, exit) frame windows."""
    spec = VideoSpec("bursts", fps=fps, width=640, height=480, duration_s=duration_s)
    objects = [
        ObjectSpec(
            object_id=i + 1,
            class_name="car",
            trajectory=StationaryTrajectory((100 + 60 * (i % 5), 300)),
            size=(100, 50),
            enter_frame=enter,
            exit_frame=exit_,
            attributes={"color": "red", "vehicle_type": "sedan"},
        )
        for i, (enter, exit_) in enumerate(bursts)
    ]
    return SyntheticVideo(spec, objects, seed=7)


class TestWatermarks:
    def test_watermarks_default_past_current_frame_when_nothing_open(self):
        grouper = OnlineEventGrouper(max_gap=3)
        assert grouper.start_watermark(10) == 11
        assert grouper.end_watermark(10) == 11

    def test_open_run_pins_both_watermarks(self):
        grouper = OnlineEventGrouper(max_gap=3)
        grouper.observe(5, [SIG_A])
        grouper.observe(8, [SIG_A])
        # Whatever closes next starts no earlier than 5, ends no earlier
        # than 8 — the run is still open and may extend.
        assert grouper.start_watermark(9) == 5
        assert grouper.end_watermark(9) == 8

    def test_watermark_is_min_over_open_runs(self):
        grouper = OnlineEventGrouper(max_gap=10)
        grouper.observe(2, [SIG_A])
        grouper.observe(6, [SIG_B])
        assert grouper.start_watermark(7) == 2
        grouper.observe(20, [SIG_B])  # gap 18 > 10 closes A (and old B)
        assert grouper.start_watermark(20) == 20

    def test_watermark_advances_as_runs_close(self):
        grouper = OnlineEventGrouper(max_gap=2)
        marks = []
        for fid in range(0, 20):
            grouper.observe(fid, [SIG_A] if fid % 7 < 3 else ())
            marks.append(grouper.start_watermark(fid))
        # Never retreats faster than runs allow: each mark bounds the next.
        for prev, cur in zip(marks, marks[1:]):
            assert cur >= prev


class TestTrimming:
    def _grouper_with_closed_runs(self, n_runs):
        grouper = OnlineEventGrouper(max_gap=1, min_length=1)
        fid = 0
        for _ in range(n_runs):
            grouper.observe(fid, [SIG_A])
            fid += 5  # gap of 5 > max_gap closes the run on the next observe
        grouper.observe(fid, ())
        return grouper

    def test_drain_hands_out_each_event_exactly_once(self):
        grouper = self._grouper_with_closed_runs(3)
        first = grouper.drain()
        assert len(first) == 3
        assert grouper.drain() == []

    def test_trim_drops_only_drained_events(self):
        grouper = self._grouper_with_closed_runs(4)
        drained = grouper.drain()
        assert len(drained) == 4
        # Close one more run without draining it.
        grouper.observe(100, [SIG_B])
        grouper.observe(110, ())
        dropped = grouper.trim_closed()
        assert dropped == 4
        # The undrained event survived the trim and still reaches drain().
        assert [e.signature for e in grouper.drain()] == [SIG_B]

    def test_num_closed_is_monotonic_across_trims(self):
        grouper = self._grouper_with_closed_runs(3)
        assert grouper.num_closed == 3
        grouper.drain()
        grouper.trim_closed()
        assert grouper.num_closed == 3  # trimming forgets events, not counts
        grouper.observe(200, [SIG_A])
        grouper.observe(210, ())
        assert grouper.num_closed == 4

    def test_trim_is_a_noop_with_nothing_drained(self):
        grouper = self._grouper_with_closed_runs(2)
        assert grouper.trim_closed() == 0
        assert len(grouper.drain()) == 2


class TestSkippedFramePruning:
    def test_skipped_frames_inside_open_run_survive_and_attach(self):
        grouper = OnlineEventGrouper(max_gap=5)
        grouper.observe(0, [SIG_A])
        grouper.mark_skipped(1)
        grouper.mark_skipped(2)
        for fid in range(3, 40):
            grouper.observe(fid, [SIG_A] if fid < 6 else ())
        (event,) = grouper.drain()
        assert event.skipped_frames == (1, 2)

    def test_dead_skipped_frames_are_pruned(self):
        grouper = OnlineEventGrouper(max_gap=3)
        grouper.mark_skipped(0)
        grouper.mark_skipped(1)
        # No run can reach back past frame_id - max_gap once nothing is open.
        grouper.observe(50, [SIG_A])
        assert all(f >= 47 for f in grouper._skipped)

    def test_skipped_horizon_respects_oldest_open_run(self):
        grouper = OnlineEventGrouper(max_gap=3)
        grouper.observe(0, [SIG_A])
        grouper.mark_skipped(1)
        grouper.observe(2, [SIG_A])
        grouper.observe(3, [SIG_A])
        # The open run started at 0: frame 1 must not be pruned even though
        # it is far behind the current frame's max_gap horizon.
        for fid in range(4, 30):
            grouper.observe(fid, [SIG_A])
        assert 1 in grouper._skipped


class TestPruneLive:
    def _compiled_stream(self, video, zoo):
        config = PlannerConfig(profile_plans=False)
        session = QuerySession(video, zoo=zoo, config=config)
        session.planner.begin_batch([RedCarQuery()])
        stream = session.executor.compile(
            RedCarQuery(), video, session.planner, ensure_events=True
        )
        from repro.backend.runtime import ExecutionContext
        from repro.common.clock import SimClock

        ctx = ExecutionContext(video, zoo, clock=SimClock())
        return stream, ctx

    def test_prune_releases_closed_history_keeps_open_run(self, zoo):
        video = burst_video([(0, 30), (60, None)], duration_s=12)
        stream, ctx = self._compiled_stream(video, zoo)
        scheduler = ScanScheduler([stream], ctx, gating=False, early_exit=False)
        for fid in range(video.num_frames):
            scheduler.step(video.frame(fid))
            stream.drain_events()
            stream.prune_live(fid)
        # The first burst (frames 0..30) closed and was drained long ago;
        # its matches must be gone.  The second burst is an open run whose
        # history the watermark protects.
        kept = sorted(stream.result.matches)
        assert kept and kept[0] >= 60
        assert not stream.result.per_frame_ms

    def test_bounded_stream_never_prunes(self, zoo):
        video = burst_video([(0, 30)], duration_s=6)
        config = PlannerConfig(profile_plans=False)
        session = QuerySession(video, zoo=zoo, config=config)
        session.planner.begin_batch([RedCarQuery()])
        stream = session.executor.compile(
            RedCarQuery(), video, session.planner, ensure_events=True
        )
        stream.limit = 1  # bounded: finalize() replays result history
        from repro.backend.runtime import ExecutionContext
        from repro.common.clock import SimClock

        ctx = ExecutionContext(video, zoo, clock=SimClock())
        scheduler = ScanScheduler([stream], ctx, gating=False, early_exit=False)
        for fid in range(video.num_frames):
            scheduler.step(video.frame(fid))
            stream.prune_live(fid)
        # finalize() replays history for bounded streams; it must survive.
        assert stream.result.matches

    def test_live_session_memory_stays_bounded(self, zoo):
        """Closed-run history does not accumulate across a long live run."""
        from dataclasses import replace

        bursts = [(i * 40, i * 40 + 10) for i in range(14)]
        video = burst_video(bursts, duration_s=60)
        config = PlannerConfig(profile_plans=False, enable_live=True)
        config = replace(
            config, live_config=replace(config.live_config, prune_interval_frames=16)
        )
        session = LiveSession(LiveFeed(video), zoo=zoo, config=config)
        session.run([RedCarQuery()])
        stream = session._streams[0]
        # 14 bursts × 11 frames matched ≈ 154 match records; bounded-memory
        # pruning must keep only the un-prunable tail.
        interval = config.live_config.prune_interval_frames
        assert len(stream.result.matches) <= 2 * interval
        # Cost samples refill between prunes; bounded by the interval, with
        # slack for the post-drain tail the shutdown path appends.
        assert len(stream.result.per_frame_ms) <= 3 * interval
        assert session.stats.alerts_emitted >= len(bursts) - 1


class TestDisorderedDelivery:
    def test_scan_sees_strictly_increasing_frame_ids(self, zoo, monkeypatch):
        """Reorder + duplicates on the wire; the scan still sees order."""
        video = burst_video([(0, None)], duration_s=20)
        seen = []
        original = ScanScheduler.step

        def spy(self, frame):
            seen.append(frame.frame_id)
            return original(self, frame)

        monkeypatch.setattr(ScanScheduler, "step", spy)
        feed = LiveFeed(video, seed=9, reorder_rate=0.25, duplicate_rate=0.15)
        config = PlannerConfig(profile_plans=False, enable_live=True)
        session = LiveSession(feed, zoo=zoo, config=config)
        stats = session.run([RedCarQuery()])
        assert stats.frames_reordered > 0 and stats.duplicates_delivered > 0
        assert seen == sorted(set(seen)), "dispatch must be in-order, dup-free"

    def test_duration_standing_query_matches_batch_under_disorder(self, zoo):
        from repro.frontend.higher_order import DurationQuery

        video = burst_video([(0, 25), (50, 90), (120, 130)], duration_s=20)
        batch = QuerySession(
            video, zoo=zoo, config=PlannerConfig(profile_plans=False)
        ).execute(DurationQuery(RedCarQuery(), duration_s=2.0))
        feed = LiveFeed(video, seed=9, reorder_rate=0.2, duplicate_rate=0.1)
        config = PlannerConfig(profile_plans=False, enable_live=True)
        session = LiveSession(feed, zoo=zoo, config=config)
        session.run([DurationQuery(RedCarQuery(), duration_s=2.0)])
        live_events = sorted(
            (a.event.start_frame, a.event.end_frame, a.event.signature)
            for a in session.alerts()
        )
        batch_events = sorted(
            (e.start_frame, e.end_frame, e.signature) for e in batch.events
        )
        assert live_events == batch_events

    def test_watermarks_hold_under_disordered_observation_replay(self):
        """Replaying a disordered wire through the re-sequencer keeps the
        grouper's watermark guarantee: no event ever closes with a start
        before the watermark reported at its close time."""
        grouper = OnlineEventGrouper(max_gap=4, min_length=1)
        pattern = [SIG_A if f % 11 < 4 else (SIG_B if f % 7 < 2 else None) for f in range(80)]
        drained = 0
        for fid, sig in enumerate(pattern):
            mark = grouper.start_watermark(fid - 1) if fid else 0
            grouper.observe(fid, [sig] if sig else ())
            for event in grouper.drain():
                drained += 1
                assert event.start_frame >= mark
        assert drained > 0
