"""Tests for cross-camera re-identification and global timelines.

Covers the :class:`GlobalTimeline` wall-clock mapping, the
:class:`ReidMatcher` assignment semantics (threshold edges, one-to-one
within a camera, class guard, hungarian vs greedy), the session-level
integration (identity F1 against videosim ground truth, embedding cache
reuse, determinism across ``max_workers``), the wall-clock ordering of
merged events over mixed-fps feeds, global-event stitching, and the
cross-camera temporal operator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.crosscamera import (
    CrossCameraLinks,
    CrossCameraSequence,
    GlobalTimeline,
    ReidMatcher,
    TrackProfile,
    reid_identity_scores,
    stitch_global_events,
)
from repro.backend.planner import PlannerConfig
from repro.backend.results import Event
from repro.backend.session import MultiCameraSession
from repro.common.clock import SimClock
from repro.common.config import ReidConfig
from repro.common.errors import ExecutionError
from repro.frontend.builtin import Car, Person
from repro.frontend.query import Query
from repro.videosim.multicam import CameraPlacement, handoff_scenario


class CarQuery(Query):
    def __init__(self):
        self.car = Car("car")

    def frame_constraint(self):
        return self.car.score > 0.5

    def frame_output(self):
        return (self.car.track_id,)


class RedCarQuery(Query):
    def __init__(self):
        self.car = Car("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id,)


class PersonReidQuery(Query):
    """Outputs the feature_vector intrinsic, filling the reuse cache."""

    def __init__(self):
        self.person = Person("person")

    def frame_constraint(self):
        return self.person.score > 0.5

    def frame_output(self):
        return (self.person.track_id, self.person.feature_vector)


def reid_config(**kw) -> PlannerConfig:
    return PlannerConfig(profile_plans=False, enable_cross_camera_reid=True, **kw)


MIXED_FPS_CAMERAS = (
    CameraPlacement("cam_a", fps=10, start_offset_s=0.0),
    CameraPlacement("cam_b", fps=15, start_offset_s=3.0),
    CameraPlacement("cam_c", fps=20, start_offset_s=6.0),
)


@pytest.fixture(scope="module")
def scenario():
    """Four entities crossing three mixed-fps feeds, with distractors."""
    return handoff_scenario(
        cameras=MIXED_FPS_CAMERAS,
        num_entities=4,
        background_vehicles_per_minute=4.0,
        seed=0,
    )


def run(scenario, zoo, query=None, config=None, **kw) -> MultiCameraSession:
    session = MultiCameraSession(
        scenario.videos,
        zoo=zoo,
        config=config or reid_config(),
        start_offsets=scenario.start_offsets,
        **kw,
    )
    session.execute(query or CarQuery())
    return session


# ---------------------------------------------------------------------------
# GlobalTimeline
# ---------------------------------------------------------------------------


class TestGlobalTimeline:
    def test_wall_clock_honours_fps_and_offsets(self):
        timeline = GlobalTimeline({"a": 10, "b": 20}, {"b": 3.0})
        assert timeline.wall_clock("a", 50) == pytest.approx(5.0)
        assert timeline.wall_clock("b", 50) == pytest.approx(3.0 + 2.5)
        # The same wall-clock instant lands on different local frames.
        assert timeline.frame_at("a", 5.0) == 50
        assert timeline.frame_at("b", 5.0) == 40

    def test_frame_at_round_trip_and_clamping(self):
        timeline = GlobalTimeline({"a": 15}, {"a": 2.0})
        for frame_id in (0, 7, 150):
            assert timeline.frame_at("a", timeline.wall_clock("a", frame_id)) == frame_id
        # Instants before the camera started recording clamp to frame 0.
        assert timeline.frame_at("a", 0.5) == 0

    def test_unknown_cameras_are_rejected(self):
        timeline = GlobalTimeline({"a": 10})
        with pytest.raises(KeyError):
            timeline.wall_clock("ghost", 0)
        with pytest.raises(ValueError):
            GlobalTimeline({"a": 10}, {"ghost": 1.0})
        with pytest.raises(ValueError):
            GlobalTimeline({"a": 0})
        with pytest.raises(ValueError):
            GlobalTimeline({})

    def test_order_events_interleaves_mixed_fps(self):
        timeline = GlobalTimeline({"slow": 10, "fast": 30}, {"fast": 1.0})
        early_fast = Event(start_frame=0, end_frame=30)    # 1.0s - 2.0s
        late_slow = Event(start_frame=25, end_frame=40)    # 2.5s - 4.0s
        first_slow = Event(start_frame=0, end_frame=5)     # 0.0s - 0.5s
        ordered = timeline.order_events(
            [("slow", late_slow), ("fast", early_fast), ("slow", first_slow)]
        )
        assert ordered == [("slow", first_slow), ("fast", early_fast), ("slow", late_slow)]


# ---------------------------------------------------------------------------
# ReidMatcher (unit level, synthetic embeddings)
# ---------------------------------------------------------------------------


def _unit(*coords: float) -> np.ndarray:
    v = np.zeros(8)
    for i, c in enumerate(coords):
        v[i] = c
    norm = np.linalg.norm(v)
    return v / norm if norm else v


def _profile(camera: str, track_id: int, embedding: np.ndarray, class_name: str = "car") -> TrackProfile:
    return TrackProfile(
        camera=camera,
        track_id=track_id,
        class_name=class_name,
        embedding=embedding,
        first_frame=0,
        last_frame=10,
    )


class TestReidMatcher:
    def test_same_embedding_links_across_cameras(self):
        matcher = ReidMatcher(ReidConfig(enabled=True))
        links = matcher.link(
            {
                "a": [_profile("a", 1, _unit(1.0)), _profile("a", 2, _unit(0.0, 1.0))],
                "b": [_profile("b", 7, _unit(1.0))],
            }
        )
        assert links.global_id("a", 1) == links.global_id("b", 7)
        assert links.global_id("a", 2) != links.global_id("a", 1)
        assert links.num_identities == 2
        assert links.cross_camera_identities() == {0: [("a", 1), ("b", 7)]}

    def test_threshold_edges(self):
        # cos(e1, cos_t*e1 + sin_t*e2) == cos_t exactly.
        at = _unit(0.7, np.sqrt(1 - 0.49))
        below = _unit(0.69, np.sqrt(1 - 0.69**2))
        matcher = ReidMatcher(ReidConfig(enabled=True, threshold=0.7))
        links = matcher.link({"a": [_profile("a", 1, _unit(1.0))], "b": [_profile("b", 1, at)]})
        assert links.global_id("a", 1) == links.global_id("b", 1)  # >= is a match
        links = matcher.link({"a": [_profile("a", 1, _unit(1.0))], "b": [_profile("b", 1, below)]})
        assert links.global_id("a", 1) != links.global_id("b", 1)

    def test_same_camera_tracks_never_share_an_identity(self):
        matcher = ReidMatcher(ReidConfig(enabled=True))
        # Two near-identical tracks on ONE camera (a fragmented entity).
        links = matcher.link(
            {"a": [_profile("a", 1, _unit(1.0)), _profile("a", 2, _unit(0.999, 0.04))]}
        )
        assert links.global_id("a", 1) != links.global_id("a", 2)

    def test_class_mismatch_blocks_linking(self):
        matcher = ReidMatcher(ReidConfig(enabled=True))
        links = matcher.link(
            {
                "a": [_profile("a", 1, _unit(1.0), class_name="car")],
                "b": [_profile("b", 1, _unit(1.0), class_name="person")],
            }
        )
        assert links.global_id("a", 1) != links.global_id("b", 1)

    def test_hungarian_beats_greedy_under_contention(self):
        """sims = [[.80, .55], [.75, .10]]: greedy takes (t0, g0) first and
        strands t1 below threshold; hungarian assigns (t0, g1), (t1, g0)
        and links both contenders."""
        g0, g1 = _unit(1.0), _unit(0.0, 1.0)
        # A unit vector a*g0 + b*g1 + c*e2 has cos a against g0 and cos b
        # against g1, so similarity rows are controlled exactly.
        t0 = _unit(0.80, 0.55, np.sqrt(1 - 0.80**2 - 0.55**2))
        t1 = _unit(0.75, 0.10, np.sqrt(1 - 0.75**2 - 0.10**2))

        gallery_feed = {"a": [_profile("a", 1, g0), _profile("a", 2, g1)]}
        contenders = [_profile("b", 1, t0), _profile("b", 2, t1)]

        hungarian = ReidMatcher(ReidConfig(enabled=True, threshold=0.5)).link(
            {**gallery_feed, "b": contenders}
        )
        greedy = ReidMatcher(ReidConfig(enabled=True, threshold=0.5, assignment="greedy")).link(
            {**gallery_feed, "b": contenders}
        )
        assert hungarian.num_identities == 2  # both contenders linked
        assert greedy.num_identities == 3     # greedy strands one

    def test_matching_work_is_charged_to_the_clock(self):
        clock = SimClock()
        matcher = ReidMatcher(ReidConfig(enabled=True), clock=clock)
        matcher.link(
            {
                "a": [_profile("a", 1, _unit(1.0))],
                "b": [_profile("b", 1, _unit(1.0))],
            }
        )
        assert clock.by_account["reid_matcher"] > 0

    def test_scores_record_founder_and_member_similarity(self):
        matcher = ReidMatcher(ReidConfig(enabled=True, threshold=0.7))
        links = matcher.link(
            {
                "a": [_profile("a", 1, _unit(1.0))],
                "b": [_profile("b", 1, _unit(0.95, np.sqrt(1 - 0.95**2)))],
            }
        )
        assert links.scores[("a", 1)] == 1.0
        assert links.scores[("b", 1)] == pytest.approx(0.95)
        assert links.threshold == 0.7


# ---------------------------------------------------------------------------
# Session-level integration
# ---------------------------------------------------------------------------


class TestCrossCameraSession:
    def test_identity_f1_against_ground_truth(self, scenario, zoo):
        session = run(scenario, zoo)
        scores = reid_identity_scores(session.last_links)
        assert scores.precision >= 0.9
        assert scores.recall >= 0.9
        assert scores.f1 >= 0.9

    def test_entities_link_across_every_camera(self, scenario, zoo):
        session = run(scenario, zoo)
        cross = session.last_links.cross_camera_identities()
        # Every scripted entity visits all three cameras; at least one
        # identity per entity must span all of them.
        full_spans = [m for m in cross.values() if {c for c, _ in m} == set(scenario.cameras)]
        assert len(full_spans) >= len(scenario.entity_ids)

    def test_disabled_is_byte_identical_and_unlinked(self, scenario, zoo):
        defaults = MultiCameraSession(scenario.videos, zoo=zoo, config=PlannerConfig(profile_plans=False))
        explicit = MultiCameraSession(
            scenario.videos,
            zoo=zoo,
            config=PlannerConfig(profile_plans=False, enable_cross_camera_reid=False),
        )
        a = defaults.execute_many([CarQuery(), RedCarQuery()])
        b = explicit.execute_many([CarQuery(), RedCarQuery()])
        for res_a, res_b in zip(a, b):
            assert res_a.links is None and res_a.timeline is None
            for camera in res_a.cameras:
                assert res_a.camera(camera) == res_b.camera(camera)  # every field
        assert defaults.last_links is None
        assert defaults.link_clock.elapsed_ms == 0.0

    def test_enabling_reid_preserves_per_feed_matches(self, scenario, zoo):
        """Linking is read-only over the scans: matches must not move."""
        on = MultiCameraSession(
            scenario.videos, zoo=zoo, config=reid_config(), start_offsets=scenario.start_offsets
        ).execute(RedCarQuery())
        off = MultiCameraSession(
            scenario.videos, zoo=zoo, config=PlannerConfig(profile_plans=False)
        ).execute(RedCarQuery())
        for camera in off.cameras:
            assert on.camera(camera).matched_frames == off.camera(camera).matched_frames
            assert on.camera(camera).matches == off.camera(camera).matches

    def test_determinism_across_max_workers(self, scenario, zoo):
        serial = run(scenario, zoo, max_workers=1)
        parallel = run(scenario, zoo, max_workers=4)
        assert serial.last_links.identities == parallel.last_links.identities
        assert serial.last_links.scores == pytest.approx(parallel.last_links.scores)

    def test_merged_events_are_wall_clock_ordered(self, scenario, zoo):
        session = MultiCameraSession(
            scenario.videos, zoo=zoo, config=reid_config(), start_offsets=scenario.start_offsets
        )
        merged = session.execute(CarQuery())
        tagged = merged.merged_events()
        assert tagged, "the handoff scenario must produce events"
        intervals = [merged.timeline.event_interval(c, e) for c, e in tagged]
        assert intervals == sorted(intervals)
        # Mixed fps + offsets make local frame ids interleave: wall-clock
        # order must genuinely differ from the frame-ordered PR-4 merge.
        frame_ids = [e.start_frame for _, e in tagged]
        assert frame_ids != sorted(frame_ids)

    def test_global_tracks_restricted_to_query_matches(self, scenario, zoo):
        session = MultiCameraSession(
            scenario.videos, zoo=zoo, config=reid_config(), start_offsets=scenario.start_offsets
        )
        red = session.execute(RedCarQuery())
        everything = session.last_links.global_tracks()
        red_tracks = red.global_tracks()
        assert red_tracks  # the red entity was seen
        # The query-level view is a subset of the session-wide assignment.
        for gid, members in red_tracks.items():
            assert set(members) <= set(everything[gid])
        assert len(red_tracks) < len(everything)

    def test_global_events_stitch_and_split(self, scenario, zoo):
        session = MultiCameraSession(
            scenario.videos, zoo=zoo, config=reid_config(), start_offsets=scenario.start_offsets
        )
        merged = session.execute(CarQuery())
        arcs = merged.global_events()
        cross = [s for s in arcs if s.is_cross_camera]
        assert cross, "entities crossing cameras must stitch into arcs"
        span = cross[0]
        assert span.start_ts <= span.end_ts
        assert [s for s in span.segments] == sorted(
            span.segments, key=lambda seg: merged.timeline.event_interval(*seg)
        )
        # The travel gap between cameras (4s) exceeds 1s: a tight max_gap_s
        # must split each arc into per-camera spans.
        tight = merged.global_events(max_gap_s=1.0)
        assert len(tight) > len(arcs)
        assert all(len(s.cameras) == 1 for s in tight if s.global_id is not None)

    def test_cross_camera_views_require_reid(self, scenario, zoo):
        merged = MultiCameraSession(
            scenario.videos, zoo=zoo, config=PlannerConfig(profile_plans=False)
        ).execute(CarQuery())
        with pytest.raises(ExecutionError):
            merged.global_tracks()
        with pytest.raises(ExecutionError):
            merged.global_events()

    def test_link_tracks_requires_a_prior_execution(self, scenario, zoo):
        session = MultiCameraSession(
            scenario.videos, zoo=zoo, config=reid_config(), start_offsets=scenario.start_offsets
        )
        with pytest.raises(ExecutionError):
            session.link_tracks()

    def test_sliver_tracks_are_quality_gated(self, scenario, zoo):
        session = run(scenario, zoo)
        for profiles in session.last_links.profiles.values():
            for profile in profiles:
                assert profile.last_frame - profile.first_frame + 1 >= 3

    def test_embedding_cache_reuse_skips_the_model(self, zoo):
        """A query that computes feature_vector in-pipeline fills the
        intrinsic cache; linking must reuse it, not re-invoke the model."""
        people = handoff_scenario(
            cameras=(
                CameraPlacement("cam_a", fps=10),
                CameraPlacement("cam_b", fps=15, start_offset_s=2.0),
            ),
            num_entities=2,
            entity_class="person",
            seed=5,
        )
        session = MultiCameraSession(
            people.videos, zoo=zoo, config=reid_config(), start_offsets=people.start_offsets
        )
        session.execute(PersonReidQuery())
        links = session.last_links
        assert links.identities, "people must have been tracked and linked"
        # Every linked track had a cached embedding: zero model invocations
        # on the link clock, only the matcher itself.
        assert session.link_clock.calls.get("reid_feature", 0) == 0
        assert session.link_clock.by_account["reid_matcher"] > 0
        assert reid_identity_scores(links).f1 >= 0.9

    def test_start_offsets_for_unknown_feeds_rejected(self, scenario, zoo):
        with pytest.raises(ValueError):
            MultiCameraSession(
                scenario.videos, zoo=zoo, config=reid_config(), start_offsets={"ghost": 1.0}
            )

    def test_cross_camera_cost_appears_in_breakdown(self, scenario, zoo):
        session = run(scenario, zoo)
        breakdown = session.cost_breakdown()
        assert "<cross-camera>" in breakdown
        assert breakdown["<cross-camera>"].get("reid_matcher", 0) > 0

    def test_link_cost_reports_the_last_execution_only(self, scenario, zoo):
        """Like the per-feed clocks, link_clock must not accumulate across
        executions on the same session."""
        session = run(scenario, zoo)
        first_run_ms = session.link_clock.elapsed_ms
        session.execute(CarQuery())
        assert session.link_clock.elapsed_ms == pytest.approx(first_run_ms)

    def test_bounded_query_events_honour_the_bound(self, scenario, zoo):
        """With re-id attaching groupers to basic queries, a bounded query's
        events must describe the bounded matches — identically with early
        exit on or off (a pure performance knob must not move results)."""
        def merged_with(early_exit: bool):
            return MultiCameraSession(
                scenario.videos,
                zoo=zoo,
                config=reid_config(enable_early_exit=early_exit),
                start_offsets=scenario.start_offsets,
            ).execute(CarQuery().bounded(3))

        eager, lazy = merged_with(True), merged_with(False)
        for camera in eager.cameras:
            a, b = eager.camera(camera), lazy.camera(camera)
            assert a.matched_frames == b.matched_frames
            assert a.events == b.events
            # Event boundaries come from the kept matches only (the grouper
            # may bridge small non-matching gaps inside the range).
            kept = set(a.matched_frames)
            for event in a.events:
                assert event.start_frame in kept and event.end_frame in kept

    def test_cross_pair_track_ids_never_collide(self, scenario, zoo):
        """Two plans on different detectors used to number their tracks from
        1 independently, so colliding ids were silently excluded from
        linking; per-pair global namespacing makes that exclusion path
        unreachable — every id is attributable to exactly one pair, and
        tracks from both plans participate in linking."""

        class FastCar(Car):
            model = "yolov5s"

        class FastCarQuery(Query):
            def __init__(self):
                self.car = FastCar("car")

            def frame_constraint(self):
                return self.car.score > 0.5

            def frame_output(self):
                return (self.car.track_id,)

        session = MultiCameraSession(
            scenario.videos, zoo=zoo, config=reid_config(), start_offsets=scenario.start_offsets
        )
        session.execute_many([CarQuery(), FastCarQuery()])
        links = session.last_links
        for name, feed_session in session.sessions.items():
            ctx = feed_session.last_context
            assert ctx.ambiguous_track_ids() == set()
            profile_pairs = {
                ctx.track_pair(profile.track_id) for profile in links.profiles[name]
            }
            assert None not in profile_pairs, "a linked id lost its pair attribution"
            # Both detector plans' tracks survive into the linking gallery.
            assert {pair[1] for pair in profile_pairs} == {"yolox", "yolov5s"}

    def test_seeded_frame_intrinsics_are_not_reused_as_embeddings(self, scenario, zoo):
        """A cached feature_vector computed over an interpolation-seeded
        detection is not a real observation; linking must bypass it."""
        from repro.backend.runtime import ExecutionContext
        from repro.frontend.builtin import Person

        video = next(iter(scenario.videos.values()))
        ctx = ExecutionContext(video, zoo)
        state = ctx.track_state(Person, 1)
        state.intrinsic_values["feature_vector"] = np.ones(4)
        state.intrinsic_frames["feature_vector"] = 5
        assert 1 in ctx.intrinsic_track_values("feature_vector")
        ctx.seeded_frames.add(5)
        assert (
            ctx.intrinsic_track_values("feature_vector", exclude_frames=ctx.seeded_frames)
            == {}
        )


# ---------------------------------------------------------------------------
# The cross-camera temporal operator
# ---------------------------------------------------------------------------


class TestCrossCameraSequence:
    @pytest.fixture(scope="class")
    def chase(self):
        return handoff_scenario(
            cameras=(
                CameraPlacement("cam_a", fps=10),
                CameraPlacement("cam_b", fps=15, start_offset_s=3.0),
            ),
            num_entities=2,
            background_vehicles_per_minute=3.0,
            seed=3,
        )

    def test_same_car_then_other_camera_within_window(self, chase, zoo):
        session = MultiCameraSession(
            chase.videos, zoo=zoo, config=reid_config(), start_offsets=chase.start_offsets
        )
        pairs = session.execute_sequence(
            CrossCameraSequence(
                RedCarQuery(), first_camera="cam_a", second_camera="cam_b", max_gap_s=30.0
            )
        )
        assert pairs, "the red entity crosses cam_a then cam_b"
        pair = pairs[0]
        assert pair.cameras == ("cam_a", "cam_b")
        assert pair.global_id is not None
        (cam_a, ev_a), (cam_b, ev_b) = pair.segments
        timeline = session.timeline()
        gap = timeline.event_interval(cam_b, ev_b)[0] - timeline.event_interval(cam_a, ev_a)[1]
        assert 0 <= gap <= 30.0 + timeline.max_clock_skew_s

    def test_window_excludes_out_of_range_gaps(self, chase, zoo):
        session = MultiCameraSession(
            chase.videos, zoo=zoo, config=reid_config(), start_offsets=chase.start_offsets
        )
        # The scripted travel gap is ~4s; a [20, 30]s window excludes it.
        pairs = session.execute_sequence(
            CrossCameraSequence(
                RedCarQuery(),
                first_camera="cam_a",
                second_camera="cam_b",
                min_gap_s=20.0,
                max_gap_s=30.0,
            )
        )
        assert pairs == []

    def test_requires_reid_enabled(self, chase, zoo):
        session = MultiCameraSession(chase.videos, zoo=zoo, config=PlannerConfig(profile_plans=False))
        with pytest.raises(ExecutionError):
            session.execute_sequence(CrossCameraSequence(RedCarQuery()))

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            CrossCameraSequence(RedCarQuery(), min_gap_s=10.0, max_gap_s=5.0)

    def test_identity_requirement_can_be_relaxed(self, chase, zoo):
        session = MultiCameraSession(
            chase.videos, zoo=zoo, config=reid_config(), start_offsets=chase.start_offsets
        )
        strict = session.execute_sequence(
            CrossCameraSequence(CarQuery(), max_gap_s=10.0, same_identity=True)
        )
        relaxed = session.execute_sequence(
            CrossCameraSequence(CarQuery(), max_gap_s=10.0, same_identity=False)
        )
        # Dropping the identity constraint can only add pairs.
        assert len(relaxed) >= len(strict)
        assert all(p.global_id is not None for p in strict)


# ---------------------------------------------------------------------------
# Stitching unit coverage
# ---------------------------------------------------------------------------


class TestStitching:
    def test_untracked_events_become_standalone_spans(self):
        timeline = GlobalTimeline({"a": 10})
        links = CrossCameraLinks()
        event = Event(start_frame=0, end_frame=9, signature=(("x", "@3"),))
        (span,) = stitch_global_events([("a", event)], links, timeline)
        assert span.global_id is None
        assert span.segments == (("a", event),)
        assert span.start_ts == 0.0 and span.end_ts == pytest.approx(0.9)
