"""Tests for the scene generator, scripted events, and dataset presets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import VideoSpec
from repro.videosim import events as ev
from repro.videosim.datasets import (
    CAMERA_SPECS,
    CITYFLOW_QUERIES,
    auburn_clip,
    camera_clip,
    cityflow_clip,
    cityflow_dataset,
    eva_comparison_clips,
    hit_and_run_clip,
    loitering_clip,
    queue_clip,
    suspect_scenario_clip,
    vcoco_images,
)
from repro.videosim.scene import SceneGenerator, TrafficSceneConfig


class TestTrafficSceneConfig:
    def test_distributions_normalised(self):
        cfg = TrafficSceneConfig(color_dist={"red": 2.0, "blue": 2.0})
        assert cfg.color_dist["red"] == pytest.approx(0.5)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            TrafficSceneConfig(vehicles_per_minute=-1)

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            TrafficSceneConfig(color_dist={"red": 0.0})


class TestSceneGenerator:
    def test_generation_is_deterministic(self):
        spec = VideoSpec("t", 10, 1280, 720, 60)
        a = SceneGenerator(spec, seed=5).generate_objects()
        b = SceneGenerator(spec, seed=5).generate_objects()
        assert len(a) == len(b)
        assert [o.class_name for o in a] == [o.class_name for o in b]
        assert [o.attributes.get("color") for o in a] == [o.attributes.get("color") for o in b]

    def test_different_seeds_differ(self):
        spec = VideoSpec("t", 10, 1280, 720, 120)
        a = SceneGenerator(spec, seed=1).generate_objects()
        b = SceneGenerator(spec, seed=2).generate_objects()
        assert [o.enter_frame for o in a] != [o.enter_frame for o in b]

    def test_vehicle_attributes_present(self):
        spec = VideoSpec("t", 10, 1280, 720, 120)
        objects = SceneGenerator(spec, TrafficSceneConfig(vehicles_per_minute=20, pedestrians_per_minute=0), seed=3).generate_objects()
        vehicles = [o for o in objects if o.class_name in ("car", "bus", "truck")]
        assert vehicles
        for v in vehicles:
            assert v.attributes["color"]
            assert v.attributes["vehicle_type"]
            assert len(v.attributes["license_plate"]) == 7
            assert v.attributes["direction"] in ("go_straight", "turn_left", "turn_right")

    def test_green_is_rare(self):
        spec = VideoSpec("t", 10, 1280, 720, 600)
        objects = SceneGenerator(spec, TrafficSceneConfig(vehicles_per_minute=40, pedestrians_per_minute=0), seed=9).generate_objects()
        colors = [o.attributes["color"] for o in objects]
        assert colors.count("green") < colors.count("black")

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_video_builds_for_any_seed(self, seed):
        spec = VideoSpec("t", 10, 640, 480, 20)
        video = SceneGenerator(spec, seed=seed).generate_video()
        assert video.num_frames == 200


class TestScriptedEvents:
    def test_person_gets_into_car(self):
        objs, events = ev.person_gets_into_car(1, 2, (500, 300), start_frame=10)
        assert {o.class_name for o in objs} == {"person", "car"}
        assert events[0].kind == "get_into"
        person = next(o for o in objs if o.class_name == "person")
        assert person.action_at(events[0].start_frame) == "getting_into_car"

    def test_hit_and_run_car_speeds_away(self):
        objs, events = ev.hit_and_run(1, 2, (500, 300), collision_frame=100)
        car = next(o for o in objs if o.class_name == "car")
        assert car.attributes["speeding"] is True
        assert events[0].kind == "collide"
        # After the collision the car moves much faster than before.
        assert car.trajectory.speed(150) > car.trajectory.speed(50)

    def test_person_hits_ball(self):
        objs, events = ev.person_hits_ball(1, 2, (300, 200))
        assert {o.class_name for o in objs} == {"person", "ball"}
        assert events[0].kind == "hit"

    def test_checkout_queue_size(self):
        objs, _ = ev.checkout_queue(10, (100, 300), num_people=5, start_frame=0, duration_frames=100)
        assert len(objs) == 5
        assert all(o.attributes.get("in_queue") for o in objs)

    def test_checkout_queue_rejects_empty(self):
        with pytest.raises(ValueError):
            ev.checkout_queue(10, (0, 0), num_people=0, start_frame=0, duration_frames=10)

    def test_loitering_person_stays(self):
        objs, _ = ev.loitering_person(5, (400, 300), start_frame=0, duration_frames=500)
        person = objs[0]
        positions = [person.trajectory.position(f) for f in range(0, 500, 50)]
        assert all(abs(x - 400) < 200 and abs(y - 300) < 200 for x, y in positions)


class TestDatasetPresets:
    def test_camera_specs_match_table3(self):
        assert CAMERA_SPECS["banff"].fps == 15 and CAMERA_SPECS["banff"].width == 1280
        assert CAMERA_SPECS["jackson"].fps == 15 and CAMERA_SPECS["jackson"].height == 1080
        assert CAMERA_SPECS["southampton"].fps == 30

    def test_camera_clip_duration(self):
        clip = camera_clip("banff", duration_s=20, seed=0)
        assert clip.num_frames == 300

    def test_unknown_camera(self):
        with pytest.raises(KeyError):
            camera_clip("gotham", 10)

    def test_eva_comparison_clips_structure(self):
        clips = eva_comparison_clips(duration_s=5, num_clips=2)
        assert set(clips) == {"banff", "jackson", "southampton"}
        assert all(len(v) == 2 for v in clips.values())

    def test_cityflow_queries_table1(self):
        assert len(CITYFLOW_QUERIES) == 5
        assert CITYFLOW_QUERIES[0].standardized == "green sedan go straight"
        assert CITYFLOW_QUERIES[4].standardized == "black suv turn right"

    def test_cityflow_clip_has_tracks(self):
        clip = cityflow_clip(0, seed=1, duration_s=20, tracks_per_clip=4)
        vehicles = clip.ground_truth_tracks("car") + clip.ground_truth_tracks("bus") + clip.ground_truth_tracks("truck")
        assert len(vehicles) >= 4

    def test_cityflow_dataset_size(self):
        clips = cityflow_dataset(num_clips=3, duration_s=10)
        assert len(clips) == 3

    def test_vcoco_positive_rate(self):
        images = vcoco_images(num_images=300, seed=0, positive_rate=0.05)
        positives = sum(
            1 for img in images if any(inst.interacts("hit") for inst in img.frame(0).instances)
        )
        assert 2 <= positives <= 40

    def test_auburn_clip_attributes(self):
        clip = auburn_clip(duration_s=10, seed=0)
        assert clip.scene_attributes["location"] == "crossroad"

    def test_scenario_clips_contain_events(self):
        assert any(e.kind == "get_into" for e in suspect_scenario_clip(duration_s=30).events)
        assert any(e.kind == "collide" for e in hit_and_run_clip(duration_s=30).events)
        assert loitering_clip(duration_s=30).num_frames > 0
        assert queue_clip(duration_s=30).num_frames > 0


class TestHandoffScenario:
    def test_fixed_duration_clamps_itineraries_to_the_footage(self):
        from repro.videosim.multicam import CameraPlacement, handoff_scenario

        scenario = handoff_scenario(
            cameras=(
                CameraPlacement("short", fps=10, duration_s=5.0),
                CameraPlacement("long", fps=10),
            ),
            num_entities=2,
            dwell_s=6.0,
            travel_gap_s=4.0,
        )
        short = scenario.videos["short"]
        for visits in scenario.itineraries.values():
            for camera, enter_ts, exit_ts in visits:
                if camera != "short":
                    continue
                # The ground truth only claims sightings the clip contains.
                assert enter_ts < short.spec.duration_s
                assert exit_ts <= short.spec.duration_s
        for obj in short.objects:
            assert obj.enter_frame < short.num_frames
            assert obj.exit_frame < short.num_frames

    def test_entities_share_ids_across_feeds_but_distractors_do_not(self):
        from repro.videosim.multicam import CameraPlacement, handoff_scenario

        scenario = handoff_scenario(
            cameras=(
                CameraPlacement("a", fps=10),
                CameraPlacement("b", fps=15, start_offset_s=2.0),
            ),
            num_entities=2,
            background_vehicles_per_minute=6.0,
            seed=4,
        )
        ids = {name: {o.object_id for o in video.objects} for name, video in scenario.videos.items()}
        shared = ids["a"] & ids["b"]
        assert shared == set(scenario.entity_ids)
