"""Tests for the motion models."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.videosim.trajectory import (
    LinearTrajectory,
    LoiterTrajectory,
    StationaryTrajectory,
    TurnTrajectory,
    WaypointTrajectory,
)


class TestLinear:
    def test_position_advances_linearly(self):
        traj = LinearTrajectory((10, 20), (2, -1))
        assert traj.position(0) == (10, 20)
        assert traj.position(5) == (20, 15)

    def test_velocity_constant(self):
        traj = LinearTrajectory((0, 0), (3, 4))
        assert traj.velocity(17) == (3, 4)
        assert traj.speed(17) == pytest.approx(5.0)

    def test_direction_straight(self):
        traj = LinearTrajectory((0, 0), (5, 0))
        assert traj.direction_label(30) == "go_straight"

    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=500))
    def test_position_additive(self, f1, f2):
        traj = LinearTrajectory((0, 0), (1.5, -0.5))
        x1, y1 = traj.position(f1)
        x2, y2 = traj.position(f2)
        x12, y12 = traj.position(f1 + f2)
        assert x12 == pytest.approx(x1 + x2)
        assert y12 == pytest.approx(y1 + y2)


class TestTurn:
    def test_heading_changes_after_turn(self):
        traj = TurnTrajectory((0, 0), (5, 0), turn_frame=10, turn_deg=90, turn_duration=10)
        assert traj.heading_deg(5) == pytest.approx(0.0, abs=1e-6)
        assert traj.heading_deg(40) == pytest.approx(90.0, abs=1.0)

    def test_direction_label_turn_right(self):
        traj = TurnTrajectory((0, 0), (5, 0), turn_frame=5, turn_deg=80, turn_duration=15)
        # During/after the turn, the label reflects a right turn (clockwise on screen).
        assert traj.direction_label(20) == "turn_right"

    def test_direction_label_turn_left(self):
        traj = TurnTrajectory((0, 0), (5, 0), turn_frame=5, turn_deg=-80, turn_duration=15)
        assert traj.direction_label(20) == "turn_left"

    def test_speed_preserved_through_turn(self):
        traj = TurnTrajectory((0, 0), (3, 4), turn_frame=5, turn_deg=90)
        assert traj.speed(50) == pytest.approx(5.0, rel=1e-6)

    def test_position_cache_consistent(self):
        traj = TurnTrajectory((0, 0), (5, 0), turn_frame=5, turn_deg=45)
        late = traj.position(50)
        early = traj.position(10)
        again = traj.position(50)
        assert late == again
        assert early != late


class TestStationaryAndLoiter:
    def test_stationary_without_jitter(self):
        traj = StationaryTrajectory((100, 200))
        assert traj.position(0) == traj.position(500) == (100, 200)

    def test_stationary_jitter_is_deterministic(self):
        a = StationaryTrajectory((0, 0), jitter=2.0, seed=3)
        b = StationaryTrajectory((0, 0), jitter=2.0, seed=3)
        assert a.position(42) == b.position(42)

    def test_stationary_reads_as_stopped(self):
        assert StationaryTrajectory((5, 5)).direction_label(20) == "stopped"

    def test_loiter_stays_in_region(self):
        traj = LoiterTrajectory((500, 300), radius=50, period_frames=100)
        for frame in range(0, 400, 7):
            x, y = traj.position(frame)
            assert math.hypot(x - 500, y - 300) <= 51 * 1.5


class TestWaypoint:
    def test_requires_two_waypoints(self):
        with pytest.raises(ValueError):
            WaypointTrajectory([(0, (0, 0))])

    def test_duplicate_frames_rejected(self):
        with pytest.raises(ValueError):
            WaypointTrajectory([(0, (0, 0)), (0, (1, 1))])

    def test_interpolation(self):
        traj = WaypointTrajectory([(0, (0, 0)), (10, (10, 20))])
        assert traj.position(5) == (5, 10)

    def test_clamps_before_start(self):
        traj = WaypointTrajectory([(10, (5, 5)), (20, (15, 5))])
        assert traj.position(0) == (5, 5)

    def test_hold_at_end(self):
        traj = WaypointTrajectory([(0, (0, 0)), (10, (10, 0))], hold_at_end=True)
        assert traj.position(100) == (10, 0)

    def test_extrapolation_when_not_held(self):
        traj = WaypointTrajectory([(0, (0, 0)), (10, (10, 0))], hold_at_end=False)
        assert traj.position(20) == (20, 0)

    def test_unsorted_waypoints_are_sorted(self):
        traj = WaypointTrajectory([(10, (10, 0)), (0, (0, 0))])
        assert traj.position(5) == (5, 0)
