"""Tests for the paced live-feed adapter (schedule determinism, disorder)."""

from __future__ import annotations

import pytest

from repro.common.config import VideoSpec
from repro.videosim.entities import ObjectSpec
from repro.videosim.livefeed import LiveFeed
from repro.videosim.trajectory import LinearTrajectory
from repro.videosim.video import SyntheticVideo


def _video(duration_s: int = 10, fps: int = 10) -> SyntheticVideo:
    spec = VideoSpec("feedtest", fps=fps, width=640, height=480, duration_s=duration_s)
    car = ObjectSpec(
        object_id=1,
        class_name="car",
        trajectory=LinearTrajectory((50, 300), (2.0, 0.0)),
        size=(100, 50),
        attributes={"color": "red", "vehicle_type": "sedan"},
    )
    return SyntheticVideo(spec, [car], seed=7)


def _drain(feed: LiveFeed, step_ms: float) -> list:
    """Poll the feed to exhaustion at a fixed cadence; return deliveries."""
    out = []
    now = 0.0
    while not feed.exhausted:
        now += step_ms
        out.extend(d for _, d in feed.poll(now))
    return out


class TestSchedule:
    def test_in_order_feed_delivers_every_frame_once(self):
        video = _video()
        feed = LiveFeed(video)
        deliveries = _drain(feed, step_ms=50.0)
        assert [d.frame_id for d in deliveries] == list(range(video.num_frames))
        assert feed.frames_delivered == video.num_frames
        assert feed.frames_lost == 0

    def test_schedule_is_poll_granularity_independent(self):
        kwargs = dict(
            fps=30, seed=5, jitter_ms=4.0, reorder_rate=0.2, duplicate_rate=0.1
        )
        coarse = _drain(LiveFeed(_video(), **kwargs), step_ms=500.0)
        fine = _drain(LiveFeed(_video(), **kwargs), step_ms=1.0)
        assert coarse == fine

    def test_same_seed_same_schedule_different_seed_differs(self):
        kwargs = dict(fps=30, jitter_ms=4.0, reorder_rate=0.3)
        a = _drain(LiveFeed(_video(), seed=5, **kwargs), step_ms=10.0)
        b = _drain(LiveFeed(_video(), seed=5, **kwargs), step_ms=10.0)
        c = _drain(LiveFeed(_video(), seed=6, **kwargs), step_ms=10.0)
        assert a == b
        assert [d.frame_id for d in a] != [d.frame_id for d in c]

    def test_reordered_frames_arrive_behind_successors(self):
        feed = LiveFeed(_video(), seed=5, reorder_rate=0.3)
        assert feed.reordered_frame_ids, "seed must reorder something"
        order = [d.frame_id for d in _drain(feed, step_ms=1.0)]
        reordered = set(feed.reordered_frame_ids)
        checked = 0
        for fid in feed.reordered_frame_ids:
            successor = fid + 1
            if successor < len(order) and successor not in reordered:
                assert order.index(fid) > order.index(successor)
                checked += 1
        assert checked > 0

    def test_duplicates_are_flagged_and_counted(self):
        feed = LiveFeed(_video(), seed=5, duplicate_rate=0.2)
        deliveries = _drain(feed, step_ms=10.0)
        dups = [d for d in deliveries if d.duplicate]
        assert dups
        assert feed.duplicates_delivered == len(dups)
        originals = {d.frame_id for d in deliveries if not d.duplicate}
        assert all(d.frame_id in originals for d in dups)


class TestDisconnects:
    def test_frames_in_window_are_lost_not_delivered(self):
        feed = LiveFeed(_video(), disconnects=[(1000.0, 2000.0)])
        delivered = {d.frame_id for d in _drain(feed, step_ms=10.0)}
        lost = set(range(10, 20))  # captures at 1000..1900 ms
        assert delivered.isdisjoint(lost)
        assert feed.frames_lost == len(lost)

    def test_reconnect_fails_inside_window_succeeds_after(self):
        feed = LiveFeed(_video(), disconnects=[(1000.0, 2000.0)])
        assert feed.reconnect(500.0)
        assert feed.in_outage(1500.0) and not feed.reconnect(1500.0)
        assert feed.reconnect(2000.0)

    def test_lost_before_drains_exactly_once(self):
        feed = LiveFeed(_video(), disconnects=[(1000.0, 2000.0)])
        first = feed.lost_before(1500.0)
        assert first == [10, 11, 12, 13, 14, 15]
        assert feed.lost_before(1500.0) == []
        rest = feed.lost_before(10_000.0)
        assert rest == [16, 17, 18, 19]
        assert feed.frames_lost == 10

    def test_window_validation(self):
        with pytest.raises(ValueError):
            LiveFeed(_video(), disconnects=[(2000.0, 1000.0)])
        with pytest.raises(ValueError):
            LiveFeed(_video(), fps=0)
        with pytest.raises(ValueError):
            LiveFeed(_video(), reorder_rate=1.5)


class TestPacing:
    def test_lag_burst_bunches_deliveries(self):
        """Frames in the burst range deliver together when the lag ends."""
        feed = LiveFeed(_video(), lag_bursts=[(10, 19, 2000.0)])
        normal = LiveFeed(_video())
        burst_times = {
            d.frame_id: d.delivery_ms for d in _drain(feed, step_ms=1.0)
        }
        base_times = {
            d.frame_id: d.delivery_ms for d in _drain(normal, step_ms=1.0)
        }
        for fid in range(10, 20):
            assert burst_times[fid] == base_times[fid] + 2000.0
        assert burst_times[9] == base_times[9]

    def test_next_delivery_ms_tracks_cursor(self):
        feed = LiveFeed(_video())
        assert feed.next_delivery_ms() == 0.0
        feed.poll(0.0)
        assert feed.next_delivery_ms() == pytest.approx(100.0)
        feed.poll(1e9)
        assert feed.next_delivery_ms() is None
        assert feed.exhausted
