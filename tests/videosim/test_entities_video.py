"""Tests for ground-truth entities, frame materialisation, and video reading."""

import pytest

from repro.common.clock import SimClock
from repro.common.geometry import BBox
from repro.common.config import VideoSpec
from repro.videosim.entities import GTInstance, InteractionEvent, ObjectSpec
from repro.videosim.trajectory import LinearTrajectory, StationaryTrajectory
from repro.videosim.video import Frame, SyntheticVideo, VideoReader


def make_spec(**kw):
    defaults = dict(object_id=1, class_name="car", trajectory=LinearTrajectory((100, 100), (1, 0)), size=(50, 30))
    defaults.update(kw)
    return ObjectSpec(**defaults)


class TestObjectSpec:
    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            make_spec(class_name="dragon")

    def test_exit_before_enter_rejected(self):
        with pytest.raises(ValueError):
            make_spec(enter_frame=10, exit_frame=5)

    def test_alive_at(self):
        spec = make_spec(enter_frame=5, exit_frame=10)
        assert not spec.alive_at(4)
        assert spec.alive_at(5) and spec.alive_at(10)
        assert not spec.alive_at(11)

    def test_action_schedule_overrides_default(self):
        spec = make_spec(class_name="person", default_action="walking", action_schedule={7: "fallen"})
        assert spec.action_at(6) == "walking"
        assert spec.action_at(7) == "fallen"

    def test_bbox_follows_trajectory(self):
        spec = make_spec()
        assert spec.bbox_at(0).center == (100, 100)
        assert spec.bbox_at(10).center == (110, 100)


class TestInteractionEvent:
    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            InteractionEvent(1, 2, "hit", 10, 5)

    def test_active_at(self):
        event = InteractionEvent(1, 2, "hit", 5, 8)
        assert not event.active_at(4)
        assert event.active_at(5) and event.active_at(8)
        assert not event.active_at(9)


class TestSyntheticVideo:
    def test_duplicate_ids_rejected(self):
        spec = VideoSpec("v", 10, 640, 480, 2)
        with pytest.raises(ValueError):
            SyntheticVideo(spec, [make_spec(object_id=1), make_spec(object_id=1)])

    def test_num_frames_from_spec(self, tiny_video):
        assert tiny_video.num_frames == 50
        assert len(tiny_video) == 50

    def test_frame_out_of_range(self, tiny_video):
        with pytest.raises(IndexError):
            tiny_video.frame(50)

    def test_frame_contains_visible_objects(self, tiny_video):
        frame = tiny_video.frame(0)
        assert isinstance(frame, Frame)
        assert {i.class_name for i in frame.instances} == {"car", "person"}
        assert frame.timestamp == 0.0

    def test_objects_leave_the_frame(self, tiny_video):
        # The car drives right at 6 px/frame from x=50; it eventually exits.
        last = tiny_video.frame(tiny_video.num_frames - 1)
        assert last.instances_of("car") == [] or last.instances_of("car")[0].bbox.x2 <= 640

    def test_instance_by_id(self, tiny_video):
        frame = tiny_video.frame(0)
        assert frame.instance_by_id(2).class_name == "person"
        assert frame.instance_by_id(99) is None

    def test_interactions_attached(self):
        spec = VideoSpec("v", 10, 640, 480, 2)
        a = make_spec(object_id=1, class_name="person", trajectory=StationaryTrajectory((100, 100)))
        b = make_spec(object_id=2, class_name="ball", trajectory=StationaryTrajectory((120, 100)), size=(10, 10))
        video = SyntheticVideo(spec, [a, b], events=[InteractionEvent(1, 2, "hit", 0, 5)])
        inst = video.frame(3).instance_by_id(1)
        assert inst.interacts("hit")
        other = video.frame(3).instance_by_id(2)
        assert other.interactions == (("hit", 1, False),)
        assert not video.frame(10).instance_by_id(1).interacts("hit")

    def test_canary_is_prefix(self, tiny_video):
        canary = tiny_video.canary(10)
        assert canary.num_frames == 10
        assert canary.frame(3).instances == tiny_video.frame(3).instances

    def test_ground_truth_tracks_filter(self, tiny_video):
        assert len(tiny_video.ground_truth_tracks("car")) == 1
        assert len(tiny_video.ground_truth_tracks()) == 2


class TestGTInstance:
    def test_speed_property(self):
        inst = GTInstance(1, "car", BBox(0, 0, 10, 10), 0, {}, velocity=(3, 4))
        assert inst.speed == pytest.approx(5.0)

    def test_attribute_default(self, tiny_video):
        inst = tiny_video.frame(0).instance_by_id(1)
        assert inst.attribute("color") == "red"
        assert inst.attribute("missing", "fallback") == "fallback"


class TestVideoReader:
    def test_reader_yields_all_frames(self, tiny_video):
        frames = list(VideoReader(tiny_video))
        assert len(frames) == tiny_video.num_frames

    def test_reader_charges_decode_cost(self, tiny_video):
        clock = SimClock()
        list(VideoReader(tiny_video, clock=clock))
        assert clock.by_account["video_reader"] > 0

    def test_batches(self, tiny_video):
        batches = list(VideoReader(tiny_video, batch_size=8).batches())
        assert sum(len(b) for b in batches) == tiny_video.num_frames
        assert all(len(b) == 8 for b in batches[:-1])

    def test_invalid_batch_size(self, tiny_video):
        with pytest.raises(ValueError):
            VideoReader(tiny_video, batch_size=0)
