"""Each rule family, exercised both ways on the fixture packages."""

from __future__ import annotations

from staticcheck_helpers import findings_for, ids_of, keys_of

from repro.staticcheck import CheckConfig


# -- stream-protocol (SC1xx) ------------------------------------------------------


def test_stream_protocol_clean(cleanpkg):
    assert findings_for(cleanpkg, "stream-protocol") == []


def test_stream_protocol_missing_methods(badpkg):
    keys = keys_of(findings_for(badpkg, "stream-protocol"))
    assert "SC101::streaming.py::IncompleteStream.missing.observe_frame" in keys
    assert "SC101::streaming.py::IncompleteStream.missing.finalize" in keys
    # plan_streams IS implemented — no finding for it
    assert "SC101::streaming.py::IncompleteStream.missing.plan_streams" not in keys


def test_stream_protocol_wrong_done_signature(badpkg):
    findings = findings_for(badpkg, "stream-protocol")
    sig = [f for f in findings if f.rule_id == "SC102"]
    assert [f.fingerprint for f in sig] == ["WrongSignatureStream.done.signature"]
    assert "done" in sig[0].message


def test_stream_protocol_private_access_and_arity(badpkg):
    findings = findings_for(badpkg, "stream-protocol")
    assert "SC103::consumer.py::private-access._buf" in keys_of(findings)
    assert "SC104::consumer.py::call-arity.observe_frame.2" in keys_of(findings)


def test_stream_protocol_vararg_override_is_compatible(cleanpkg):
    # LazyStream.done(self, *extra) must not be flagged
    assert findings_for(cleanpkg, "stream-protocol") == []


# -- gate-purity (SC2xx) ----------------------------------------------------------


def test_gate_purity_clean(cleanpkg):
    assert findings_for(cleanpkg, "gate-purity") == []


def test_gate_purity_self_write(badpkg):
    keys = keys_of(findings_for(badpkg, "gate-purity"))
    assert "SC201::framefilters.py::StatefulFilter.self-write._last" in keys


def test_gate_purity_mutation_two_helpers_deep(badpkg):
    findings = findings_for(badpkg, "gate-purity")
    deep = [f for f in findings if f.rule_id == "SC202"]
    assert len(deep) == 1
    assert deep[0].symbol == "badpkg.framefilters.CountingFilter"
    # the finding names the helper chain that reached the mutation
    assert "via keep -> _record -> _tally" in deep[0].message


def test_gate_purity_raw_rng_on_eval_path(badpkg):
    keys = keys_of(findings_for(badpkg, "gate-purity"))
    assert "SC203::framefilters.py::NoisyFilter.rng.numpy.random.random" in keys


def test_gate_purity_package_wide_rng_policy(badpkg):
    keys = keys_of(findings_for(badpkg, "gate-purity"))
    assert "SC204::framefilters.py::raw-rng.numpy.random.default_rng" in keys


# -- picklability (SC3xx) ---------------------------------------------------------


def test_picklability_clean(cleanpkg):
    assert findings_for(cleanpkg, "picklability") == []


def test_picklability_optional_lock_field(badpkg):
    findings = findings_for(badpkg, "picklability")
    lock = [f for f in findings if f.key == "SC301::plan.py::QueryPlan.guard.type"]
    assert len(lock) == 1
    assert "threading.Lock" in lock[0].message


def test_picklability_init_assignments(badpkg):
    keys = keys_of(findings_for(badpkg, "picklability"))
    # annotation flows from the __init__ parameter to the stored field
    assert "SC301::plan.py::ExecutionContext.worker.type" in keys
    # generator expressions stored on the context
    assert "SC302::plan.py::ExecutionContext.frames.value" in keys


def test_picklability_default_factory_and_lambda_registration(badpkg):
    findings = findings_for(badpkg, "picklability")
    keys = keys_of(findings)
    assert "SC302::plan.py::QueryPlan.factory.value" in keys
    assert "SC303::plan.py::register-lambda.bad_factory" in keys
    advisory = [f for f in findings if f.rule_id == "SC304"]
    assert [f.severity for f in advisory] == ["info"]


# -- thread-safety (SC4xx) --------------------------------------------------------


def test_thread_safety_clean_lock_guarded(cleanpkg):
    assert findings_for(cleanpkg, "thread-safety") == []


def test_thread_safety_unsynchronized_mutations(badpkg):
    keys = keys_of(findings_for(badpkg, "thread-safety"))
    assert "SC401::state.py::unsync-write._results.item-write" in keys
    assert "SC401::state.py::unsync-write._totals.call-append" in keys
    assert "SC401::state.py::unsync-write._current.rebind" in keys


def test_thread_safety_pool_lambda(badpkg):
    findings = [f for f in findings_for(badpkg, "thread-safety") if f.rule_id == "SC402"]
    assert len(findings) == 1
    assert findings[0].severity == "warning"


# -- knob-hygiene (SC5xx) ---------------------------------------------------------


def test_knob_hygiene_clean_default_false(cleanpkg):
    assert findings_for(cleanpkg, "knob-hygiene") == []


def test_knob_hygiene_default_true(badpkg):
    keys = keys_of(findings_for(badpkg, "knob-hygiene"))
    assert "SC501::knobs.py::RiskyConfig.enable_turbo.default" in keys
    assert "SC501::knobs.py::RiskyConfig.enable_phantom.default" not in keys


def test_knob_hygiene_coverage_and_docs(badpkg, tmp_path):
    tests_dir = tmp_path / "tests"
    tests_dir.mkdir()
    (tests_dir / "test_knobs.py").write_text(
        "def test_turbo():\n    assert config(enable_turbo=False)\n"
    )
    docs_dir = tmp_path / "docs"
    docs_dir.mkdir()
    (docs_dir / "config.md").write_text("`enable_turbo` switches turbo mode.\n")
    config = CheckConfig(tests_dir=tests_dir, docs_paths=[docs_dir])
    keys = keys_of(findings_for(badpkg, "knob-hygiene", config))
    # enable_turbo is tested and documented; enable_phantom is neither
    assert "SC502::knobs.py::RiskyConfig.enable_phantom.untested" in keys
    assert "SC503::knobs.py::RiskyConfig.enable_phantom.undocumented" in keys
    assert "SC502::knobs.py::RiskyConfig.enable_turbo.untested" not in keys
    assert "SC503::knobs.py::RiskyConfig.enable_turbo.undocumented" not in keys


def test_knob_hygiene_subchecks_skipped_without_env(badpkg):
    ids = ids_of(findings_for(badpkg, "knob-hygiene"))
    assert ids == {"SC501"}


# -- trace-hygiene (SC6xx) --------------------------------------------------------


def test_trace_hygiene_clean_with_statements(cleanpkg):
    # with-statement spans and stack.enter_context(...) are both fine
    assert findings_for(cleanpkg, "trace-hygiene") == []


def test_trace_hygiene_span_outside_with(badpkg):
    keys = keys_of(findings_for(badpkg, "trace-hygiene"))
    assert "SC601::tracing.py::span-no-with.leaky-scan" in keys


def test_trace_hygiene_manual_enter(badpkg):
    keys = keys_of(findings_for(badpkg, "trace-hygiene"))
    # the manual __enter__ call is doubly wrong: the span call itself is
    # outside a with-statement (SC601) AND entered by hand (SC602)
    assert "SC601::tracing.py::span-no-with.manual-scan" in keys
    assert "SC602::tracing.py::span-manual-enter.manual-scan" in keys


def test_trace_hygiene_severity(badpkg):
    findings = findings_for(badpkg, "trace-hygiene")
    assert findings and all(f.severity == "error" for f in findings)


# -- retry-hygiene (SC7xx) --------------------------------------------------------


def test_retry_hygiene_clean(cleanpkg):
    # bounded retries charging backoff, escapable while-True recovery loops,
    # and broad excepts that record or re-raise are all fine
    assert findings_for(cleanpkg, "retry-hygiene") == []


def test_retry_hygiene_swallowed_broad_except(badpkg):
    keys = keys_of(findings_for(badpkg, "retry-hygiene"))
    assert "SC701::resilience.py::swallowed-broad-except.swallow_everything.<unbound>" in keys
    assert "SC701::resilience.py::swallowed-broad-except.swallow_with_unused_binding.exc" in keys


def test_retry_hygiene_unbounded_retry(badpkg):
    keys = keys_of(findings_for(badpkg, "retry-hygiene"))
    assert "SC702::resilience.py::unbounded-retry.retry_forever" in keys


def test_retry_hygiene_free_retry(badpkg):
    keys = keys_of(findings_for(badpkg, "retry-hygiene"))
    assert "SC703::resilience.py::free-retry.hot_retry_no_backoff" in keys


def test_retry_hygiene_severity(badpkg):
    findings = findings_for(badpkg, "retry-hygiene")
    assert findings and all(f.severity == "error" for f in findings)
