"""Helpers shared by the staticcheck tests."""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.staticcheck import CheckConfig, run_checks

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def findings_for(root: Path, rule: str, config: Optional[CheckConfig] = None):
    return run_checks(root, rule_names=[rule], config=config)


def ids_of(findings) -> set:
    return {f.rule_id for f in findings}


def keys_of(findings) -> set:
    return {f.key for f in findings}
