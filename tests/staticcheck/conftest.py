"""Fixture-package paths for the staticcheck tests."""

from __future__ import annotations

from pathlib import Path

import pytest

FIXTURES = Path(__file__).resolve().parent / "fixtures"


@pytest.fixture(scope="session")
def cleanpkg() -> Path:
    return FIXTURES / "cleanpkg"


@pytest.fixture(scope="session")
def badpkg() -> Path:
    return FIXTURES / "badpkg"
