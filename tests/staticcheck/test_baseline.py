"""Baseline suppression semantics."""

from __future__ import annotations

import pytest

from staticcheck_helpers import findings_for

from repro.staticcheck import Baseline, BaselineEntry, Finding


def _finding(**kw):
    base = dict(
        rule_id="SC999",
        severity="error",
        path="x.py",
        line=1,
        symbol="X",
        message="m",
        fingerprint="X.f",
    )
    base.update(kw)
    return Finding(**base)


def test_entry_suppresses_exactly_one_finding(badpkg):
    findings = findings_for(badpkg, "stream-protocol")
    target_key = "SC102::streaming.py::WrongSignatureStream.done.signature"
    assert target_key in {f.key for f in findings}
    baseline = Baseline([BaselineEntry(key=target_key, reason="tracked debt")])
    active, suppressed, stale = baseline.split(findings)
    assert [f.key for f in suppressed] == [target_key]
    assert stale == []
    assert len(active) == len(findings) - 1
    assert target_key not in {f.key for f in active}


def test_stale_entry_reported(badpkg):
    findings = findings_for(badpkg, "stream-protocol")
    baseline = Baseline([BaselineEntry(key="SC102::gone.py::Gone.done.signature", reason="r")])
    active, suppressed, stale = baseline.split(findings)
    assert suppressed == []
    assert [e.key for e in stale] == ["SC102::gone.py::Gone.done.signature"]
    assert len(active) == len(findings)


def test_info_findings_are_visible_but_nonfatal():
    info = _finding(severity="info")
    active, suppressed, stale = Baseline().split([info])
    assert active == [info]  # still shown...
    # ...but the CLI treats only error/warning as fatal (exercised in test_cli)


def test_baseline_requires_reasons_and_unique_keys():
    with pytest.raises(ValueError, match="justification"):
        Baseline([BaselineEntry(key="k", reason="  ")])
    with pytest.raises(ValueError, match="duplicate"):
        Baseline([BaselineEntry(key="k", reason="a"), BaselineEntry(key="k", reason="b")])


def test_roundtrip(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline([BaselineEntry(key="b", reason="2"), BaselineEntry(key="a", reason="1")]).save(path)
    loaded = Baseline.load(path)
    assert [e.key for e in loaded.entries] == ["a", "b"]  # sorted on save
    assert loaded.entries[0].reason == "1"


def test_line_drift_keeps_key_stable():
    before = _finding(line=10)
    after = _finding(line=99)
    assert before.key == after.key
