"""CLI behaviour: formats, exit codes, baseline workflow."""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.staticcheck.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_text_output_and_exit_code(badpkg):
    code, output = run_cli(str(badpkg))
    assert code == 1
    assert "SC101" in output and "hint:" in output
    assert "stale" in output  # summary line


def test_clean_package_exits_zero(cleanpkg):
    code, output = run_cli(str(cleanpkg))
    assert code == 0
    assert "0 finding(s)" in output


def test_json_output(badpkg):
    code, output = run_cli(str(badpkg), "--format", "json")
    assert code == 1
    payload = json.loads(output)
    assert payload["summary"]["active"] > 0
    assert payload["summary"]["stale"] == 0
    keys = {f["key"] for f in payload["findings"]}
    assert "SC103::consumer.py::private-access._buf" in keys
    severities = {f["severity"] for f in payload["findings"]}
    assert severities <= {"error", "warning", "info"}


def test_rule_selection(badpkg):
    code, output = run_cli(str(badpkg), "--rule", "knob-hygiene", "--format", "json")
    payload = json.loads(output)
    assert payload["rules"] == ["knob-hygiene"]
    assert {f["rule_id"] for f in payload["findings"]} == {"SC501"}


def test_write_baseline_then_clean(badpkg, tmp_path):
    baseline = tmp_path / "baseline.json"
    code, _ = run_cli(str(badpkg), "--write-baseline", str(baseline))
    assert code == 0 and baseline.is_file()
    code, output = run_cli(str(badpkg), "--baseline", str(baseline))
    assert code == 0, output
    assert "0 finding(s)" in output


def test_stale_baseline_fails(cleanpkg, tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"entries": [{"key": "SC101::no.py::X", "reason": "r"}]}))
    code, output = run_cli(str(cleanpkg), "--baseline", str(baseline))
    assert code == 1
    assert "stale" in output


def test_info_findings_do_not_fail(badpkg):
    # picklability SC304 is advisory; alone it must exit 0
    code, output = run_cli(str(badpkg), "--rule", "picklability", "--format", "json")
    payload = json.loads(output)
    advisory_only = [f for f in payload["findings"] if f["severity"] == "info"]
    assert advisory_only  # SC304 present...
    assert payload["summary"]["advisory"] == len(advisory_only)
    assert code == 1  # ...but the errors still fail the run


def test_list_rules():
    code, output = run_cli("--list-rules")
    assert code == 0
    for name in ("stream-protocol", "gate-purity", "picklability", "thread-safety", "knob-hygiene"):
        assert name in output


def test_module_entrypoint_runs_clean_on_repo():
    """`python -m repro.staticcheck` must pass on src/repro with the repo baseline."""
    repo_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.staticcheck", "--format", "json"],
        capture_output=True,
        text=True,
        env=env,
        cwd=repo_root,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["summary"]["active"] == 0
    assert payload["summary"]["stale"] == 0
