"""Frame filters violating gate purity."""

from __future__ import annotations

import numpy as np

_HITS: dict = {}


def _tally(frame) -> None:
    _HITS[frame.frame_id] = True  # SC202 (reached two helpers deep)


class StatefulFilter:
    def __init__(self) -> None:
        self._last = None

    def keep(self, frame) -> bool:
        previous = self._last
        self._last = frame  # SC201: state on the evaluation path
        return previous is None


class CountingFilter:
    """Mutation buried two calls deep: keep -> _record -> _tally."""

    def keep(self, frame) -> bool:
        self._record(frame)
        return True

    def _record(self, frame) -> None:
        _tally(frame)


class NoisyFilter:
    def keep(self, frame) -> bool:
        return np.random.random() < 0.5  # SC203: raw RNG on the eval path


def fresh_rng(seed: int):
    return np.random.default_rng(seed)  # SC204: raw RNG construction
