"""Feature knobs violating the opt-in policy."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RiskyConfig:
    enable_turbo: bool = True  # SC501: defaults on
    enable_phantom: bool = False  # SC502/SC503: untested, undocumented
