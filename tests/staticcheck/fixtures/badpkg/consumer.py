"""Call-sites that bypass or misuse the stream protocol."""

from __future__ import annotations

from badpkg.streaming import WrongSignatureStream


def peek(stream: WrongSignatureStream):
    return stream._buf[-1]  # SC103: private attribute of a stream


def drive(stream: WrongSignatureStream, frames):
    for frame_id in frames:
        stream.observe_frame(frame_id, True)  # SC104: wrong arity
