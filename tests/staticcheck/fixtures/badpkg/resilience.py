"""Retry/except shapes the retry-hygiene rule must reject."""

from __future__ import annotations


class TransientError(RuntimeError):
    pass


def swallow_everything(run):
    try:
        run()
    except Exception:  # SC701: neither re-raised nor inspected
        pass


def swallow_with_unused_binding(run, log):
    try:
        run()
    except Exception as exc:  # SC701: bound but never used
        log.warning("run failed")


def retry_forever(fn):
    while True:
        try:
            return fn()
        except TransientError:  # SC702: no raise/break/return escape
            continue


def hot_retry_no_backoff(fn, max_retries: int = 3):
    last = None
    for attempt in range(max_retries):
        try:
            return fn()
        except TransientError as exc:  # SC703: retries are free, no backoff
            last = exc
    raise last
