"""Module state shared with worker threads, without a lock."""

from __future__ import annotations

_results: dict = {}
_totals: list = []
_current = None


def record(key: str, value: object) -> None:
    _results[key] = value  # SC401: item-write without a lock


def accumulate(value: float) -> None:
    _totals.append(value)  # SC401: mutating call without a lock


def set_current(value: object) -> None:
    global _current
    _current = value  # SC401: rebind without a lock


def fan_out(executor, jobs):
    return [executor.submit(lambda: job()) for job in jobs]  # SC402
