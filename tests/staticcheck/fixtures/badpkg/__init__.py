"""Fixture package seeded with one violation per staticcheck finding id."""
