"""Plan/context state that cannot cross a process boundary."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass
class QueryPlan:
    name: str
    guard: Optional[threading.Lock] = None  # SC301: unpicklable type
    scorer: Callable[[int], float] = len  # SC304: callable field (advisory)
    factory: object = field(default_factory=lambda: threading.Lock())  # SC302


class ExecutionContext:
    def __init__(self, seed: int, pool: Optional[threading.Thread] = None) -> None:
        self.seed = seed
        self.worker = pool  # SC301 via the parameter annotation
        self.frames = (i for i in range(3))  # SC302: generator state


def install(zoo) -> None:
    zoo.register(
        "bad_factory",
        lambda **kw: object(),  # SC303: lambda factory in the registry
        kind="binary_classifier",
    )
