"""Span usage that leaks spans instead of closing them."""

from __future__ import annotations


def leaky_scan(tracer, frames):
    span = tracer.span("leaky-scan")  # SC601: never entered, never closed
    for frame_id in frames:
        pass
    return span


def manual_enter(tracer):
    tracer.span("manual-scan").__enter__()  # SC601 + SC602: unbalanced entry
