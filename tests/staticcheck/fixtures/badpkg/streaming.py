"""Streams violating the scheduler protocol."""

from __future__ import annotations

from typing import List


class QueryStream:
    """Fixture anchor playing the role of the real QueryStream base."""

    def done(self) -> bool:
        return False

    def lookback_frames(self) -> int:
        return 0

    def drain_events(self) -> List[int]:
        return []


class IncompleteStream(QueryStream):
    """SC101: concrete subclass without observe_frame/finalize."""

    def plan_streams(self):
        return [self]


class WrongSignatureStream(QueryStream):
    """SC102: protocol overrides that grew required parameters."""

    def __init__(self) -> None:
        self._buf: List[int] = []

    def plan_streams(self):
        return [self]

    def observe_frame(self, frame_id: int) -> None:
        self._buf.append(frame_id)

    def finalize(self, video, ctx) -> None:
        pass

    def done(self, frame) -> bool:  # SC102: scheduler calls done()
        return frame in self._buf
