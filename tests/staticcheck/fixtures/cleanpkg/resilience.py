"""Retry/except shapes that satisfy the retry-hygiene contract."""

from __future__ import annotations


class TransientError(RuntimeError):
    pass


def bounded_retry_with_backoff(clock, fn, max_retries: int = 2):
    """Bounded attempts, backoff charged to the clock between them."""
    last = None
    for attempt in range(max_retries + 1):
        try:
            return fn()
        except TransientError as exc:
            last = exc
            clock.charge("fault-backoff", 5.0 * (2.0**attempt))
    raise last


def recovery_loop(scan, checkpointer):
    """`while True` is fine when every handler can escape via raise."""
    while True:
        try:
            return scan()
        except RuntimeError:
            if not checkpointer.can_resume:
                raise
        checkpointer.restore()


def broad_except_that_records(run, failures):
    """Broad except is fine when the bound exception is actually used."""
    try:
        run()
    except Exception as exc:
        failures.append(exc)


def broad_except_that_reraises(run, log):
    try:
        run()
    except Exception:
        log.warning("run failed")
        raise
