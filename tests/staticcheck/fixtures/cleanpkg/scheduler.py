"""Call-sites that use only the public stream protocol."""

from __future__ import annotations

from cleanpkg.streaming import GoodStream


def drive(stream: GoodStream, frames, video, ctx):
    for frame_id in frames:
        stream.observe_frame(frame_id)
        if stream.done():
            break
    stream.finalize(video, ctx)
    return stream.drain_events()
