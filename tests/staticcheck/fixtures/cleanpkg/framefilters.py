"""A pure frame filter: stateless, deterministic, helper-using."""

from __future__ import annotations


def _brightness(frame) -> float:
    return sum(frame.pixels) / max(len(frame.pixels), 1)


class PureFilter:
    def __init__(self, threshold: float = 0.5) -> None:
        self.threshold = threshold

    def keep(self, frame) -> bool:
        return self._score(frame) >= self.threshold

    def _score(self, frame) -> float:
        return _brightness(frame)
