"""Span usage that follows the with-statement discipline."""

from __future__ import annotations

from contextlib import ExitStack


def traced_scan(tracer, clock, frames):
    with tracer.span("scan", clock=clock, frames=len(frames)):
        for frame_id in frames:
            with tracer.span("frame", clock=clock, frame=frame_id):
                pass


def traced_via_stack(self_obs, stack: ExitStack):
    stack.enter_context(self_obs.tracer.span("stacked-scan"))
