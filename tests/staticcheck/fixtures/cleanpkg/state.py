"""Module state done right: constants untouched, mutation lock-guarded."""

from __future__ import annotations

import threading

DEFAULTS = {"stride": 1, "batch": 8}  # read-only: never mutated

_cache: dict = {}
_cache_lock = threading.Lock()


def remember(key: str, value: object) -> None:
    with _cache_lock:
        _cache[key] = value


def lookup(key: str) -> object:
    with _cache_lock:
        return _cache.get(key)


def run_all(pool, jobs):
    return [pool.submit(run_one, job) for job in jobs]


def run_one(job):
    return job()
