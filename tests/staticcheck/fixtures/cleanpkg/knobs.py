"""A hygienic feature knob: boolean, opt-in, default False."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class FeatureConfig:
    enable_widget: bool = False
    widget_budget: int = 4
