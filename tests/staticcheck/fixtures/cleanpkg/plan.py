"""Picklable plan/context dataclasses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class QueryPlan:
    name: str
    steps: Tuple[str, ...] = ()
    costs: Dict[str, float] = field(default_factory=dict)


@dataclass
class ExecutionContext:
    seed: int = 0
    outputs: List[str] = field(default_factory=list)
