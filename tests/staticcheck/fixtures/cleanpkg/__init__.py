"""Fixture package with no violations: every rule must stay silent."""
