"""A well-behaved stream hierarchy mirroring the real protocol."""

from __future__ import annotations

from typing import List, Optional


class QueryStream:
    """Fixture anchor playing the role of the real QueryStream base."""

    def done(self) -> bool:
        return False

    def lookback_frames(self) -> int:
        return 0

    def drain_events(self) -> List[int]:
        return []

    def min_future_event_start(self, frame_id: int) -> Optional[int]:
        return None

    def min_future_event_end(self, frame_id: int) -> Optional[int]:
        return None


class GoodStream(QueryStream):
    def __init__(self) -> None:
        self._events: List[int] = []

    def plan_streams(self):
        return [self]

    def observe_frame(self, frame_id: int) -> None:
        self._events.append(frame_id)

    def finalize(self, video, ctx) -> None:
        self._events.clear()

    def done(self) -> bool:
        return bool(self._events)


class LazyStream(GoodStream):
    """Inherits the whole protocol from a concrete parent — still fine."""

    def done(self, *extra) -> bool:  # extra positional slack is compatible
        return False
