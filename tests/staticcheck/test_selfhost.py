"""Self-hosted run: the suite analyzes src/repro inside tier-1.

A new violation in the engine fails this test, so the contracts hold
without anyone remembering to run the CLI.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.staticcheck import Baseline, CheckConfig, run_checks

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE_ROOT = Path(repro.__file__).resolve().parent
BASELINE_PATH = REPO_ROOT / "staticcheck-baseline.json"


def _run():
    config = CheckConfig(
        tests_dir=REPO_ROOT / "tests",
        docs_paths=[REPO_ROOT / "docs", REPO_ROOT / "README.md"],
    )
    findings = run_checks(PACKAGE_ROOT, config=config)
    baseline = Baseline.load_or_empty(BASELINE_PATH)
    return baseline.split(findings)


def test_package_has_no_new_findings():
    active, _suppressed, _stale = _run()
    fatal = [f for f in active if f.severity in ("error", "warning")]
    assert fatal == [], "new staticcheck findings:\n" + "\n".join(
        f.format_text() for f in fatal
    )


def test_baseline_has_no_stale_entries():
    _active, _suppressed, stale = _run()
    assert stale == [], "stale baseline entries (fixed or key-drifted):\n" + "\n".join(
        f"  {e.key}: {e.reason}" for e in stale
    )


def test_baseline_is_deliberate():
    """Every baselined key carries a real justification, not the placeholder."""
    baseline = Baseline.load_or_empty(BASELINE_PATH)
    assert baseline.entries, "repo baseline missing"
    for entry in baseline.entries:
        assert "TODO" not in entry.reason, f"unjustified baseline entry: {entry.key}"


def test_shard_parallel_debt_is_retired():
    """The picklability report carries zero blocking zoo fields (shard-parallel gate).

    Every zoo factory is now a picklable ``partial`` over a module-level
    function; nothing is baselined, so any new lambda fails the self-hosted
    run outright instead of regrowing silent debt.
    """
    baseline = Baseline.load_or_empty(BASELINE_PATH)
    sc303 = [e for e in baseline.entries if e.key.startswith("SC303::")]
    assert sc303 == [], "SC303 debt regrew:\n" + "\n".join(f"  {e.key}" for e in sc303)
