"""Tests for deterministic randomness helpers."""

from hypothesis import given, strategies as st

from repro.common.rng import derive_rng, stable_choice, stable_hash, stable_uniform


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_different_inputs_differ(self):
        assert stable_hash("a", 1) != stable_hash("a", 2)

    def test_is_64_bit(self):
        assert 0 <= stable_hash("anything") < 2**64


class TestDeriveRng:
    def test_same_stream_same_sequence(self):
        a = derive_rng(7, "model", 3).random(5)
        b = derive_rng(7, "model", 3).random(5)
        assert list(a) == list(b)

    def test_different_streams_differ(self):
        a = derive_rng(7, "model", 3).random()
        b = derive_rng(7, "model", 4).random()
        assert a != b

    def test_different_seed_differs(self):
        assert derive_rng(1, "x").random() != derive_rng(2, "x").random()


class TestStableUniform:
    @given(st.text(), st.integers())
    def test_in_unit_interval(self, a, b):
        value = stable_uniform(a, b)
        assert 0.0 <= value < 1.0

    def test_deterministic(self):
        assert stable_uniform("k", 5) == stable_uniform("k", 5)

    @given(st.lists(st.integers(), min_size=1, max_size=5), st.integers())
    def test_stable_choice_picks_member(self, options, key):
        assert stable_choice(options, key) in options

    def test_stable_choice_empty_raises(self):
        import pytest

        with pytest.raises(ValueError):
            stable_choice([], 1)
