"""Unit and property-based tests for bounding-box geometry."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.geometry import BBox, center_distance, iou, iou_matrix, union_bbox


def boxes(max_coord=1000.0):
    coords = st.floats(min_value=0.0, max_value=max_coord, allow_nan=False)
    sizes = st.floats(min_value=1.0, max_value=200.0, allow_nan=False)
    return st.builds(lambda x, y, w, h: BBox(x, y, x + w, y + h), coords, coords, sizes, sizes)


class TestBBoxBasics:
    def test_dimensions(self):
        box = BBox(10, 20, 40, 80)
        assert box.width == 30
        assert box.height == 60
        assert box.area == 1800
        assert box.center == (25, 50)
        assert box.bottom_center == (25, 80)

    def test_degenerate_box_rejected(self):
        with pytest.raises(ValueError):
            BBox(10, 10, 5, 20)
        with pytest.raises(ValueError):
            BBox(10, 10, 20, 5)

    def test_from_center_roundtrip(self):
        box = BBox.from_center(100, 50, 40, 20)
        assert box.center == (100, 50)
        assert box.width == 40 and box.height == 20

    def test_from_xywh(self):
        box = BBox.from_xywh(10, 20, 30, 40)
        assert box.as_tuple() == (10, 20, 40, 60)

    def test_as_array(self):
        arr = BBox(1, 2, 3, 4).as_array()
        assert arr.dtype == float
        assert list(arr) == [1, 2, 3, 4]

    def test_translated(self):
        assert BBox(0, 0, 10, 10).translated(5, -3).as_tuple() == (5, -3, 15, 7)

    def test_scaled_preserves_center(self):
        box = BBox(0, 0, 10, 20).scaled(2.0)
        assert box.center == (5, 10)
        assert box.width == 20 and box.height == 40

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BBox(0, 0, 10, 10).scaled(0)

    def test_clipped(self):
        box = BBox(-10, -10, 50, 50).clipped(40, 30)
        assert box.as_tuple() == (0, 0, 40, 30)

    def test_contains_point_and_box(self):
        outer, inner = BBox(0, 0, 100, 100), BBox(10, 10, 20, 20)
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert outer.contains_point(50, 50)
        assert not outer.contains_point(150, 50)


class TestIoU:
    def test_identical_boxes(self):
        box = BBox(0, 0, 10, 10)
        assert iou(box, box) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        assert iou(BBox(0, 0, 10, 10), BBox(20, 20, 30, 30)) == 0.0

    def test_half_overlap(self):
        a, b = BBox(0, 0, 10, 10), BBox(5, 0, 15, 10)
        assert iou(a, b) == pytest.approx(50 / 150)

    def test_edge_distance_zero_when_overlapping(self):
        assert BBox(0, 0, 10, 10).edge_distance(BBox(5, 5, 15, 15)) == 0.0

    def test_edge_distance_positive_when_apart(self):
        assert BBox(0, 0, 10, 10).edge_distance(BBox(13, 0, 20, 10)) == pytest.approx(3.0)

    def test_center_distance(self):
        assert center_distance(BBox(0, 0, 10, 10), BBox(30, 40, 40, 50)) == pytest.approx(50.0)

    def test_iou_matrix_matches_pairwise(self):
        a = [BBox(0, 0, 10, 10), BBox(5, 5, 20, 20)]
        b = [BBox(0, 0, 10, 10), BBox(100, 100, 110, 110), BBox(8, 8, 18, 18)]
        mat = iou_matrix(a, b)
        assert mat.shape == (2, 3)
        for i, box_a in enumerate(a):
            for j, box_b in enumerate(b):
                assert mat[i, j] == pytest.approx(box_a.iou(box_b))

    def test_iou_matrix_empty(self):
        assert iou_matrix([], [BBox(0, 0, 1, 1)]).shape == (0, 1)


class TestUnion:
    def test_union_bbox(self):
        union = union_bbox([BBox(0, 0, 10, 10), BBox(5, -5, 20, 8)])
        assert union.as_tuple() == (0, -5, 20, 10)

    def test_union_empty_raises(self):
        with pytest.raises(ValueError):
            union_bbox([])


class TestGeometryProperties:
    @given(boxes(), boxes())
    def test_iou_symmetric_and_bounded(self, a, b):
        v = iou(a, b)
        assert 0.0 <= v <= 1.0 + 1e-9
        assert v == pytest.approx(iou(b, a))

    @given(boxes())
    def test_self_iou_is_one(self, box):
        assert iou(box, box) == pytest.approx(1.0)

    @given(boxes(), st.floats(min_value=-100, max_value=100), st.floats(min_value=-100, max_value=100))
    def test_translation_preserves_area(self, box, dx, dy):
        assert box.translated(dx, dy).area == pytest.approx(box.area)

    @given(boxes(), boxes())
    def test_union_contains_both(self, a, b):
        union = union_bbox([a, b])
        assert union.contains(a) and union.contains(b)

    @given(boxes(), boxes())
    def test_intersection_not_larger_than_either(self, a, b):
        inter = a.intersection(b)
        assert inter <= min(a.area, b.area) + 1e-6
