"""Tests for the simulated clock and cost profiles."""

import pytest

from repro.common.clock import CostProfile, SimClock


class TestCostProfile:
    def test_cost_with_items(self):
        profile = CostProfile(base_ms=10.0, per_item_ms=2.0)
        assert profile.cost(0) == 10.0
        assert profile.cost(5) == 20.0

    def test_negative_items_rejected(self):
        with pytest.raises(ValueError):
            CostProfile(1.0).cost(-1)

    def test_scaled(self):
        scaled = CostProfile(10.0, 2.0).scaled(0.5)
        assert scaled.base_ms == 5.0
        assert scaled.per_item_ms == 1.0


class TestSimClock:
    def test_charge_accumulates(self):
        clock = SimClock()
        clock.charge("detector", 10.0)
        clock.charge("detector", 5.0)
        clock.charge("tracker", 1.0)
        assert clock.elapsed_ms == 16.0
        assert clock.by_account["detector"] == 15.0
        assert clock.calls["detector"] == 2

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            SimClock().charge("x", -1.0)

    def test_charge_profile(self):
        clock = SimClock()
        charged = clock.charge_profile("color", CostProfile(5.0, 1.0), n_items=3)
        assert charged == 8.0
        assert clock.elapsed_ms == 8.0

    def test_snapshot_and_since(self):
        clock = SimClock()
        clock.charge("a", 5.0)
        snap = clock.snapshot()
        clock.charge("a", 7.0)
        assert clock.since(snap) == 7.0

    def test_breakdown_sorted_descending(self):
        clock = SimClock()
        clock.charge("small", 1.0)
        clock.charge("big", 100.0)
        keys = list(clock.breakdown())
        assert keys[0] == "big"

    def test_region_attribution(self):
        clock = SimClock()
        with clock.region("phase1"):
            clock.charge("model", 10.0)
        assert clock.by_account["region:phase1"] == 10.0
        assert clock.elapsed_ms == 10.0  # regions never double-charge

    def test_reset(self):
        clock = SimClock()
        clock.charge("x", 3.0)
        clock.reset()
        assert clock.elapsed_ms == 0.0
        assert not clock.by_account

    def test_merge(self):
        a, b = SimClock(), SimClock()
        a.charge("x", 1.0)
        b.charge("x", 2.0)
        b.charge("y", 3.0)
        a.merge(b)
        assert a.elapsed_ms == 6.0
        assert a.by_account["x"] == 3.0
        assert a.by_account["y"] == 3.0

    def test_elapsed_seconds(self):
        clock = SimClock()
        clock.charge("x", 1500.0)
        assert clock.elapsed_seconds == pytest.approx(1.5)
