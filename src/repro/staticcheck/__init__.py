"""Engine-aware static analysis for the repro codebase.

The engine's correctness rests on contracts that ordinary tests cannot see
breaking: streams must speak the scan scheduler's protocol, frame filters
hoisted into the batch gate must be pure, plans/streams/contexts must stay
picklable for the shard-parallel roadmap, thread workers must not share
mutable module state, and behaviour-changing knobs must default off.  This
package encodes those contracts as AST-based lint rules with a registry,
structured findings, a baseline-suppression file for accepted debt, and a
CLI (``python -m repro.staticcheck``).

Rule families
-------------
* ``stream-protocol`` (SC1xx) — every :class:`QueryStream` subclass
  implements the scheduler protocol with compatible signatures, and no
  call-site bypasses it by reaching into stream internals.
* ``gate-purity`` (SC2xx) — hoistable frame filters are stateless and
  deterministic on their evaluation path (interprocedural over local
  helpers), and raw RNG construction stays behind :mod:`repro.common.rng`.
* ``picklability`` (SC3xx) — fields of plans/streams/contexts/configs whose
  types cannot cross a process boundary (the shard-parallel entry gate).
* ``thread-safety`` (SC4xx) — module-level mutable state mutated without a
  lock, and closure hazards on the thread-pool worker path.
* ``knob-hygiene`` (SC5xx) — every ``enable_*`` knob defaults to ``False``,
  is exercised by a test, and is documented.

See ``docs/staticcheck.md`` for the rule catalog and baselining workflow.
"""

from __future__ import annotations

from repro.staticcheck.baseline import Baseline, BaselineEntry
from repro.staticcheck.core import (
    AnalysisTarget,
    CheckConfig,
    Finding,
    Rule,
    all_rules,
    get_rule,
    register_rule,
    run_checks,
)

# Importing the rules package registers every built-in rule.
import repro.staticcheck.rules  # noqa: F401  (registration side effect)

__all__ = [
    "AnalysisTarget",
    "Baseline",
    "BaselineEntry",
    "CheckConfig",
    "Finding",
    "Rule",
    "all_rules",
    "get_rule",
    "register_rule",
    "run_checks",
]
