"""Shared AST utilities: class/function indexing and name resolution.

The rules need three capabilities that plain ``ast`` does not provide:

* a package-wide *class index* with transitive subclass resolution across
  modules (stream-protocol, picklability);
* per-module *function indexes* so purity analysis can follow local helper
  calls interprocedurally (gate-purity);
* lightweight dotted-name resolution through each module's import table
  (RNG-policy and bad-type detection).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.staticcheck.core import AnalysisTarget, ModuleInfo


@dataclass
class ClassInfo:
    """One class definition in the analyzed package."""

    name: str
    qualname: str  # dotted module + class name
    node: ast.ClassDef
    module: ModuleInfo
    #: Base names resolved through the module's import table (dotted where
    #: resolution succeeded, bare otherwise).
    base_names: List[str] = field(default_factory=list)

    def methods(self) -> Dict[str, ast.FunctionDef]:
        out: Dict[str, ast.FunctionDef] = {}
        for item in self.node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out[item.name] = item
        return out

    def is_dataclass(self) -> bool:
        for deco in self.node.decorator_list:
            name = _decorator_name(deco)
            if name in ("dataclass", "dataclasses.dataclass"):
                return True
        return False

    def has_abstract_methods(self) -> bool:
        for method in self.methods().values():
            for deco in method.decorator_list:
                if _decorator_name(deco) in ("abstractmethod", "abc.abstractmethod"):
                    return True
        return False

    def self_attribute_names(self) -> Set[str]:
        """Every attribute name assigned as ``self.<name> = ...`` anywhere."""
        names: Set[str] = set()
        for node in ast.walk(self.node):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for tgt in targets:
                if (
                    isinstance(tgt, ast.Attribute)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id == "self"
                ):
                    names.add(tgt.attr)
        return names


def _decorator_name(deco: ast.expr) -> str:
    if isinstance(deco, ast.Call):
        deco = deco.func
    parts: List[str] = []
    while isinstance(deco, ast.Attribute):
        parts.append(deco.attr)
        deco = deco.value
    if isinstance(deco, ast.Name):
        parts.append(deco.id)
    return ".".join(reversed(parts))


class ClassIndex:
    """All classes of an :class:`AnalysisTarget`, with subclass queries."""

    def __init__(self, target: AnalysisTarget) -> None:
        self.target = target
        self.by_qualname: Dict[str, ClassInfo] = {}
        #: bare class name -> infos (several modules may reuse a name).
        self.by_name: Dict[str, List[ClassInfo]] = {}
        for module in target.modules:
            for node in module.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                bases = []
                for base in node.bases:
                    resolved = module.resolve_attr_chain(base)
                    if resolved is None and isinstance(base, ast.Name):
                        resolved = module.resolve_name(base.id)
                    if resolved is not None:
                        bases.append(resolved)
                info = ClassInfo(
                    name=node.name,
                    qualname=f"{module.dotted}.{node.name}",
                    node=node,
                    module=module,
                    base_names=bases,
                )
                self.by_qualname[info.qualname] = info
                self.by_name.setdefault(node.name, []).append(info)

    def subclasses_of(self, base_bare_name: str) -> List[ClassInfo]:
        """Classes transitively subclassing any class named ``base_bare_name``.

        Matching is by the *last component* of the (resolved) base name, so
        both in-target definitions and imports of the anchor class count.
        The anchor class itself is not included.
        """
        out: List[ClassInfo] = []
        for info in self.by_qualname.values():
            if info.name == base_bare_name:
                continue
            if self._derives_from(info, base_bare_name, seen=set()):
                out.append(info)
        return out

    def _derives_from(self, info: ClassInfo, base_bare_name: str, seen: Set[str]) -> bool:
        if info.qualname in seen:
            return False
        seen.add(info.qualname)
        for base in info.base_names:
            last = base.split(".")[-1]
            if last == base_bare_name:
                return True
            for candidate in self.by_name.get(last, []):
                if self._derives_from(candidate, base_bare_name, seen):
                    return True
        return False

    def ancestors_in_target(self, info: ClassInfo) -> List[ClassInfo]:
        """In-target ancestor classes of ``info`` (nearest first)."""
        out: List[ClassInfo] = []
        queue = list(info.base_names)
        seen: Set[str] = set()
        while queue:
            base = queue.pop(0)
            last = base.split(".")[-1]
            for candidate in self.by_name.get(last, []):
                if candidate.qualname in seen or candidate is info:
                    continue
                seen.add(candidate.qualname)
                out.append(candidate)
                queue.extend(candidate.base_names)
        return out

    def lookup_method(
        self, info: ClassInfo, method_name: str
    ) -> Optional[Tuple[ClassInfo, ast.FunctionDef]]:
        """Resolve a method on the class or its in-target ancestors (MRO-ish)."""
        for owner in [info] + self.ancestors_in_target(info):
            method = owner.methods().get(method_name)
            if method is not None:
                return owner, method
        return None


def module_functions(module: ModuleInfo) -> Dict[str, ast.FunctionDef]:
    """Top-level functions of a module, by name."""
    return {
        node.name: node
        for node in module.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def module_level_assignments(module: ModuleInfo) -> Dict[str, ast.AST]:
    """Module-scope name -> the value expression last assigned to it."""
    out: Dict[str, ast.AST] = {}
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    out[tgt.id] = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.value is not None:
                out[node.target.id] = node.value
    return out


#: Call / constructor names that produce mutable containers.
MUTABLE_CONSTRUCTORS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "deque",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "collections.deque",
    "collections.defaultdict",
    "collections.OrderedDict",
    "collections.Counter",
}

#: Names (or dotted suffixes) of mutating container methods.
MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "appendleft",
    "extendleft",
    "sort",
    "reverse",
}


def is_mutable_container_expr(node: ast.AST, module: ModuleInfo) -> bool:
    """True when ``node`` evaluates to a freshly built mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = module.resolve_attr_chain(node.func)
        if name is None and isinstance(node.func, ast.Name):
            name = module.resolve_name(node.func.id)
        if name is None:
            return False
        return name in MUTABLE_CONSTRUCTORS or name.split(".")[-1] in {
            n.split(".")[-1] for n in MUTABLE_CONSTRUCTORS
        }
    return False


def walk_function_body(func: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk a function's statements without descending into nested defs."""

    def _walk(nodes: List[ast.stmt]) -> Iterator[ast.AST]:
        for stmt in nodes:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield from ast.walk(stmt)

    yield from _walk(func.body)


def annotation_names(node: Optional[ast.AST], module: ModuleInfo) -> List[str]:
    """Every dotted/bare type name mentioned in an annotation expression.

    Handles subscripted generics (``Optional[threading.Lock]``), string
    annotations, and unions; resolution goes through the import table.
    """
    if node is None:
        return []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return []
    names: List[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            resolved = module.resolve_attr_chain(sub)
            if resolved is not None:
                names.append(resolved)
        elif isinstance(sub, ast.Name):
            names.append(module.resolve_name(sub.id))
    return names
