"""SC5xx — hygiene of feature knobs (``enable_*`` / ``enabled`` flags).

The engine's optimizations ship behind boolean knobs.  The repo's policy:
a knob defaults to **False** (new behaviour is opt-in until it has earned
paper-default status), is **exercised by at least one test** (a knob
nobody flips is dead weight or, worse, untested live code), and is
**documented** (users cannot opt into what they cannot find).  Deliberate
default-True knobs — paper-default semantics — are baselined with a
justification rather than silently exempted.

Findings
--------
* ``SC501`` boolean knob defaulting to something other than False
* ``SC502`` knob never referenced by any test
* ``SC503`` knob not mentioned in the documentation
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.staticcheck.astutils import ClassIndex, annotation_names
from repro.staticcheck.core import AnalysisTarget, CheckConfig, Finding, Rule, register_rule


def _is_knob_name(name: str) -> bool:
    return name.startswith("enable_") or name == "enabled"


@register_rule
class KnobHygieneRule(Rule):
    name = "knob-hygiene"
    id_prefix = "SC5"
    description = (
        "every enable_* knob defaults to False, is exercised by at least "
        "one test, and is documented"
    )

    def check(self, target: AnalysisTarget, config: CheckConfig) -> List[Finding]:
        findings: List[Finding] = []
        knobs = list(self._knobs(target))
        test_blob = "\n".join(config.test_texts())
        doc_blob = "\n".join(config.doc_texts())
        for info_qualname, relpath, name, line, default in knobs:
            owner = info_qualname.split(".")[-1]
            if default is not False:
                shown = repr(default) if default is not None else "a non-literal expression"
                findings.append(
                    Finding(
                        rule_id="SC501",
                        severity="error",
                        path=relpath,
                        line=line,
                        symbol=f"{info_qualname}.{name}",
                        message=(
                            f"knob defaults to {shown}; policy is opt-in (False) unless the "
                            "behaviour is paper-default and baselined with a justification"
                        ),
                        fix_hint="default the knob to False, or baseline it with a reason",
                        fingerprint=f"{owner}.{name}.default",
                    )
                )
            if test_blob and name != "enabled" and name not in test_blob:
                findings.append(
                    Finding(
                        rule_id="SC502",
                        severity="warning",
                        path=relpath,
                        line=line,
                        symbol=f"{info_qualname}.{name}",
                        message="knob is never referenced by any test",
                        fix_hint="add a test that exercises the knob in both positions",
                        fingerprint=f"{owner}.{name}.untested",
                    )
                )
            if doc_blob and name != "enabled" and name not in doc_blob:
                findings.append(
                    Finding(
                        rule_id="SC503",
                        severity="warning",
                        path=relpath,
                        line=line,
                        symbol=f"{info_qualname}.{name}",
                        message="knob is not mentioned anywhere in the documentation",
                        fix_hint="add the knob to the configuration docs (docs/*.md)",
                        fingerprint=f"{owner}.{name}.undocumented",
                    )
                )
        return findings

    def _knobs(
        self, target: AnalysisTarget
    ) -> Iterator[Tuple[str, str, str, int, object]]:
        """(class qualname, relpath, knob name, line, default literal or None)."""
        index = ClassIndex(target)
        for info in index.by_qualname.values():
            for item in info.node.body:
                if not isinstance(item, ast.AnnAssign) or not isinstance(item.target, ast.Name):
                    continue
                name = item.target.id
                if not _is_knob_name(name):
                    continue
                names = annotation_names(item.annotation, info.module)
                if "bool" not in [n.split(".")[-1] for n in names]:
                    continue
                if isinstance(item.value, ast.Constant):
                    default = item.value.value
                else:
                    default = None if item.value is not None else False
                yield info.qualname, info.module.relpath, name, item.lineno, default
