"""SC1xx — stream-protocol conformance.

Every :class:`~repro.backend.streaming.QueryStream` subclass must speak the
scan scheduler's protocol: the three core hooks (``plan_streams`` /
``observe_frame`` / ``finalize``) must exist, and every protocol override
(``done`` / ``drain_events`` / ``lookback_frames`` / the watermark pair)
must keep a compatible signature — the scheduler calls them positionally,
so an override that grows a required parameter fails only at scan time, on
whichever workload first retires a stream.  Call-sites must not bypass the
protocol either: reaching into another module's stream internals
(underscore attributes) couples the scheduler to one implementation and
breaks every other subclass.

Findings
--------
* ``SC101`` missing protocol method on a concrete stream subclass
* ``SC102`` protocol override with an incompatible signature
* ``SC103`` cross-module access to a stream's private attribute
* ``SC104`` protocol method called with the wrong arity
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.staticcheck.astutils import ClassIndex, ClassInfo
from repro.staticcheck.core import AnalysisTarget, CheckConfig, Finding, Rule, register_rule

#: The anchor base class all stream implementations derive from.
STREAM_BASE = "QueryStream"

#: Protocol methods -> their positional parameter names (including self).
PROTOCOL_SIGNATURES: Dict[str, Tuple[str, ...]] = {
    "plan_streams": ("self",),
    "observe_frame": ("self", "frame_id"),
    "finalize": ("self", "video", "ctx"),
    "done": ("self",),
    "lookback_frames": ("self",),
    "drain_events": ("self",),
    "min_future_event_start": ("self", "frame_id"),
    "min_future_event_end": ("self", "frame_id"),
}

#: Hooks without a default implementation — every concrete subclass needs
#: them (directly or via an ancestor).
REQUIRED_METHODS = ("plan_streams", "observe_frame", "finalize")


def _positional_arity(func: ast.FunctionDef) -> Tuple[int, int, bool]:
    """(min positional args, max positional args, accepts *args)."""
    args = func.args
    positional = list(args.posonlyargs) + list(args.args)
    n_defaults = len(args.defaults)
    return len(positional) - n_defaults, len(positional), args.vararg is not None


@register_rule
class StreamProtocolRule(Rule):
    name = "stream-protocol"
    id_prefix = "SC1"
    description = (
        "QueryStream subclasses implement the scan-scheduler protocol with "
        "compatible signatures, and call-sites never bypass it"
    )

    def check(self, target: AnalysisTarget, config: CheckConfig) -> List[Finding]:
        index = ClassIndex(target)
        findings: List[Finding] = []
        stream_classes = index.subclasses_of(STREAM_BASE)

        for info in stream_classes:
            findings.extend(self._check_subclass(index, info))

        findings.extend(self._check_private_access(target, index, stream_classes))
        findings.extend(self._check_call_arity(target))
        return findings

    # -- SC101 / SC102 ----------------------------------------------------------
    def _check_subclass(self, index: ClassIndex, info: ClassInfo) -> List[Finding]:
        findings: List[Finding] = []
        concrete = not info.has_abstract_methods()

        if concrete:
            for method_name in REQUIRED_METHODS:
                if index.lookup_method(info, method_name) is None:
                    findings.append(
                        Finding(
                            rule_id="SC101",
                            severity="error",
                            path=info.module.relpath,
                            line=info.node.lineno,
                            symbol=info.qualname,
                            message=(
                                f"stream subclass does not implement the required "
                                f"protocol method {method_name}()"
                            ),
                            fix_hint=(
                                f"implement {method_name}{PROTOCOL_SIGNATURES[method_name]} "
                                "or inherit it from a concrete stream base"
                            ),
                            fingerprint=f"{info.name}.missing.{method_name}",
                        )
                    )

        for method_name, expected in PROTOCOL_SIGNATURES.items():
            method = info.methods().get(method_name)
            if method is None:
                continue
            lo, hi, varargs = _positional_arity(method)
            want = len(expected)
            compatible = (lo <= want <= hi) or (varargs and lo <= want)
            if not compatible:
                findings.append(
                    Finding(
                        rule_id="SC102",
                        severity="error",
                        path=info.module.relpath,
                        line=method.lineno,
                        symbol=f"{info.qualname}.{method_name}",
                        message=(
                            f"protocol override accepts {lo}..{hi} positional args, but the "
                            f"scheduler calls {method_name} with {want} "
                            f"({', '.join(expected)})"
                        ),
                        fix_hint=f"match the base signature {method_name}{expected} "
                        "(extra parameters need defaults)",
                        fingerprint=f"{info.name}.{method_name}.signature",
                    )
                )
        return findings

    # -- SC103 ------------------------------------------------------------------
    def _check_private_access(
        self, target: AnalysisTarget, index: ClassIndex, stream_classes: List[ClassInfo]
    ) -> List[Finding]:
        # Private state of each stream class, and the module defining it.
        private_owners: Dict[str, Set[str]] = {}
        for info in stream_classes:
            for attr in info.self_attribute_names():
                if attr.startswith("_") and not attr.startswith("__"):
                    private_owners.setdefault(attr, set()).add(info.module.relpath)

        findings: List[Finding] = []
        for module in target.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Attribute):
                    continue
                attr = node.attr
                owners = private_owners.get(attr)
                if owners is None or module.relpath in owners:
                    continue
                # self._x inside the defining class is fine; any other
                # receiver in a foreign module is a protocol bypass.
                if isinstance(node.value, ast.Name) and node.value.id in ("self", "cls"):
                    continue
                findings.append(
                    Finding(
                        rule_id="SC103",
                        severity="error",
                        path=module.relpath,
                        line=node.lineno,
                        symbol=f"{module.dotted}",
                        message=(
                            f"accesses stream-private attribute .{attr} "
                            f"(owned by {'/'.join(sorted(owners))}) instead of the "
                            "scheduler protocol"
                        ),
                        fix_hint="use the QueryStream protocol (done/drain_events/"
                        "lookback_frames/watermarks) or add a public accessor",
                        fingerprint=f"private-access.{attr}",
                    )
                )
        return findings

    # -- SC104 ------------------------------------------------------------------
    def _check_call_arity(self, target: AnalysisTarget) -> List[Finding]:
        findings: List[Finding] = []
        for module in target.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                    continue
                name = node.func.attr
                expected = PROTOCOL_SIGNATURES.get(name)
                if expected is None:
                    continue
                want = len(expected) - 1  # receiver is implicit at the call
                given = len(node.args) + len(node.keywords)
                if any(isinstance(a, ast.Starred) for a in node.args):
                    continue
                if given != want:
                    findings.append(
                        Finding(
                            rule_id="SC104",
                            severity="error",
                            path=module.relpath,
                            line=node.lineno,
                            symbol=module.dotted,
                            message=(
                                f"calls protocol method {name}() with {given} args; "
                                f"the protocol takes {want}"
                            ),
                            fix_hint=f"call {name} as {name}{tuple(expected[1:])}",
                            fingerprint=f"call-arity.{name}.{given}",
                        )
                    )
        return findings
