"""Built-in rule families; importing this package registers them all."""

from __future__ import annotations

import repro.staticcheck.rules.stream_protocol  # noqa: F401
import repro.staticcheck.rules.gate_purity  # noqa: F401
import repro.staticcheck.rules.picklability  # noqa: F401
import repro.staticcheck.rules.thread_safety  # noqa: F401
import repro.staticcheck.rules.knob_hygiene  # noqa: F401
import repro.staticcheck.rules.trace_hygiene  # noqa: F401
import repro.staticcheck.rules.retry_hygiene  # noqa: F401
