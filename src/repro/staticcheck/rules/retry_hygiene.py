"""SC7xx — retry/except hygiene for fault-tolerant code paths.

The fault-tolerance layer (:mod:`repro.faults`) retries model invocations
and recovers crashed scans; this rule family keeps those paths honest
engine-wide:

* a broad ``except`` that neither re-raises nor inspects the exception
  swallows faults the resilience layer is supposed to see and count;
* a ``while True`` retry loop whose handler never raises retries forever —
  with simulated models a persistent fault turns that into a livelock;
* a bounded retry loop that never charges backoff to a clock retries for
  *free* on the virtual timeline, so measured latencies under faults are
  fiction.

Findings
--------
* ``SC701`` broad ``except`` (bare / ``Exception`` / ``BaseException``)
  whose handler neither re-raises nor uses the bound exception
* ``SC702`` ``while True`` loop retrying through an except handler with no
  ``raise``/``break``/``return`` escape (unbounded retry)
* ``SC703`` bounded retry loop (``for <attempt-like> in range(...)``) that
  retries without a backoff/charge/sleep call anywhere in the loop
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.staticcheck.core import AnalysisTarget, CheckConfig, Finding, ModuleInfo, Rule, register_rule

#: Exception names considered "broad" for SC701.
_BROAD = {"Exception", "BaseException"}

#: Loop-variable substrings that mark a for-range loop as a retry loop.
_RETRY_VARS = ("attempt", "retry", "retries", "tries")

#: Call-name substrings that count as paying for a retry delay.
_BACKOFF_HINTS = ("backoff", "sleep", "charge", "wait")


def _handler_is_broad(handler: ast.ExceptHandler, module: ModuleInfo) -> bool:
    if handler.type is None:
        return True
    names: List[ast.expr] = (
        list(handler.type.elts) if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for expr in names:
        dotted = module.resolve_attr_chain(expr)
        if dotted is not None and dotted.split(".")[-1] in _BROAD:
            return True
    return False


def _contains(body: List[ast.stmt], *node_types: type) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, node_types):
                return True
    return False


def _uses_name(body: List[ast.stmt], name: str) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id == name and isinstance(node.ctx, ast.Load):
                return True
    return False


def _call_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return ""


def _has_backoff_call(body: List[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                name = _call_name(node).lower()
                if any(hint in name for hint in _BACKOFF_HINTS):
                    return True
    return False


def _is_while_true(node: ast.While) -> bool:
    test = node.test
    return isinstance(test, ast.Constant) and bool(test.value) is True


def _is_retry_for(node: ast.For) -> bool:
    """``for <attempt-like> in range(...)`` — the bounded-retry shape."""
    if not isinstance(node.target, ast.Name):
        return False
    if not any(part in node.target.id.lower() for part in _RETRY_VARS):
        return False
    it = node.iter
    return isinstance(it, ast.Call) and isinstance(it.func, ast.Name) and it.func.id == "range"


def _enclosing_symbol(module: ModuleInfo, lineno: int) -> str:
    """Dotted name of the innermost def/class containing ``lineno``."""
    best: Optional[str] = None
    best_span = None

    def visit(node: ast.AST, prefix: str) -> None:
        nonlocal best, best_span
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                end = getattr(child, "end_lineno", child.lineno)
                name = f"{prefix}.{child.name}" if prefix else child.name
                if child.lineno <= lineno <= end:
                    span = end - child.lineno
                    if best_span is None or span <= best_span:
                        best, best_span = name, span
                    visit(child, name)
            else:
                visit(child, prefix)

    visit(module.tree, "")
    return f"{module.dotted}.{best}" if best else module.dotted


@register_rule
class RetryHygieneRule(Rule):
    name = "retry-hygiene"
    id_prefix = "SC7"
    description = (
        "broad excepts re-raise or use the exception; retry loops bound their "
        "attempts and charge backoff to a clock"
    )

    def check(self, target: AnalysisTarget, config: CheckConfig) -> List[Finding]:
        findings: List[Finding] = []
        for module in target.modules:
            findings.extend(self._check_module(module))
        unique: Dict[str, Finding] = {}
        for finding in findings:
            unique.setdefault(finding.key, finding)
        return list(unique.values())

    def _check_module(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                findings.extend(self._check_broad_handler(module, node))
            elif isinstance(node, ast.While) and _is_while_true(node):
                findings.extend(self._check_unbounded_retry(module, node))
            elif isinstance(node, ast.For) and _is_retry_for(node):
                findings.extend(self._check_free_retry(module, node))
        return findings

    # -- SC701 ------------------------------------------------------------
    def _check_broad_handler(self, module: ModuleInfo, handler: ast.ExceptHandler) -> List[Finding]:
        if not _handler_is_broad(handler, module):
            return []
        if _contains(handler.body, ast.Raise):
            return []
        if handler.name and _uses_name(handler.body, handler.name):
            return []
        label = handler.name or "<unbound>"
        symbol = _enclosing_symbol(module, handler.lineno)
        return [
            Finding(
                rule_id="SC701",
                severity="error",
                path=module.relpath,
                line=handler.lineno,
                symbol=symbol,
                message=(
                    "broad except swallows the exception — the handler neither "
                    "re-raises nor uses the bound error, so faults vanish without "
                    "a trace (retry counters, breakers, and logs all miss them)"
                ),
                fix_hint=(
                    "catch the narrowest type that can actually occur, or record/"
                    "re-raise the bound exception"
                ),
                fingerprint=f"swallowed-broad-except.{symbol.rsplit('.', 1)[-1]}.{label}",
            )
        ]

    # -- SC702 ------------------------------------------------------------
    def _check_unbounded_retry(self, module: ModuleInfo, loop: ast.While) -> List[Finding]:
        findings: List[Finding] = []
        for stmt in loop.body:
            if not isinstance(stmt, ast.Try):
                continue
            for handler in stmt.handlers:
                if _contains(handler.body, ast.Raise, ast.Break, ast.Return):
                    continue
                symbol = _enclosing_symbol(module, handler.lineno)
                findings.append(
                    Finding(
                        rule_id="SC702",
                        severity="error",
                        path=module.relpath,
                        line=handler.lineno,
                        symbol=symbol,
                        message=(
                            "unbounded retry: `while True` re-enters the loop from an "
                            "except handler with no raise/break/return escape — a "
                            "persistent fault livelocks the scan"
                        ),
                        fix_hint=(
                            "bound the attempts (for attempt in range(n)) or re-raise "
                            "once a retry budget is spent"
                        ),
                        fingerprint=f"unbounded-retry.{symbol.rsplit('.', 1)[-1]}",
                    )
                )
        return findings

    # -- SC703 ------------------------------------------------------------
    def _check_free_retry(self, module: ModuleInfo, loop: ast.For) -> List[Finding]:
        retries = False
        for stmt in loop.body:
            if not isinstance(stmt, ast.Try):
                continue
            for handler in stmt.handlers:
                # A handler that always raises is an escape, not a retry.
                if len(handler.body) == 1 and isinstance(handler.body[0], ast.Raise):
                    continue
                retries = True
        if not retries or _has_backoff_call(loop.body):
            return []
        symbol = _enclosing_symbol(module, loop.lineno)
        return [
            Finding(
                rule_id="SC703",
                severity="error",
                path=module.relpath,
                line=loop.lineno,
                symbol=symbol,
                message=(
                    "retry loop never charges backoff — attempts are free on the "
                    "virtual timeline, so latency under faults is understated and "
                    "hot-retry storms are invisible"
                ),
                fix_hint=(
                    "charge an (exponential) backoff delay to the SimClock between "
                    "attempts, e.g. clock.charge('fault-backoff', delay)"
                ),
                fingerprint=f"free-retry.{symbol.rsplit('.', 1)[-1]}",
            )
        ]
