"""SC3xx — picklability audit for shard-parallel execution.

The roadmap's shard-parallel executor will ship query plans, streams, and
execution context to worker processes.  Everything reachable from those
roots must therefore cross a process boundary — anything holding a lock, a
generator, a lambda, a thread handle, or an open file will fail at
``pickle`` time, deep inside the pool, with a stack trace pointing nowhere
near the offending field.  This rule walks the plan/stream/context/config
classes and emits the exact field list that would block pickling, so the
shard-parallel PR starts from a concrete worklist instead of a crash loop.

Findings
--------
* ``SC301`` field annotated with an unpicklable type
* ``SC302`` field assigned an unpicklable value (lambda / generator /
  open file / lock constructor)
* ``SC303`` lambda registered as a zoo factory (the registry travels with
  the execution context)
* ``SC304`` field annotated ``Callable`` (advisory: picklable only for
  module-level functions)
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.staticcheck.astutils import ClassIndex, ClassInfo, annotation_names
from repro.staticcheck.core import AnalysisTarget, CheckConfig, Finding, ModuleInfo, Rule, register_rule

#: Bare class names that anchor the reachability roots.
ROOT_CLASS_NAMES = ("QueryPlan", "ExecutionContext", "PlannerConfig")

#: Subclasses of these bases are roots too.
ROOT_BASE_NAMES = ("QueryStream",)

#: Modules whose dataclasses are shipped wholesale (configs).
CONFIG_MODULE_SUFFIXES = ("common.config",)

#: Resolved type names that cannot cross a process boundary.
UNPICKLABLE_TYPES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Event",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Thread",
    "threading.local",
    "_thread.LockType",
    "concurrent.futures.Executor",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.Future",
    "typing.Generator",
    "typing.Iterator",
    "typing.AsyncGenerator",
    "collections.abc.Generator",
    "collections.abc.Iterator",
    "typing.IO",
    "typing.TextIO",
    "typing.BinaryIO",
    "io.IOBase",
    "io.TextIOWrapper",
    "io.BufferedReader",
    "io.BufferedWriter",
    "socket.socket",
}

#: Advisory: picklable only when the value is a module-level function.
CALLABLE_TYPES = {"typing.Callable", "collections.abc.Callable", "Callable"}

#: Constructor calls whose result is unpicklable.
UNPICKLABLE_CONSTRUCTORS = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Event",
    "threading.Semaphore",
    "threading.Thread",
    "threading.local",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
    "open",
}


def _resolve_call_name(node: ast.Call, module: ModuleInfo) -> Optional[str]:
    name = module.resolve_attr_chain(node.func)
    if name is None and isinstance(node.func, ast.Name):
        name = module.resolve_name(node.func.id)
    return name


def _bad_value_reason(node: ast.AST, module: ModuleInfo) -> Optional[str]:
    """Why the assigned expression can't be pickled, or None."""
    if isinstance(node, ast.Lambda):
        return "a lambda (pickle refuses non-module-level functions)"
    if isinstance(node, ast.GeneratorExp):
        return "a generator expression (generators cannot be pickled)"
    if isinstance(node, ast.Call):
        name = _resolve_call_name(node, module)
        if name in UNPICKLABLE_CONSTRUCTORS:
            return f"{name}() (unpicklable object)"
        # field(default_factory=lambda: ...) — the factory runs per
        # instance, so inspect the factory result instead.
        if name in ("field", "dataclasses.field"):
            for kw in node.keywords:
                if kw.arg == "default_factory" and isinstance(kw.value, ast.Lambda):
                    inner = _bad_value_reason(kw.value.body, module)
                    if inner is not None:
                        return inner
    return None


@register_rule
class PicklabilityRule(Rule):
    name = "picklability"
    id_prefix = "SC3"
    description = (
        "plans, streams, execution context and configs hold only state that "
        "can cross a process boundary (shard-parallel entry gate)"
    )

    def check(self, target: AnalysisTarget, config: CheckConfig) -> List[Finding]:
        index = ClassIndex(target)
        findings: List[Finding] = []
        for info in self._roots(index):
            findings.extend(self._check_class(index, info))
        findings.extend(self._check_registered_factories(target))
        unique: Dict[str, Finding] = {}
        for finding in findings:
            unique.setdefault(finding.key, finding)
        return list(unique.values())

    # -- root discovery ---------------------------------------------------------
    def _roots(self, index: ClassIndex) -> List[ClassInfo]:
        roots: Dict[str, ClassInfo] = {}

        def add(infos: Iterable[ClassInfo]) -> None:
            for info in infos:
                roots.setdefault(info.qualname, info)

        for name in ROOT_CLASS_NAMES:
            add(index.by_name.get(name, []))
            add(index.subclasses_of(name))
        for base in ROOT_BASE_NAMES:
            add(index.by_name.get(base, []))
            add(index.subclasses_of(base))
        for info in index.by_qualname.values():
            if info.is_dataclass() and any(
                info.module.dotted.endswith(suffix) for suffix in CONFIG_MODULE_SUFFIXES
            ):
                add([info])
        return sorted(roots.values(), key=lambda i: i.qualname)

    # -- per-class field audit --------------------------------------------------
    def _check_class(self, index: ClassIndex, info: ClassInfo) -> List[Finding]:
        findings: List[Finding] = []
        for field_name, annotation, value, line in self._fields(index, info):
            names = set(annotation_names(annotation, info.module))
            bad_types = sorted(names & UNPICKLABLE_TYPES)
            if bad_types:
                findings.append(
                    Finding(
                        rule_id="SC301",
                        severity="error",
                        path=info.module.relpath,
                        line=line,
                        symbol=f"{info.qualname}.{field_name}",
                        message=(
                            f"field is typed {'/'.join(bad_types)} — it cannot cross the "
                            "process boundary the shard-parallel executor needs"
                        ),
                        fix_hint=(
                            "recreate the object inside the worker (e.g. build locks/"
                            "handles lazily after fork) or exclude the field from the "
                            "shipped state"
                        ),
                        fingerprint=f"{info.name}.{field_name}.type",
                    )
                )
            if names & CALLABLE_TYPES:
                findings.append(
                    Finding(
                        rule_id="SC304",
                        severity="info",
                        path=info.module.relpath,
                        line=line,
                        symbol=f"{info.qualname}.{field_name}",
                        message=(
                            "field is typed Callable — picklable only when the value is a "
                            "module-level function (lambdas and closures will fail)"
                        ),
                        fix_hint="document the constraint or store a registry key instead",
                        fingerprint=f"{info.name}.{field_name}.callable",
                    )
                )
            if value is not None:
                reason = _bad_value_reason(value, info.module)
                if reason is not None:
                    findings.append(
                        Finding(
                            rule_id="SC302",
                            severity="error",
                            path=info.module.relpath,
                            line=line,
                            symbol=f"{info.qualname}.{field_name}",
                            message=f"field default/assignment is {reason}",
                            fix_hint=(
                                "replace with a module-level function or construct the "
                                "object lazily inside the worker"
                            ),
                            fingerprint=f"{info.name}.{field_name}.value",
                        )
                    )
        return findings

    def _fields(
        self, index: ClassIndex, info: ClassInfo
    ) -> List[Tuple[str, Optional[ast.AST], Optional[ast.AST], int]]:
        """(name, annotation, value, line) for every instance field.

        Dataclasses declare fields at class level; plain classes get their
        ``__init__`` self-assignments (annotation taken from a matching
        parameter when the value is that bare parameter).
        """
        fields: List[Tuple[str, Optional[ast.AST], Optional[ast.AST], int]] = []
        seen: Set[str] = set()
        if info.is_dataclass():
            for item in info.node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                    if item.target.id not in seen:
                        seen.add(item.target.id)
                        fields.append((item.target.id, item.annotation, item.value, item.lineno))
        resolved = index.lookup_method(info, "__init__")
        if resolved is not None:
            owner, init = resolved
            params: Dict[str, Optional[ast.AST]] = {}
            for arg in list(init.args.posonlyargs) + list(init.args.args) + list(init.args.kwonlyargs):
                params[arg.arg] = arg.annotation
            for node in ast.walk(init):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                value = node.value
                for tgt in targets:
                    if (
                        isinstance(tgt, ast.Attribute)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                        and tgt.attr not in seen
                    ):
                        seen.add(tgt.attr)
                        annotation = getattr(node, "annotation", None)
                        if (
                            annotation is None
                            and isinstance(value, ast.Name)
                            and value.id in params
                        ):
                            annotation = params[value.id]
                        fields.append((tgt.attr, annotation, value, node.lineno))
        return fields

    # -- SC303: zoo factory lambdas ---------------------------------------------
    def _check_registered_factories(self, target: AnalysisTarget) -> List[Finding]:
        findings: List[Finding] = []
        for module in target.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                    continue
                if node.func.attr != "register":
                    continue
                reg_name = None
                name_exprs = list(node.args) + [
                    kw.value for kw in node.keywords if kw.arg == "name"
                ]
                for arg in name_exprs:
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        reg_name = arg.value
                        break
                    if isinstance(arg, ast.JoinedStr):
                        # f-string name: keep the constant parts so the
                        # fingerprint stays line-stable.
                        reg_name = "*".join(
                            part.value
                            for part in arg.values
                            if isinstance(part, ast.Constant) and isinstance(part.value, str)
                        ) or None
                        break
                lam = next(
                    (
                        arg
                        for arg in list(node.args) + [kw.value for kw in node.keywords]
                        if isinstance(arg, ast.Lambda)
                    ),
                    None,
                )
                if lam is None:
                    continue
                label = reg_name or f"line{node.lineno}"
                findings.append(
                    Finding(
                        rule_id="SC303",
                        severity="error",
                        path=module.relpath,
                        line=node.lineno,
                        symbol=f"{module.dotted}:{label}",
                        message=(
                            f"registers factory {label!r} as a lambda — the registry is "
                            "reachable from ExecutionContext, so it must pickle for "
                            "shard-parallel workers"
                        ),
                        fix_hint=(
                            "register a module-level factory function (functools.partial "
                            "over one also works)"
                        ),
                        fingerprint=f"register-lambda.{label}",
                    )
                )
        return findings
