"""SC6xx — tracer spans must be closed by a ``with`` statement.

:meth:`repro.obs.trace.Tracer.span` is a context manager: the span's end
timestamps (wall *and* virtual) are taken on ``__exit__``, and the
thread-local parent stack is popped there too.  A span entered manually
and never exited corrupts the parenting of every later span on that
thread and never records itself — the trace silently loses a lane.  The
rule therefore flags every ``*.tracer.span(...)`` (or bare
``tracer.span(...)``) call that is not the context expression of a
``with`` statement or an ``ExitStack.enter_context(...)`` argument, and
separately flags explicit ``.__enter__()`` calls on a span, which are
never needed.

Findings
--------
* ``SC601`` ``Tracer.span(...)`` used outside a ``with`` statement
* ``SC602`` manual ``__enter__()`` on a span (unbalanced by definition)
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.staticcheck.core import AnalysisTarget, CheckConfig, Finding, ModuleInfo, Rule, register_rule


def _attr_chain(expr: ast.expr) -> List[str]:
    """The dotted parts of an attribute chain, outermost last.

    ``self.obs.tracer.span`` -> ``["self", "obs", "tracer", "span"]``;
    an empty list when the expression is not a plain Name/Attribute chain.
    """
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        # Chain rooted in a call/subscript: keep what we have — the
        # receiver name check below only needs the intermediate parts.
        pass
    else:
        return []
    parts.reverse()
    return parts


def _is_span_call(node: ast.Call) -> bool:
    """True for ``<something tracer-ish>.span(...)`` calls."""
    if not isinstance(node.func, ast.Attribute) or node.func.attr != "span":
        return False
    chain = _attr_chain(node.func.value)
    return any("tracer" in part.lower() for part in chain)


def _span_label(node: ast.Call) -> str:
    """The span's name (first str constant arg) or the receiver chain."""
    if node.args and isinstance(node.args[0], ast.Constant) and isinstance(node.args[0].value, str):
        return node.args[0].value
    return ".".join(_attr_chain(node.func)) or "span"


@register_rule
class TraceHygieneRule(Rule):
    name = "trace-hygiene"
    id_prefix = "SC6"
    description = (
        "every Tracer.span(...) use is a with-statement context expression "
        "(no leaked spans, no manual __enter__)"
    )

    def check(self, target: AnalysisTarget, config: CheckConfig) -> List[Finding]:
        findings: List[Finding] = []
        for module in target.modules:
            findings.extend(self._check_module(module))
        unique: Dict[str, Finding] = {}
        for finding in findings:
            unique.setdefault(finding.key, finding)
        return list(unique.values())

    def _check_module(self, module: ModuleInfo) -> List[Finding]:
        allowed: Set[int] = set()
        for node in ast.walk(module.tree):
            # with tracer.span(...): / async with — the blessed shapes.
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    allowed.add(id(item.context_expr))
            # stack.enter_context(tracer.span(...)) closes via the stack.
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "enter_context"
            ):
                for arg in node.args:
                    allowed.add(id(arg))

        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_span_call(node) and id(node) not in allowed:
                label = _span_label(node)
                findings.append(
                    Finding(
                        rule_id="SC601",
                        severity="error",
                        path=module.relpath,
                        line=node.lineno,
                        symbol=module.dotted,
                        message=(
                            f"Tracer.span({label!r}) outside a with-statement — the span "
                            "never closes, so its duration is lost and the thread's "
                            "parent stack stays corrupted"
                        ),
                        fix_hint="wrap it: `with tracer.span(...):` (or stack.enter_context)",
                        fingerprint=f"span-no-with.{label}",
                    )
                )
            # tracer.span(...).__enter__() — manual entry, by construction
            # unbalanced (there is no handle to __exit__ on).
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "__enter__"
                and isinstance(node.func.value, ast.Call)
                and _is_span_call(node.func.value)
            ):
                label = _span_label(node.func.value)
                findings.append(
                    Finding(
                        rule_id="SC602",
                        severity="error",
                        path=module.relpath,
                        line=node.lineno,
                        symbol=module.dotted,
                        message=(
                            f"manual __enter__() on Tracer.span({label!r}) — nothing "
                            "ever calls __exit__, so the span leaks"
                        ),
                        fix_hint="use a with-statement instead of calling __enter__ directly",
                        fingerprint=f"span-manual-enter.{label}",
                    )
                )
        return findings
