"""SC2xx — gate-purity of hoistable frame filters.

The scan scheduler hoists each plan's frame filters into a batch-level gate
that evaluates every distinct filter model **once per frame for the whole
batch** (:class:`repro.backend.scheduler.FrameGate`).  That sharing is only
sound when a filter's verdict depends on nothing but the frame: a filter
that mutates its own state, touches module globals, or draws from an
unseeded RNG can give different answers depending on *which* batch member
triggered the evaluation — silently breaking per-query semantics.

The rule finds every callable registered as a frame filter or binary
classifier (zoo ``register(..., kind="frame_filter"/"binary_classifier")``
calls, plus any class in a ``framefilters`` module defining ``keep``), and
walks its evaluation path (``keep``/``predict``) *interprocedurally* over
helper calls it can resolve statically (methods on the same class and
module-level functions).

Findings
--------
* ``SC201`` self-attribute write on the evaluation path
* ``SC202`` global/nonlocal mutation on the evaluation path
* ``SC203`` RNG use outside :mod:`repro.common.rng` on the evaluation path
* ``SC204`` raw RNG construction anywhere outside ``repro.common.rng``
  (package-wide seeding-policy check)
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.staticcheck.astutils import (
    ClassIndex,
    ClassInfo,
    MUTATING_METHODS,
    module_functions,
    module_level_assignments,
    walk_function_body,
)
from repro.staticcheck.core import AnalysisTarget, CheckConfig, Finding, ModuleInfo, Rule, register_rule

#: Zoo metadata kinds whose models the gate may evaluate per frame.
HOISTABLE_KINDS = ("frame_filter", "binary_classifier")

#: Evaluation entry points dispatched by ``evaluate_frame_filter``.
ENTRY_POINTS = ("keep", "predict")

#: Sanctioned randomness helpers (deterministic, centrally seeded).
SANCTIONED_RNG_MODULE = "repro.common.rng"

#: Dotted prefixes whose calls constitute raw RNG use.
RAW_RNG_PREFIXES = ("numpy.random", "np.random", "random")

#: Call names that *construct* generators / reseed global state (SC204).
RAW_RNG_CONSTRUCTORS = (
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.seed",
    "random.Random",
    "random.seed",
)

#: How deep helper-call chains are followed before giving up.
MAX_CALL_DEPTH = 6


def _call_name(node: ast.Call, module: ModuleInfo) -> Optional[str]:
    name = module.resolve_attr_chain(node.func)
    if name is None and isinstance(node.func, ast.Name):
        name = module.resolve_name(node.func.id)
    return name


def _is_raw_rng_call(name: str) -> bool:
    # Normalise the common numpy alias before prefix-matching.
    if name.startswith("np.random"):
        name = "numpy.random" + name[len("np.random"):]
    if name.startswith(SANCTIONED_RNG_MODULE):
        return False
    return any(name == p or name.startswith(p + ".") for p in RAW_RNG_PREFIXES)


def _is_rng_constructor(name: str) -> bool:
    if name.startswith("np.random"):
        name = "numpy.random" + name[len("np.random"):]
    return name in RAW_RNG_CONSTRUCTORS


@register_rule
class GatePurityRule(Rule):
    name = "gate-purity"
    id_prefix = "SC2"
    description = (
        "hoistable frame filters are stateless and deterministic on their "
        "evaluation path; raw RNG construction stays behind repro.common.rng"
    )

    def check(self, target: AnalysisTarget, config: CheckConfig) -> List[Finding]:
        index = ClassIndex(target)
        findings: List[Finding] = []
        for info in self._hoistable_classes(target, index):
            for entry in ENTRY_POINTS:
                resolved = index.lookup_method(info, entry)
                if resolved is None:
                    continue
                owner, func = resolved
                findings.extend(
                    self._check_eval_path(index, info, owner, func, chain=(entry,), depth=0, seen=set())
                )
        findings.extend(self._check_rng_policy(target))
        # One finding per (class, category, detail): interprocedural walks
        # can reach the same sin through several helpers.
        unique: Dict[str, Finding] = {}
        for finding in findings:
            unique.setdefault(finding.key, finding)
        return list(unique.values())

    # -- filter discovery -------------------------------------------------------
    def _hoistable_classes(self, target: AnalysisTarget, index: ClassIndex) -> List[ClassInfo]:
        names: Set[str] = set()
        # (a) classes constructed by factories registered with a hoistable kind
        for module in target.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                    continue
                if node.func.attr != "register":
                    continue
                kind = next(
                    (
                        kw.value.value
                        for kw in node.keywords
                        if kw.arg == "kind"
                        and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, str)
                    ),
                    None,
                )
                if kind not in HOISTABLE_KINDS:
                    continue
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
                        if sub.func.id in index.by_name:
                            names.add(sub.func.id)
        # (b) anything in a framefilters module that defines keep()
        for module in target.modules:
            if not module.dotted.endswith("framefilters"):
                continue
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef) and any(
                    isinstance(item, ast.FunctionDef) and item.name == "keep" for item in node.body
                ):
                    names.add(node.name)
        out: List[ClassInfo] = []
        for name in sorted(names):
            out.extend(index.by_name.get(name, []))
        return out

    # -- evaluation-path purity -------------------------------------------------
    def _check_eval_path(
        self,
        index: ClassIndex,
        filter_info: ClassInfo,
        owner: ClassInfo,
        func: ast.FunctionDef,
        chain: Tuple[str, ...],
        depth: int,
        seen: Set[str],
    ) -> List[Finding]:
        marker = f"{owner.qualname}.{func.name}"
        if marker in seen or depth > MAX_CALL_DEPTH:
            return []
        seen.add(marker)
        module = owner.module
        module_names = set(module_level_assignments(module))
        findings: List[Finding] = []
        via = "" if len(chain) == 1 else f" (via {' -> '.join(chain)})"

        def emit(rule_id: str, severity: str, line: int, message: str, hint: str, detail: str) -> None:
            findings.append(
                Finding(
                    rule_id=rule_id,
                    severity=severity,
                    path=filter_info.module.relpath,
                    line=line,
                    symbol=filter_info.qualname,
                    message=message + via,
                    fix_hint=hint,
                    fingerprint=f"{filter_info.name}.{detail}",
                )
            )

        for node in walk_function_body(func):
            # self.<attr> = ... / augmented assigns on self
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for tgt in targets:
                root = tgt
                while isinstance(root, (ast.Subscript, ast.Attribute)):
                    inner = root.value
                    if (
                        isinstance(root, ast.Attribute)
                        and isinstance(inner, ast.Name)
                        and inner.id == "self"
                    ):
                        emit(
                            "SC201",
                            "error",
                            node.lineno,
                            f"writes self.{root.attr} on the gate evaluation path — "
                            "the batch gate evaluates each filter once per frame, so "
                            "stateful filters couple their verdict to batch composition",
                            "make the filter stateless, or derive the state from the "
                            "frame itself",
                            f"self-write.{root.attr}",
                        )
                        break
                    if isinstance(inner, ast.Name) and inner.id in module_names:
                        emit(
                            "SC202",
                            "error",
                            node.lineno,
                            f"mutates module-level {inner.id!r} on the gate evaluation path",
                            "filters must not write shared module state",
                            f"module-write.{inner.id}",
                        )
                        break
                    root = inner

            if isinstance(node, (ast.Global, ast.Nonlocal)):
                emit(
                    "SC202",
                    "error",
                    node.lineno,
                    f"declares {'global' if isinstance(node, ast.Global) else 'nonlocal'} "
                    f"{', '.join(node.names)} on the gate evaluation path",
                    "filters must not rebind enclosing-scope state",
                    f"scope-write.{'.'.join(node.names)}",
                )

            if isinstance(node, ast.Call):
                name = _call_name(node, module)
                if name is not None and _is_raw_rng_call(name):
                    emit(
                        "SC203",
                        "error",
                        node.lineno,
                        f"uses raw RNG {name}() on the gate evaluation path — verdicts "
                        "must be deterministic per frame regardless of evaluation order",
                        "draw through repro.common.rng (derive_rng / stable_uniform / "
                        "bernoulli), keyed by frame id",
                        f"rng.{name}",
                    )
                # mutating method on a self attribute, e.g. self._seen.add(x)
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATING_METHODS
                    and isinstance(node.func.value, ast.Attribute)
                    and isinstance(node.func.value.value, ast.Name)
                    and node.func.value.value.id == "self"
                ):
                    emit(
                        "SC201",
                        "error",
                        node.lineno,
                        f"mutates self.{node.func.value.attr} "
                        f"(.{node.func.attr}()) on the gate evaluation path",
                        "make the filter stateless",
                        f"self-mutate.{node.func.value.attr}",
                    )
                # follow local helpers: self.helper() and module functions
                findings.extend(
                    self._follow_call(index, filter_info, owner, node, chain, depth, seen)
                )
        return findings

    def _follow_call(
        self,
        index: ClassIndex,
        filter_info: ClassInfo,
        owner: ClassInfo,
        node: ast.Call,
        chain: Tuple[str, ...],
        depth: int,
        seen: Set[str],
    ) -> List[Finding]:
        module = owner.module
        # self.helper(...)
        if (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            resolved = index.lookup_method(owner, node.func.attr)
            if resolved is not None:
                helper_owner, helper = resolved
                return self._check_eval_path(
                    index,
                    filter_info,
                    helper_owner,
                    helper,
                    chain + (node.func.attr,),
                    depth + 1,
                    seen,
                )
        # module_function(...)
        if isinstance(node.func, ast.Name):
            helper = module_functions(module).get(node.func.id)
            if helper is not None:
                return self._check_eval_path(
                    index, filter_info, owner, helper, chain + (node.func.id,), depth + 1, seen
                )
        return []

    # -- SC204: package-wide RNG seeding policy ---------------------------------
    def _check_rng_policy(self, target: AnalysisTarget) -> List[Finding]:
        findings: List[Finding] = []
        for module in target.modules:
            if module.dotted.endswith("common.rng"):
                continue  # the sanctioned implementation itself
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node, module)
                if name is None or not _is_rng_constructor(name):
                    continue
                findings.append(
                    Finding(
                        rule_id="SC204",
                        severity="error",
                        path=module.relpath,
                        line=node.lineno,
                        symbol=module.dotted,
                        message=(
                            f"constructs a raw RNG via {name}() — seeding policy lives in "
                            "repro.common.rng so streams stay bit-reproducible and "
                            "independent of evaluation order"
                        ),
                        fix_hint="use repro.common.rng.derive_rng(seed, *stream_key)",
                        fingerprint=f"raw-rng.{name}",
                    )
                )
        return findings
