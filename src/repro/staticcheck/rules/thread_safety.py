"""SC4xx — thread-safety of state reachable from the worker pool.

:class:`~repro.backend.session.MultiCameraSession` fans per-camera scans
out over a ``ThreadPoolExecutor``, so any module-level mutable state the
worker path can touch is shared between threads.  The rule flags
module-level state that the module itself *mutates* (subscript writes,
mutating method calls, or ``global`` rebinding) without holding a
module-level :class:`threading.Lock` — read-only constant tables are fine
and deliberately ignored.  It also flags lambdas submitted to executor
pools, which both capture ambient state and defeat the picklability audit
if the pool ever becomes process-based.

Findings
--------
* ``SC401`` unsynchronized mutation of module-level state
* ``SC402`` lambda submitted to an executor pool
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.staticcheck.astutils import (
    MUTATING_METHODS,
    is_mutable_container_expr,
    module_level_assignments,
)
from repro.staticcheck.core import AnalysisTarget, CheckConfig, Finding, ModuleInfo, Rule, register_rule

#: Executor entry points whose callables run on worker threads.
POOL_SUBMIT_METHODS = ("submit", "map")


def _lock_names(module: ModuleInfo) -> Set[str]:
    """Module-level names bound to ``threading.Lock()`` / ``RLock()``."""
    locks: Set[str] = set()
    for name, value in module_level_assignments(module).items():
        if not isinstance(value, ast.Call):
            continue
        resolved = module.resolve_attr_chain(value.func)
        if resolved is None and isinstance(value.func, ast.Name):
            resolved = module.resolve_name(value.func.id)
        if resolved in ("threading.Lock", "threading.RLock"):
            locks.add(name)
    return locks


class _FunctionScanner(ast.NodeVisitor):
    """Find unsynchronized mutations of module globals inside one function."""

    def __init__(self, module: ModuleInfo, shared: Set[str], locks: Set[str]) -> None:
        self.module = module
        self.shared = shared
        self.locks = locks
        self.lock_depth = 0
        self.declared_global: Set[str] = set()
        self.local_names: Set[str] = set()
        self.hits: List[Finding] = []

    # -- lock tracking
    def visit_With(self, node: ast.With) -> None:
        holds = any(
            isinstance(item.context_expr, ast.Name) and item.context_expr.id in self.locks
            for item in node.items
        )
        if holds:
            self.lock_depth += 1
        self.generic_visit(node)
        if holds:
            self.lock_depth -= 1

    def visit_Global(self, node: ast.Global) -> None:
        self.declared_global.update(node.names)

    # local rebinding shadows the module global; stop treating it as shared
    def _note_local(self, tgt: ast.expr) -> None:
        if isinstance(tgt, ast.Name):
            self.local_names.add(tgt.id)

    def _emit(self, line: int, name: str, how: str) -> None:
        if self.lock_depth > 0:
            return
        self.hits.append(
            Finding(
                rule_id="SC401",
                severity="error",
                path=self.module.relpath,
                line=line,
                symbol=self.module.dotted,
                message=(
                    f"mutates module-level {name!r} ({how}) without holding a lock — "
                    "this state is reachable from the multi-camera thread pool"
                ),
                fix_hint=(
                    "guard the mutation with a module-level threading.Lock() "
                    "(with _lock: ...), or move the state into an instance"
                ),
                fingerprint=f"unsync-write.{name}.{how}",
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for tgt in node.targets:
            self._check_target(tgt, node.lineno)
            self._note_local(tgt)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node.lineno)
        if isinstance(node.target, ast.Name) and node.target.id in self.declared_global:
            self._emit(node.lineno, node.target.id, "augmented-rebind")
        self.generic_visit(node)

    def _check_target(self, tgt: ast.expr, line: int) -> None:
        # global rebinding: `global x; x = ...`
        if isinstance(tgt, ast.Name) and tgt.id in self.declared_global and tgt.id in self.shared:
            self._emit(line, tgt.id, "rebind")
            return
        # subscript/attribute writes into a shared container: SHARED[k] = v
        root = tgt
        while isinstance(root, (ast.Subscript, ast.Attribute)):
            root = root.value
        if (
            isinstance(root, ast.Name)
            and root.id in self.shared
            and root.id not in self.local_names
            and root is not tgt
        ):
            self._emit(line, root.id, "item-write")

    def visit_Call(self, node: ast.Call) -> None:
        # SHARED.append(...) and friends
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in self.shared
            and node.func.value.id not in self.local_names
        ):
            self._emit(node.lineno, node.func.value.id, f"call-{node.func.attr}")
        self.generic_visit(node)


@register_rule
class ThreadSafetyRule(Rule):
    name = "thread-safety"
    id_prefix = "SC4"
    description = (
        "module-level mutable state reachable from the thread-pool worker "
        "path is lock-guarded; pools never receive lambdas"
    )

    def check(self, target: AnalysisTarget, config: CheckConfig) -> List[Finding]:
        findings: List[Finding] = []
        for module in target.modules:
            findings.extend(self._check_module(module))
            findings.extend(self._check_pool_lambdas(module))
        unique: Dict[str, Finding] = {}
        for finding in findings:
            unique.setdefault(finding.key, finding)
        return list(unique.values())

    # -- SC401 ------------------------------------------------------------------
    def _check_module(self, module: ModuleInfo) -> List[Finding]:
        shared = {
            name
            for name, value in module_level_assignments(module).items()
            if is_mutable_container_expr(value, module)
            or (isinstance(value, ast.Constant) and value.value is None)
        }
        if not shared:
            return []
        locks = _lock_names(module)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            scanner = _FunctionScanner(module, shared, locks)
            for stmt in node.body:
                scanner.visit(stmt)
            findings.extend(scanner.hits)
        return findings

    # -- SC402 ------------------------------------------------------------------
    def _check_pool_lambdas(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in POOL_SUBMIT_METHODS:
                continue
            receiver: Optional[str] = None
            if isinstance(node.func.value, ast.Name):
                receiver = node.func.value.id
            # Heuristic: treat any `*pool*`/`*executor*` receiver as a pool.
            if receiver is None or not any(s in receiver.lower() for s in ("pool", "executor", "ex")):
                continue
            for arg in node.args:
                if isinstance(arg, ast.Lambda):
                    findings.append(
                        Finding(
                            rule_id="SC402",
                            severity="warning",
                            path=module.relpath,
                            line=arg.lineno,
                            symbol=module.dotted,
                            message=(
                                f"submits a lambda to {receiver}.{node.func.attr}() — "
                                "closures capture ambient state by reference and block a "
                                "future switch to process pools"
                            ),
                            fix_hint="submit a bound method or module-level function",
                            fingerprint=f"pool-lambda.{node.func.attr}",
                        )
                    )
        return findings
