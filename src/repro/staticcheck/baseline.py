"""Baseline suppression: accepted findings, each with a justification.

The baseline is a JSON file of entries ``{"key": ..., "reason": ...}``.
Keys are the line-stable :attr:`Finding.key` fingerprints, so the baseline
survives unrelated edits; an entry is expected to suppress **exactly one**
finding — entries matching nothing are reported as stale (they either
outlived the violation, which should be celebrated by deleting them, or
their key drifted, which must be fixed before it silently stops
suppressing).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.staticcheck.core import Finding


@dataclass(frozen=True)
class BaselineEntry:
    key: str
    reason: str

    def as_dict(self) -> Dict[str, str]:
        return {"key": self.key, "reason": self.reason}


class Baseline:
    """A set of accepted findings loaded from (and written to) disk."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)
        for entry in self.entries:
            if not entry.reason.strip():
                raise ValueError(f"baseline entry {entry.key!r} needs a justification")
        keys = [e.key for e in self.entries]
        dupes = {k for k in keys if keys.count(k) > 1}
        if dupes:
            raise ValueError(f"duplicate baseline keys: {sorted(dupes)}")

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        raw = data["entries"] if isinstance(data, dict) else data
        return cls([BaselineEntry(key=e["key"], reason=e.get("reason", "")) for e in raw])

    @classmethod
    def load_or_empty(cls, path: Optional[Path]) -> "Baseline":
        if path is None or not Path(path).is_file():
            return cls()
        return cls.load(Path(path))

    def save(self, path: Path) -> None:
        payload = {"entries": [e.as_dict() for e in sorted(self.entries, key=lambda e: e.key)]}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Partition findings into (active, suppressed) plus stale entries.

        ``info`` findings are advisory and never counted as active failures,
        but they can still be suppressed to keep reports quiet.
        """
        by_key = {entry.key: entry for entry in self.entries}
        used: set = set()
        active: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            entry = by_key.get(finding.key)
            if entry is not None:
                suppressed.append(finding)
                used.add(entry.key)
            elif finding.severity in ("error", "warning"):
                active.append(finding)
            else:
                active.append(finding)  # info stays visible but is non-fatal
        stale = [entry for entry in self.entries if entry.key not in used]
        return active, suppressed, stale

    @staticmethod
    def from_findings(findings: Sequence[Finding], reason: str) -> "Baseline":
        """Build a baseline accepting every given finding with one reason.

        Meant for ``--write-baseline`` bootstrapping; the justifications
        should then be edited per entry before committing.
        """
        seen: Dict[str, BaselineEntry] = {}
        for finding in findings:
            seen.setdefault(finding.key, BaselineEntry(key=finding.key, reason=reason))
        return Baseline(list(seen.values()))
