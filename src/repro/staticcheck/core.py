"""Core of the static analysis framework: findings, targets, rule registry.

A :class:`Rule` inspects an :class:`AnalysisTarget` — the parsed ASTs of
every module under one package root — and returns :class:`Finding`\\ s.
Findings carry a *fingerprint* that is stable across line drift, so the
baseline file (:mod:`repro.staticcheck.baseline`) can suppress an accepted
finding without pinning line numbers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence

#: Finding severities, most severe first.  ``info`` findings never fail a
#: run; they are advisory (e.g. the transitive picklability report).
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule_id: str
    severity: str
    path: str
    line: int
    symbol: str
    message: str
    #: Actionable remediation, shown alongside the message.
    fix_hint: str = ""
    #: Line-stable identity component; defaults to ``symbol`` when empty.
    fingerprint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, got {self.severity!r}")

    @property
    def key(self) -> str:
        """Stable identity used by baseline suppression (no line numbers)."""
        return f"{self.rule_id}::{self.path}::{self.fingerprint or self.symbol}"

    def format_text(self) -> str:
        hint = f"\n      hint: {self.fix_hint}" if self.fix_hint else ""
        return (
            f"{self.path}:{self.line}: [{self.rule_id}/{self.severity}] "
            f"{self.symbol}: {self.message}{hint}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "key": self.key,
        }


@dataclass
class ModuleInfo:
    """One parsed source module of the analysis target."""

    path: Path
    #: Path relative to the target root, with ``/`` separators (finding paths).
    relpath: str
    #: Dotted module name relative to the package root (``repro.backend.plan``).
    dotted: str
    source: str
    tree: ast.Module

    #: name in this module -> fully dotted name it refers to.  Covers
    #: ``import x.y as z`` (z -> x.y) and ``from x.y import A as B``
    #: (B -> x.y.A).  Filled lazily by :meth:`imports`.
    _imports: Optional[Dict[str, str]] = None

    def imports(self) -> Dict[str, str]:
        if self._imports is None:
            table: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        table[alias.asname or alias.name.split(".")[0]] = (
                            alias.name if alias.asname else alias.name.split(".")[0]
                        )
                        if alias.asname:
                            table[alias.asname] = alias.name
                elif isinstance(node, ast.ImportFrom) and node.module:
                    for alias in node.names:
                        table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
            self._imports = table
        return self._imports

    def resolve_name(self, name: str) -> str:
        """The fully dotted name ``name`` refers to here (itself if unknown)."""
        return self.imports().get(name, name)

    def resolve_attr_chain(self, node: ast.AST) -> Optional[str]:
        """Resolve ``a.b.c`` to a dotted name with the root import expanded.

        Returns None when the expression root is not a plain name (e.g. a
        call result), in which case static resolution is impossible.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.resolve_name(node.id))
        return ".".join(reversed(parts))


class AnalysisTarget:
    """All parsed modules under one package root directory.

    ``root`` is the directory of the package being analyzed (e.g.
    ``src/repro`` or a fixture package in the test suite).  Dotted module
    names are derived from the root's basename, so analyzing ``src/repro``
    yields ``repro.backend.plan`` etc.
    """

    def __init__(self, root: Path, exclude: Sequence[str] = ("staticcheck",)) -> None:
        self.root = Path(root).resolve()
        if not self.root.is_dir():
            raise FileNotFoundError(f"analysis target is not a directory: {self.root}")
        self.package_name = self.root.name
        self.exclude = tuple(exclude)
        self.modules: List[ModuleInfo] = []
        self._load()

    def _load(self) -> None:
        for path in sorted(self.root.rglob("*.py")):
            rel = path.relative_to(self.root)
            if rel.parts and rel.parts[0] in self.exclude:
                continue
            if "__pycache__" in rel.parts:
                continue
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:  # pragma: no cover - target must parse
                raise SyntaxError(f"cannot analyze {path}: {exc}") from exc
            dotted_parts = [self.package_name] + list(rel.parts[:-1])
            stem = rel.parts[-1][:-3]
            if stem != "__init__":
                dotted_parts.append(stem)
            self.modules.append(
                ModuleInfo(
                    path=path,
                    relpath=str(rel).replace("\\", "/"),
                    dotted=".".join(dotted_parts),
                    source=source,
                    tree=tree,
                )
            )

    def module_named(self, dotted_suffix: str) -> Optional[ModuleInfo]:
        """The module whose dotted name ends with ``dotted_suffix``."""
        for module in self.modules:
            if module.dotted == dotted_suffix or module.dotted.endswith("." + dotted_suffix):
                return module
        return None


@dataclass
class CheckConfig:
    """Environment the rules run against, beyond the parsed target."""

    #: Directory of the test suite exercising the target (knob-hygiene's
    #: "every knob has a test" check); None skips that sub-check.
    tests_dir: Optional[Path] = None
    #: Markdown documentation roots (files or directories); empty skips the
    #: knob-hygiene documentation sub-check.
    docs_paths: List[Path] = field(default_factory=list)

    def doc_texts(self) -> List[str]:
        texts: List[str] = []
        for entry in self.docs_paths:
            if entry.is_dir():
                for p in sorted(entry.rglob("*.md")):
                    texts.append(p.read_text(encoding="utf-8"))
            elif entry.is_file():
                texts.append(entry.read_text(encoding="utf-8"))
        return texts

    def test_texts(self) -> List[str]:
        if self.tests_dir is None or not self.tests_dir.is_dir():
            return []
        return [
            p.read_text(encoding="utf-8")
            for p in sorted(self.tests_dir.rglob("*.py"))
            if "__pycache__" not in p.parts
        ]


class Rule:
    """Base class for a registered analysis rule (one rule family each)."""

    #: Stable identifier, e.g. ``"stream-protocol"``.
    name: str = ""
    #: Finding-id prefix, e.g. ``"SC1"``.
    id_prefix: str = ""
    description: str = ""

    def check(self, target: AnalysisTarget, config: CheckConfig) -> List[Finding]:
        raise NotImplementedError


_RULES: Dict[str, Rule] = {}


def register_rule(cls: Callable[[], Rule]) -> Callable[[], Rule]:
    """Class decorator adding a rule (by its ``name``) to the registry."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"rule {cls!r} must define a name")
    if rule.name in _RULES:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _RULES[rule.name] = rule
    return cls


def all_rules() -> Dict[str, Rule]:
    return dict(_RULES)


def get_rule(name: str) -> Rule:
    if name not in _RULES:
        raise KeyError(f"unknown rule {name!r}; available: {sorted(_RULES)}")
    return _RULES[name]


def run_checks(
    target_root: Path,
    rule_names: Optional[Iterable[str]] = None,
    config: Optional[CheckConfig] = None,
) -> List[Finding]:
    """Run the selected rules (default: all) over ``target_root``.

    Findings are ordered by path, line, then rule id — deterministic across
    runs, so text output and baselines diff cleanly.
    """
    target = AnalysisTarget(Path(target_root))
    cfg = config or CheckConfig()
    names = list(rule_names) if rule_names is not None else sorted(_RULES)
    findings: List[Finding] = []
    for name in names:
        findings.extend(get_rule(name).check(target, cfg))
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.symbol, f.message))
    return findings
