"""Command-line interface: ``python -m repro.staticcheck``.

Exit status is 0 when every error/warning finding is baselined and no
baseline entry is stale; 1 otherwise.  ``info`` findings are advisory and
never affect the exit status.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.staticcheck.baseline import Baseline
from repro.staticcheck.core import CheckConfig, Finding, all_rules, run_checks


def _default_target() -> Path:
    """The installed ``repro`` package directory (analysis default)."""
    import repro

    return Path(repro.__file__).resolve().parent


def _repo_root(target: Path) -> Optional[Path]:
    """Nearest ancestor containing a ``.git`` directory, if any."""
    for candidate in [target] + list(target.parents):
        if (candidate / ".git").exists():
            return candidate
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="Engine-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "target",
        nargs="?",
        type=Path,
        default=None,
        help="package directory to analyze (default: the installed repro package)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        help="run only this rule (repeatable); default: all rules",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON path (default: <repo root>/staticcheck-baseline.json "
        "when analyzing the installed package; none otherwise)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report all findings as active",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        type=Path,
        default=None,
        help="accept every current finding into a new baseline at PATH "
        "(edit the per-entry reasons before committing) and exit 0",
    )
    parser.add_argument(
        "--tests-dir",
        type=Path,
        default=None,
        help="test-suite directory for the knob-coverage check "
        "(default: <repo root>/tests when analyzing the installed package)",
    )
    parser.add_argument(
        "--docs",
        action="append",
        dest="docs",
        type=Path,
        metavar="PATH",
        help="documentation file or directory for the knob-docs check "
        "(repeatable; default: <repo root>/docs and README.md)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _resolve_environment(args: argparse.Namespace) -> None:
    """Fill target/baseline/tests/docs defaults from the repo layout."""
    defaulted_target = args.target is None
    if defaulted_target:
        args.target = _default_target()
    args.target = args.target.resolve()
    root = _repo_root(args.target) if defaulted_target else None
    if args.baseline is None and not args.no_baseline and root is not None:
        args.baseline = root / "staticcheck-baseline.json"
    if args.tests_dir is None and root is not None:
        args.tests_dir = root / "tests"
    if args.docs is None:
        args.docs = []
        if root is not None:
            args.docs = [root / "docs", root / "README.md"]


def _render_text(
    active: List[Finding],
    suppressed: List[Finding],
    stale: List,
    out,
) -> None:
    for finding in active:
        print(finding.format_text(), file=out)
    fatal = [f for f in active if f.severity in ("error", "warning")]
    info = [f for f in active if f.severity == "info"]
    print(
        f"\n{len(fatal)} finding(s), {len(info)} advisory, "
        f"{len(suppressed)} baselined, {len(stale)} stale baseline entr"
        f"{'y' if len(stale) == 1 else 'ies'}",
        file=out,
    )
    for entry in stale:
        print(f"  stale: {entry.key} ({entry.reason})", file=out)


def _render_json(
    active: List[Finding],
    suppressed: List[Finding],
    stale: List,
    rules: Sequence[str],
    target: Path,
    out,
) -> None:
    fatal = [f for f in active if f.severity in ("error", "warning")]
    payload = {
        "target": str(target),
        "rules": list(rules),
        "findings": [f.as_dict() for f in active],
        "suppressed": [f.as_dict() for f in suppressed],
        "stale_baseline": [e.as_dict() for e in stale],
        "summary": {
            "active": len(fatal),
            "advisory": len(active) - len(fatal),
            "suppressed": len(suppressed),
            "stale": len(stale),
        },
    }
    json.dump(payload, out, indent=2)
    out.write("\n")


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, rule in sorted(all_rules().items()):
            print(f"{name} ({rule.id_prefix}xx): {rule.description}", file=out)
        return 0

    _resolve_environment(args)
    rule_names = args.rules if args.rules else sorted(all_rules())
    config = CheckConfig(tests_dir=args.tests_dir, docs_paths=list(args.docs))
    findings = run_checks(args.target, rule_names=rule_names, config=config)

    if args.write_baseline is not None:
        fatal = [f for f in findings if f.severity in ("error", "warning")]
        baseline = Baseline.from_findings(fatal, reason="accepted by --write-baseline; TODO justify")
        baseline.save(args.write_baseline)
        print(
            f"wrote {len(baseline.entries)} entr"
            f"{'y' if len(baseline.entries) == 1 else 'ies'} to {args.write_baseline}",
            file=out,
        )
        return 0

    baseline = (
        Baseline()
        if args.no_baseline
        else Baseline.load_or_empty(args.baseline)
    )
    active, suppressed, stale = baseline.split(findings)

    if args.format == "json":
        _render_json(active, suppressed, stale, rule_names, args.target, out)
    else:
        _render_text(active, suppressed, stale, out)

    fatal = [f for f in active if f.severity in ("error", "warning")]
    return 1 if fatal or stale else 0
