"""Simulated compute-cost accounting.

The paper's evaluation compares wall-clock runtimes of pipelines whose cost
is dominated by neural-network inference on a GPU.  We have no GPU and no
real models, so every simulated model and operator charges *virtual
milliseconds* to a :class:`SimClock`.  Virtual time is deterministic, which
makes the reproduction's speedup ratios stable across machines, and it is
itemised per model so experiments can report where time went.

A :class:`CostProfile` describes how expensive a model invocation is:
``base_ms`` per call plus ``per_item_ms`` per processed item (e.g. per crop
for a property model, per frame-megapixel for a detector).
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass(frozen=True)
class CostProfile:
    """Virtual cost of one model invocation.

    Parameters
    ----------
    base_ms:
        Fixed overhead per invocation (kernel launch, preprocessing).
    per_item_ms:
        Marginal cost per item processed in the invocation (per crop, per
        frame, per candidate pair, ...).
    """

    base_ms: float
    per_item_ms: float = 0.0

    def cost(self, n_items: int = 1) -> float:
        """Virtual milliseconds charged for processing ``n_items`` items."""
        if n_items < 0:
            raise ValueError("n_items must be non-negative")
        return self.base_ms + self.per_item_ms * n_items

    def scaled(self, factor: float) -> "CostProfile":
        """A proportionally cheaper/more expensive profile (for model variants)."""
        return CostProfile(self.base_ms * factor, self.per_item_ms * factor)


@dataclass
class SimClock:
    """Accumulates virtual compute time, itemised by account name.

    The clock is intentionally simple: a single global timeline.  Pipelines
    that the paper parallelises across devices are still compared by total
    compute, which is the quantity that dominates its single-GPU runtime
    numbers.
    """

    elapsed_ms: float = 0.0
    by_account: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    calls: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def charge(self, account: str, ms: float) -> None:
        """Add ``ms`` virtual milliseconds under ``account``."""
        if ms < 0:
            raise ValueError("cannot charge negative time")
        self.elapsed_ms += ms
        self.by_account[account] += ms
        self.calls[account] += 1

    def charge_profile(self, account: str, profile: CostProfile, n_items: int = 1) -> float:
        """Charge a :class:`CostProfile` and return the amount charged."""
        ms = profile.cost(n_items)
        self.charge(account, ms)
        return ms

    # -- reporting -------------------------------------------------------
    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ms / 1000.0

    def breakdown(self) -> Dict[str, float]:
        """Per-account virtual milliseconds, sorted descending."""
        return dict(sorted(self.by_account.items(), key=lambda kv: -kv[1]))

    def snapshot(self) -> float:
        """Current elapsed time; use with :meth:`since` to time a region."""
        return self.elapsed_ms

    def since(self, snapshot: float) -> float:
        """Virtual ms elapsed since ``snapshot``."""
        return self.elapsed_ms - snapshot

    @contextmanager
    def region(self, account: str) -> Iterator[None]:
        """Attribute all *additional* charges inside the block to ``account``.

        This does not double-charge: it records the delta under a synthetic
        ``region:<account>`` key for reporting only.
        """
        start = self.elapsed_ms
        try:
            yield
        finally:
            self.by_account[f"region:{account}"] += self.elapsed_ms - start

    def state_snapshot(self) -> Dict:
        """The clock's full state as plain data (scan checkpointing)."""
        return {
            "elapsed_ms": self.elapsed_ms,
            "by_account": dict(self.by_account),
            "calls": dict(self.calls),
        }

    def restore_state(self, state: Dict) -> None:
        """Restore :meth:`state_snapshot` *in place*, preserving identity:
        readers/contexts holding a reference to this clock stay valid.
        """
        self.elapsed_ms = state["elapsed_ms"]
        self.by_account = defaultdict(float, state["by_account"])
        self.calls = defaultdict(int, state["calls"])

    def reset(self) -> None:
        self.elapsed_ms = 0.0
        self.by_account = defaultdict(float)
        self.calls = defaultdict(int)

    def merge(self, other: "SimClock") -> None:
        """Fold another clock's charges into this one (used by sub-pipelines)."""
        self.elapsed_ms += other.elapsed_ms
        for k, v in other.by_account.items():
            self.by_account[k] += v
        for k, v in other.calls.items():
            self.calls[k] += v
