"""Bounding-box geometry used throughout the simulator and the backend.

Every detected object is described by an axis-aligned :class:`BBox` in pixel
coordinates.  The helpers here (IoU, containment, centre distance) are the
primitives used by the trackers, the spatial relations, and the query
library's built-in predicates (e.g. ``CollisionQuery``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class BBox:
    """An axis-aligned bounding box ``(x1, y1)``–``(x2, y2)`` in pixels.

    The invariant ``x1 <= x2 and y1 <= y2`` is enforced at construction.
    """

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        if self.x2 < self.x1 or self.y2 < self.y1:
            raise ValueError(f"degenerate bbox: {self!r}")

    # -- basic quantities ------------------------------------------------
    @property
    def width(self) -> float:
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        return self.y2 - self.y1

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    @property
    def bottom_center(self) -> tuple[float, float]:
        """The ground-contact point, used for speed / distance estimates."""
        return ((self.x1 + self.x2) / 2.0, self.y2)

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_center(cls, cx: float, cy: float, width: float, height: float) -> "BBox":
        """Build a box from its centre point and dimensions."""
        hw, hh = width / 2.0, height / 2.0
        return cls(cx - hw, cy - hh, cx + hw, cy + hh)

    @classmethod
    def from_xywh(cls, x: float, y: float, width: float, height: float) -> "BBox":
        """Build a box from its top-left corner and dimensions."""
        return cls(x, y, x + width, y + height)

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.x1, self.y1, self.x2, self.y2)

    def as_array(self) -> np.ndarray:
        return np.array(self.as_tuple(), dtype=float)

    # -- transforms ------------------------------------------------------
    def translated(self, dx: float, dy: float) -> "BBox":
        return BBox(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def scaled(self, factor: float) -> "BBox":
        """Scale about the centre by ``factor`` (> 0)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        cx, cy = self.center
        return BBox.from_center(cx, cy, self.width * factor, self.height * factor)

    def clipped(self, width: float, height: float) -> "BBox":
        """Clip to a frame of the given dimensions (may produce a zero-area box)."""
        x1 = min(max(self.x1, 0.0), width)
        y1 = min(max(self.y1, 0.0), height)
        x2 = min(max(self.x2, 0.0), width)
        y2 = min(max(self.y2, 0.0), height)
        return BBox(x1, y1, x2, y2)

    # -- relations -------------------------------------------------------
    def intersection(self, other: "BBox") -> float:
        """Area of overlap with ``other``."""
        ix = max(0.0, min(self.x2, other.x2) - max(self.x1, other.x1))
        iy = max(0.0, min(self.y2, other.y2) - max(self.y1, other.y1))
        return ix * iy

    def iou(self, other: "BBox") -> float:
        """Intersection over union with ``other`` in [0, 1]."""
        inter = self.intersection(other)
        union = self.area + other.area - inter
        if union <= 0.0:
            return 0.0
        return inter / union

    def contains_point(self, x: float, y: float) -> bool:
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2

    def contains(self, other: "BBox") -> bool:
        """True when ``other`` lies fully inside this box."""
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and self.x2 >= other.x2
            and self.y2 >= other.y2
        )

    def center_distance(self, other: "BBox") -> float:
        (ax, ay), (bx, by) = self.center, other.center
        return float(np.hypot(ax - bx, ay - by))

    def edge_distance(self, other: "BBox") -> float:
        """Minimum distance between box boundaries; 0 when the boxes overlap."""
        dx = max(0.0, max(self.x1, other.x1) - min(self.x2, other.x2))
        dy = max(0.0, max(self.y1, other.y1) - min(self.y2, other.y2))
        return float(np.hypot(dx, dy))


def iou(a: BBox, b: BBox) -> float:
    """Module-level convenience wrapper for :meth:`BBox.iou`."""
    return a.iou(b)


def center_distance(a: BBox, b: BBox) -> float:
    """Module-level convenience wrapper for :meth:`BBox.center_distance`."""
    return a.center_distance(b)


def iou_matrix(boxes_a: Sequence[BBox], boxes_b: Sequence[BBox]) -> np.ndarray:
    """Pairwise IoU between two box sequences, shape ``(len(a), len(b))``.

    Vectorised so the trackers can associate dozens of detections per frame
    without Python-level double loops.
    """
    if not boxes_a or not boxes_b:
        return np.zeros((len(boxes_a), len(boxes_b)))
    a = np.array([b.as_tuple() for b in boxes_a], dtype=float)
    b = np.array([b.as_tuple() for b in boxes_b], dtype=float)
    ix1 = np.maximum(a[:, None, 0], b[None, :, 0])
    iy1 = np.maximum(a[:, None, 1], b[None, :, 1])
    ix2 = np.minimum(a[:, None, 2], b[None, :, 2])
    iy2 = np.minimum(a[:, None, 3], b[None, :, 3])
    inter = np.clip(ix2 - ix1, 0, None) * np.clip(iy2 - iy1, 0, None)
    area_a = (a[:, 2] - a[:, 0]) * (a[:, 3] - a[:, 1])
    area_b = (b[:, 2] - b[:, 0]) * (b[:, 3] - b[:, 1])
    union = area_a[:, None] + area_b[None, :] - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(union > 0, inter / union, 0.0)
    return out


def union_bbox(boxes: Iterable[BBox]) -> BBox:
    """Smallest box covering all ``boxes``; raises on an empty iterable."""
    boxes = list(boxes)
    if not boxes:
        raise ValueError("union_bbox() requires at least one box")
    return BBox(
        min(b.x1 for b in boxes),
        min(b.y1 for b in boxes),
        max(b.x2 for b in boxes),
        max(b.y2 for b in boxes),
    )
