"""Deterministic randomness helpers.

All stochastic behaviour in the simulator (object spawning, model errors,
MLLM answer noise) is derived from named streams so that experiments are
bit-reproducible and independent of evaluation order: perturbing one model's
outputs never shifts another model's random draws.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np


def stable_hash(*parts: Any) -> int:
    """Return a 64-bit hash of ``parts`` that is stable across processes.

    Python's builtin ``hash`` is salted per process; we need a stable value
    to seed per-object / per-model random streams.
    """
    text = "\x1f".join(str(p) for p in parts)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def derive_rng(seed: int, *stream: Any) -> np.random.Generator:
    """Create a generator for the named ``stream`` derived from ``seed``.

    Examples
    --------
    >>> rng = derive_rng(7, "color_model", "track", 12)
    >>> rng2 = derive_rng(7, "color_model", "track", 12)
    >>> bool(rng.random() == rng2.random())
    True
    """
    return np.random.default_rng(np.random.SeedSequence([seed & 0xFFFFFFFF, stable_hash(*stream) & 0xFFFFFFFF]))


def bernoulli(rng: np.random.Generator, p: float) -> bool:
    """Draw a single biased coin flip; ``p`` is clipped to [0, 1]."""
    p = min(max(p, 0.0), 1.0)
    return bool(rng.random() < p)


def stable_uniform(*parts: Any) -> float:
    """A deterministic pseudo-uniform draw in ``[0, 1)`` keyed by ``parts``.

    Much cheaper than constructing a :class:`numpy.random.Generator` per
    draw; used on hot per-object-per-frame paths in the simulated models.
    """
    return stable_hash(*parts) / float(1 << 64)


def stable_choice(options: list, *parts: Any):
    """Deterministically pick one of ``options`` keyed by ``parts``."""
    if not options:
        raise ValueError("options must be non-empty")
    return options[stable_hash(*parts) % len(options)]
