"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class QueryDefinitionError(ReproError):
    """A VObj / Relation / Query definition is malformed.

    Raised at class-definition or query-construction time, e.g. when a
    stateful property declares a dependency that does not exist, or a
    higher-order query composition violates the composition rules of §3.
    """


class PlanError(ReproError):
    """The planner could not build or optimize an operator DAG."""


class ExecutionError(ReproError):
    """A runtime failure while executing an operator DAG.

    Multi-feed executions attach structure: ``failed_feeds`` maps feed name
    to the exception that killed it, and ``partial_results`` maps each
    surviving feed to the per-query results it produced before the batch
    was aborted (so one dead feed does not throw away its siblings' work).
    """

    def __init__(self, message: str = "", *, failed_feeds=None, partial_results=None):
        super().__init__(message)
        self.failed_feeds = dict(failed_feeds or {})
        self.partial_results = dict(partial_results or {})


class ModelError(ReproError):
    """A model invocation failed: invalid inputs, an unknown registry name
    (:meth:`~repro.models.base.ModelRegistry.create`), or — under fault
    injection — a simulated model outage.
    """


class TransientModelError(ModelError):
    """A model invocation failed in a retryable way (injected transient
    fault, or a permanently-down model / open circuit, which presents as a
    transient error on every attempt).  The resilient invoker retries these
    with exponential backoff before giving up.
    """


class ModelTimeoutError(TransientModelError):
    """A model invocation exceeded its per-model timeout budget.  The clock
    is charged at most the budget for the failed attempt; timeouts are
    retryable.
    """


class FeedFailedError(ExecutionError):
    """A camera feed died mid-scan (injected feed death or an unrecoverable
    per-feed failure).  Carries the feed name and the frame at which it died
    so per-feed isolation can report a structured status.
    """

    def __init__(self, message: str = "", *, feed: str = "", frame_id=None):
        super().__init__(message)
        self.feed = feed
        self.frame_id = frame_id


class CheckpointError(ReproError):
    """Scan checkpointing failed: no checkpoint available to resume from,
    or a snapshot could not be captured/restored consistently.
    """


class SQLEngineError(ReproError):
    """The miniature SQL engine (EVA baseline) rejected a statement."""
