"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class QueryDefinitionError(ReproError):
    """A VObj / Relation / Query definition is malformed.

    Raised at class-definition or query-construction time, e.g. when a
    stateful property declares a dependency that does not exist, or a
    higher-order query composition violates the composition rules of §3.
    """


class PlanError(ReproError):
    """The planner could not build or optimize an operator DAG."""


class ExecutionError(ReproError):
    """A runtime failure while executing an operator DAG."""


class ModelError(ReproError):
    """A simulated model was invoked with invalid inputs."""


class SQLEngineError(ReproError):
    """The miniature SQL engine (EVA baseline) rejected a statement."""
