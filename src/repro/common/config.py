"""Global configuration dataclasses shared by the simulator and backends."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class VideoSpec:
    """Static description of a (synthetic) video stream.

    Mirrors Table 3 in the paper: each camera is characterised by its frame
    rate and resolution; clips additionally have a duration.
    """

    name: str
    fps: int
    width: int
    height: int
    duration_s: float

    @property
    def num_frames(self) -> int:
        return int(round(self.fps * self.duration_s))

    @property
    def megapixels(self) -> float:
        return self.width * self.height / 1e6

    def with_duration(self, duration_s: float) -> "VideoSpec":
        """The same camera recording for a different duration."""
        return VideoSpec(self.name, self.fps, self.width, self.height, duration_s)


@dataclass(frozen=True)
class StrideConfig:
    """Adaptive frame-stride sampling knobs (scan scheduler).

    When enabled, the scan scheduler raises a stream's detection stride
    (1→2→4→… up to ``max_stride``) once its tracker state has been
    Kalman-predictable for ``stable_frames`` consecutive sampled frames,
    fills the skipped frames by track interpolation, and drops back to
    stride 1 — re-scanning the skipped gap — the moment a sampled frame
    disagrees with the prediction (track birth/death, or any track drifting
    below ``iou_tol`` IoU against its predicted box).
    """

    enabled: bool = False
    #: Upper bound on the detection stride (strides double: 1, 2, 4, ...).
    max_stride: int = 8
    #: Minimum IoU between a track's predicted and detected box for the
    #: sampled frame to count as agreeing with the prediction.
    iou_tol: float = 0.5
    #: Consecutive predictable sampled frames required before each doubling.
    stable_frames: int = 3

    def __post_init__(self) -> None:
        if self.max_stride < 1:
            raise ValueError("max_stride must be >= 1")
        if not 0.0 < self.iou_tol <= 1.0:
            raise ValueError("iou_tol must be in (0, 1]")
        if self.stable_frames < 1:
            raise ValueError("stable_frames must be >= 1")


@dataclass(frozen=True)
class ReidConfig:
    """Cross-camera re-identification knobs (:mod:`repro.backend.crosscamera`).

    When enabled, :class:`~repro.backend.session.MultiCameraSession` links
    the tracks of its feeds after each execution: every track's cached (or
    freshly computed) re-id embedding is cosine-matched against a gallery of
    global identities, camera by camera, and the resulting identity labels
    are threaded into the merged results (``global_tracks`` /
    ``global_events`` / the cross-camera temporal operator).  Off by default:
    the disabled path is byte-identical to the single-feed merge.
    """

    enabled: bool = False
    #: Minimum cosine similarity for a track to join an existing identity.
    threshold: float = 0.7
    #: Assignment strategy when several tracks compete for the same gallery
    #: identity: ``"hungarian"`` (optimal one-to-one) or ``"greedy"``.
    assignment: str = "hungarian"
    #: Tolerance for disagreeing camera clocks: cross-camera gap windows are
    #: widened by this much, and global-event stitching treats per-camera
    #: segments within this slack as contiguous.
    max_clock_skew_s: float = 0.5
    #: Zoo name of the embedding model used for tracks whose pipeline never
    #: computed an embedding (cache misses).
    reid_model: str = "reid_feature"
    #: Intrinsic property name whose cached per-track values are reused as
    #: embeddings before the model is ever invoked.
    embedding_property: str = "feature_vector"
    #: Track-quality gate: tracks observed over fewer frames than this are
    #: excluded from linking.  Sliver tracks — one-frame fragments born at
    #: the frame edge, or false-positive detections — carry unreliable
    #: crops in real systems and would otherwise fragment identities.
    min_track_frames: int = 3

    _ASSIGNMENTS = ("hungarian", "greedy")

    def __post_init__(self) -> None:
        if not -1.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be a cosine similarity in (-1, 1]")
        if self.assignment not in self._ASSIGNMENTS:
            raise ValueError(f"assignment must be one of {self._ASSIGNMENTS}")
        if self.max_clock_skew_s < 0:
            raise ValueError("max_clock_skew_s must be non-negative")
        if self.min_track_frames < 1:
            raise ValueError("min_track_frames must be >= 1")


@dataclass(frozen=True)
class ObsConfig:
    """Observability knobs (:mod:`repro.obs`).

    When enabled, one :class:`~repro.obs.core.Obs` bundle (span tracer,
    metrics registry, decision log) is threaded through the whole
    execution — session, planner, scheduler, model invocations, re-id —
    and every :class:`~repro.backend.results.QueryResult` carries an
    ``explain()`` payload.  Off by default: spans only *snapshot* the
    virtual clock (never charge it), so results are byte-identical with
    tracing on or off, and the disabled path costs one ``is not None``
    check per hook.
    """

    enabled: bool = False
    #: Oldest decision records are evicted past this bound; aggregate
    #: (action, reason) counts remain exact regardless.
    max_decision_records: int = 4096
    #: Spans beyond this bound are timed but not retained or exported.
    max_spans: int = 100_000

    def __post_init__(self) -> None:
        if self.max_decision_records < 1:
            raise ValueError("max_decision_records must be >= 1")
        if self.max_spans < 1:
            raise ValueError("max_spans must be >= 1")


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection and fault-tolerance knobs (:mod:`repro.faults`).

    When enabled, a deterministic :class:`~repro.faults.injection.FaultInjector`
    (seeded via :mod:`repro.common.rng`, keyed by (seed, feed, model, frame,
    attempt) so decisions are invocation-order independent) injects the
    configured fault mix, and every model invocation runs through the
    resilient invoker: bounded retries with exponential backoff + jitter
    charged to the ``SimClock``, per-model timeout budgets, and per-model
    circuit breakers.  Off by default: the disabled path creates no fault
    objects and is byte-identical.
    """

    enabled: bool = False
    #: Seed for the fault stream (independent of the video/model seeds).
    seed: int = 0
    #: Probability that one model invocation attempt fails transiently.
    transient_rate: float = 0.0
    #: Probability that one invocation attempt suffers a latency spike.
    latency_spike_rate: float = 0.0
    #: Virtual-time multiplier applied to a spiked invocation.
    latency_spike_factor: float = 10.0
    #: Per-model timeout budget in virtual ms (None = no timeout).  An
    #: attempt whose (possibly spiked) cost exceeds it raises
    #: :class:`~repro.common.errors.ModelTimeoutError`, charged at most the
    #: budget.
    timeout_ms: Optional[float] = None
    #: Probability that a frame arrives corrupted (degraded, never trusted).
    corrupt_frame_rate: float = 0.0
    #: Probability that a frame is dropped by the source (degraded).
    drop_frame_rate: float = 0.0
    #: (model name, from_frame): the model fails permanently from that frame.
    dead_models: Tuple[Tuple[str, int], ...] = ()
    #: (feed name, at_frame): the feed dies mid-scan at that frame
    #: (:class:`~repro.common.errors.FeedFailedError`; permanent — not
    #: resumed, handled by per-feed isolation).
    dead_feeds: Tuple[Tuple[str, int], ...] = ()
    #: (feed name, at_frame): one-shot scan crash at that frame (e.g. a
    #: worker OOM).  Recoverable: with checkpointing on, the scan resumes
    #: from the last checkpoint and the crash does not re-fire.
    crash_frames: Tuple[Tuple[str, int], ...] = ()
    #: Retries after the first failed attempt (total attempts = retries+1).
    max_retries: int = 2
    #: Backoff before retry k is ``base * factor**k + jitter * U[0,1)``
    #: virtual ms, charged to the ``SimClock`` under ``fault-backoff``.
    backoff_base_ms: float = 5.0
    backoff_factor: float = 2.0
    backoff_jitter_ms: float = 1.0
    #: Consecutive failures (across invocations) that open a model's circuit.
    breaker_threshold: int = 3
    #: Virtual ms an open circuit waits before admitting a half-open probe.
    breaker_cooldown_ms: float = 250.0
    #: Checkpoint the scan every N processed frames (0 = no checkpointing).
    checkpoint_interval: int = 0
    #: Bound on automatic resume-from-checkpoint attempts per scan.
    max_resumes: int = 2

    def __post_init__(self) -> None:
        for name in ("transient_rate", "latency_spike_rate", "corrupt_frame_rate", "drop_frame_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1]")
        if self.latency_spike_factor < 1.0:
            raise ValueError("latency_spike_factor must be >= 1")
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise ValueError("timeout_ms must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_ms < 0 or self.backoff_jitter_ms < 0:
            raise ValueError("backoff budgets must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_ms < 0:
            raise ValueError("breaker_cooldown_ms must be non-negative")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        if self.max_resumes < 0:
            raise ValueError("max_resumes must be >= 0")


@dataclass(frozen=True)
class LiveConfig:
    """Live push-driven ingestion knobs (:mod:`repro.backend.live`).

    When enabled, a :class:`~repro.backend.live.LiveSession` keeps standing
    queries registered against frames arriving from a paced source: events
    are emitted to alert sinks the moment they close, the ingest queue is
    hard-capped, and overload sheds *accuracy* before frames — queue-depth
    pressure drives the scan scheduler's stride coarser, and only past the
    hard cap are frames dropped (with exact accounting).  Off by default:
    batch execution never consults this config and is byte-identical.
    """

    enabled: bool = False
    #: Hard cap on frames buffered between admission and dispatch (the
    #: re-order buffer and the ready queue together).  Admitting a frame
    #: past the cap sheds the oldest undispatched frame.
    max_buffered_frames: int = 64
    #: Queue-depth fractions of the cap at which backpressure engages and
    #: releases: above ``pressure_high`` the pressure stride doubles, below
    #: ``pressure_low`` it halves back toward 1.
    pressure_low: float = 0.25
    pressure_high: float = 0.75
    #: Ceiling on the stride that queue pressure may force (shedding
    #: accuracy via interpolation instead of dropping frames).
    max_pressure_stride: int = 8
    #: Out-of-order tolerance, in frames: a late frame within this window
    #: of the newest arrival is re-sequenced; frames at or below the
    #: dispatch watermark are counted and discarded as late.
    reorder_window: int = 4
    #: Virtual ms without any arrival (queue empty, feed not exhausted)
    #: before the watchdog declares the feed stalled and reconnects.
    stall_timeout_ms: float = 5000.0
    #: Reconnect attempts per outage before the session gives up.
    max_reconnect_attempts: int = 5
    #: Reconnect backoff: attempt k waits ``base * factor**k`` virtual ms,
    #: charged to the clock under ``live-reconnect``.
    reconnect_backoff_base_ms: float = 50.0
    reconnect_backoff_factor: float = 2.0
    #: Consecutive failed reconnects that open the feed's circuit breaker.
    breaker_threshold: int = 3
    #: Virtual ms an open feed breaker waits before admitting a probe.
    breaker_cooldown_ms: float = 1000.0
    #: Bound on alerts retained by the in-memory queue sink (oldest evicted
    #: first; the eviction count keeps the accounting exact).
    max_alert_queue: int = 1024
    #: Prune per-query result state (matches older than every stream's
    #: event watermark) every N dispatched frames, keeping standing-query
    #: memory bounded forever.
    prune_interval_frames: int = 64

    def __post_init__(self) -> None:
        if self.max_buffered_frames < 1:
            raise ValueError("max_buffered_frames must be >= 1")
        if not 0.0 <= self.pressure_low <= self.pressure_high <= 1.0:
            raise ValueError("need 0 <= pressure_low <= pressure_high <= 1")
        if self.max_pressure_stride < 1:
            raise ValueError("max_pressure_stride must be >= 1")
        if self.reorder_window < 0:
            raise ValueError("reorder_window must be >= 0")
        if self.stall_timeout_ms <= 0:
            raise ValueError("stall_timeout_ms must be positive")
        if self.max_reconnect_attempts < 0:
            raise ValueError("max_reconnect_attempts must be >= 0")
        if self.reconnect_backoff_base_ms < 0:
            raise ValueError("reconnect_backoff_base_ms must be non-negative")
        if self.reconnect_backoff_factor < 1.0:
            raise ValueError("reconnect_backoff_factor must be >= 1")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_ms < 0:
            raise ValueError("breaker_cooldown_ms must be non-negative")
        if self.max_alert_queue < 1:
            raise ValueError("max_alert_queue must be >= 1")
        if self.prune_interval_frames < 1:
            raise ValueError("prune_interval_frames must be >= 1")


@dataclass(frozen=True)
class IndexConfig:
    """Persistent video index knobs (:mod:`repro.index`).

    When enabled, every execution consults a :class:`~repro.index.store.
    VideoIndexStore` before invoking a model on a frame and writes fresh
    results through as a side effect of scanning: detector outputs,
    frame-filter verdicts, and re-id embeddings are keyed by ``(video,
    model, model version)``, so a later session over the same video serves
    them from the index instead of re-running the model.  The index also
    records per-video observed statistics (tracker-stable fraction, filter
    selectivities) that the planner's cost model consumes in place of its
    configured priors.  Off by default: no index objects are created and
    execution is byte-identical to an index-free run.
    """

    enabled: bool = False
    #: Path of the JSON index file; None keeps the index in memory only
    #: (shared across executions within the process, never written to disk).
    path: Optional[str] = None
    #: Let the planner substitute the video's *observed* tracker-stable
    #: fraction for the configured ``stride_stable_fraction`` prior.
    use_observed_stats: bool = True
    #: Minimum indexed frames before observed statistics are trusted (a
    #: short canary must not override the prior with a noisy measurement).
    stats_min_frames: int = 32

    def __post_init__(self) -> None:
        if self.stats_min_frames < 1:
            raise ValueError("stats_min_frames must be >= 1")


@dataclass(frozen=True)
class AccuracyTarget:
    """Planner accuracy target (§4.3): minimum acceptable F1 on the canary."""

    min_f1: float = 0.9

    def accepts(self, f1: float) -> bool:
        return f1 >= self.min_f1
