"""Global configuration dataclasses shared by the simulator and backends."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VideoSpec:
    """Static description of a (synthetic) video stream.

    Mirrors Table 3 in the paper: each camera is characterised by its frame
    rate and resolution; clips additionally have a duration.
    """

    name: str
    fps: int
    width: int
    height: int
    duration_s: float

    @property
    def num_frames(self) -> int:
        return int(round(self.fps * self.duration_s))

    @property
    def megapixels(self) -> float:
        return self.width * self.height / 1e6

    def with_duration(self, duration_s: float) -> "VideoSpec":
        """The same camera recording for a different duration."""
        return VideoSpec(self.name, self.fps, self.width, self.height, duration_s)


@dataclass(frozen=True)
class AccuracyTarget:
    """Planner accuracy target (§4.3): minimum acceptable F1 on the canary."""

    min_f1: float = 0.9

    def accepts(self, f1: float) -> bool:
        return f1 >= self.min_f1
