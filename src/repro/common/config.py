"""Global configuration dataclasses shared by the simulator and backends."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VideoSpec:
    """Static description of a (synthetic) video stream.

    Mirrors Table 3 in the paper: each camera is characterised by its frame
    rate and resolution; clips additionally have a duration.
    """

    name: str
    fps: int
    width: int
    height: int
    duration_s: float

    @property
    def num_frames(self) -> int:
        return int(round(self.fps * self.duration_s))

    @property
    def megapixels(self) -> float:
        return self.width * self.height / 1e6

    def with_duration(self, duration_s: float) -> "VideoSpec":
        """The same camera recording for a different duration."""
        return VideoSpec(self.name, self.fps, self.width, self.height, duration_s)


@dataclass(frozen=True)
class StrideConfig:
    """Adaptive frame-stride sampling knobs (scan scheduler).

    When enabled, the scan scheduler raises a stream's detection stride
    (1→2→4→… up to ``max_stride``) once its tracker state has been
    Kalman-predictable for ``stable_frames`` consecutive sampled frames,
    fills the skipped frames by track interpolation, and drops back to
    stride 1 — re-scanning the skipped gap — the moment a sampled frame
    disagrees with the prediction (track birth/death, or any track drifting
    below ``iou_tol`` IoU against its predicted box).
    """

    enabled: bool = False
    #: Upper bound on the detection stride (strides double: 1, 2, 4, ...).
    max_stride: int = 8
    #: Minimum IoU between a track's predicted and detected box for the
    #: sampled frame to count as agreeing with the prediction.
    iou_tol: float = 0.5
    #: Consecutive predictable sampled frames required before each doubling.
    stable_frames: int = 3

    def __post_init__(self) -> None:
        if self.max_stride < 1:
            raise ValueError("max_stride must be >= 1")
        if not 0.0 < self.iou_tol <= 1.0:
            raise ValueError("iou_tol must be in (0, 1]")
        if self.stable_frames < 1:
            raise ValueError("stable_frames must be >= 1")


@dataclass(frozen=True)
class ReidConfig:
    """Cross-camera re-identification knobs (:mod:`repro.backend.crosscamera`).

    When enabled, :class:`~repro.backend.session.MultiCameraSession` links
    the tracks of its feeds after each execution: every track's cached (or
    freshly computed) re-id embedding is cosine-matched against a gallery of
    global identities, camera by camera, and the resulting identity labels
    are threaded into the merged results (``global_tracks`` /
    ``global_events`` / the cross-camera temporal operator).  Off by default:
    the disabled path is byte-identical to the single-feed merge.
    """

    enabled: bool = False
    #: Minimum cosine similarity for a track to join an existing identity.
    threshold: float = 0.7
    #: Assignment strategy when several tracks compete for the same gallery
    #: identity: ``"hungarian"`` (optimal one-to-one) or ``"greedy"``.
    assignment: str = "hungarian"
    #: Tolerance for disagreeing camera clocks: cross-camera gap windows are
    #: widened by this much, and global-event stitching treats per-camera
    #: segments within this slack as contiguous.
    max_clock_skew_s: float = 0.5
    #: Zoo name of the embedding model used for tracks whose pipeline never
    #: computed an embedding (cache misses).
    reid_model: str = "reid_feature"
    #: Intrinsic property name whose cached per-track values are reused as
    #: embeddings before the model is ever invoked.
    embedding_property: str = "feature_vector"
    #: Track-quality gate: tracks observed over fewer frames than this are
    #: excluded from linking.  Sliver tracks — one-frame fragments born at
    #: the frame edge, or false-positive detections — carry unreliable
    #: crops in real systems and would otherwise fragment identities.
    min_track_frames: int = 3

    _ASSIGNMENTS = ("hungarian", "greedy")

    def __post_init__(self) -> None:
        if not -1.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be a cosine similarity in (-1, 1]")
        if self.assignment not in self._ASSIGNMENTS:
            raise ValueError(f"assignment must be one of {self._ASSIGNMENTS}")
        if self.max_clock_skew_s < 0:
            raise ValueError("max_clock_skew_s must be non-negative")
        if self.min_track_frames < 1:
            raise ValueError("min_track_frames must be >= 1")


@dataclass(frozen=True)
class ObsConfig:
    """Observability knobs (:mod:`repro.obs`).

    When enabled, one :class:`~repro.obs.core.Obs` bundle (span tracer,
    metrics registry, decision log) is threaded through the whole
    execution — session, planner, scheduler, model invocations, re-id —
    and every :class:`~repro.backend.results.QueryResult` carries an
    ``explain()`` payload.  Off by default: spans only *snapshot* the
    virtual clock (never charge it), so results are byte-identical with
    tracing on or off, and the disabled path costs one ``is not None``
    check per hook.
    """

    enabled: bool = False
    #: Oldest decision records are evicted past this bound; aggregate
    #: (action, reason) counts remain exact regardless.
    max_decision_records: int = 4096
    #: Spans beyond this bound are timed but not retained or exported.
    max_spans: int = 100_000

    def __post_init__(self) -> None:
        if self.max_decision_records < 1:
            raise ValueError("max_decision_records must be >= 1")
        if self.max_spans < 1:
            raise ValueError("max_spans must be >= 1")


@dataclass(frozen=True)
class AccuracyTarget:
    """Planner accuracy target (§4.3): minimum acceptable F1 on the canary."""

    min_f1: float = 0.9

    def accepts(self, f1: float) -> bool:
        return f1 >= self.min_f1
