"""Shared utilities: geometry, simulated clock, seeded randomness, errors."""

from repro.common.geometry import BBox, iou, center_distance
from repro.common.clock import SimClock, CostProfile
from repro.common.rng import derive_rng, stable_hash
from repro.common.errors import ReproError, PlanError, QueryDefinitionError

__all__ = [
    "BBox",
    "iou",
    "center_distance",
    "SimClock",
    "CostProfile",
    "derive_rng",
    "stable_hash",
    "ReproError",
    "PlanError",
    "QueryDefinitionError",
]
