"""Accuracy metrics: precision, recall, F1.

The paper uses frame-level F1 both inside the planner (candidate DAGs scored
against the most-general plan's labels, §4.3) and in the evaluation
(Table 6).  These helpers work on boolean label sequences or on sets of
matched frame ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Set


@dataclass(frozen=True)
class PrecisionRecall:
    """Precision / recall / F1 triple with the underlying counts."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0


def precision_recall_f1(predicted: Sequence[bool], actual: Sequence[bool]) -> PrecisionRecall:
    """Counts from aligned boolean predictions and ground-truth labels.

    ``None`` predictions (unparseable answers, as in the MLLM comparison) are
    dropped together with their labels, matching the paper's methodology.
    """
    if len(predicted) != len(actual):
        raise ValueError(f"length mismatch: {len(predicted)} predictions vs {len(actual)} labels")
    tp = fp = fn = 0
    for pred, truth in zip(predicted, actual):
        if pred is None:
            continue
        if pred and truth:
            tp += 1
        elif pred and not truth:
            fp += 1
        elif not pred and truth:
            fn += 1
    return PrecisionRecall(tp, fp, fn)


def f1_score(predicted: Sequence[bool], actual: Sequence[bool]) -> float:
    """F1 of aligned boolean predictions against ground truth."""
    return precision_recall_f1(predicted, actual).f1


def f1_score_sets(predicted: Set[int], actual: Set[int], universe: Optional[int] = None) -> float:
    """F1 between two sets of matched frame ids.

    When both sets are empty the score is defined as 1.0 (the systems agree
    perfectly that nothing matches); ``universe`` is accepted for symmetry
    with accuracy computations but does not change F1.
    """
    del universe  # F1 does not depend on true negatives.
    tp = len(predicted & actual)
    fp = len(predicted - actual)
    fn = len(actual - predicted)
    if tp == fp == fn == 0:
        return 1.0
    return PrecisionRecall(tp, fp, fn).f1
