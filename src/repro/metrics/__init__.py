"""Accuracy and runtime metrics used by the planner and the experiments."""

from repro.metrics.accuracy import (
    PrecisionRecall,
    f1_score,
    f1_score_sets,
    precision_recall_f1,
)
from repro.metrics.runtime import RuntimeReport, speedup

__all__ = [
    "PrecisionRecall",
    "f1_score",
    "f1_score_sets",
    "precision_recall_f1",
    "RuntimeReport",
    "speedup",
]
