"""Runtime reporting helpers used by the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def speedup(baseline_ms: float, system_ms: float) -> float:
    """Baseline-over-system speedup factor (paper convention: higher is better)."""
    if system_ms <= 0:
        return float("inf")
    return baseline_ms / system_ms


@dataclass
class RuntimeReport:
    """Collects per-system runtimes for one experiment and renders a table."""

    title: str
    unit: str = "virtual ms"
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        self.rows.append(values)

    def columns(self) -> List[str]:
        # An insertion-ordered dict used as a set keeps first-appearance
        # column order with O(1) membership (the old list scan was
        # O(rows x cols) per key, quadratic for wide per-candidate tables).
        cols: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                cols[key] = None
        return list(cols)

    def to_text(self) -> str:
        """Render as an aligned plain-text table (what the benches print)."""
        cols = self.columns()
        if not cols:
            return f"{self.title}\n(no data)"
        header = [self.title, f"(values in {self.unit})"]
        table_rows = [cols] + [[_fmt(row.get(c, "")) for c in cols] for row in self.rows]
        widths = [max(len(str(r[i])) for r in table_rows) for i in range(len(cols))]
        lines = list(header)
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(cols, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in table_rows[1:]:
            lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):  # bool is an int/float subtype: test first
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
