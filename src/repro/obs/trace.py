"""Hierarchical spans carrying wall-clock and virtual ``SimClock`` time.

Span taxonomy (parent → child):

    execute-batch → plan → profile
                  → feed-scan (one lane per camera feed)
                  → scan → frame-gate-eval
                         → model-invocation
                  → reid-link

Spans record *both* clocks: wall time via ``time.perf_counter()`` and
virtual milliseconds by snapshotting a ``SimClock`` at enter/exit.  A span
never charges the clock it observes, which is what keeps results
byte-identical with tracing on or off.

Parenting is implicit via a thread-local span stack; cross-thread work
(per-feed scans on the ``MultiCameraSession`` pool) passes ``parent=``
explicitly and names a ``lane`` so exported traces render concurrent
feeds as parallel lanes.  ``Tracer.span`` is a context manager and must be
used in a ``with`` statement (staticcheck SC6xx enforces this).

Exporters: ``to_json`` (plain span dicts) and ``to_chrome_trace`` (Chrome
trace-event format — load the file in Perfetto / ``chrome://tracing``).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed region.  Mutable while open; frozen in practice after exit."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "lane",
        "attrs",
        "wall_start_s",
        "wall_end_s",
        "virt_start_ms",
        "virt_end_ms",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        lane: Optional[str],
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.lane = lane
        self.attrs = attrs
        self.wall_start_s: float = 0.0
        self.wall_end_s: Optional[float] = None
        self.virt_start_ms: Optional[float] = None
        self.virt_end_ms: Optional[float] = None

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute while the span is open."""
        self.attrs[key] = value

    @property
    def wall_ms(self) -> Optional[float]:
        if self.wall_end_s is None:
            return None
        return (self.wall_end_s - self.wall_start_s) * 1000.0

    @property
    def virt_ms(self) -> Optional[float]:
        if self.virt_start_ms is None or self.virt_end_ms is None:
            return None
        return self.virt_end_ms - self.virt_start_ms

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "lane": self.lane,
            "wall_start_s": self.wall_start_s,
            "wall_ms": self.wall_ms,
            "virt_start_ms": self.virt_start_ms,
            "virt_ms": self.virt_ms,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, wall_ms={self.wall_ms}, virt_ms={self.virt_ms})"


_MAIN_LANE = "main"


class Tracer:
    """Collects spans; thread-safe; bounded by ``max_spans``."""

    def __init__(self, max_spans: int = 100_000) -> None:
        self.max_spans = max_spans
        self.dropped = 0
        self._spans: List[Span] = []
        self._next_id = 1
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(
        self,
        name: str,
        clock: Optional[Any] = None,
        parent: Optional[Span] = None,
        lane: Optional[str] = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Open a timed region.  ``clock`` is a ``SimClock`` to snapshot
        (never charged); ``parent`` overrides the thread-local stack for
        cross-thread parenting; ``lane`` names the export lane (inherited
        from the parent when omitted)."""
        stack = self._stack()
        parent_span = parent if parent is not None else (stack[-1] if stack else None)
        if lane is None and parent_span is not None:
            lane = parent_span.lane
        with self._lock:
            if len(self._spans) < self.max_spans:
                span = Span(name, self._next_id, getattr(parent_span, "span_id", None), lane, attrs)
                self._next_id += 1
                self._spans.append(span)
            else:
                self.dropped += 1
                span = Span(name, -1, None, lane, attrs)
        span.wall_start_s = time.perf_counter() - self._epoch
        if clock is not None:
            span.virt_start_ms = clock.snapshot()
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            span.wall_end_s = time.perf_counter() - self._epoch
            if clock is not None:
                span.virt_end_ms = clock.snapshot()

    # -- queries ----------------------------------------------------------

    def spans(self, name: Optional[str] = None) -> List[Span]:
        with self._lock:
            recorded = list(self._spans)
        if name is None:
            return recorded
        return [s for s in recorded if s.name == name]

    def total_virt_ms(self, name: Optional[str] = None) -> float:
        """Sum of virtual ms across (optionally name-filtered) spans."""
        return sum(s.virt_ms or 0.0 for s in self.spans(name))

    # -- exporters --------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [s.as_dict() for s in self.spans()]

    def to_json(self, path: Optional[str] = None) -> str:
        payload = json.dumps({"spans": self.to_dicts(), "dropped": self.dropped}, indent=2)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(payload)
        return payload

    def lanes(self) -> List[str]:
        """Lane names in first-appearance order (``main`` for lane-less spans)."""
        ordered: List[str] = []
        for span in self.spans():
            lane = span.lane or _MAIN_LANE
            if lane not in ordered:
                ordered.append(lane)
        return ordered

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Chrome trace-event JSON: ``X`` complete events on one ``tid`` per
        lane, plus ``M`` thread-name metadata so Perfetto labels the lanes."""
        lanes = self.lanes()
        tids = {lane: tid for tid, lane in enumerate(lanes)}
        events: List[Dict[str, Any]] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": 1,
                "tid": 0,
                "args": {"name": "repro-engine"},
            }
        ]
        for lane in lanes:
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": tids[lane],
                    "args": {"name": lane},
                }
            )
        for span in self.spans():
            if span.wall_end_s is None:
                continue
            args = dict(span.attrs)
            if span.virt_ms is not None:
                args["virt_ms"] = round(span.virt_ms, 3)
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "pid": 1,
                    "tid": tids[span.lane or _MAIN_LANE],
                    "ts": round(span.wall_start_s * 1e6, 3),
                    "dur": round((span.wall_end_s - span.wall_start_s) * 1e6, 3),
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=2)
        return path


class NullTracer:
    """API-compatible no-op tracer (fast path when tracing is off)."""

    max_spans = 0
    dropped = 0

    def __init__(self) -> None:
        self._span = Span("null", -1, None, None, {})

    @contextmanager
    def span(self, name: str, clock=None, parent=None, lane=None, **attrs) -> Iterator[Span]:
        yield self._span

    def spans(self, name: Optional[str] = None) -> List[Span]:
        return []

    def total_virt_ms(self, name: Optional[str] = None) -> float:
        return 0.0

    def lanes(self) -> List[str]:
        return []

    def to_dicts(self) -> List[Dict[str, Any]]:
        return []

    def to_json(self, path: Optional[str] = None) -> str:
        payload = json.dumps({"spans": [], "dropped": 0})
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(payload)
        return payload

    def to_chrome_trace(self) -> Dict[str, Any]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def export_chrome(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle)
        return path
