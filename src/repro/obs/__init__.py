"""Engine-wide observability: span tracing, metrics, decisions, explain.

Enable via ``PlannerConfig(enable_tracing=True)``; everything here is
inert (and results byte-identical) when the knob is off.  See
docs/observability.md.
"""

from repro.obs.core import Obs
from repro.obs.decisions import Decision, DecisionLog
from repro.obs.explain import CandidateReport, ExplainData, render_explain
from repro.obs.metrics import HistogramStat, MetricsRegistry, RegistryField, format_key
from repro.obs.trace import NullTracer, Span, Tracer

__all__ = [
    "Obs",
    "Decision",
    "DecisionLog",
    "CandidateReport",
    "ExplainData",
    "render_explain",
    "HistogramStat",
    "MetricsRegistry",
    "RegistryField",
    "format_key",
    "NullTracer",
    "Span",
    "Tracer",
]
