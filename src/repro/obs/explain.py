"""EXPLAIN ANALYZE-style reports for executed queries.

``QueryResult.explain()`` renders an ``ExplainData`` payload the executor
attaches when tracing is enabled: the planner's candidate table
(estimated vs. canary-profiled vs. actual cost), gate hit rates, the
stride timeline, detector-budget consumption, and the decision summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.metrics.runtime import RuntimeReport
from repro.obs.decisions import DecisionLog
from repro.obs.trace import Tracer


@dataclass
class CandidateReport:
    """One planner candidate's costs: model estimate, canary profile, and
    (for the chosen plan) the actual full-scan cost."""

    variant: str
    estimated_cost_ms: Optional[float] = None
    profiled_cost_ms: Optional[float] = None
    estimated_f1: Optional[float] = None
    chosen: bool = False


@dataclass
class ExplainData:
    """Everything ``explain()`` joins for one query result."""

    query_name: str
    plan_variant: str
    candidates: List[CandidateReport] = field(default_factory=list)
    scan_stats: Dict[str, Any] = field(default_factory=dict)
    cost_breakdown: Dict[str, float] = field(default_factory=dict)
    model_calls: Dict[str, int] = field(default_factory=dict)
    total_ms: float = 0.0
    decisions: Optional[DecisionLog] = None
    tracer: Optional[Tracer] = None
    #: LiveStats counters of a live-session run; None for batch executions.
    live: Optional[Dict[str, Any]] = None
    #: Persistent-index counters (hits/misses/stale/written); None when the
    #: video index is disabled.
    index: Optional[Dict[str, Any]] = None


def mark_chosen(
    candidates: List[CandidateReport], variant: str
) -> List[CandidateReport]:
    """Fresh copies with ``chosen`` set on the matching variant."""
    return [replace(c, chosen=(c.variant == variant)) for c in candidates]


def _candidate_table(data: ExplainData) -> str:
    report = RuntimeReport(
        f"Planner candidates for {data.query_name}", unit="virtual ms"
    )
    for candidate in data.candidates:
        report.add_row(
            variant=candidate.variant,
            chosen=candidate.chosen,
            estimated_ms=candidate.estimated_cost_ms,
            profiled_ms=candidate.profiled_cost_ms,
            actual_ms=data.total_ms if candidate.chosen else None,
            estimated_f1=candidate.estimated_f1,
        )
    if not data.candidates:
        report.add_row(
            variant=data.plan_variant,
            chosen=True,
            estimated_ms=None,
            profiled_ms=None,
            actual_ms=data.total_ms,
            estimated_f1=None,
        )
    return report.to_text()


def _gate_section(stats: Dict[str, Any]) -> List[str]:
    evaluations = stats.get("gate_evaluations", 0) or 0
    cache_hits = stats.get("gate_cache_hits", 0) or 0
    gated = stats.get("leaf_frames_gated", 0) or 0
    processed = stats.get("leaf_frames_processed", 0) or 0
    lookups = evaluations + cache_hits
    lines = ["Frame gate:"]
    if lookups == 0:
        lines.append("  (gating inactive — no frame filters evaluated)")
        return lines
    hit_rate = cache_hits / lookups
    reject_rate = gated / max(gated + processed, 1)
    lines.append(
        f"  {evaluations} evaluations, {cache_hits} cache hits "
        f"({hit_rate:.1%} hit rate)"
    )
    lines.append(
        f"  {gated} leaf frames gated vs {processed} processed "
        f"({reject_rate:.1%} rejected)"
    )
    return lines


def _stride_section(data: ExplainData) -> List[str]:
    stats = data.scan_stats
    lines = [
        "Stride timeline:",
        (
            f"  raises={stats.get('stride_raises', 0)} "
            f"resets={stats.get('stride_resets', 0)} "
            f"peak={stats.get('peak_stride', 1)} "
            f"deferred={stats.get('frames_deferred', 0)} "
            f"interpolated={stats.get('frames_interpolated', 0)} "
            f"rescanned={stats.get('frames_rescanned', 0)}"
        ),
    ]
    if data.decisions is not None:
        moves = [
            d
            for d in data.decisions.records()
            if d.action in ("stride-raised", "stride-reset")
        ]
        for move in moves:
            attrs = dict(move.attrs)
            lines.append(
                f"  frame {move.frame_id}: {move.action} "
                f"{attrs.get('stride_from', '?')} -> {attrs.get('stride_to', '?')} "
                f"({move.reason})"
            )
    return lines


def _budget_section(data: ExplainData) -> List[str]:
    lines = ["Detector budget:"]
    if not data.model_calls:
        lines.append("  (no model invocations)")
        return lines
    for name in sorted(data.model_calls):
        cost = data.cost_breakdown.get(name, 0.0)
        lines.append(
            f"  {name}: {data.model_calls[name]} calls, {cost:.2f} virtual ms"
        )
    return lines


def _fault_section(stats: Dict[str, Any]) -> List[str]:
    """Fault-tolerance counters; omitted entirely when nothing fired."""
    keys = (
        "faults_injected",
        "model_retries",
        "model_failures",
        "circuit_opens",
        "frames_degraded",
        "checkpoints_taken",
        "scan_resumes",
    )
    if not any(stats.get(k, 0) for k in keys):
        return []
    lines = ["Fault tolerance:"]
    lines.append(
        f"  injected={stats.get('faults_injected', 0)} "
        f"retries={stats.get('model_retries', 0)} "
        f"failures={stats.get('model_failures', 0)} "
        f"circuit_opens={stats.get('circuit_opens', 0)}"
    )
    lines.append(
        f"  degraded_frames={stats.get('frames_degraded', 0)} "
        f"checkpoints={stats.get('checkpoints_taken', 0)} "
        f"resumes={stats.get('scan_resumes', 0)}"
    )
    return lines


def _live_section(live: Optional[Dict[str, Any]]) -> List[str]:
    """Live ingestion accounting; omitted for batch executions."""
    if live is None:
        return []
    lines = ["Live ingestion:"]
    lines.append(
        f"  delivered={live.get('frames_delivered', 0)} "
        f"processed={live.get('frames_processed', 0)} "
        f"shed={live.get('frames_shed', 0)} "
        f"late_dropped={live.get('frames_late_dropped', 0)} "
        f"reordered={live.get('frames_reordered', 0)} "
        f"lost={live.get('frames_lost', 0)}"
    )
    lines.append(
        f"  peak_buffered={live.get('peak_buffered', 0)} "
        f"peak_pressure_stride={live.get('peak_pressure_stride', 1)} "
        f"stalls={live.get('stalls', 0)} "
        f"reconnects={live.get('reconnects', 0)} "
        f"alerts={live.get('alerts_emitted', 0)}"
    )
    return lines


def _index_section(index: Optional[Dict[str, Any]]) -> List[str]:
    """Persistent-index accounting; omitted when the index is disabled."""
    if index is None:
        return []
    lines = ["Index:"]
    lines.append(
        f"  hits={index.get('hits', 0)} "
        f"misses={index.get('misses', 0)} "
        f"stale={index.get('stale', 0)} "
        f"written={index.get('written', 0)}"
    )
    return lines


def _decision_section(decisions: Optional[DecisionLog]) -> List[str]:
    lines = ["Decisions:"]
    if decisions is None:
        lines.append("  (no decision log)")
        return lines
    summary = decisions.summary()
    if not summary:
        lines.append("  (none recorded)")
        return lines
    for action in sorted(summary):
        for reason, count in sorted(summary[action].items()):
            lines.append(f"  {action}/{reason}: {count}")
    return lines


def render_explain(data: ExplainData) -> str:
    """The full EXPLAIN ANALYZE report as text."""
    lines = [
        f"EXPLAIN ANALYZE {data.query_name} (plan variant: {data.plan_variant})",
        f"  actual cost: {data.total_ms:.2f} virtual ms",
        "",
        _candidate_table(data),
    ]
    lines.extend(_gate_section(data.scan_stats))
    lines.append("")
    lines.extend(_stride_section(data))
    lines.append("")
    lines.extend(_budget_section(data))
    lines.append("")
    faults = _fault_section(data.scan_stats)
    if faults:
        lines.extend(faults)
        lines.append("")
    live = _live_section(data.live)
    if live:
        lines.extend(live)
        lines.append("")
    index = _index_section(data.index)
    if index:
        lines.extend(index)
        lines.append("")
    lines.extend(_decision_section(data.decisions))
    return "\n".join(lines)
