"""Labeled counter/gauge/histogram registry.

The registry is the single numeric surface for engine observability:
``ScanStats`` exposes its counters as registry gauges (keeping the legacy
``as_dict()`` view), while tracing-mode instrumentation adds labeled
counters (``detector_invocations{model=...}``) and bounded histogram
summaries (``gate_eval_ms{model=...}``, ``stride_level``).

Histograms store only ``(count, total, min, max)`` aggregates, so memory
stays O(label cardinality) regardless of how many samples arrive, and
snapshots are deterministic under concurrent recording (sums and extrema
are order-independent).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, object]) -> LabelKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_key(key: LabelKey) -> str:
    """Render ``(name, labels)`` as ``name{k=v,...}`` (Prometheus-style)."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


@dataclass
class HistogramStat:
    """Bounded summary of an observed value series."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Thread-safe registry of labeled counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[LabelKey, float] = {}
        self._gauges: Dict[LabelKey, object] = {}
        self._histograms: Dict[LabelKey, HistogramStat] = {}

    # -- counters ---------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels: object) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def counter(self, name: str, **labels: object) -> float:
        with self._lock:
            return self._counters.get(_key(name, labels), 0)

    # -- gauges -----------------------------------------------------------

    def set_gauge(self, name: str, value: object, **labels: object) -> None:
        with self._lock:
            self._gauges[_key(name, labels)] = value

    def gauge(self, name: str, default: object = None, **labels: object) -> object:
        with self._lock:
            return self._gauges.get(_key(name, labels), default)

    # -- histograms -------------------------------------------------------

    def observe(self, name: str, value: float, **labels: object) -> None:
        key = _key(name, labels)
        with self._lock:
            stat = self._histograms.get(key)
            if stat is None:
                stat = self._histograms[key] = HistogramStat()
            stat.observe(value)

    def histogram(self, name: str, **labels: object) -> Optional[HistogramStat]:
        with self._lock:
            return self._histograms.get(_key(name, labels))

    # -- copying ----------------------------------------------------------

    def __deepcopy__(self, memo: Dict[int, object]) -> "MetricsRegistry":
        """Deep-copy the metric maps behind a *fresh* lock.

        Locks are not copyable, and a copy must never share the original's
        lock anyway.  Scan checkpointing deep-copies the scheduler's
        ``ScanStats`` (whose counters live in a registry), so this has to
        work under ``copy.deepcopy``.
        """
        import copy

        clone = MetricsRegistry()
        memo[id(self)] = clone
        with self._lock:
            clone._counters = dict(self._counters)
            clone._gauges = copy.deepcopy(self._gauges, memo)
            clone._histograms = copy.deepcopy(self._histograms, memo)
        return clone

    # -- snapshot ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All metrics keyed ``name{label=value,...}``, sorted for stability."""
        with self._lock:
            return {
                "counters": {
                    format_key(k): v for k, v in sorted(self._counters.items())
                },
                "gauges": {
                    format_key(k): v for k, v in sorted(self._gauges.items())
                },
                "histograms": {
                    format_key(k): v.as_dict()
                    for k, v in sorted(self._histograms.items())
                },
            }


class RegistryField:
    """Descriptor exposing an attribute as an unlabeled registry gauge.

    Lets a stats object keep plain ``obj.field`` read/write semantics
    (including ``+=``) while every value lives in the owner's
    ``MetricsRegistry``, so ``registry.snapshot()`` is the source of truth
    and legacy dict views are derived from it.
    """

    def __init__(self, default: object = 0) -> None:
        self.default = default
        self.name = ""

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj.registry.gauge(self.name, default=self.default)

    def __set__(self, obj, value) -> None:
        obj.registry.set_gauge(self.name, value)
