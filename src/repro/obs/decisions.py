"""Structured, bounded-memory decision records.

Every discretionary choice the engine makes — gating a frame, deferring
it under stride sampling, interpolating or rescanning a gap, retiring a
stream early, excluding a track from re-id linking — lands here as a
``Decision`` with a machine-readable ``action``/``reason`` pair.

Memory is bounded two ways: the record deque evicts oldest-first past
``max_records``, while the ``(action, reason)`` count table is never
trimmed, so aggregate accounting (e.g. "decision log covers 100% of
gated frames") stays exact even after eviction.

Decision catalog (action / reasons) — see docs/observability.md:

* ``frame-gated`` / ``frame-filter-rejected``
* ``frame-deferred`` / ``stride-skip``
* ``frame-interpolated`` / ``predictions-validated``
* ``frame-rescanned`` / ``validation-failed``, ``scan-ended-mid-gap``
* ``stride-raised`` / ``stable-streak``; ``stride-reset`` / ``prediction-mismatch``
* ``stream-retired`` / ``answer-determined``; ``scan-early-exit`` / ``all-streams-done``
* ``reid-excluded`` / ``ambiguous-track-id``, ``below-min-track-frames``
* ``reid-embedding-recomputed`` / ``seeded-frame-provenance``
* ``reid-unmatched`` / ``empty-gallery``, ``below-threshold``,
  ``class-mismatch``, ``identity-contended``
* ``model-retry`` / ``transient-fault``, ``timeout``
* ``circuit-opened`` / ``failure-threshold``; ``circuit-closed`` /
  ``probe-succeeded``
* ``frame-degraded`` / ``frame-corrupted``, ``frame-dropped``,
  ``model-unavailable``
* ``checkpoint-taken`` / ``checkpoint-interval``; ``scan-resumed`` /
  ``crash-recovery``
* ``frame-shed`` / ``queue-over-cap``
* ``frame-reordered`` / ``out-of-order-arrival``
* ``late-frame-dropped`` / ``behind-watermark``, ``duplicate-delivery``
* ``frame-lost`` / ``feed-outage``
* ``feed-stalled`` / ``no-arrivals``; ``feed-reconnected`` /
  ``reconnect-success``
* ``pressure-stride-raised`` / ``queue-pressure``
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Decision:
    """One engine choice: what happened, to what, and why."""

    action: str
    reason: str
    frame_id: Optional[int] = None
    subject: Optional[str] = None
    attrs: Tuple[Tuple[str, Any], ...] = field(default=())

    def as_dict(self) -> Dict[str, Any]:
        return {
            "action": self.action,
            "reason": self.reason,
            "frame_id": self.frame_id,
            "subject": self.subject,
            **dict(self.attrs),
        }


class DecisionLog:
    """Thread-safe ring buffer of decisions with exact aggregate counts."""

    def __init__(self, max_records: int = 4096) -> None:
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self._lock = threading.Lock()
        self._records: Deque[Decision] = deque(maxlen=max_records)
        self._counts: Dict[Tuple[str, str], int] = {}
        self.evicted = 0

    def record(
        self,
        action: str,
        reason: str,
        frame_id: Optional[int] = None,
        subject: Optional[str] = None,
        **attrs: Any,
    ) -> None:
        decision = Decision(action, reason, frame_id, subject, tuple(sorted(attrs.items())))
        with self._lock:
            if len(self._records) == self._records.maxlen:
                self.evicted += 1
            self._records.append(decision)
            key = (action, reason)
            self._counts[key] = self._counts.get(key, 0) + 1

    def records(
        self, action: Optional[str] = None, reason: Optional[str] = None
    ) -> List[Decision]:
        with self._lock:
            snapshot = list(self._records)
        if action is not None:
            snapshot = [d for d in snapshot if d.action == action]
        if reason is not None:
            snapshot = [d for d in snapshot if d.reason == reason]
        return snapshot

    def count(self, action: str, reason: Optional[str] = None) -> int:
        """Exact lifetime count for an action (never affected by eviction)."""
        with self._lock:
            if reason is not None:
                return self._counts.get((action, reason), 0)
            return sum(v for (a, _), v in self._counts.items() if a == action)

    def summary(self) -> Dict[str, Dict[str, int]]:
        """``{action: {reason: count}}`` over the full log lifetime."""
        with self._lock:
            out: Dict[str, Dict[str, int]] = {}
            for (action, reason), count in sorted(self._counts.items()):
                out.setdefault(action, {})[reason] = count
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
