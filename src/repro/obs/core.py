"""The ``Obs`` bundle: one tracer + metrics registry + decision log.

A single ``Obs`` instance is shared across every layer of one execution
(session → executor → scheduler → context → re-id), so a multi-feed batch
produces one coherent trace with parallel feed lanes and one decision log.

``Obs.from_config`` returns ``None`` when tracing is disabled; hot paths
guard on ``if obs is not None`` so the disabled mode costs one attribute
check and allocates nothing — that, plus spans never charging the
``SimClock``, is the byte-identity guarantee.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import ObsConfig
from repro.obs.decisions import DecisionLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


class Obs:
    """Bundle of observability sinks for one execution."""

    def __init__(self, config: Optional[ObsConfig] = None) -> None:
        self.config = config if config is not None else ObsConfig(enabled=True)
        self.tracer = Tracer(max_spans=self.config.max_spans)
        self.metrics = MetricsRegistry()
        self.decisions = DecisionLog(max_records=self.config.max_decision_records)

    @classmethod
    def from_config(cls, config: Optional[ObsConfig]) -> Optional["Obs"]:
        """``Obs`` when the config enables tracing, else ``None``."""
        if config is None or not config.enabled:
            return None
        return cls(config)
