"""Deterministic fault injection.

Every injection decision is a pure function of
``(fault seed, feed, fault kind, model, frame, attempt)`` via
:func:`repro.common.rng.stable_uniform`, never of invocation order.  That is
the property the chaos-determinism tests rely on: the same seed produces the
same fault schedule whether feeds run on one worker thread or four, and
whether stride sampling skips frames or not (a fault attached to a frame
that is never sampled simply never fires).

The injector is stateless except for one-shot *crash* faults, which record
that they fired so a checkpoint-resumed scan does not re-crash on the same
frame (the fault manager — and with it this injector — is shared across
resume, not snapshotted).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Set, Tuple

from repro.common.config import FaultConfig
from repro.common.rng import stable_uniform
from repro.videosim.video import Frame


class FaultInjector:
    """Draws deterministic fault decisions for one feed's scan."""

    def __init__(self, config: FaultConfig, feed: str = "") -> None:
        self.config = config
        self.feed = feed
        self._dead_models: Tuple[Tuple[str, int], ...] = config.dead_models
        self._fired_crashes: Set[Tuple[str, int]] = set()

    # ------------------------------------------------------------ draws --
    def _draw(self, kind: str, *key) -> float:
        return stable_uniform(self.config.seed, "fault", self.feed, kind, *key)

    def transient_failure(self, model_name: str, frame_id: int, attempt: int) -> bool:
        rate = self.config.transient_rate
        return rate > 0.0 and self._draw("transient", model_name, frame_id, attempt) < rate

    def latency_spike(self, model_name: str, frame_id: int, attempt: int) -> bool:
        rate = self.config.latency_spike_rate
        return rate > 0.0 and self._draw("latency", model_name, frame_id, attempt) < rate

    def model_dead(self, model_name: str, frame_id: int) -> bool:
        """True when ``model_name`` is permanently down at ``frame_id``."""
        return any(
            name == model_name and frame_id >= from_frame
            for name, from_frame in self._dead_models
        )

    def frame_fault(self, frame_id: int) -> Optional[str]:
        """``"dropped"`` / ``"corrupted"`` / None for this frame.

        A dropped frame wins over a corrupted one: there is nothing left to
        corrupt.  Both are degraded by the scheduler, never trusted.
        """
        if self.config.drop_frame_rate > 0.0 and self._draw("drop", frame_id) < self.config.drop_frame_rate:
            return "dropped"
        if self.config.corrupt_frame_rate > 0.0 and self._draw("corrupt", frame_id) < self.config.corrupt_frame_rate:
            return "corrupted"
        return None

    def feed_death_frame(self, frame_id: int) -> Optional[int]:
        """The frame this feed dies at, if ``frame_id`` has reached it."""
        for feed, at_frame in self.config.dead_feeds:
            if feed == self.feed and frame_id >= at_frame:
                return at_frame
        return None

    def crash_now(self, frame_id: int) -> bool:
        """One-shot scan crash at ``frame_id`` (fires at most once)."""
        for feed, at_frame in self.config.crash_frames:
            if feed == self.feed and frame_id == at_frame:
                key = (feed, at_frame)
                if key not in self._fired_crashes:
                    self._fired_crashes.add(key)
                    return True
        return False

    def backoff_jitter(self, model_name: str, frame_id: int, attempt: int) -> float:
        """Deterministic jitter in [0, 1) for one backoff interval."""
        return self._draw("jitter", model_name, frame_id, attempt)

    # ------------------------------------------------------------- hooks --
    def reader_hook(self, frame: Frame) -> Frame:
        """``videosim`` hook: tag corrupted/dropped frames in transit.

        The scheduler makes the degrade decision from the same deterministic
        draw, so the tag is advisory — it lets anything downstream of the
        reader see that the frame arrived faulty.  The ground-truth payload
        is left intact: degraded frames are still *processed* (over
        interpolation-seeded detections), and property models resolve their
        values against ``frame.instances``.
        """
        kind = self.frame_fault(frame.frame_id)
        if kind is not None:
            return replace(frame, scene_attributes={**frame.scene_attributes, "fault": kind})
        return frame
