"""Deterministic fault injection and fault-tolerant execution.

The fault layer has three parts, all behind
``PlannerConfig(enable_fault_tolerance=True)`` (default off, byte-identical
disabled):

* :mod:`repro.faults.injection` — a seeded, invocation-order-independent
  :class:`FaultInjector` that decides, per (feed, model, frame, attempt),
  whether to inject a transient model failure, a permanent model outage, a
  latency spike, a corrupted/dropped frame, a mid-scan feed death, or a
  one-shot scan crash.
* :mod:`repro.faults.resilience` — the :class:`FaultManager` every model
  invocation runs through: bounded retries with exponential backoff +
  deterministic jitter charged to the ``SimClock``, per-model timeout
  budgets, and per-model :class:`CircuitBreaker`\\ s.
* :mod:`repro.faults.checkpoint` — periodic :class:`ScanCheckpointer`
  snapshots of scheduler/stream/tracker/gate state so an aborted scan
  resumes from the last checkpoint instead of rescanning from frame 0.

See ``docs/robustness.md`` for the fault model and guarantees.
"""

from repro.faults.checkpoint import ScanCheckpoint, ScanCheckpointer
from repro.faults.injection import FaultInjector
from repro.faults.resilience import CircuitBreaker, FaultManager

__all__ = [
    "CircuitBreaker",
    "FaultInjector",
    "FaultManager",
    "ScanCheckpoint",
    "ScanCheckpointer",
]
