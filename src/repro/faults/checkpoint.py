"""Scan checkpoint/resume: periodic snapshots of in-flight scan state.

A scan that dies mid-video (the fault layer's one-shot *crash* fault, or any
unexpected error) would otherwise forfeit every frame already processed.
The :class:`ScanCheckpointer` periodically captures the whole in-flight
state of a scan — the :class:`~repro.backend.scheduler.ScanScheduler` (with
its streams, groupers, gate memos, stride controllers, and counters), the
:class:`~repro.backend.runtime.ExecutionContext`'s mutable caches (trackers,
track states, per-frame caches), and the :class:`~repro.common.clock.SimClock`
— so the executor can resume from the last checkpoint instead of rescanning
from frame 0.

Two invariants make this safe:

* **Shared objects are shared, not copied.**  The capture is a ``deepcopy``
  whose memo pre-maps every object that must keep its identity (the context,
  video, zoo, clock, obs bundle, fault manager, executor, and plans) to
  itself, so the snapshot graph points at the *live* instances of everything
  that is either immutable, externally owned, or deliberately persistent
  across a crash (breaker state, the injector's one-shot crash memory, the
  decision log).
* **Restore never consumes the snapshot.**  Restoring deepcopies the
  snapshot a second time (same shared memo), so one checkpoint can serve
  several resumes (``max_resumes``) without the resumed scan mutating it.

The context and clock are restored *in place* (:meth:`ExecutionContext.
restore_checkpoint_state`, :meth:`SimClock.restore_state`): every object
holding a reference to them — the session's ``last_context``, the video
reader's clock — stays valid across a resume.  Work performed between the
checkpoint and the crash is rolled off the virtual timeline: it was never
delivered, and replaying it re-charges it deterministically.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import CheckpointError


class ScanCheckpoint:
    """One captured scan state: resume point + deep-copied state graph."""

    def __init__(self, next_frame: int, payload: Dict[str, Any], shared: Tuple[Any, ...]) -> None:
        #: Frame id the resumed reader should start at.
        self.next_frame = next_frame
        #: ``{"scheduler": ..., "ctx_state": ..., "clock_state": ...}`` —
        #: one deepcopy, so cross-references inside it stay consistent.
        self.payload = payload
        #: The identity-preserved objects the payload's copies point into.
        self.shared = shared


class ScanCheckpointer:
    """Captures and restores scan checkpoints for one feed's scan."""

    def __init__(self, interval: int, max_resumes: int = 2) -> None:
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1 frame")
        self.interval = interval
        self.max_resumes = max_resumes
        self.resumes_used = 0
        self._checkpoint: Optional[ScanCheckpoint] = None
        self._last_capture_frame: Optional[int] = None

    # ----------------------------------------------------------- capture --
    @property
    def can_resume(self) -> bool:
        return self._checkpoint is not None and self.resumes_used < self.max_resumes

    def maybe_capture(self, scheduler: Any, next_frame: int) -> None:
        """Capture when ``next_frame`` sits on the checkpoint grid.

        Anchored at absolute frame ids (like stride grids), so the capture
        schedule is identical whether or not the scan has already resumed;
        a just-restored scan is not re-captured on its resume frame.
        """
        if next_frame % self.interval != 0:
            return
        if next_frame == self._last_capture_frame:
            return
        self.capture(scheduler, next_frame)

    def capture(self, scheduler: Any, next_frame: int) -> None:
        """Snapshot the scheduler + context + clock as of ``next_frame``.

        Must be called *between* frames — before ``next_frame`` is read or
        stepped: every structure is then self-consistent (the clock holds no
        charge for ``next_frame`` yet) and the resumed reader can start
        exactly at ``next_frame`` without double-charging its read.
        """
        ctx = scheduler.ctx
        shared = self._shared_objects(scheduler)
        memo = {id(obj): obj for obj in shared}
        payload = copy.deepcopy(
            {
                "scheduler": scheduler,
                "ctx_state": ctx.checkpoint_state(),
                "clock_state": ctx.clock.state_snapshot(),
            },
            memo,
        )
        self._checkpoint = ScanCheckpoint(next_frame, payload, shared)
        self._last_capture_frame = next_frame
        scheduler.stats.checkpoints_taken += 1
        if scheduler.obs is not None:
            scheduler.obs.decisions.record(
                "checkpoint-taken", "checkpoint-interval", frame_id=next_frame
            )
            scheduler.obs.metrics.inc("checkpoints_taken")

    # ----------------------------------------------------------- restore --
    def restore(self) -> Tuple[Any, int]:
        """Rebuild the scan at the last checkpoint; ``(scheduler, next_frame)``.

        Raises :class:`~repro.common.errors.CheckpointError` when there is
        nothing to restore or the resume budget is spent.
        """
        if self._checkpoint is None:
            raise CheckpointError("no checkpoint to resume from")
        if self.resumes_used >= self.max_resumes:
            raise CheckpointError(
                f"resume budget exhausted ({self.max_resumes} resumes)"
            )
        self.resumes_used += 1
        cp = self._checkpoint
        memo = {id(obj): obj for obj in cp.shared}
        payload = copy.deepcopy(cp.payload, memo)
        scheduler = payload["scheduler"]
        ctx = scheduler.ctx  # identity-preserved: the live context
        ctx.restore_checkpoint_state(payload["ctx_state"])
        ctx.clock.restore_state(payload["clock_state"])
        ctx.scan_stats = scheduler.stats
        # Stride controllers are keyed by id(stream); the streams were just
        # re-materialised, so the key map must be rebuilt over the copies.
        scheduler._controllers = {
            id(c.stream): c for c in scheduler._controllers.values()
        }
        scheduler.stats.scan_resumes += 1
        if scheduler.faults is not None:
            scheduler.faults.stats = scheduler.stats
        if scheduler.obs is not None:
            scheduler.obs.decisions.record(
                "scan-resumed",
                "crash-recovery",
                frame_id=cp.next_frame,
                resume=self.resumes_used,
            )
            scheduler.obs.metrics.inc("scan_resumes")
        return scheduler, cp.next_frame

    # --------------------------------------------------------- internals --
    @staticmethod
    def _shared_objects(scheduler: Any) -> Tuple[Any, ...]:
        """Everything the snapshot must reference by identity, not copy."""
        ctx = scheduler.ctx
        shared = [ctx, ctx.video, ctx.zoo, ctx.clock]
        if ctx.obs is not None:
            shared.append(ctx.obs)
        if scheduler.faults is not None:
            shared.append(scheduler.faults)
        for stream in scheduler.streams:
            for leaf in stream.plan_streams():
                shared.append(leaf.executor)
                shared.append(leaf.plan)
                # Operators are stateless config (all mutable scan state
                # lives in the context), and the frame graph keys nodes by
                # ``id(variable)``: copying an operator would fork its VObj
                # variables away from ``plan.analysis``, so bindings built
                # by the copy would be invisible to the sink.
                shared.extend(ScanCheckpointer._flatten_ops(leaf.operators))
        return tuple(shared)

    @staticmethod
    def _flatten_ops(operators: Any) -> list:
        """All operators plus fused children, flattened."""
        out = []
        for op in operators:
            out.append(op)
            children = getattr(op, "children", None)
            if children:
                out.extend(ScanCheckpointer._flatten_ops(children))
        return out
