"""Resilient model invocation: retries, backoff, timeouts, circuit breakers.

Every ``model.detect(...)`` / property-model / frame-filter invocation runs
through :meth:`FaultManager.invoke` when fault tolerance is enabled.  The
manager is per-feed (each feed's scan builds its own), so breaker state and
retry counters never interleave across worker threads — the chaos suite
relies on that for ``max_workers`` determinism.

Failure semantics:

* A *transient* failure (injected, or a timeout) is retried up to
  ``max_retries`` times with exponential backoff + deterministic jitter,
  charged to the ``SimClock`` under ``fault-backoff``.
* Consecutive failures past ``breaker_threshold`` open the model's
  :class:`CircuitBreaker`; while open, invocations fail fast (no retries)
  until ``breaker_cooldown_ms`` virtual ms pass, then one half-open probe
  decides whether to close it again.
* Exhausted retries / an open circuit surface as
  :class:`~repro.common.errors.TransientModelError` to the caller; the scan
  scheduler degrades the affected frame (Kalman interpolation or skip)
  instead of aborting.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, TypeVar

from repro.common.clock import SimClock
from repro.common.config import FaultConfig
from repro.common.errors import ExecutionError, FeedFailedError, ModelTimeoutError, TransientModelError
from repro.faults.injection import FaultInjector

T = TypeVar("T")


class CircuitBreaker:
    """Per-model circuit breaker over virtual time.

    ``closed`` → (``threshold`` consecutive failures) → ``open`` →
    (``cooldown_ms`` virtual ms) → ``half-open`` probe → ``closed`` on
    success, back to ``open`` on failure.
    """

    def __init__(self, threshold: int, cooldown_ms: float) -> None:
        self.threshold = threshold
        self.cooldown_ms = cooldown_ms
        self.consecutive_failures = 0
        self.opened_at_ms: Optional[float] = None

    @property
    def state(self) -> str:
        return "closed" if self.opened_at_ms is None else "open"

    def allow(self, now_ms: float) -> bool:
        """May an invocation proceed at virtual time ``now_ms``?

        An open breaker admits one half-open probe once the cooldown has
        elapsed (the probe's outcome re-opens or closes the circuit).
        """
        if self.opened_at_ms is None:
            return True
        return now_ms - self.opened_at_ms >= self.cooldown_ms

    def record_success(self) -> bool:
        """Record a successful invocation; True when this closed an open circuit."""
        reopened = self.opened_at_ms is not None
        self.opened_at_ms = None
        self.consecutive_failures = 0
        return reopened

    def record_failure(self, now_ms: float) -> bool:
        """Record a failed attempt; True when this transition opened the circuit."""
        self.consecutive_failures += 1
        if self.opened_at_ms is not None:
            # A failed half-open probe restarts the cooldown.
            self.opened_at_ms = now_ms
            return False
        if self.consecutive_failures >= self.threshold:
            self.opened_at_ms = now_ms
            return True
        return False


class FaultManager:
    """One feed's fault-injection + resilience state for a single scan."""

    def __init__(
        self,
        config: FaultConfig,
        clock: SimClock,
        feed: str = "",
        obs=None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.feed = feed
        self.obs = obs
        self.injector = FaultInjector(config, feed=feed)
        #: Attached by the executor once the scheduler (and its ScanStats)
        #: exists; guarded everywhere because canary/standalone invocations
        #: may run without one.
        self.stats = None
        self._breakers: Dict[str, CircuitBreaker] = {}

    # ---------------------------------------------------------------- obs --
    def _decide(self, action: str, reason: str, frame_id=None, subject=None, **attrs) -> None:
        if self.obs is not None:
            self.obs.decisions.record(action, reason, frame_id=frame_id, subject=subject, **attrs)

    def _metric(self, name: str, **labels) -> None:
        if self.obs is not None:
            self.obs.metrics.inc(name, **labels)

    def _count_fault(self, kind: str) -> None:
        if self.stats is not None:
            self.stats.faults_injected += 1
        self._metric("faults_injected", kind=kind)

    # ------------------------------------------------------------ breakers --
    def breaker(self, model_name: str) -> CircuitBreaker:
        breaker = self._breakers.get(model_name)
        if breaker is None:
            breaker = CircuitBreaker(self.config.breaker_threshold, self.config.breaker_cooldown_ms)
            self._breakers[model_name] = breaker
        return breaker

    def breaker_states(self) -> Dict[str, str]:
        return {name: b.state for name, b in sorted(self._breakers.items())}

    # ---------------------------------------------------------- invocation --
    def invoke(self, model_name: str, frame_id: int, fn: Callable[[], T], kind: str = "model") -> T:
        """Run ``fn`` (the real model invocation) with injection + resilience.

        Raises :class:`TransientModelError` (or :class:`ModelTimeoutError`)
        once the circuit is open or retries are exhausted; the caller
        degrades the frame.
        """
        breaker = self.breaker(model_name)
        if not breaker.allow(self.clock.elapsed_ms):
            if self.stats is not None:
                self.stats.model_failures += 1
            raise TransientModelError(
                f"circuit open for model {model_name!r} at frame {frame_id} "
                f"(cooling down {self.config.breaker_cooldown_ms:.0f}ms)"
            )
        attempts = self.config.max_retries + 1
        last_error: Optional[TransientModelError] = None
        for attempt in range(attempts):
            try:
                value = self._attempt(model_name, frame_id, attempt, fn)
            except TransientModelError as exc:
                last_error = exc
                opened = breaker.record_failure(self.clock.elapsed_ms)
                if opened:
                    if self.stats is not None:
                        self.stats.circuit_opens += 1
                    self._decide(
                        "circuit-opened",
                        "failure-threshold",
                        frame_id=frame_id,
                        subject=model_name,
                        failures=breaker.consecutive_failures,
                    )
                if attempt + 1 >= attempts or not breaker.allow(self.clock.elapsed_ms):
                    break
                self._backoff(model_name, frame_id, attempt)
                if self.stats is not None:
                    self.stats.model_retries += 1
                self._metric("model_retries", model=model_name)
                self._decide(
                    "model-retry",
                    "timeout" if isinstance(exc, ModelTimeoutError) else "transient-fault",
                    frame_id=frame_id,
                    subject=model_name,
                    attempt=attempt + 1,
                )
            else:
                if breaker.record_success():
                    self._decide("circuit-closed", "probe-succeeded", frame_id=frame_id, subject=model_name)
                return value
        if self.stats is not None:
            self.stats.model_failures += 1
        assert last_error is not None
        raise last_error

    def _attempt(self, model_name: str, frame_id: int, attempt: int, fn: Callable[[], T]) -> T:
        cfg = self.config
        injector = self.injector
        if injector.model_dead(model_name, frame_id):
            self._count_fault("permanent")
            raise TransientModelError(
                f"model {model_name!r} is down at frame {frame_id} (injected permanent fault)"
            )
        if injector.transient_failure(model_name, frame_id, attempt):
            self._count_fault("transient")
            raise TransientModelError(
                f"model {model_name!r} failed transiently at frame {frame_id} (attempt {attempt})"
            )
        start = self.clock.snapshot()
        value = fn()
        spent = self.clock.since(start)
        spiked = injector.latency_spike(model_name, frame_id, attempt)
        if spiked:
            self._count_fault("latency-spike")
        effective = spent * (cfg.latency_spike_factor if spiked else 1.0)
        if cfg.timeout_ms is not None and effective > cfg.timeout_ms:
            # The attempt is abandoned at the budget: charge at most the
            # budget, never the full (spiked) cost.
            if spent < cfg.timeout_ms:
                self.clock.charge(f"fault-timeout:{model_name}", cfg.timeout_ms - spent)
            self._count_fault("timeout")
            raise ModelTimeoutError(
                f"model {model_name!r} exceeded its {cfg.timeout_ms:.1f}ms budget "
                f"at frame {frame_id} (attempt {attempt})"
            )
        if spiked and effective > spent:
            self.clock.charge(f"fault-latency:{model_name}", effective - spent)
        return value

    def _backoff(self, model_name: str, frame_id: int, attempt: int) -> None:
        cfg = self.config
        jitter = cfg.backoff_jitter_ms * self.injector.backoff_jitter(model_name, frame_id, attempt)
        delay = cfg.backoff_base_ms * (cfg.backoff_factor**attempt) + jitter
        if delay > 0:
            self.clock.charge("fault-backoff", delay)

    # --------------------------------------------------------- scan faults --
    def frame_fault(self, frame_id: int) -> Optional[str]:
        """``"dropped"`` / ``"corrupted"`` / None (same draw as the reader hook)."""
        return self.injector.frame_fault(frame_id)

    def check_feed_death(self, frame_id: int) -> None:
        died_at = self.injector.feed_death_frame(frame_id)
        if died_at is not None:
            self._count_fault("feed-death")
            raise FeedFailedError(
                f"feed {self.feed!r} died at frame {died_at} (injected feed death)",
                feed=self.feed,
                frame_id=died_at,
            )

    def check_crash(self, frame_id: int) -> None:
        if self.injector.crash_now(frame_id):
            self._count_fault("crash")
            raise ExecutionError(
                f"injected scan crash on feed {self.feed!r} at frame {frame_id}"
            )

    def reader_hook(self, frame):
        """``videosim`` per-frame hook (see :meth:`FaultInjector.reader_hook`)."""
        return self.injector.reader_hook(frame)
