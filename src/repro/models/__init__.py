"""Simulated model zoo.

The paper's pipelines are built from pretrained vision models (YOLOX /
YOLOv5 / YOLOv8 detectors, a colour classifier, a licence-plate reader,
re-identification features, the UPT human-object-interaction model, the
VideoChat MLLM).  Running those models requires GPUs and weights we do not
have, so every model here is an *oracle with noise*: it reads the synthetic
frame's ground truth, corrupts it with a seeded error model, and charges a
:class:`~repro.common.clock.CostProfile` worth of virtual milliseconds to the
pipeline's :class:`~repro.common.clock.SimClock`.

What the reproduction preserves is the *relative* cost and accuracy structure
that the paper's optimizer decisions and evaluation comparisons depend on.
"""

from repro.models.base import Detection, SimulatedModel, ModelRegistry
from repro.models.detector import GeneralObjectDetector, SpecializedDetector, BinaryClassifier
from repro.models.tracker import KalmanTracker, IoUTracker, Track
from repro.models.properties import (
    ColorModel,
    VehicleTypeModel,
    LicensePlateModel,
    FeatureVectorModel,
    DirectionEstimator,
    SpeedEstimator,
)
from repro.models.interaction import InteractionModel, ActionClassifier
from repro.models.framefilters import MotionFrameFilter, TextureFrameFilter
from repro.models.mllm import VideoChatSim
from repro.models.zoo import default_zoo, ModelZoo

__all__ = [
    "Detection",
    "SimulatedModel",
    "ModelRegistry",
    "GeneralObjectDetector",
    "SpecializedDetector",
    "BinaryClassifier",
    "KalmanTracker",
    "IoUTracker",
    "Track",
    "ColorModel",
    "VehicleTypeModel",
    "LicensePlateModel",
    "FeatureVectorModel",
    "DirectionEstimator",
    "SpeedEstimator",
    "InteractionModel",
    "ActionClassifier",
    "MotionFrameFilter",
    "TextureFrameFilter",
    "VideoChatSim",
    "ModelZoo",
    "default_zoo",
]
