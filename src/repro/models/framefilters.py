"""Cheap frame-level filters.

The paper's backend inserts inexpensive frame filters ahead of detectors to
discard frames that cannot contribute to the query result (§4.1, §4.4):

* a differencing-based motion filter that skips frames similar to the
  previous ones (the ``similar_to_prev`` filter of Figure 12), and
* texture/appearance filters that cheaply rule out the presence of a class
  ("no red on road" in Figure 11).

Both are simulated from ground truth with a small, configurable error rate.

Frame filters are evaluated by the scan scheduler's batch-level gate
(:class:`repro.backend.scheduler.FrameGate`), which memoises each model's
decision per frame so several queries sharing a filter pay for it once.
:func:`evaluate_frame_filter` is the single dispatch point for the two
filter protocols (``keep`` for filters, ``predict`` for binary
classifiers).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.clock import CostProfile, SimClock
from repro.common.rng import bernoulli, derive_rng, stable_uniform
from repro.models.base import SimulatedModel
from repro.videosim.video import Frame


def evaluate_frame_filter(model, frame: Frame, clock: Optional[SimClock] = None) -> bool:
    """Run any frame-level filter model; True means the frame is kept.

    Frame filters expose ``keep``; §4.4 binary classifiers expose
    ``predict``.  Both the pipeline's FrameFilterOp and the scan
    scheduler's gate dispatch through here.
    """
    if hasattr(model, "keep"):
        return bool(model.keep(frame, clock))
    return bool(model.predict(frame, clock))


class MotionFrameFilter(SimulatedModel):
    """Frame-differencing motion detector.

    A frame "has motion" when any ground-truth object moved more than
    ``min_displacement`` pixels since the previous inspected frame.  Static
    frames (parked cars only, empty road) are filtered out, which is safe
    for queries about moving objects.
    """

    def __init__(
        self,
        name: str = "motion_filter",
        min_displacement: float = 1.0,
        history_len: int = 1,
        cost_profile: CostProfile = CostProfile(base_ms=0.5),
        error_rate: float = 0.01,
        seed: int = 0,
    ) -> None:
        super().__init__(name, cost_profile, seed)
        self.min_displacement = min_displacement
        self.history_len = history_len
        self.error_rate = error_rate
        self._last_positions: Dict[int, tuple[float, float]] = {}

    def reset(self) -> None:
        self._last_positions = {}

    def keep(self, frame: Frame, clock: Optional[SimClock] = None) -> bool:
        """True when the frame should be kept (motion present)."""
        self.charge(clock)
        moved = False
        current: Dict[int, tuple[float, float]] = {}
        for inst in frame.instances:
            center = inst.bbox.center
            current[inst.object_id] = center
            prev = self._last_positions.get(inst.object_id)
            if prev is None:
                moved = True
                continue
            dx = center[0] - prev[0]
            dy = center[1] - prev[1]
            if (dx * dx + dy * dy) ** 0.5 >= self.min_displacement:
                moved = True
        self._last_positions = current
        rng = derive_rng(self.seed, self.name, frame.frame_id)
        if bernoulli(rng, self.error_rate):
            return not moved
        return moved


class TextureFrameFilter(SimulatedModel):
    """Cheap texture-based presence filter for one object class.

    Keeps a frame only when the class is (probably) present.  False
    negatives lose recall (the planner accounts for this when estimating a
    candidate DAG's F1); false positives just waste a little compute.
    """

    def __init__(
        self,
        name: str,
        target_class: str,
        cost_profile: CostProfile = CostProfile(base_ms=1.0),
        false_negative_rate: float = 0.03,
        false_positive_rate: float = 0.10,
        seed: int = 0,
    ) -> None:
        super().__init__(name, cost_profile, seed)
        self.target_class = target_class
        self.false_negative_rate = false_negative_rate
        self.false_positive_rate = false_positive_rate

    def keep(self, frame: Frame, clock: Optional[SimClock] = None) -> bool:
        """True when the frame should be kept (target class present)."""
        self.charge(clock)
        present = any(inst.class_name == self.target_class for inst in frame.instances)
        u = stable_uniform(self.seed, self.name, frame.frame_id)
        if present:
            return u >= self.false_negative_rate
        return u < self.false_positive_rate
