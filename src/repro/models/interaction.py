"""Simulated interaction and action models.

* :class:`InteractionModel` stands in for UPT (Zhang et al., 2022), the
  two-stage human-object-interaction detector the paper uses for the
  "person hitting a ball" query (Q6, §5.3) and the ``PersonBallInteraction``
  relation (Figure 4).
* :class:`ActionClassifier` predicts per-person actions (walking, standing,
  getting into a car, fallen, ...), used by action-based queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.clock import CostProfile, SimClock
from repro.common.rng import stable_choice, stable_uniform
from repro.models.base import Detection, SimulatedModel
from repro.videosim.entities import PERSON_ACTIONS
from repro.videosim.video import Frame


@dataclass(frozen=True)
class InteractionPrediction:
    """A predicted subject→object interaction on one frame."""

    subject: Detection
    object: Detection
    kind: str
    score: float


class InteractionModel(SimulatedModel):
    """UPT-like human-object-interaction model.

    Given a frame's person and object detections, the model scores every
    (person, object) pair and emits the interactions it believes are present.
    Truth comes from the frame's scripted
    :class:`~repro.videosim.entities.InteractionEvent` records; errors are
    per-pair false negatives and false positives.
    """

    def __init__(
        self,
        name: str = "upt",
        kinds: Sequence[str] = ("hit", "hold", "get_into", "collide"),
        cost_profile: CostProfile = CostProfile(base_ms=45.0, per_item_ms=2.0),
        false_negative_rate: float = 0.10,
        false_positive_rate: float = 0.01,
        seed: int = 0,
    ) -> None:
        super().__init__(name, cost_profile, seed)
        self.kinds = tuple(kinds)
        self.false_negative_rate = false_negative_rate
        self.false_positive_rate = false_positive_rate

    def _true_interaction(self, subject: Detection, obj: Detection, frame: Frame) -> Optional[str]:
        if subject.gt_object_id is None or obj.gt_object_id is None:
            return None
        inst = frame.instance_by_id(subject.gt_object_id)
        if inst is None:
            return None
        for kind, other_id, is_subject in inst.interactions:
            if is_subject and other_id == obj.gt_object_id and kind in self.kinds:
                return kind
        return None

    def predict(
        self,
        subjects: Sequence[Detection],
        objects: Sequence[Detection],
        frame: Frame,
        clock: Optional[SimClock] = None,
    ) -> List[InteractionPrediction]:
        """Predict interactions between every subject/object pair."""
        n_pairs = len(subjects) * len(objects)
        self.charge(clock, n_items=n_pairs)
        out: List[InteractionPrediction] = []
        for s in subjects:
            for o in objects:
                if s is o:
                    continue
                key = (s.gt_object_id, o.gt_object_id, frame.frame_id)
                truth = self._true_interaction(s, o, frame)
                if truth is not None:
                    if stable_uniform(self.seed, self.name, "fn", *key) >= self.false_negative_rate:
                        out.append(InteractionPrediction(s, o, truth, score=0.85))
                else:
                    if stable_uniform(self.seed, self.name, "fp", *key) < self.false_positive_rate:
                        kind = stable_choice(list(self.kinds), self.seed, self.name, "fpk", *key)
                        out.append(InteractionPrediction(s, o, kind, score=0.55))
        return out


class ActionClassifier(SimulatedModel):
    """Per-person action recognition (walking / standing / crossing / ...)."""

    def __init__(
        self,
        name: str = "action_recognition",
        cost_profile: CostProfile = CostProfile(base_ms=8.0, per_item_ms=12.0),
        error_rate: float = 0.08,
        seed: int = 0,
    ) -> None:
        super().__init__(name, cost_profile, seed)
        self.error_rate = error_rate
        self.vocabulary: Tuple[str, ...] = PERSON_ACTIONS + ("getting_into_car", "fallen", "hitting")

    def predict(self, detection: Detection, frame: Frame, clock: Optional[SimClock] = None) -> str:
        """Predict the action of one person detection."""
        self.charge(clock)
        truth = "standing"
        if detection.gt_object_id is not None:
            inst = frame.instance_by_id(detection.gt_object_id)
            if inst is not None and inst.action:
                truth = inst.action
        key = (detection.gt_object_id, frame.frame_id)
        if stable_uniform(self.seed, self.name, "err", *key) < self.error_rate:
            wrong = [a for a in self.vocabulary if a != truth]
            return stable_choice(wrong, self.seed, self.name, "wrong", *key)
        return truth

    def predict_batch(self, detections: Sequence[Detection], frame: Frame, clock: Optional[SimClock] = None) -> List[str]:
        self.charge(clock, n_items=len(detections))
        return [self.predict(d, frame, clock=None) for d in detections]
