"""Object trackers: associate detections across frames into tracks.

Two trackers are provided, mirroring the ones the paper uses:

* :class:`KalmanTracker` — a SORT-style tracker (Kalman prediction +
  Hungarian assignment on IoU).  This is the "lightweight tracker based on
  the Kalman filter" of §4.2 that enables object-level computation reuse.
* :class:`IoUTracker` — a simpler greedy-IoU tracker standing in for the
  "nor-fair" tracker that EVA's ``EXTRACT_OBJECT`` uses in §5.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.common.clock import CostProfile, SimClock
from repro.common.geometry import BBox, iou_matrix
from repro.models.base import Detection, SimulatedModel
from repro.models.kalman import KalmanBoxFilter


@dataclass
class Track:
    """One tracked object: a stable id plus its per-frame detections."""

    track_id: int
    class_name: str
    detections: List[Detection] = field(default_factory=list)
    misses: int = 0
    #: The Kalman filter tracking this object (None for trackers without a
    #: motion model, e.g. :class:`IoUTracker`).
    kalman: Optional[KalmanBoxFilter] = None

    @property
    def last_detection(self) -> Detection:
        return self.detections[-1]

    @property
    def last_bbox(self) -> BBox:
        return self.detections[-1].bbox

    @property
    def last_frame_id(self) -> int:
        return self.detections[-1].frame_id

    @property
    def length(self) -> int:
        return len(self.detections)

    def bbox_history(self, n: int) -> List[BBox]:
        """The last ``n`` boxes, oldest first."""
        return [d.bbox for d in self.detections[-n:]]

    # -- stride-sampling support --------------------------------------------
    def velocity_per_frame(self) -> tuple[float, float]:
        """Centre velocity in pixels *per frame* (not per tracker update).

        Derived from the last two recorded detections and their frame ids,
        so it stays correct when the tracker is only updated on sampled
        frames (the Kalman state's velocity is per *update* and would be
        ``stride``× too large).  Falls back to the Kalman velocity, then to
        zero, when the track is too short.
        """
        if len(self.detections) >= 2:
            prev, last = self.detections[-2], self.detections[-1]
            dt = max(last.frame_id - prev.frame_id, 1)
            (px, py), (lx, ly) = prev.bbox.center, last.bbox.center
            return ((lx - px) / dt, (ly - py) / dt)
        if self.kalman is not None:
            return self.kalman.velocity
        return (0.0, 0.0)

    def interpolate(
        self,
        frame_id: int,
        future_bbox: Optional[BBox] = None,
        future_frame_id: Optional[int] = None,
    ) -> BBox:
        """The track's box on ``frame_id`` without a detection there.

        With a known future endpoint (the matched detection on the next
        sampled frame) the box is linearly interpolated between the last
        detection and that endpoint — this is how the scan scheduler fills
        the frames a raised stride skipped.  Without one it extrapolates:
        constant per-frame velocity from the detection history, or the
        (non-mutating) Kalman prediction for single-detection tracks — this
        is how predicted positions are validated against fresh detections.
        """
        last = self.last_detection
        if frame_id <= last.frame_id:
            return last.bbox
        if future_bbox is not None and future_frame_id is not None and future_frame_id > last.frame_id:
            t = min((frame_id - last.frame_id) / (future_frame_id - last.frame_id), 1.0)
            a, b = last.bbox, future_bbox
            return BBox(
                a.x1 + (b.x1 - a.x1) * t,
                a.y1 + (b.y1 - a.y1) * t,
                a.x2 + (b.x2 - a.x2) * t,
                a.y2 + (b.y2 - a.y2) * t,
            )
        steps = frame_id - last.frame_id
        if len(self.detections) < 2 and self.kalman is not None:
            return self.kalman.predict_ahead(steps)
        vx, vy = self.velocity_per_frame()
        return self.last_bbox.translated(vx * steps, vy * steps)


class KalmanTracker(SimulatedModel):
    """SORT-style multi-object tracker.

    Detections are associated to existing tracks by solving a linear
    assignment problem on the IoU between Kalman-predicted boxes and new
    detections.  Unmatched detections start new tracks; tracks that go
    unmatched for ``max_misses`` consecutive frames are retired.
    """

    def __init__(
        self,
        name: str = "kalman_tracker",
        iou_threshold: float = 0.2,
        max_misses: int = 15,
        cost_profile: CostProfile = CostProfile(base_ms=0.5, per_item_ms=0.05),
        seed: int = 0,
    ) -> None:
        super().__init__(name, cost_profile, seed)
        self.iou_threshold = iou_threshold
        self.max_misses = max_misses
        self.reset()

    def reset(self) -> None:
        """Forget all state (used when a pipeline starts a new video)."""
        self._next_track_id = 1
        self._filters: Dict[int, KalmanBoxFilter] = {}
        self._tracks: Dict[int, Track] = {}

    # -- association --------------------------------------------------------
    def _associate(self, predicted: Dict[int, BBox], detections: Sequence[Detection]):
        track_ids = list(predicted)
        if not track_ids or not detections:
            return {}, list(range(len(detections))), track_ids
        ious = iou_matrix([predicted[t] for t in track_ids], [d.bbox for d in detections])
        row, col = linear_sum_assignment(-ious)
        matches: Dict[int, int] = {}
        matched_dets = set()
        matched_tracks = set()
        for r, c in zip(row, col):
            if ious[r, c] >= self.iou_threshold:
                matches[track_ids[r]] = int(c)
                matched_dets.add(int(c))
                matched_tracks.add(track_ids[r])
        unmatched_dets = [i for i in range(len(detections)) if i not in matched_dets]
        unmatched_tracks = [t for t in track_ids if t not in matched_tracks]
        return matches, unmatched_dets, unmatched_tracks

    # -- public API ----------------------------------------------------------
    def update(self, detections: Sequence[Detection], clock: Optional[SimClock] = None) -> List[Detection]:
        """Assign track ids to this frame's detections and return them.

        The returned detections are copies with ``track_id`` filled in,
        in the same order as the input.
        """
        self.charge(clock, n_items=len(detections))
        predicted = {tid: f.predict() for tid, f in self._filters.items()}
        matches, unmatched_dets, unmatched_tracks = self._associate(predicted, detections)

        out: List[Optional[Detection]] = [None] * len(detections)
        for tid, det_idx in matches.items():
            det = detections[det_idx].with_track(tid)
            self._filters[tid].update(det.bbox)
            self._tracks[tid].detections.append(det)
            self._tracks[tid].misses = 0
            out[det_idx] = det

        for det_idx in unmatched_dets:
            det = detections[det_idx]
            tid = self._next_track_id
            self._next_track_id += 1
            self._filters[tid] = KalmanBoxFilter(det.bbox)
            tracked = det.with_track(tid)
            self._tracks[tid] = Track(
                track_id=tid,
                class_name=det.class_name,
                detections=[tracked],
                kalman=self._filters[tid],
            )
            out[det_idx] = tracked

        for tid in unmatched_tracks:
            self._tracks[tid].misses += 1
            if self._tracks[tid].misses > self.max_misses:
                del self._tracks[tid]
                del self._filters[tid]

        return [d for d in out if d is not None]

    @property
    def active_tracks(self) -> List[Track]:
        return list(self._tracks.values())

    def track(self, track_id: int) -> Optional[Track]:
        return self._tracks.get(track_id)


class IoUTracker(SimulatedModel):
    """A greedy-IoU tracker (stand-in for the nor-fair tracker used by EVA).

    No motion model: each detection is matched to the track whose last box
    overlaps it the most.  Slightly cheaper and slightly less robust than
    :class:`KalmanTracker`.
    """

    def __init__(
        self,
        name: str = "norfair_tracker",
        iou_threshold: float = 0.25,
        max_misses: int = 10,
        cost_profile: CostProfile = CostProfile(base_ms=0.3, per_item_ms=0.03),
        seed: int = 0,
    ) -> None:
        super().__init__(name, cost_profile, seed)
        self.iou_threshold = iou_threshold
        self.max_misses = max_misses
        self.reset()

    def reset(self) -> None:
        self._next_track_id = 1
        self._tracks: Dict[int, Track] = {}

    def update(self, detections: Sequence[Detection], clock: Optional[SimClock] = None) -> List[Detection]:
        """Assign track ids greedily by IoU with each track's last box."""
        self.charge(clock, n_items=len(detections))
        track_ids = list(self._tracks)
        last_boxes = [self._tracks[t].last_bbox for t in track_ids]
        ious = iou_matrix(last_boxes, [d.bbox for d in detections])
        assigned_tracks: set[int] = set()
        assigned_dets: set[int] = set()
        out: List[Optional[Detection]] = [None] * len(detections)

        # Greedy: repeatedly take the best remaining (track, detection) pair.
        if ious.size:
            order = np.dstack(np.unravel_index(np.argsort(-ious, axis=None), ious.shape))[0]
            for r, c in order:
                r, c = int(r), int(c)
                if ious[r, c] < self.iou_threshold:
                    break
                tid = track_ids[r]
                if tid in assigned_tracks or c in assigned_dets:
                    continue
                det = detections[c].with_track(tid)
                self._tracks[tid].detections.append(det)
                self._tracks[tid].misses = 0
                assigned_tracks.add(tid)
                assigned_dets.add(c)
                out[c] = det

        for i, det in enumerate(detections):
            if i in assigned_dets:
                continue
            tid = self._next_track_id
            self._next_track_id += 1
            tracked = det.with_track(tid)
            self._tracks[tid] = Track(track_id=tid, class_name=det.class_name, detections=[tracked])
            out[i] = tracked

        for tid in track_ids:
            if tid not in assigned_tracks:
                self._tracks[tid].misses += 1
                if self._tracks[tid].misses > self.max_misses:
                    del self._tracks[tid]
        # Output preserves the input order (like KalmanTracker), which lets
        # callers align raw and tracked detections positionally.
        return [d for d in out if d is not None]

    @property
    def active_tracks(self) -> List[Track]:
        return list(self._tracks.values())

    def track(self, track_id: int) -> Optional[Track]:
        return self._tracks.get(track_id)
