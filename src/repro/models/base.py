"""Base classes for simulated models and the model registry."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterator, Optional

from repro.common.clock import CostProfile, SimClock
from repro.common.errors import ModelError
from repro.common.geometry import BBox


@dataclass(frozen=True)
class Detection:
    """One detected object on one frame.

    ``gt_object_id`` links the detection back to the ground-truth entity it
    came from; it is how downstream *simulated* property models recover the
    truth they then perturb, and it is never consulted by the query systems
    themselves (they only see class/bbox/score/track ids).  False-positive
    detections carry ``gt_object_id=None``.
    """

    class_name: str
    bbox: BBox
    score: float
    frame_id: int
    gt_object_id: Optional[int] = None
    track_id: Optional[int] = None

    def with_track(self, track_id: int) -> "Detection":
        return replace(self, track_id=track_id)


class SimulatedModel:
    """Common behaviour of all simulated models.

    Subclasses implement the actual oracle-with-noise logic; this base class
    owns the name, the cost profile, and cost charging.  A model may be used
    without a clock (e.g. in unit tests) — charging is then a no-op.
    """

    def __init__(self, name: str, cost_profile: CostProfile, seed: int = 0) -> None:
        self.name = name
        self.cost_profile = cost_profile
        self.seed = seed

    def charge(self, clock: Optional[SimClock], n_items: int = 1) -> float:
        """Charge one invocation processing ``n_items`` items."""
        if clock is None:
            return 0.0
        return clock.charge_profile(self.name, self.cost_profile, n_items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} cost={self.cost_profile}>"


class ModelRegistry:
    """Name → model-factory registry (the paper's ``vqpy.register`` §4.4).

    Users register custom models (specialized NNs, binary classifiers, frame
    filters) under a name, then refer to that name from ``VObj`` definitions.
    Built-in models are pre-registered by :mod:`repro.models.zoo`.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., SimulatedModel]] = {}
        self._metadata: Dict[str, Dict[str, Any]] = {}

    def register(self, name: str, factory: Callable[..., SimulatedModel], **metadata: Any) -> None:
        """Register ``factory`` under ``name``; re-registration overwrites."""
        if not callable(factory):
            raise ModelError(f"factory for {name!r} is not callable")
        self._factories[name] = factory
        self._metadata[name] = dict(metadata)

    def create(self, name: str, **kwargs: Any) -> SimulatedModel:
        if name not in self._factories:
            raise ModelError(f"no model registered under {name!r}; known: {sorted(self._factories)}")
        return self._factories[name](**kwargs)

    def metadata(self, name: str) -> Dict[str, Any]:
        if name not in self._metadata:
            raise ModelError(f"no model registered under {name!r}")
        return dict(self._metadata[name])

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._factories))

    def names(self) -> list[str]:
        return sorted(self._factories)
