"""A VideoChat-like multimodal-LLM simulator.

§5.3 compares VQPy against VideoChat-7B and VideoChat-13B.  Running an MLLM
is out of scope here, so :class:`VideoChatSim` models the three observable
characteristics the comparison rests on:

1. **Latency** — a per-frame embedding pre-computation plus a per-query
   decoding cost, both far larger than a detector pipeline (Table 5).
2. **GPU memory** — grows with clip length; the 13B variant does not fit a
   40 GB GPU without a low-resource mode, which further slows it (Table 5's
   footnote), and clips longer than ~540 frames at 1080p exceed 40 GB, which
   is why the paper splits the 10-minute video into one-second clips.
3. **Accuracy** — a weakly discriminative channel for boolean questions
   (F1 ≈ 0.4 in Table 6), inflated and heavy-tailed answers for aggregation
   questions (Table 7), and a fraction of unparseable responses.

The simulator is *fed the ground truth* of the clip being asked about and
corrupts it; the experiments compute that ground truth from the synthetic
video, so accuracy scores are measured exactly as the paper measures them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.clock import SimClock
from repro.common.errors import ModelError
from repro.common.rng import derive_rng
from repro.videosim.video import SyntheticVideo


@dataclass(frozen=True)
class MLLMVariantProfile:
    """Cost/accuracy profile of one VideoChat variant."""

    name: str
    weights_gb: float
    embed_ms_per_frame: float
    boolean_ms_per_frame: float
    aggregation_ms_per_frame: float
    image_ms_per_frame: float
    #: P(answer "yes" | clip truly positive) and P(answer "yes" | negative).
    p_yes_if_true: float
    p_yes_if_false: float
    #: Fraction of responses too unclear to parse (dropped from accuracy).
    unparseable_rate: float
    #: Multiplicative inflation applied to aggregation answers.
    count_inflation: float
    #: Probability of an extreme hallucinated count, and its magnitude range.
    outlier_rate: float
    outlier_range: tuple[float, float]


#: Profiles calibrated to the paper's Tables 5–7 (T4/A100-class numbers).
VIDEOCHAT_7B = MLLMVariantProfile(
    name="videochat-7b",
    weights_gb=14.0,
    embed_ms_per_frame=38.4,
    boolean_ms_per_frame=79.0,
    aggregation_ms_per_frame=127.0,
    image_ms_per_frame=3500.0,
    p_yes_if_true=0.55,
    p_yes_if_false=0.35,
    unparseable_rate=0.40,
    count_inflation=4.5,
    outlier_rate=0.04,
    outlier_range=(60.0, 420.0),
)

# The 13B profile's raw costs are calibrated so that, after the low-resource
# slowdown the paper had to enable (8-bit weights + CPU offload), the
# per-frame numbers land near Table 5's VideoChat-13B* column.
VIDEOCHAT_13B = MLLMVariantProfile(
    name="videochat-13b",
    weights_gb=26.0,
    embed_ms_per_frame=670.0,
    boolean_ms_per_frame=390.0,
    aggregation_ms_per_frame=530.0,
    image_ms_per_frame=5100.0,
    p_yes_if_true=0.57,
    p_yes_if_false=0.36,
    unparseable_rate=0.32,
    count_inflation=3.0,
    outlier_rate=0.03,
    outlier_range=(40.0, 110.0),
)

#: GPU memory (GB) needed per frame of 1080p video held as embeddings.
_EMBED_GB_PER_MEGAPIXEL_FRAME = 0.036


class VideoChatSim:
    """Simulated VideoChat instance bound to one GPU memory budget."""

    def __init__(
        self,
        profile: MLLMVariantProfile = VIDEOCHAT_7B,
        gpu_memory_gb: float = 40.0,
        low_resource: bool = False,
        seed: int = 0,
    ) -> None:
        self.profile = profile
        self.gpu_memory_gb = gpu_memory_gb
        self.low_resource = low_resource
        self.seed = seed
        self._loaded_clip: Optional[SyntheticVideo] = None

    # -- memory model --------------------------------------------------------
    def weights_memory_gb(self) -> float:
        """Resident weight memory (8-bit quantised in low-resource mode)."""
        return self.profile.weights_gb * (0.5 if self.low_resource else 1.0)

    def clip_memory_gb(self, video: SyntheticVideo) -> float:
        """Embedding memory for a clip (grows linearly with frame count)."""
        per_frame = _EMBED_GB_PER_MEGAPIXEL_FRAME * video.spec.megapixels
        factor = 0.5 if self.low_resource else 1.0
        return per_frame * video.num_frames * factor

    def total_memory_gb(self, video: SyntheticVideo) -> float:
        return self.weights_memory_gb() + self.clip_memory_gb(video)

    def fits(self, video: SyntheticVideo) -> bool:
        return self.total_memory_gb(video) <= self.gpu_memory_gb

    # -- latency model ---------------------------------------------------------
    def _slowdown(self) -> float:
        """Low-resource mode offloads part of the embedding to the CPU."""
        return 1.6 if self.low_resource else 1.0

    def precompute(self, video: SyntheticVideo, clock: Optional[SimClock] = None) -> None:
        """Load the clip and compute its embedding (the "Pre" row of Table 5)."""
        if not self.fits(video):
            raise ModelError(
                f"{self.profile.name} needs {self.total_memory_gb(video):.1f} GB for "
                f"{video.num_frames} frames but only {self.gpu_memory_gb:.0f} GB is available; "
                "split the video into shorter clips or enable low_resource mode"
            )
        if clock is not None:
            clock.charge(
                f"{self.profile.name}:embed",
                self.profile.embed_ms_per_frame * self._slowdown() * video.num_frames,
            )
        self._loaded_clip = video

    def _require_loaded(self) -> SyntheticVideo:
        if self._loaded_clip is None:
            raise ModelError("call precompute() with a clip before asking questions")
        return self._loaded_clip

    # -- question answering ----------------------------------------------------
    def answer_boolean(self, question_id: str, truth: bool, clock: Optional[SimClock] = None) -> Optional[bool]:
        """Answer a yes/no question about the loaded clip.

        Returns ``None`` when the (simulated) natural-language response could
        not be parsed into a yes/no answer — the paper drops those data
        points from its accuracy computation.
        """
        video = self._require_loaded()
        if clock is not None:
            clock.charge(
                f"{self.profile.name}:boolean",
                self.profile.boolean_ms_per_frame * self._slowdown() * video.num_frames,
            )
        rng = derive_rng(self.seed, self.profile.name, "bool", question_id, video.spec.name)
        if rng.random() < self.profile.unparseable_rate * 0.3:
            return None
        p_yes = self.profile.p_yes_if_true if truth else self.profile.p_yes_if_false
        return bool(rng.random() < p_yes)

    def answer_count(self, question_id: str, truth: float, clock: Optional[SimClock] = None) -> Optional[float]:
        """Answer an aggregation ("how many on average") question.

        Answers are inflated relative to the truth and occasionally wildly
        hallucinated; a sizeable fraction is unparseable (returns ``None``).
        """
        video = self._require_loaded()
        if clock is not None:
            clock.charge(
                f"{self.profile.name}:aggregation",
                self.profile.aggregation_ms_per_frame * self._slowdown() * video.num_frames,
            )
        rng = derive_rng(self.seed, self.profile.name, "count", question_id, video.spec.name)
        if rng.random() < self.profile.unparseable_rate:
            return None
        if rng.random() < self.profile.outlier_rate:
            lo, hi = self.profile.outlier_range
            return float(rng.uniform(lo, hi))
        inflated = truth * self.profile.count_inflation + rng.uniform(0.5, 3.0)
        return float(max(inflated, 0.0))

    def answer_image_boolean(self, question_id: str, image: SyntheticVideo, truth: bool, clock: Optional[SimClock] = None) -> Optional[bool]:
        """Answer a yes/no question about a single image (the Q6 V-COCO setting)."""
        if clock is not None:
            clock.charge(
                f"{self.profile.name}:image",
                self.profile.image_ms_per_frame * self._slowdown(),
            )
        rng = derive_rng(self.seed, self.profile.name, "image", question_id, image.spec.name)
        if rng.random() < self.profile.unparseable_rate * 0.2:
            return None
        p_yes = self.profile.p_yes_if_true if truth else self.profile.p_yes_if_false
        return bool(rng.random() < p_yes)
