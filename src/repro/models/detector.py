"""Simulated object detectors, specialized NNs, and binary classifiers.

Detectors observe a frame's ground truth and return noisy
:class:`~repro.models.base.Detection` lists: true objects can be missed
(probability depends on object size and the model's quality tier), detection
boxes are jittered, confidence scores are drawn from quality-dependent
distributions, and occasional false positives are injected.

Three tiers mirror the families the paper registers in its library (§4.4):

* :class:`GeneralObjectDetector` — expensive, accurate, detects all classes
  (the "yolox" / "yolov8m" general detectors);
* :class:`SpecializedDetector` — cheap, detects one class (optionally only
  objects with a given attribute value, e.g. a red-car detector);
* :class:`BinaryClassifier` — cheapest, answers "does the frame contain an
  object of interest at all" and is used as an early frame filter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.clock import CostProfile, SimClock
from repro.common.geometry import BBox
from repro.common.rng import bernoulli, derive_rng
from repro.models.base import Detection, SimulatedModel
from repro.videosim.entities import GTInstance
from repro.videosim.video import Frame


def _jitter_bbox(bbox: BBox, rng, sigma: float, width: float, height: float) -> BBox:
    """Perturb box corners with Gaussian noise, clipped to the frame."""
    if sigma <= 0:
        return bbox
    dx1, dy1, dx2, dy2 = rng.normal(0.0, sigma, size=4)
    x1 = min(bbox.x1 + dx1, bbox.x2 + dx2 - 1.0)
    y1 = min(bbox.y1 + dy1, bbox.y2 + dy2 - 1.0)
    return BBox(x1, y1, max(bbox.x2 + dx2, x1 + 1.0), max(bbox.y2 + dy2, y1 + 1.0)).clipped(width, height)


class GeneralObjectDetector(SimulatedModel):
    """A general-purpose multi-class detector (the paper's YOLOX / YOLOv8).

    Parameters
    ----------
    classes:
        Object classes the detector reports.  Ground-truth objects of other
        classes are invisible to it.
    miss_rate:
        Per-object probability of a missed detection (drawn deterministically
        per (model, object, frame)).
    false_positive_rate:
        Per-frame probability of emitting one spurious detection.
    bbox_sigma:
        Standard deviation (pixels) of box-corner noise.
    """

    def __init__(
        self,
        name: str = "yolox",
        classes: Sequence[str] = ("car", "bus", "truck", "person", "ball", "bicycle", "bag"),
        cost_profile: CostProfile = CostProfile(base_ms=30.0, per_item_ms=0.5),
        miss_rate: float = 0.02,
        false_positive_rate: float = 0.01,
        bbox_sigma: float = 2.0,
        score_range: tuple[float, float] = (0.75, 0.99),
        seed: int = 0,
    ) -> None:
        super().__init__(name, cost_profile, seed)
        self.classes = tuple(classes)
        self.miss_rate = miss_rate
        self.false_positive_rate = false_positive_rate
        self.bbox_sigma = bbox_sigma
        self.score_range = score_range

    # -- helpers -----------------------------------------------------------
    def _visible(self, inst: GTInstance) -> bool:
        return inst.class_name in self.classes

    def _detect_instance(self, inst: GTInstance, frame: Frame, rng) -> Optional[Detection]:
        # Small objects are easier to miss: scale the miss rate up for boxes
        # under ~40px on a side.
        size_penalty = 1.0 if min(inst.bbox.width, inst.bbox.height) >= 40 else 2.5
        if bernoulli(rng, self.miss_rate * size_penalty):
            return None
        bbox = _jitter_bbox(inst.bbox, rng, self.bbox_sigma, frame.width, frame.height)
        lo, hi = self.score_range
        score = float(rng.uniform(lo, hi))
        return Detection(
            class_name=inst.class_name,
            bbox=bbox,
            score=score,
            frame_id=frame.frame_id,
            gt_object_id=inst.object_id,
        )

    def _false_positive(self, frame: Frame) -> Optional[Detection]:
        rng = derive_rng(self.seed, self.name, "fp", frame.frame_id)
        if not bernoulli(rng, self.false_positive_rate):
            return None
        cls = str(rng.choice(list(self.classes)))
        w = float(rng.uniform(30, 120))
        h = float(rng.uniform(30, 120))
        cx = float(rng.uniform(w, frame.width - w))
        cy = float(rng.uniform(h, frame.height - h))
        return Detection(
            class_name=cls,
            bbox=BBox.from_center(cx, cy, w, h),
            score=float(rng.uniform(0.5, 0.75)),
            frame_id=frame.frame_id,
            gt_object_id=None,
        )

    # -- public API ----------------------------------------------------------
    def detect(self, frame: Frame, clock: Optional[SimClock] = None) -> List[Detection]:
        """Detect all visible objects on ``frame``."""
        candidates = [inst for inst in frame.instances if self._visible(inst)]
        self.charge(clock, n_items=len(candidates))
        # One random stream per (model, frame); candidate order is
        # deterministic so results stay reproducible.
        rng = derive_rng(self.seed, self.name, "det", frame.frame_id)
        detections = [d for d in (self._detect_instance(inst, frame, rng) for inst in candidates) if d is not None]
        fp = self._false_positive(frame)
        if fp is not None:
            detections.append(fp)
        return detections


class SpecializedDetector(GeneralObjectDetector):
    """A cheap detector specialised to one class (and optionally one attribute).

    This models the "specialized NNs" of §4.4 — e.g. a ``RedCarDetection``
    network registered on the ``RedCar`` VObj.  It is roughly 4× cheaper than
    the general detector but noisier, which is exactly the trade-off the
    planner profiles when choosing between execution paths.
    """

    def __init__(
        self,
        name: str,
        target_class: str,
        attribute: Optional[str] = None,
        attribute_value: Optional[object] = None,
        cost_profile: CostProfile = CostProfile(base_ms=8.0, per_item_ms=0.3),
        miss_rate: float = 0.08,
        false_positive_rate: float = 0.03,
        bbox_sigma: float = 4.0,
        score_range: tuple[float, float] = (0.6, 0.95),
        seed: int = 0,
    ) -> None:
        super().__init__(
            name=name,
            classes=(target_class,),
            cost_profile=cost_profile,
            miss_rate=miss_rate,
            false_positive_rate=false_positive_rate,
            bbox_sigma=bbox_sigma,
            score_range=score_range,
            seed=seed,
        )
        self.target_class = target_class
        self.attribute = attribute
        self.attribute_value = attribute_value

    def _visible(self, inst: GTInstance) -> bool:
        if inst.class_name != self.target_class:
            return False
        if self.attribute is None:
            return True
        return inst.attribute(self.attribute) == self.attribute_value


class BinaryClassifier(SimulatedModel):
    """Frame-level presence classifier ("is there a red car on the road?").

    This models §4.4's binary classifiers used to discard frames early.
    The answer is derived from ground truth with configurable false-negative
    and false-positive rates.
    """

    def __init__(
        self,
        name: str,
        target_class: str,
        attribute: Optional[str] = None,
        attribute_value: Optional[object] = None,
        cost_profile: CostProfile = CostProfile(base_ms=2.0),
        false_negative_rate: float = 0.04,
        false_positive_rate: float = 0.08,
        seed: int = 0,
    ) -> None:
        super().__init__(name, cost_profile, seed)
        self.target_class = target_class
        self.attribute = attribute
        self.attribute_value = attribute_value
        self.false_negative_rate = false_negative_rate
        self.false_positive_rate = false_positive_rate

    def _matches(self, inst: GTInstance) -> bool:
        if inst.class_name != self.target_class:
            return False
        if self.attribute is None:
            return True
        return inst.attribute(self.attribute) == self.attribute_value

    def predict(self, frame: Frame, clock: Optional[SimClock] = None) -> bool:
        """True when the frame (probably) contains a target object."""
        self.charge(clock)
        truth = any(self._matches(inst) for inst in frame.instances)
        rng = derive_rng(self.seed, self.name, "bin", frame.frame_id)
        if truth:
            return not bernoulli(rng, self.false_negative_rate)
        return bernoulli(rng, self.false_positive_rate)
