"""The built-in model zoo.

VQPy's library ships a model zoo of detectors, trackers, and property models
that VObj definitions refer to by name ("yolox", "color_detect", "upt", ...).
:func:`default_zoo` returns a registry pre-populated with simulated versions
of every model the paper's queries use, along with profiling metadata
(relative cost tier and nominal accuracy) that the planner consults when it
generates and compares alternative DAGs (§4.3–§4.4).
"""

from __future__ import annotations

from functools import partial
from typing import Any, Dict

from repro.common.clock import CostProfile
from repro.models.base import ModelRegistry, SimulatedModel
from repro.models.detector import BinaryClassifier, GeneralObjectDetector, SpecializedDetector
from repro.models.framefilters import MotionFrameFilter, TextureFrameFilter
from repro.models.interaction import ActionClassifier, InteractionModel
from repro.models.properties import (
    ColorModel,
    DirectionEstimator,
    FeatureVectorModel,
    LicensePlateModel,
    SpeedEstimator,
    VehicleTypeModel,
)
from repro.models.tracker import IoUTracker, KalmanTracker


class ModelZoo(ModelRegistry):
    """A :class:`ModelRegistry` with instance caching.

    Pipelines repeatedly ask for the same model by name; the zoo caches one
    instance per (name, kwargs) so stateful models (trackers) keep their
    state across operator calls within a pipeline, while distinct pipelines
    can request fresh instances via ``fresh=True``.
    """

    def __init__(self) -> None:
        super().__init__()
        self._instances: Dict[str, SimulatedModel] = {}

    def get(self, name: str, fresh: bool = False, **kwargs: Any) -> SimulatedModel:
        """Return a (possibly cached) instance of the named model."""
        key = name if not kwargs else f"{name}:{sorted(kwargs.items())!r}"
        if fresh or key not in self._instances:
            instance = self.create(name, **kwargs)
            if fresh:
                return instance
            self._instances[key] = instance
        return self._instances[key]

    def clear_instances(self) -> None:
        self._instances.clear()


#: Metadata keys used by the planner: ``kind`` (detector / tracker / property
#: / filter / classifier / interaction), ``cost_tier`` (1 = cheapest), and
#: ``nominal_accuracy`` (used before canary profiling refines it).


# -- picklable factories ------------------------------------------------------
# Registered factories travel with the registry into ExecutionContext, so
# they must pickle for shard-parallel workers (staticcheck SC303): simple
# seeded constructions are module-level functions partially applied over the
# zoo seed rather than lambdas.
def _make_kalman_tracker(seed: int, **kw: Any) -> KalmanTracker:
    return KalmanTracker(seed=seed, **kw)


def _make_iou_tracker(seed: int, **kw: Any) -> IoUTracker:
    return IoUTracker(seed=seed, **kw)


def _make_color_model(seed: int, **kw: Any) -> ColorModel:
    return ColorModel(seed=seed, **kw)


def _make_vehicle_type_model(seed: int, **kw: Any) -> VehicleTypeModel:
    return VehicleTypeModel(seed=seed, **kw)


def _make_license_plate_model(seed: int, **kw: Any) -> LicensePlateModel:
    return LicensePlateModel(seed=seed, **kw)


def _make_feature_vector_model(seed: int, **kw: Any) -> FeatureVectorModel:
    return FeatureVectorModel(seed=seed, **kw)


def _make_direction_estimator(seed: int, **kw: Any) -> DirectionEstimator:
    return DirectionEstimator(seed=seed, **kw)


def _make_speed_estimator(seed: int, **kw: Any) -> SpeedEstimator:
    return SpeedEstimator(seed=seed, **kw)


def _make_action_classifier(seed: int, **kw: Any) -> ActionClassifier:
    return ActionClassifier(seed=seed, **kw)


def _make_interaction_model(seed: int, **kw: Any) -> InteractionModel:
    return InteractionModel(seed=seed, **kw)


def _make_motion_filter(seed: int, **kw: Any) -> MotionFrameFilter:
    return MotionFrameFilter(seed=seed, **kw)


def _make_yolox(seed: int, **kw: Any) -> GeneralObjectDetector:
    return GeneralObjectDetector(name="yolox", seed=seed, **kw)


def _make_yolov8m(seed: int, **kw: Any) -> GeneralObjectDetector:
    return GeneralObjectDetector(name="yolov8m", seed=seed + 1, **kw)


def _make_dataset_tracks(seed: int, **kw: Any) -> GeneralObjectDetector:
    return GeneralObjectDetector(
        name="dataset_tracks",
        cost_profile=CostProfile(base_ms=0.5, per_item_ms=0.05),
        miss_rate=0.0,
        false_positive_rate=0.0,
        bbox_sigma=0.0,
        score_range=(0.98, 0.999),
        seed=seed + 7,
        **kw,
    )


def _make_yolov5s(seed: int, **kw: Any) -> GeneralObjectDetector:
    return GeneralObjectDetector(
        name="yolov5s",
        cost_profile=GeneralObjectDetector("tmp").cost_profile.scaled(0.25),
        miss_rate=0.06,
        seed=seed + 2,
        **kw,
    )


def _make_direction_classifier(seed: int, **kw: Any) -> DirectionEstimator:
    return DirectionEstimator(
        name="direction_classifier", cost_profile=CostProfile(base_ms=8.0), seed=seed, **kw
    )


def _make_texture_filter(seed: int, target_class: str, **kw: Any) -> TextureFrameFilter:
    return TextureFrameFilter(
        name=f"texture_{target_class}_filter", target_class=target_class, seed=seed, **kw
    )


def _make_red_car_detector(seed: int, **kw: Any) -> SpecializedDetector:
    return SpecializedDetector(
        name="red_car_detector",
        target_class="car",
        attribute="color",
        attribute_value="red",
        seed=seed,
        **kw,
    )


def _make_no_red_on_road(seed: int, **kw: Any) -> BinaryClassifier:
    return BinaryClassifier(
        name="no_red_on_road",
        target_class="car",
        attribute="color",
        attribute_value="red",
        seed=seed,
        **kw,
    )


def _make_person_presence(seed: int, **kw: Any) -> BinaryClassifier:
    return BinaryClassifier(name="person_presence", target_class="person", seed=seed, **kw)


def _make_ball_presence(seed: int, **kw: Any) -> BinaryClassifier:
    return BinaryClassifier(name="ball_presence", target_class="ball", seed=seed, **kw)


def default_zoo(seed: int = 0) -> ModelZoo:
    """Build the default model zoo with every built-in model registered."""
    zoo = ModelZoo()

    # -- general detectors ---------------------------------------------------
    zoo.register(
        "yolox",
        partial(_make_yolox, seed),
        kind="detector",
        cost_tier=4,
        nominal_accuracy=0.97,
        classes=("car", "bus", "truck", "person", "ball", "bicycle", "bag"),
    )
    zoo.register(
        "yolov8m",
        partial(_make_yolov8m, seed),
        kind="detector",
        cost_tier=4,
        nominal_accuracy=0.97,
        classes=("car", "bus", "truck", "person", "ball", "bicycle", "bag"),
    )
    zoo.register(
        "dataset_tracks",
        partial(_make_dataset_tracks, seed),
        kind="detector",
        cost_tier=1,
        nominal_accuracy=1.0,
        classes=("car", "bus", "truck", "person", "ball", "bicycle", "bag"),
        note="oracle reader for datasets that ship annotated tracks (e.g. CityFlow-NL)",
    )
    zoo.register(
        "yolov5s",
        partial(_make_yolov5s, seed),
        kind="detector",
        cost_tier=2,
        nominal_accuracy=0.92,
        classes=("car", "bus", "truck", "person", "ball", "bicycle", "bag"),
    )

    # -- trackers -------------------------------------------------------------
    zoo.register(
        "kalman_tracker",
        partial(_make_kalman_tracker, seed),
        kind="tracker",
        cost_tier=1,
        nominal_accuracy=0.95,
    )
    zoo.register(
        "norfair_tracker",
        partial(_make_iou_tracker, seed),
        kind="tracker",
        cost_tier=1,
        nominal_accuracy=0.93,
    )

    # -- property models --------------------------------------------------------
    zoo.register(
        "color_detect",
        partial(_make_color_model, seed),
        kind="property",
        attribute="color",
        cost_tier=3,
        nominal_accuracy=0.95,
    )
    zoo.register(
        "type_detect",
        partial(_make_vehicle_type_model, seed),
        kind="property",
        attribute="vehicle_type",
        cost_tier=3,
        nominal_accuracy=0.93,
    )
    zoo.register(
        "license_plate",
        partial(_make_license_plate_model, seed),
        kind="property",
        attribute="license_plate",
        cost_tier=3,
        nominal_accuracy=0.90,
    )
    zoo.register(
        "reid_feature",
        partial(_make_feature_vector_model, seed),
        kind="property",
        attribute="feature_vector",
        cost_tier=3,
        nominal_accuracy=0.95,
    )
    zoo.register(
        "direction_estimator",
        partial(_make_direction_estimator, seed),
        kind="property",
        attribute="direction",
        cost_tier=1,
        nominal_accuracy=0.95,
    )
    zoo.register(
        "direction_classifier",
        partial(_make_direction_classifier, seed),
        kind="property",
        attribute="direction",
        cost_tier=2,
        nominal_accuracy=0.94,
        note="trajectory-based direction classifier (the CVIP-style direction model)",
    )
    zoo.register(
        "speed_estimator",
        partial(_make_speed_estimator, seed),
        kind="property",
        attribute="speed",
        cost_tier=1,
        nominal_accuracy=0.97,
    )
    zoo.register(
        "action_recognition",
        partial(_make_action_classifier, seed),
        kind="property",
        attribute="action",
        cost_tier=3,
        nominal_accuracy=0.92,
    )

    # -- interaction model --------------------------------------------------------
    zoo.register(
        "upt",
        partial(_make_interaction_model, seed),
        kind="interaction",
        cost_tier=5,
        nominal_accuracy=0.88,
    )

    # -- frame filters -------------------------------------------------------------
    zoo.register(
        "motion_filter",
        partial(_make_motion_filter, seed),
        kind="frame_filter",
        cost_tier=1,
        nominal_accuracy=0.99,
    )
    for cls in ("car", "person", "ball"):
        zoo.register(
            f"texture_{cls}_filter",
            partial(_make_texture_filter, seed, cls),
            kind="frame_filter",
            cost_tier=1,
            nominal_accuracy=0.96,
            target_class=cls,
        )

    # -- specialized NNs / binary classifiers used by the evaluation -----------------
    zoo.register(
        "red_car_detector",
        partial(_make_red_car_detector, seed),
        kind="detector",
        cost_tier=2,
        nominal_accuracy=0.90,
        specialized_for={"class": "car", "color": "red"},
    )
    zoo.register(
        "no_red_on_road",
        partial(_make_no_red_on_road, seed),
        kind="binary_classifier",
        cost_tier=1,
        nominal_accuracy=0.94,
        specialized_for={"class": "car", "color": "red"},
    )
    zoo.register(
        "person_presence",
        partial(_make_person_presence, seed),
        kind="binary_classifier",
        cost_tier=1,
        nominal_accuracy=0.95,
        specialized_for={"class": "person"},
    )
    zoo.register(
        "ball_presence",
        partial(_make_ball_presence, seed),
        kind="binary_classifier",
        cost_tier=1,
        nominal_accuracy=0.94,
        specialized_for={"class": "ball"},
    )
    return zoo
