"""A constant-velocity Kalman filter for bounding-box tracking.

This is the "lightweight tracker based on the Kalman filter" that §4.2 uses
to re-identify video objects across frames so intrinsic property values can
be reused.  The state follows the SORT convention: centre position, box
scale (area), aspect ratio, and the velocities of the first three.
"""

from __future__ import annotations

import numpy as np

from repro.common.geometry import BBox


def bbox_to_z(bbox: BBox) -> np.ndarray:
    """Convert a box to the measurement vector ``[cx, cy, area, aspect]``."""
    cx, cy = bbox.center
    s = max(bbox.area, 1e-6)
    r = bbox.width / max(bbox.height, 1e-6)
    return np.array([cx, cy, s, r], dtype=float)


def z_to_bbox(z: np.ndarray) -> BBox:
    """Convert a state's measurement part back to a box."""
    cx, cy, s, r = float(z[0]), float(z[1]), max(float(z[2]), 1e-6), max(float(z[3]), 1e-6)
    w = float(np.sqrt(s * r))
    h = s / max(w, 1e-6)
    return BBox.from_center(cx, cy, w, h)


class KalmanBoxFilter:
    """Constant-velocity Kalman filter over ``[cx, cy, s, r, vcx, vcy, vs]``."""

    STATE_DIM = 7
    MEAS_DIM = 4

    def __init__(self, bbox: BBox) -> None:
        dim, m = self.STATE_DIM, self.MEAS_DIM
        self.F = np.eye(dim)
        self.F[0, 4] = self.F[1, 5] = self.F[2, 6] = 1.0
        self.H = np.zeros((m, dim))
        self.H[:m, :m] = np.eye(m)

        self.R = np.diag([1.0, 1.0, 10.0, 0.01])
        self.P = np.diag([10.0, 10.0, 10.0, 10.0, 1000.0, 1000.0, 1000.0])
        self.Q = np.diag([1.0, 1.0, 1.0, 0.01, 0.01, 0.01, 0.0001])

        self.x = np.zeros(dim)
        self.x[:m] = bbox_to_z(bbox)
        self.age = 0
        self.time_since_update = 0
        self.hits = 1

    def predict(self) -> BBox:
        """Advance the state one frame and return the predicted box."""
        # Keep the scale non-negative: if the predicted area would go
        # negative, zero its velocity first (standard SORT guard).
        if self.x[2] + self.x[6] <= 0:
            self.x[6] = 0.0
        self.x = self.F @ self.x
        self.P = self.F @ self.P @ self.F.T + self.Q
        self.age += 1
        self.time_since_update += 1
        return z_to_bbox(self.x[: self.MEAS_DIM])

    def predict_ahead(self, steps: int = 1) -> BBox:
        """The box ``steps`` transitions ahead, *without* advancing the state.

        Used by the scan scheduler's stride sampler to ask "where would this
        object be on a frame we have not detected on" — unlike
        :meth:`predict`, repeated calls do not accumulate into the filter, so
        probing a skipped frame never perturbs the tracker.  Note the step
        unit is *filter updates*, not frames: under stride sampling the
        filter's velocity is learned per sampled frame.
        """
        x = self.x.copy()
        for _ in range(max(int(steps), 0)):
            if x[2] + x[6] <= 0:
                x[6] = 0.0
            x = self.F @ x
        return z_to_bbox(x[: self.MEAS_DIM])

    def update(self, bbox: BBox) -> None:
        """Fold a new measurement into the state."""
        z = bbox_to_z(bbox)
        y = z - self.H @ self.x
        S = self.H @ self.P @ self.H.T + self.R
        K = self.P @ self.H.T @ np.linalg.inv(S)
        self.x = self.x + K @ y
        self.P = (np.eye(self.STATE_DIM) - K @ self.H) @ self.P
        self.time_since_update = 0
        self.hits += 1

    @property
    def bbox(self) -> BBox:
        return z_to_bbox(self.x[: self.MEAS_DIM])

    @property
    def velocity(self) -> tuple[float, float]:
        return (float(self.x[4]), float(self.x[5]))
