"""Simulated property models: colour, vehicle type, licence plate, re-id
features, plus the handcrafted direction/speed estimators.

Each property model evaluates one detection crop (the region of the frame
inside the detection's box).  Simulated models look up the ground-truth
object behind the detection and return its true attribute value, corrupted
with a per-object deterministic error: a given object always gets the same
(possibly wrong) prediction, which keeps memoisation semantically neutral —
exactly the property the paper's intrinsic-reuse optimisation relies on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.common.clock import CostProfile, SimClock
from repro.common.geometry import BBox
from repro.common.rng import derive_rng, stable_choice, stable_hash, stable_uniform
from repro.models.base import Detection, SimulatedModel
from repro.videosim.entities import VEHICLE_COLORS, VEHICLE_TYPES
from repro.videosim.video import Frame


class PropertyModel(SimulatedModel):
    """Base class for per-crop attribute models.

    Subclasses implement :meth:`_truth` (read the ground-truth value) and
    may override :meth:`_corrupt` to control the error model.
    """

    #: Name of the attribute this model predicts (matches GT attribute keys).
    attribute: str = ""
    #: Probability a given object's prediction is wrong.
    error_rate: float = 0.05
    #: Vocabulary to draw wrong answers from.
    vocabulary: Sequence[str] = ()
    #: Value returned for false-positive detections with no ground truth.
    fallback: object = None

    def __init__(self, name: str, cost_profile: CostProfile, error_rate: Optional[float] = None, seed: int = 0) -> None:
        super().__init__(name, cost_profile, seed)
        if error_rate is not None:
            self.error_rate = error_rate

    # -- oracle-with-noise machinery ---------------------------------------
    def _truth(self, detection: Detection, frame: Frame) -> object:
        if detection.gt_object_id is None:
            return self.fallback
        inst = frame.instance_by_id(detection.gt_object_id)
        if inst is None:
            return self.fallback
        return inst.attribute(self.attribute, self.fallback)

    def _corrupt(self, value: object, detection: Detection) -> object:
        key = detection.gt_object_id if detection.gt_object_id is not None else ("fp", detection.frame_id)
        if stable_uniform(self.seed, self.name, "err", key) >= self.error_rate:
            return value
        wrong = [v for v in self.vocabulary if v != value]
        if not wrong:
            return value
        return stable_choice(wrong, self.seed, self.name, "wrong", key)

    # -- public API ----------------------------------------------------------
    def predict(self, detection: Detection, frame: Frame, clock: Optional[SimClock] = None) -> object:
        """Predict the attribute value for one detection crop."""
        self.charge(clock)
        return self._corrupt(self._truth(detection, frame), detection)

    def predict_batch(self, detections: Sequence[Detection], frame: Frame, clock: Optional[SimClock] = None) -> List[object]:
        """Predict for a batch of crops from the same frame (one invocation)."""
        self.charge(clock, n_items=len(detections))
        return [self._corrupt(self._truth(d, frame), d) for d in detections]


class ColorModel(PropertyModel):
    """Vehicle colour classifier (the CVIP colour model of §5.1/§5.2)."""

    attribute = "color"
    error_rate = 0.05
    vocabulary = VEHICLE_COLORS
    fallback = "unknown"

    def __init__(self, name: str = "color_detect", cost_profile: CostProfile = CostProfile(base_ms=5.0, per_item_ms=20.0), **kw) -> None:
        super().__init__(name, cost_profile, **kw)


class VehicleTypeModel(PropertyModel):
    """Vehicle type classifier (sedan / suv / ...)."""

    attribute = "vehicle_type"
    error_rate = 0.07
    vocabulary = VEHICLE_TYPES + ("bus",)
    fallback = "unknown"

    def __init__(self, name: str = "type_detect", cost_profile: CostProfile = CostProfile(base_ms=5.0, per_item_ms=22.0), **kw) -> None:
        super().__init__(name, cost_profile, **kw)


class LicensePlateModel(PropertyModel):
    """Licence-plate reader; errors replace the plate with a garbled string."""

    attribute = "license_plate"
    error_rate = 0.10
    fallback = ""

    def __init__(self, name: str = "license_plate", cost_profile: CostProfile = CostProfile(base_ms=6.0, per_item_ms=25.0), **kw) -> None:
        super().__init__(name, cost_profile, **kw)

    def _corrupt(self, value: object, detection: Detection) -> object:
        key = detection.gt_object_id if detection.gt_object_id is not None else ("fp", detection.frame_id)
        if not value or stable_uniform(self.seed, self.name, "err", key) >= self.error_rate:
            return value
        # A plausible OCR failure: scramble two characters deterministically.
        text = list(str(value))
        idx = stable_hash(self.seed, self.name, "pos", key) % max(len(text) - 1, 1)
        text[idx] = "?"
        return "".join(text)


class FeatureVectorModel(SimulatedModel):
    """Re-identification feature extractor.

    Produces a unit-norm embedding that is (a) stable per ground-truth
    object up to small per-frame noise and (b) far from other objects'
    embeddings — so cosine similarity against a gallery image behaves like a
    real re-id model.  Used by the "suspect" query of Figures 9–10.
    """

    DIM = 64

    def __init__(
        self,
        name: str = "reid_feature",
        cost_profile: CostProfile = CostProfile(base_ms=5.0, per_item_ms=15.0),
        noise_sigma: float = 0.05,
        seed: int = 0,
    ) -> None:
        super().__init__(name, cost_profile, seed)
        self.noise_sigma = noise_sigma

    def _base_embedding(self, object_id: int) -> np.ndarray:
        rng = derive_rng(self.seed, self.name, "base", object_id)
        v = rng.normal(size=self.DIM)
        return v / np.linalg.norm(v)

    def embed_object(self, object_id: int) -> np.ndarray:
        """The noiseless gallery embedding of a ground-truth object."""
        return self._base_embedding(object_id)

    def _embed(self, detection: Detection) -> np.ndarray:
        if detection.gt_object_id is None:
            rng = derive_rng(self.seed, self.name, "fp", detection.frame_id)
            v = rng.normal(size=self.DIM)
            return v / np.linalg.norm(v)
        base = self._base_embedding(detection.gt_object_id)
        rng = derive_rng(self.seed, self.name, "noise", detection.gt_object_id, detection.frame_id)
        v = base + rng.normal(scale=self.noise_sigma, size=self.DIM)
        return v / np.linalg.norm(v)

    def predict(self, detection: Detection, frame: Frame, clock: Optional[SimClock] = None) -> np.ndarray:
        """Embedding of one detection crop (noisy per frame)."""
        self.charge(clock)
        return self._embed(detection)

    def predict_batch(self, detections: Sequence[Detection], frame: Optional[Frame] = None, clock: Optional[SimClock] = None) -> List[np.ndarray]:
        """Embeddings for a batch of crops (one invocation, per-item cost)."""
        self.charge(clock, n_items=len(detections))
        return [self._embed(d) for d in detections]

    @staticmethod
    def similarity(a: np.ndarray, b: np.ndarray) -> float:
        """Cosine similarity between two embeddings."""
        denom = float(np.linalg.norm(a) * np.linalg.norm(b))
        if denom == 0:
            return 0.0
        return float(np.dot(a, b) / denom)

    @staticmethod
    def similarity_matrix(a: Sequence[np.ndarray], b: Sequence[np.ndarray]) -> np.ndarray:
        """Pairwise cosine similarities: ``out[i, j] = cos(a[i], b[j])``.

        Zero-norm vectors get similarity 0 against everything (matching
        :meth:`similarity`); used by the cross-camera re-id matcher.
        """
        if not len(a) or not len(b):
            return np.zeros((len(a), len(b)))

        def _rows(vectors: Sequence[np.ndarray]) -> np.ndarray:
            m = np.stack([np.asarray(v, dtype=float) for v in vectors])
            norms = np.linalg.norm(m, axis=1, keepdims=True)
            return np.divide(m, norms, out=np.zeros_like(m), where=norms > 0)

        return _rows(a) @ _rows(b).T


class DirectionEstimator(SimulatedModel):
    """Handcrafted direction estimator from a history of box centres.

    This is the kind of "customized code" property the paper's Vehicle VObj
    defines (Figure 2): it needs no neural model, just the last few centre
    positions, and is therefore nearly free.
    """

    def __init__(self, name: str = "direction_estimator", cost_profile: CostProfile = CostProfile(base_ms=0.05), seed: int = 0) -> None:
        super().__init__(name, cost_profile, seed)

    def predict(self, centers: Sequence[tuple[float, float]], clock: Optional[SimClock] = None) -> str:
        """Direction label from a centre history (oldest first)."""
        self.charge(clock)
        if len(centers) < 2:
            return "unknown"
        pts = np.asarray(centers, dtype=float)
        deltas = np.diff(pts, axis=0)
        speeds = np.hypot(deltas[:, 0], deltas[:, 1])
        if float(np.mean(speeds)) < 0.5:
            return "stopped"
        headings = np.degrees(np.arctan2(deltas[:, 1], deltas[:, 0]))
        turn = _wrap_angle(float(headings[-1] - headings[0]))
        if abs(turn) < 15.0:
            return "go_straight"
        return "turn_right" if turn > 0 else "turn_left"


class SpeedEstimator(SimulatedModel):
    """Handcrafted speed (velocity magnitude) estimator from box history.

    This is the paper's ``get_velocity`` UDF used in both the VQPy and EVA
    versions of the speeding-car query (Figures 22–25): speed is the
    displacement of the box centre between consecutive frames.
    """

    def __init__(self, name: str = "speed_estimator", cost_profile: CostProfile = CostProfile(base_ms=0.05), seed: int = 0) -> None:
        super().__init__(name, cost_profile, seed)

    def predict(self, bboxes: Sequence[BBox], clock: Optional[SimClock] = None) -> float:
        """Pixels/frame speed from the last boxes (oldest first)."""
        self.charge(clock)
        if len(bboxes) < 2:
            return 0.0
        (x0, y0) = bboxes[-2].center
        (x1, y1) = bboxes[-1].center
        return float(np.hypot(x1 - x0, y1 - y0))


def _wrap_angle(deg: float) -> float:
    while deg <= -180.0:
        deg += 360.0
    while deg > 180.0:
        deg -= 360.0
    return deg
