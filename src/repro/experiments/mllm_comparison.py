"""§5.3 — comparison with multimodal LLMs (Tables 4–7).

Six queries (Table 4) run over the Auburn-like crossroad clip (Q1–Q5) and a
V-COCO-like image set (Q6), under VideoChat-7B, VideoChat-13B (low-resource
mode), VQPy, and VQPy-Opt (Q1–Q5 executed in one pass with computation
reuse; Q6 with a cheap presence filter in front of the interaction model).

Ground truth is computed directly from the synthetic videos' scripted
objects, exactly as the paper labels its clips manually.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.backend.planner import PlannerConfig
from repro.backend.session import QuerySession
from repro.baselines.mllm_baseline import MLLMAnswerSet, MLLMBaseline, split_into_clips
from repro.frontend.builtin import Ball, Car, Person, PersonBallInteraction
from repro.frontend.properties import vobj_filter
from repro.frontend.query import Query, average_per_frame
from repro.frontend.registry import get_library_zoo
from repro.metrics.accuracy import precision_recall_f1
from repro.metrics.runtime import RuntimeReport
from repro.models.mllm import VIDEOCHAT_13B, VIDEOCHAT_7B, VideoChatSim
from repro.videosim.datasets import auburn_clip, vcoco_images
from repro.videosim.video import SyntheticVideo

#: Table 4 — the query set and its natural-language statements.
MLLM_QUERIES: Tuple[Tuple[str, str, str], ...] = (
    ("Q1", "boolean", "Are there any people passing the crosswalk?"),
    ("Q2", "boolean", "Are there any cars turning left at the crossing?"),
    ("Q3", "boolean", "Are there any red cars in the video?"),
    ("Q4", "aggregation", "Tell me the average number of cars on the crossing."),
    ("Q5", "aggregation", "Tell me the average number of people that are walking."),
    ("Q6", "boolean", "Is anyone hitting the ball in the image? Answer by yes or no."),
)

#: Central "crossing" region of the Auburn frame, as fractions of width/height.
CROSSING_REGION = (0.25, 0.35, 0.75, 0.85)


# ---------------------------------------------------------------------------
# Ground truth from the synthetic video
# ---------------------------------------------------------------------------


def _in_crossing(inst, width: float, height: float) -> bool:
    x, y = inst.bbox.center
    x0, y0, x1, y1 = CROSSING_REGION
    return x0 * width <= x <= x1 * width and y0 * height <= y <= y1 * height


def truth_people_crossing(clip: SyntheticVideo) -> bool:
    for frame in clip.frames():
        for inst in frame.instances_of("person"):
            if inst.action == "crossing" and _in_crossing(inst, frame.width, frame.height):
                return True
    return False


def truth_cars_turning_left(clip: SyntheticVideo) -> bool:
    for frame in clip.frames():
        for inst in frame.instances_of("car"):
            if inst.attribute("direction") == "turn_left" and _in_crossing(inst, frame.width, frame.height):
                return True
    return False


def truth_red_cars(clip: SyntheticVideo) -> bool:
    for frame in clip.frames():
        for inst in frame.instances_of("car"):
            if inst.attribute("color") == "red":
                return True
    return False


def truth_avg_cars_on_crossing(clip: SyntheticVideo) -> float:
    total = frames = 0
    for frame in clip.frames():
        frames += 1
        total += sum(1 for inst in frame.instances_of("car") if _in_crossing(inst, frame.width, frame.height))
    return total / frames if frames else 0.0


def truth_avg_people_walking(clip: SyntheticVideo) -> float:
    total = frames = 0
    for frame in clip.frames():
        frames += 1
        total += sum(
            1
            for inst in frame.instances_of("person")
            if inst.action in ("walking", "crossing")
        )
    return total / frames if frames else 0.0


def truth_person_hits_ball(image: SyntheticVideo) -> bool:
    frame = image.frame(0)
    return any(inst.interacts("hit") for inst in frame.instances_of("person"))


# ---------------------------------------------------------------------------
# VQPy queries for Q1–Q6
# ---------------------------------------------------------------------------


class PeopleCrossingQuery(Query):
    """Q1: people passing the crosswalk."""

    def __init__(self) -> None:
        self.person = Person("person")

    def frame_constraint(self):
        return (self.person.score > 0.5) & (self.person.action == "crossing")

    def frame_output(self):
        return (self.person.track_id, self.person.bbox)


class CarsTurningLeftQuery(Query):
    """Q2: cars turning left at the crossing."""

    def __init__(self) -> None:
        self.car = Car("car")

    def frame_constraint(self):
        return (self.car.score > 0.5) & (self.car.direction == "turn_left")

    def frame_output(self):
        return (self.car.track_id, self.car.bbox)


class RedCarsQuery(Query):
    """Q3: red cars in the video."""

    def __init__(self) -> None:
        self.car = Car("car")

    def frame_constraint(self):
        return (self.car.score > 0.5) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.bbox)


class AverageCarsQuery(Query):
    """Q4: average number of cars on the crossing."""

    def __init__(self) -> None:
        self.car = Car("car")

    def video_constraint(self):
        return self.car.score > 0.5

    def video_output(self):
        return (average_per_frame(self.car.track_id, label="avg_cars"),)


class AverageWalkingPeopleQuery(Query):
    """Q5: average number of people that are walking."""

    def __init__(self) -> None:
        self.person = Person("person")

    def video_constraint(self):
        return (self.person.score > 0.5) & (
            (self.person.action == "walking") | (self.person.action == "crossing")
        )

    def video_output(self):
        return (average_per_frame(self.person.track_id, label="avg_walking"),)


class FilteredBall(Ball):
    """Ball VObj with a cheap presence classifier registered (VQPy-Opt for Q6)."""

    @vobj_filter(model="ball_presence")
    def ball_presence(self, frame):
        ...


class PersonHitsBallQuery(Query):
    """Q6: is anyone hitting the ball (human-object interaction via "UPT")."""

    def __init__(self, optimized: bool = False) -> None:
        self.person = Person("person")
        self.ball = FilteredBall("ball") if optimized else Ball("ball")
        self.interaction = PersonBallInteraction(self.person, self.ball)

    def frame_constraint(self):
        return (self.person.score > 0.5) & (self.ball.score > 0.3) & (self.interaction.interaction == "hit")

    def frame_output(self):
        return (self.person.bbox, self.ball.bbox)


# ---------------------------------------------------------------------------
# Experiment harness
# ---------------------------------------------------------------------------


@dataclass
class MLLMQueryOutcome:
    """Latency and accuracy of one system on one query."""

    system: str
    query_id: str
    ms_per_frame: float
    precompute_ms_per_frame: float = 0.0
    f1: Optional[float] = None
    avg_response: Optional[float] = None
    max_response: Optional[float] = None
    answered_fraction: Optional[float] = None
    positive_rate: Optional[float] = None


@dataclass
class MLLMComparisonResult:
    outcomes: List[MLLMQueryOutcome] = field(default_factory=list)

    def get(self, system: str, query_id: str) -> Optional[MLLMQueryOutcome]:
        for o in self.outcomes:
            if o.system == system and o.query_id == query_id:
                return o
        return None

    def systems(self) -> List[str]:
        out: List[str] = []
        for o in self.outcomes:
            if o.system not in out:
                out.append(o.system)
        return out


_BOOLEAN_TRUTHS: Dict[str, Callable[[SyntheticVideo], bool]] = {
    "Q1": truth_people_crossing,
    "Q2": truth_cars_turning_left,
    "Q3": truth_red_cars,
}
_AGGREGATION_TRUTHS: Dict[str, Callable[[SyntheticVideo], float]] = {
    "Q4": truth_avg_cars_on_crossing,
    "Q5": truth_avg_people_walking,
}
_VQPY_QUERIES: Dict[str, Callable[[], Query]] = {
    "Q1": PeopleCrossingQuery,
    "Q2": CarsTurningLeftQuery,
    "Q3": RedCarsQuery,
    "Q4": AverageCarsQuery,
    "Q5": AverageWalkingPeopleQuery,
}


def _vqpy_config(with_filters: bool = False) -> PlannerConfig:
    return PlannerConfig(
        enable_reuse=True,
        use_registered_filters=with_filters,
        consider_specialized=False,
        profile_plans=False,
    )


def _mllm_boolean_f1(answers: MLLMAnswerSet) -> Tuple[float, float, float]:
    """(f1, answered fraction, positive rate) of a per-clip answer set."""
    stats = precision_recall_f1(answers.answers, answers.truths)
    answered = sum(1 for a in answers.answers if a is not None) / max(len(answers.answers), 1)
    positive = sum(1 for t in answers.truths if t) / max(len(answers.truths), 1)
    return stats.f1, answered, positive


def _vqpy_boolean_f1(result_frames: Sequence[int], video: SyntheticVideo, truth_fn, clip_seconds: float = 1.0) -> Tuple[float, float]:
    """Score VQPy per one-second clip against the same ground truth as the MLLM."""
    matched = set(result_frames)
    predictions: List[bool] = []
    truths: List[bool] = []
    frames_per_clip = max(int(round(clip_seconds * video.fps)), 1)
    for clip in split_into_clips(video, clip_seconds):
        start = clip.offset
        clip_range = range(start, start + clip.num_frames)
        predictions.append(any(f in matched for f in clip_range))
        truths.append(truth_fn(clip))
    stats = precision_recall_f1(predictions, truths)
    positive = sum(truths) / max(len(truths), 1)
    return stats.f1, positive


def run_mllm_comparison(
    duration_s: float = 600.0,
    num_images: int = 400,
    seed: int = 0,
    variants: Sequence[str] = ("videochat-7b", "videochat-13b"),
    include_images: bool = True,
) -> MLLMComparisonResult:
    """Run the Tables 5–7 comparison (durations/image counts are scalable)."""
    zoo = get_library_zoo()
    video = auburn_clip(duration_s=duration_s, seed=seed)
    images = vcoco_images(num_images=num_images, seed=seed) if include_images else []
    result = MLLMComparisonResult()

    # ---------------------------------------------------------------- MLLMs --
    for variant_name in variants:
        profile = VIDEOCHAT_7B if variant_name.endswith("7b") else VIDEOCHAT_13B
        low_resource = variant_name.endswith("13b")
        sim = VideoChatSim(profile, gpu_memory_gb=40.0, low_resource=low_resource, seed=seed)
        baseline = MLLMBaseline(sim)
        for query_id, truth_fn in _BOOLEAN_TRUTHS.items():
            answers = baseline.boolean_over_video(video, query_id, truth_fn)
            f1, answered, positive = _mllm_boolean_f1(answers)
            result.outcomes.append(
                MLLMQueryOutcome(
                    system=variant_name,
                    query_id=query_id,
                    ms_per_frame=answers.ms_per_frame,
                    precompute_ms_per_frame=answers.precompute_ms_per_frame,
                    f1=f1,
                    answered_fraction=answered,
                    positive_rate=positive,
                )
            )
        for query_id, truth_fn in _AGGREGATION_TRUTHS.items():
            answers = baseline.count_over_video(video, query_id, truth_fn)
            valid = [a for a in answers.answers if a is not None]
            result.outcomes.append(
                MLLMQueryOutcome(
                    system=variant_name,
                    query_id=query_id,
                    ms_per_frame=answers.ms_per_frame,
                    precompute_ms_per_frame=answers.precompute_ms_per_frame,
                    avg_response=sum(valid) / len(valid) if valid else None,
                    max_response=max(valid) if valid else None,
                    answered_fraction=len(valid) / max(len(answers.answers), 1),
                )
            )
        if include_images:
            answers = baseline.boolean_over_images(images, "Q6", truth_person_hits_ball)
            f1, answered, positive = _mllm_boolean_f1(answers)
            result.outcomes.append(
                MLLMQueryOutcome(
                    system=variant_name,
                    query_id="Q6",
                    ms_per_frame=answers.ms_per_frame,
                    f1=f1,
                    answered_fraction=answered,
                    positive_rate=positive,
                )
            )

    # ----------------------------------------------------------------- VQPy --
    for query_id, factory in _VQPY_QUERIES.items():
        session = QuerySession(video, zoo=zoo, config=_vqpy_config())
        query_result = session.execute(factory())
        outcome = MLLMQueryOutcome(system="vqpy", query_id=query_id, ms_per_frame=query_result.ms_per_frame)
        if query_id in _BOOLEAN_TRUTHS:
            outcome.f1, outcome.positive_rate = _vqpy_boolean_f1(
                query_result.matched_frames, video, _BOOLEAN_TRUTHS[query_id]
            )
        else:
            label = "avg_cars" if query_id == "Q4" else "avg_walking"
            outcome.avg_response = query_result.aggregates.get(label)
            per_frame_counts = [len(records) for records in query_result.matches.values()]
            outcome.max_response = max(per_frame_counts, default=0)
        result.outcomes.append(outcome)

    if include_images:
        ms_total = 0.0
        predictions: List[bool] = []
        truths: List[bool] = []
        for image in images:
            session = QuerySession(image, zoo=zoo, config=_vqpy_config())
            image_result = session.execute(PersonHitsBallQuery())
            ms_total += image_result.total_ms
            predictions.append(bool(image_result.matched_frames))
            truths.append(truth_person_hits_ball(image))
        stats = precision_recall_f1(predictions, truths)
        result.outcomes.append(
            MLLMQueryOutcome(
                system="vqpy",
                query_id="Q6",
                ms_per_frame=ms_total / max(len(images), 1),
                f1=stats.f1,
                positive_rate=sum(truths) / max(len(truths), 1),
            )
        )

    # -------------------------------------------------------------- VQPy-Opt --
    # Q1–Q5 executed in a single pass with shared computation (§5.3).
    session = QuerySession(video, zoo=zoo, config=_vqpy_config())
    shared_queries = [factory() for factory in _VQPY_QUERIES.values()]
    shared_results = session.execute_many(shared_queries)
    combined_ms_per_frame = sum(r.total_ms for r in shared_results) / max(video.num_frames, 1)
    result.outcomes.append(
        MLLMQueryOutcome(system="vqpy-opt", query_id="Q1-Q5", ms_per_frame=combined_ms_per_frame)
    )
    if include_images:
        # Q6 with a cheap ball-presence filter ahead of the interaction model.
        ms_total = 0.0
        predictions = []
        truths = []
        for image in images:
            session = QuerySession(image, zoo=zoo, config=_vqpy_config(with_filters=True))
            image_result = session.execute(PersonHitsBallQuery(optimized=True))
            ms_total += image_result.total_ms
            predictions.append(bool(image_result.matched_frames))
            truths.append(truth_person_hits_ball(image))
        stats = precision_recall_f1(predictions, truths)
        result.outcomes.append(
            MLLMQueryOutcome(
                system="vqpy-opt",
                query_id="Q6",
                ms_per_frame=ms_total / max(len(images), 1),
                f1=stats.f1,
            )
        )
    return result


# ---------------------------------------------------------------------------
# Table renderers
# ---------------------------------------------------------------------------


def format_table5(result: MLLMComparisonResult) -> RuntimeReport:
    """Table 5 — execution time (ms per frame) per system and query."""
    report = RuntimeReport("Table 5 — execution time", unit="virtual ms per frame")
    pre_row = {"query": "Pre"}
    for system in result.systems():
        if system.startswith("videochat"):
            outcome = result.get(system, "Q1")
            if outcome is not None:
                pre_row[system] = outcome.precompute_ms_per_frame
    report.add_row(**pre_row)
    for query_id in ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q1-Q5"):
        row = {"query": query_id}
        for system in result.systems():
            outcome = result.get(system, query_id)
            if outcome is not None:
                row[system] = outcome.ms_per_frame
        if len(row) > 1:
            report.add_row(**row)
    return report


def format_table6(result: MLLMComparisonResult) -> RuntimeReport:
    """Table 6 — F1 score for the boolean queries."""
    report = RuntimeReport("Table 6 — F1 score for boolean queries", unit="F1")
    for query_id in ("Q1", "Q2", "Q3", "Q6"):
        row = {"query": query_id}
        vqpy = result.get("vqpy", query_id)
        if vqpy is not None and vqpy.positive_rate is not None:
            row["positive_rate"] = f"{vqpy.positive_rate:.1%}"
        for system in result.systems():
            outcome = result.get(system, query_id)
            if outcome is not None and outcome.f1 is not None:
                row[system] = outcome.f1
        report.add_row(**row)
    return report


def format_table7(result: MLLMComparisonResult) -> RuntimeReport:
    """Table 7 — aggregation query responses (average and maximum)."""
    report = RuntimeReport("Table 7 — aggregation query responses", unit="answer value")
    for system in result.systems():
        row = {"system": system}
        for query_id in ("Q4", "Q5"):
            outcome = result.get(system, query_id)
            if outcome is None or outcome.avg_response is None:
                continue
            row[f"{query_id}_avg"] = outcome.avg_response
            row[f"{query_id}_max"] = outcome.max_response
        if len(row) > 1:
            report.add_row(**row)
    return report
