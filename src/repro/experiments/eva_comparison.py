"""§5.2 — comparison with SQL-based frameworks (Figures 14–16, Tables 2–3).

Three queries (Table 2) run on clips from the three Table-3 cameras, at two
durations, under:

* **EVA** — the mini SQL engine executing the appendix SQL verbatim;
* **EVA (refined)** — the hand-optimized SQL with filters pushed down
  (only for the red-speeding-car query, as in the paper);
* **VQPy** — the object-oriented pipeline with intrinsic colour reuse.

Per the paper's fairness setting, VQPy runs without frame filters or
specialized NNs and uses the same detector ("EVA's built-in YOLO") and a
nor-fair-style tracker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backend.planner import PlannerConfig
from repro.backend.session import QuerySession
from repro.baselines.sqlengine.workloads import run_eva_query
from repro.frontend.builtin import Car
from repro.frontend.query import Query
from repro.frontend.registry import get_library_zoo
from repro.metrics.runtime import RuntimeReport, speedup
from repro.videosim.datasets import camera_clip

#: Speed threshold (pixels/frame) separating speeding vehicles from traffic.
SPEED_THRESHOLD = 10.0

#: Table 2 — the three query types compared against EVA.
EVA_COMPARISON_QUERIES: Tuple[Tuple[str, str], ...] = (
    ("red_car", "Stateless property: red car"),
    ("speeding_car", "Stateful property: speeding car"),
    ("red_speeding_car", "Stateless & stateful: red speeding car"),
)


class EvaCar(Car):
    """The Car VObj configured as in §5.2: same detector/tracker as EVA."""

    model = "yolox"
    tracker = "norfair_tracker"


class RedCarCountQuery(Query):
    """Count/report red cars (stateless intrinsic property)."""

    def __init__(self) -> None:
        self.car = EvaCar("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.bbox)


class SpeedingCarQuery(Query):
    """Cars whose speed exceeds the threshold (stateful property)."""

    def __init__(self, threshold: float = SPEED_THRESHOLD) -> None:
        self.car = EvaCar("car")
        self.threshold = threshold

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.speed > self.threshold)

    def frame_output(self):
        return (self.car.track_id, self.car.bbox)


class RedSpeedingCarQuery(Query):
    """Red cars that are also speeding (stateless + stateful)."""

    def __init__(self, threshold: float = SPEED_THRESHOLD) -> None:
        self.car = EvaCar("car")
        self.threshold = threshold

    def frame_constraint(self):
        return (
            (self.car.score > 0.6)
            & (self.car.color == "red")
            & (self.car.speed > self.threshold)
        )

    def frame_output(self):
        return (self.car.track_id, self.car.bbox)


VQPY_QUERIES = {
    "red_car": RedCarCountQuery,
    "speeding_car": SpeedingCarQuery,
    "red_speeding_car": RedSpeedingCarQuery,
}


@dataclass
class EvaComparisonCell:
    """One (camera, duration, query) comparison."""

    camera: str
    duration_label: str
    query: str
    vqpy_s: float
    eva_s: float
    eva_refined_s: Optional[float] = None
    vqpy_matched: int = 0
    eva_matched: int = 0

    @property
    def vqpy_speedup(self) -> float:
        return speedup(self.eva_s, self.vqpy_s)

    @property
    def refined_speedup(self) -> Optional[float]:
        if self.eva_refined_s is None:
            return None
        return speedup(self.eva_refined_s, self.vqpy_s)


@dataclass
class EvaComparisonResult:
    cells: List[EvaComparisonCell] = field(default_factory=list)

    def for_query(self, query: str) -> List[EvaComparisonCell]:
        return [c for c in self.cells if c.query == query]


def _vqpy_config() -> PlannerConfig:
    # Fairness setting of §5.2: no frame filters, no specialized NNs.
    return PlannerConfig(
        enable_reuse=True,
        use_registered_filters=False,
        consider_specialized=False,
        profile_plans=False,
    )


def run_eva_comparison(
    cameras: Sequence[str] = ("banff", "jackson", "southampton"),
    durations_s: Sequence[Tuple[str, float]] = (("3 min", 180.0), ("10 min", 600.0)),
    queries: Sequence[str] = ("red_car", "speeding_car", "red_speeding_car"),
    seed: int = 0,
    include_refined: bool = True,
) -> EvaComparisonResult:
    """Run the Figures 14–16 comparison.

    ``durations_s`` labels stay at the paper's nominal "3 min"/"10 min" even
    when callers pass scaled-down durations for fast runs.
    """
    zoo = get_library_zoo()
    result = EvaComparisonResult()
    for camera in cameras:
        for label, duration in durations_s:
            video = camera_clip(camera, duration, seed=seed)
            for query_name in queries:
                vqpy_query = VQPY_QUERIES[query_name]()
                session = QuerySession(video, zoo=zoo, config=_vqpy_config())
                vqpy_result = session.execute(vqpy_query)

                eva_result = run_eva_query(query_name, video, zoo, speed_threshold=SPEED_THRESHOLD)

                refined_s: Optional[float] = None
                if include_refined and query_name == "red_speeding_car":
                    refined = run_eva_query("red_speeding_car_refined", video, zoo, speed_threshold=SPEED_THRESHOLD)
                    refined_s = refined.total_ms / 1000.0

                result.cells.append(
                    EvaComparisonCell(
                        camera=camera,
                        duration_label=label,
                        query=query_name,
                        vqpy_s=vqpy_result.total_ms / 1000.0,
                        eva_s=eva_result.total_ms / 1000.0,
                        eva_refined_s=refined_s,
                        vqpy_matched=len(vqpy_result.matched_frames),
                        eva_matched=len(eva_result.matched_frames),
                    )
                )
    return result


def format_figure(result: EvaComparisonResult, query: str, title: str) -> RuntimeReport:
    """Render one of Figures 14–16 as a table of runtimes and speedups."""
    report = RuntimeReport(title, unit="virtual seconds")
    for cell in result.for_query(query):
        row = {
            "camera": cell.camera,
            "clip": cell.duration_label,
            "VQPy": cell.vqpy_s,
            "EVA": cell.eva_s,
            "vqpy_speedup": f"{cell.vqpy_speedup:.1f}x",
        }
        if cell.eva_refined_s is not None:
            row["EVA_refined"] = cell.eva_refined_s
            row["refined_speedup"] = f"{cell.refined_speedup:.1f}x"
        report.add_row(**row)
    return report


def format_fig14(result: EvaComparisonResult) -> RuntimeReport:
    return format_figure(result, "red_car", "Figure 14 — Red Car Query (VQPy vs EVA)")


def format_fig15(result: EvaComparisonResult) -> RuntimeReport:
    return format_figure(result, "speeding_car", "Figure 15 — Speeding Car Query (VQPy vs EVA)")


def format_fig16(result: EvaComparisonResult) -> RuntimeReport:
    return format_figure(result, "red_speeding_car", "Figure 16 — Red Speeding Car Query (VQPy vs EVA vs EVA refined)")
