"""Experiment harnesses regenerating the paper's tables and figures.

Each module exposes ``run_*`` functions parameterised by a scale factor so
the same code can run quickly in CI (scaled-down clips) or at the paper's
nominal durations.  The returned structures carry the same rows/series the
paper reports; ``format_*`` helpers render them as text tables.
"""

from repro.experiments import cityflow, eva_comparison, mllm_comparison, ablations

__all__ = ["cityflow", "eva_comparison", "mllm_comparison", "ablations"]
