"""Ablations of the design choices called out in DESIGN.md.

These do not correspond to a single paper figure; they isolate the effect of
each optimization the paper describes:

* §4.2 object-level (intrinsic) computation reuse,
* §4.3 predicate pull-up and operator fusion,
* §4.4 registered specialized NNs / binary classifiers,
* §4.2/§5.3 query-level computation reuse (multi-query execution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.backend.planner import PlannerConfig
from repro.backend.session import QuerySession
from repro.frontend.builtin import Car, RedCar
from repro.frontend.query import Query
from repro.frontend.registry import get_library_zoo
from repro.metrics.accuracy import f1_score_sets
from repro.metrics.runtime import RuntimeReport, speedup
from repro.videosim.datasets import auburn_clip, camera_clip


class _RedCarQuery(Query):
    """Red cars via the generic Car VObj plus a colour predicate."""

    def __init__(self) -> None:
        self.car = Car("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.bbox)


class _RedSuvQuery(Query):
    """Red SUVs: two model-backed properties, so filter ordering matters.

    With predicate pull-up the colour filter runs first and the (more
    expensive) type model is only invoked for red vehicles; without it every
    vehicle pays for both models every frame.
    """

    def __init__(self) -> None:
        self.car = Car("car")

    def frame_constraint(self):
        return (self.car.score > 0.6) & (self.car.color == "red") & (self.car.vehicle_type == "suv")

    def frame_output(self):
        return (self.car.track_id, self.car.bbox)


class _RedCarVObjQuery(Query):
    """Red cars via the RedCar VObj (specialized NN + binary classifier registered)."""

    def __init__(self) -> None:
        self.car = RedCar("red_car")

    def frame_constraint(self):
        return (self.car.score > 0.5) & (self.car.color == "red")

    def frame_output(self):
        return (self.car.track_id, self.car.bbox)


@dataclass
class AblationRow:
    configuration: str
    total_ms: float
    matched_frames: int
    f1_vs_reference: Optional[float] = None

    def speedup_vs(self, reference_ms: float) -> float:
        return speedup(reference_ms, self.total_ms)


@dataclass
class AblationResult:
    title: str
    rows: List[AblationRow] = field(default_factory=list)

    def row(self, configuration: str) -> AblationRow:
        for r in self.rows:
            if r.configuration == configuration:
                return r
        raise KeyError(configuration)

    def to_report(self) -> RuntimeReport:
        report = RuntimeReport(self.title, unit="virtual ms")
        reference_ms = self.rows[0].total_ms if self.rows else 0.0
        for row in self.rows:
            report.add_row(
                configuration=row.configuration,
                total_ms=row.total_ms,
                matched_frames=row.matched_frames,
                speedup=f"{row.speedup_vs(reference_ms):.2f}x" if reference_ms else "n/a",
                f1=row.f1_vs_reference if row.f1_vs_reference is not None else "",
            )
        return report


def _run(video, query_factory, config: PlannerConfig) -> tuple:
    session = QuerySession(video, zoo=get_library_zoo(), config=config)
    result = session.execute(query_factory())
    return result.total_ms, result.matched_frames


def run_intrinsic_ablation(duration_s: float = 60.0, camera: str = "jackson", seed: int = 0) -> AblationResult:
    """§4.2: intrinsic-property reuse on vs off (red-car query)."""
    video = camera_clip(camera, duration_s, seed=seed)
    base_cfg = PlannerConfig(enable_reuse=False, use_registered_filters=False, consider_specialized=False, profile_plans=False)
    reuse_cfg = PlannerConfig(enable_reuse=True, use_registered_filters=False, consider_specialized=False, profile_plans=False)

    result = AblationResult(title="Ablation — object-level computation reuse (intrinsic color)")
    off_ms, off_frames = _run(video, _RedCarQuery, base_cfg)
    on_ms, on_frames = _run(video, _RedCarQuery, reuse_cfg)
    result.rows.append(AblationRow("reuse off", off_ms, len(off_frames)))
    result.rows.append(
        AblationRow("reuse on", on_ms, len(on_frames), f1_vs_reference=f1_score_sets(set(on_frames), set(off_frames)))
    )
    return result


def run_planner_ablation(duration_s: float = 60.0, camera: str = "jackson", seed: int = 0) -> AblationResult:
    """§4.3: predicate pull-up (lazy evaluation) and operator fusion."""
    video = camera_clip(camera, duration_s, seed=seed)
    configs = {
        "no pull-up, no fusion": PlannerConfig(enable_lazy=False, enable_fusion=False, enable_reuse=False, use_registered_filters=False, consider_specialized=False, profile_plans=False),
        "pull-up only": PlannerConfig(enable_lazy=True, enable_fusion=False, enable_reuse=False, use_registered_filters=False, consider_specialized=False, profile_plans=False),
        "pull-up + fusion": PlannerConfig(enable_lazy=True, enable_fusion=True, enable_reuse=False, use_registered_filters=False, consider_specialized=False, profile_plans=False),
        "pull-up + fusion + reuse": PlannerConfig(enable_lazy=True, enable_fusion=True, enable_reuse=True, use_registered_filters=False, consider_specialized=False, profile_plans=False),
    }
    result = AblationResult(title="Ablation — DAG optimizations (predicate pull-up, operator fusion)")
    reference_frames: Optional[set] = None
    for label, cfg in configs.items():
        total_ms, frames = _run(video, _RedSuvQuery, cfg)
        f1 = None
        if reference_frames is None:
            reference_frames = set(frames)
        else:
            f1 = f1_score_sets(set(frames), reference_frames)
        result.rows.append(AblationRow(label, total_ms, len(frames), f1_vs_reference=f1))
    return result


def run_extension_ablation(duration_s: float = 60.0, camera: str = "jackson", seed: int = 0) -> AblationResult:
    """§4.4: registered binary classifiers and specialized NNs on the RedCar VObj."""
    video = camera_clip(camera, duration_s, seed=seed)
    result = AblationResult(title="Ablation — registered optimizations (specialized NN, binary classifier)")

    plain_cfg = PlannerConfig(enable_reuse=True, use_registered_filters=False, consider_specialized=False, profile_plans=False)
    filters_cfg = PlannerConfig(enable_reuse=True, use_registered_filters=True, consider_specialized=False, profile_plans=False)
    specialized_cfg = PlannerConfig(enable_reuse=True, use_registered_filters=True, consider_specialized=True, profile_plans=True)

    reference_frames: Optional[set] = None
    for label, cfg in (
        ("general detector, no filters", plain_cfg),
        ("+ binary classifier frame filter", filters_cfg),
        ("+ specialized NN (planner-profiled)", specialized_cfg),
    ):
        session = QuerySession(video, zoo=get_library_zoo(), config=cfg)
        query_result = session.execute(_RedCarVObjQuery())
        f1 = None
        frames = set(query_result.matched_frames)
        if reference_frames is None:
            reference_frames = frames
        else:
            f1 = f1_score_sets(frames, reference_frames)
        result.rows.append(AblationRow(label, query_result.total_ms, len(frames), f1_vs_reference=f1))
    return result


def run_multiquery_ablation(duration_s: float = 60.0, seed: int = 0) -> AblationResult:
    """§4.2 query-level reuse: Q1–Q5 individually vs in one shared pass."""
    from repro.experiments.mllm_comparison import _VQPY_QUERIES, _vqpy_config

    video = auburn_clip(duration_s=duration_s, seed=seed)
    zoo = get_library_zoo()
    result = AblationResult(title="Ablation — query-level computation reuse (Q1-Q5 together)")

    individual_ms = 0.0
    for factory in _VQPY_QUERIES.values():
        session = QuerySession(video, zoo=zoo, config=_vqpy_config())
        individual_ms += session.execute(factory()).total_ms
    result.rows.append(AblationRow("executed individually", individual_ms, 0))

    session = QuerySession(video, zoo=zoo, config=_vqpy_config())
    shared = session.execute_many([factory() for factory in _VQPY_QUERIES.values()])
    shared_ms = sum(r.total_ms for r in shared)
    result.rows.append(AblationRow("executed in one pass (shared)", shared_ms, 0))
    return result
