"""§5.1 — comparison with handcrafted pipelines (Figure 13, Table 1).

Three systems answer the five standardized CityFlow-NL queries:

* **CVIP** — the handcrafted pipeline: every attribute model on every crop
  of every frame, filtering at the end;
* **VQPy (vanilla)** — lazy, object-oriented execution without intrinsic
  annotations (properties recomputed per frame);
* **VQPy with annotation** — colour/type marked ``intrinsic=True`` so values
  are reused across frames of the same tracked vehicle (§4.2).

The CityFlow dataset ships annotated vehicle tracks, so all three systems
read tracks through the cheap ``dataset_tracks`` oracle rather than running
a full detector — matching the paper's setting where runtime is dominated by
the per-crop attribute models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.backend.planner import PlannerConfig
from repro.backend.session import QuerySession
from repro.baselines.handcrafted import CVIPPipeline
from repro.frontend.properties import stateful
from repro.frontend.query import Query
from repro.frontend.builtin import Vehicle
from repro.frontend.registry import get_library_zoo
from repro.metrics.runtime import RuntimeReport, speedup
from repro.videosim.datasets import CITYFLOW_QUERIES, CityFlowQuery, cityflow_dataset


class CityFlowVehicle(Vehicle):
    """Vehicle VObj reading the dataset's annotated tracks (no full detector).

    Direction uses the same trajectory-classifier model CVIP runs (rather than
    the free handcrafted estimator), matching the §5.1 setting where both
    systems share the exact same pretrained models per query.
    """

    model = "dataset_tracks"
    class_names = ("car", "bus", "truck")

    @stateful(inputs=("center",), history_len=5, model="direction_classifier")
    def direction(self, centers):
        ...


class CityFlowRetrievalQuery(Query):
    """A standardized colour-type-direction retrieval query (Table 1)."""

    def __init__(self, query: CityFlowQuery) -> None:
        self.spec = query
        self.vehicle = CityFlowVehicle("vehicle")
        self.name = f"VQPy[{query.standardized}]"

    def frame_constraint(self):
        return (
            (self.vehicle.score > 0.5)
            & (self.vehicle.color == self.spec.color)
            & (self.vehicle.vehicle_type == self.spec.vehicle_type)
            & (self.vehicle.direction == self.spec.direction)
        )

    def frame_output(self):
        return (self.vehicle.track_id, self.vehicle.bbox)


@dataclass
class CityFlowQueryResult:
    """Per-query totals for the three systems (seconds of virtual time)."""

    query_id: str
    standardized: str
    cvip_s: float
    vqpy_s: float
    vqpy_annotated_s: float

    @property
    def vqpy_speedup(self) -> float:
        return speedup(self.cvip_s, self.vqpy_s)

    @property
    def annotated_speedup(self) -> float:
        return speedup(self.cvip_s, self.vqpy_annotated_s)


@dataclass
class CityFlowExperimentResult:
    """Figure 13(a) rows plus the Figure 13(b) per-frame series."""

    per_query: List[CityFlowQueryResult] = field(default_factory=list)
    #: Per-frame virtual ms for one representative query, per system.
    per_frame_series: Dict[str, List[float]] = field(default_factory=dict)


def _vqpy_config(reuse: bool) -> PlannerConfig:
    # CVIP has no frame filters or specialized NNs, so they stay off here too
    # (the paper's fairness setting); the lazy/pull-up execution and the
    # intrinsic annotations are exactly what is being measured.
    return PlannerConfig(
        enable_reuse=reuse,
        use_registered_filters=False,
        consider_specialized=False,
        profile_plans=False,
    )


def run_cityflow_experiment(
    num_clips: int = 6,
    clip_seconds: float = 30.0,
    tracks_per_clip: int = 5,
    seed: int = 0,
    queries: Sequence[CityFlowQuery] = CITYFLOW_QUERIES,
    series_query_index: int = 2,
) -> CityFlowExperimentResult:
    """Run the Figure 13 comparison on a (scaled) CityFlow-like dataset."""
    zoo = get_library_zoo()
    videos = cityflow_dataset(num_clips=num_clips, seed=seed, duration_s=clip_seconds, tracks_per_clip=tracks_per_clip)
    cvip = CVIPPipeline(zoo)
    result = CityFlowExperimentResult()

    for idx, query in enumerate(queries):
        cvip_ms = vqpy_ms = annotated_ms = 0.0
        series_cvip: List[float] = []
        series_vqpy: List[float] = []
        series_annotated: List[float] = []
        for video in videos:
            cvip_result = cvip.run(video, query)
            cvip_ms += cvip_result.total_ms

            vanilla_session = QuerySession(video, zoo=zoo, config=_vqpy_config(reuse=False))
            vanilla_result = vanilla_session.execute(CityFlowRetrievalQuery(query))
            vqpy_ms += vanilla_result.total_ms

            annotated_session = QuerySession(video, zoo=zoo, config=_vqpy_config(reuse=True))
            annotated_result = annotated_session.execute(CityFlowRetrievalQuery(query))
            annotated_ms += annotated_result.total_ms

            if idx == series_query_index and not series_cvip:
                series_cvip = list(cvip_result.per_frame_ms)
                series_vqpy = list(vanilla_result.per_frame_ms)
                series_annotated = list(annotated_result.per_frame_ms)

        result.per_query.append(
            CityFlowQueryResult(
                query_id=query.query_id,
                standardized=query.standardized,
                cvip_s=cvip_ms / 1000.0,
                vqpy_s=vqpy_ms / 1000.0,
                vqpy_annotated_s=annotated_ms / 1000.0,
            )
        )
        if idx == series_query_index:
            result.per_frame_series = {
                "CVIP": series_cvip,
                "VQPy": series_vqpy,
                "VQPy with annotation": series_annotated,
            }
    return result


def format_fig13a(result: CityFlowExperimentResult) -> RuntimeReport:
    """Figure 13(a): runtime per query for the three systems."""
    report = RuntimeReport("Figure 13(a) — runtime comparison on CityFlow queries", unit="virtual seconds")
    for row in result.per_query:
        report.add_row(
            query=row.query_id,
            standardized=row.standardized,
            CVIP=row.cvip_s,
            VQPy=row.vqpy_s,
            VQPy_annotation=row.vqpy_annotated_s,
            vqpy_speedup=f"{row.vqpy_speedup:.1f}x",
            annotated_speedup=f"{row.annotated_speedup:.1f}x",
        )
    return report


def format_fig13b(result: CityFlowExperimentResult, bucket: int = 10) -> RuntimeReport:
    """Figure 13(b): per-frame runtime curves (bucketed means)."""
    report = RuntimeReport("Figure 13(b) — per-frame runtime", unit="virtual ms per frame")
    series = result.per_frame_series
    if not series:
        return report
    length = min(len(v) for v in series.values() if v) if any(series.values()) else 0
    for start in range(0, length, bucket):
        row = {"frame": start}
        for system, values in series.items():
            window = values[start : start + bucket]
            row[system] = sum(window) / len(window) if window else 0.0
        report.add_row(**row)
    return report
