"""A CVIP-style handcrafted retrieval pipeline (§5.1 baseline).

CVIP (Le et al., 2023) won the 2023 AI City Challenge track the paper
evaluates on.  Its relevant behaviour for the runtime comparison is simple:
for every tracked vehicle crop on every frame it computes *all* attribute
models — appearance embedding, colour, vehicle type — plus the motion
direction, and only at the very end scores/filters the tracks against the
standardized colour-type-direction query.  There is no lazy evaluation and
no per-object memoisation, which is why its per-query runtime is flat
regardless of the query (Figure 13).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Tuple

from repro.backend.results import QueryResult
from repro.common.clock import SimClock
from repro.models.zoo import ModelZoo
from repro.videosim.datasets import CityFlowQuery
from repro.videosim.video import SyntheticVideo


class CVIPPipeline:
    """Handcrafted pipeline: all models on all crops, filter at the end."""

    def __init__(
        self,
        zoo: ModelZoo,
        detector: str = "dataset_tracks",
        tracker: str = "kalman_tracker",
        color_model: str = "color_detect",
        type_model: str = "type_detect",
        embedding_model: str = "reid_feature",
        direction_model: str = "direction_classifier",
        direction_window: int = 5,
    ) -> None:
        self.zoo = zoo
        self.detector_name = detector
        self.tracker_name = tracker
        self.color_model_name = color_model
        self.type_model_name = type_model
        self.embedding_model_name = embedding_model
        self.direction_model_name = direction_model
        self.direction_window = direction_window

    def run(self, video: SyntheticVideo, query: CityFlowQuery, clock: Optional[SimClock] = None) -> QueryResult:
        """Run the full pipeline and filter tracks by the query at the end."""
        clock = clock or SimClock()
        detector = self.zoo.get(self.detector_name, fresh=True)
        tracker = self.zoo.get(self.tracker_name, fresh=True)
        color_model = self.zoo.get(self.color_model_name, fresh=True)
        type_model = self.zoo.get(self.type_model_name, fresh=True)
        embedding_model = self.zoo.get(self.embedding_model_name, fresh=True)
        direction_model = self.zoo.get(self.direction_model_name, fresh=True)

        result = QueryResult(query_name=f"CVIP[{query.standardized}]", plan_variant="cvip")
        # Per-track attribute votes accumulated over every frame.
        color_votes: Dict[int, Counter] = defaultdict(Counter)
        type_votes: Dict[int, Counter] = defaultdict(Counter)
        direction_votes: Dict[int, Counter] = defaultdict(Counter)
        track_frames: Dict[int, List[int]] = defaultdict(list)
        centers: Dict[int, List[Tuple[float, float]]] = defaultdict(list)

        start = clock.snapshot()
        for frame in video.frames():
            frame_start = clock.snapshot()
            detections = detector.detect(frame, clock)
            vehicles = [d for d in detections if d.class_name in ("car", "bus", "truck")]
            tracked = tracker.update(vehicles, clock)
            for det in tracked:
                # The handcrafted pipeline computes every attribute for every
                # crop on every frame — no laziness, no memoisation.
                embedding_model.predict(det, frame, clock)
                color = color_model.predict(det, frame, clock)
                vtype = type_model.predict(det, frame, clock)
                centers[det.track_id].append(det.bbox.center)
                window = centers[det.track_id][-self.direction_window :]
                direction = direction_model.predict(window, clock)
                color_votes[det.track_id][color] += 1
                type_votes[det.track_id][vtype] += 1
                if direction != "unknown":
                    direction_votes[det.track_id][direction] += 1
                track_frames[det.track_id].append(frame.frame_id)
            result.per_frame_ms.append(clock.since(frame_start))
            result.num_frames_processed += 1

        # Final filtering: a track matches when its majority attributes match
        # the standardized query.
        matched_tracks = set()
        for track_id in track_frames:
            color = _majority(color_votes[track_id])
            vtype = _majority(type_votes[track_id])
            direction = _majority(direction_votes[track_id]) or "go_straight"
            if color == query.color and _type_matches(vtype, query.vehicle_type) and direction == query.direction:
                matched_tracks.add(track_id)

        matched_frames = sorted({f for t in matched_tracks for f in track_frames[t]})
        result.matched_frames = matched_frames
        result.aggregates["matched_tracks"] = len(matched_tracks)
        result.total_ms = clock.since(start)
        result.cost_breakdown = dict(clock.breakdown())
        return result


def _majority(votes: Counter) -> Optional[str]:
    if not votes:
        return None
    return votes.most_common(1)[0][0]


def _type_matches(predicted: Optional[str], wanted: str) -> bool:
    if predicted is None:
        return False
    if wanted == "bus":
        return predicted == "bus"
    return predicted == wanted
