"""Baseline systems the paper compares against.

* :mod:`repro.baselines.handcrafted` — a CVIP-style handcrafted pipeline
  that runs every attribute model on every cropped object of every frame and
  filters at the very end (§5.1).
* :mod:`repro.baselines.sqlengine` — a miniature EVA-like SQL video DBMS
  with tables, UDFs, lateral ``EXTRACT_OBJECT`` joins, and no object-level
  memoisation (§5.2).
* :mod:`repro.baselines.mllm_baseline` — the VideoChat-style MLLM question
  answering flow (§5.3).
"""

from repro.baselines.handcrafted import CVIPPipeline
from repro.baselines.mllm_baseline import MLLMBaseline
from repro.baselines.sqlengine import SQLEngine

__all__ = ["CVIPPipeline", "MLLMBaseline", "SQLEngine"]
