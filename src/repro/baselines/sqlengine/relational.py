"""Relational primitives for the mini SQL engine: tables, expressions, UDFs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.common.errors import SQLEngineError


class Table:
    """A materialised table: ordered column names plus rows (dicts).

    Rows may carry hidden columns (prefixed with ``_``) used by UDFs (e.g.
    the simulated detection object behind a bounding box); these never show
    up in query outputs.
    """

    def __init__(self, name: str, columns: Sequence[str], rows: Optional[List[Dict[str, Any]]] = None) -> None:
        self.name = name
        self.columns = list(columns)
        self.rows: List[Dict[str, Any]] = rows or []

    def insert(self, row: Dict[str, Any]) -> None:
        self.rows.append(row)

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def visible_columns(self) -> List[str]:
        return [c for c in self.columns if not c.startswith("_")]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Table {self.name} cols={self.visible_columns()} rows={self.num_rows}>"


# ---------------------------------------------------------------------------
# Expression AST
# ---------------------------------------------------------------------------


class SQLExpr:
    """Base class for SQL expressions evaluated against one row."""

    def evaluate(self, row: Dict[str, Any], engine: "Any") -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def output_name(self) -> str:
        return "expr"


@dataclass
class ColumnRef(SQLExpr):
    """A possibly-qualified column reference (``trackresult.bbox`` or ``bbox``)."""

    name: str

    def evaluate(self, row: Dict[str, Any], engine: Any) -> Any:
        key = self.name.lower()
        if key in row:
            return row[key]
        # Fall back to the unqualified name.
        short = key.split(".")[-1]
        if short in row:
            return row[short]
        raise SQLEngineError(f"unknown column {self.name!r}; row has {sorted(k for k in row if not k.startswith('_'))}")

    def output_name(self) -> str:
        return self.name.lower().split(".")[-1]


@dataclass
class SQLLiteral(SQLExpr):
    value: Any

    def evaluate(self, row: Dict[str, Any], engine: Any) -> Any:
        return self.value

    def output_name(self) -> str:
        return "literal"


@dataclass
class FuncCall(SQLExpr):
    """A UDF (or builtin) invocation over argument expressions."""

    name: str
    args: List[SQLExpr] = field(default_factory=list)

    def evaluate(self, row: Dict[str, Any], engine: Any) -> Any:
        return engine.call_function(self.name, [a.evaluate(row, engine) for a in self.args], row)

    def output_name(self) -> str:
        return self.name.lower()


_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


@dataclass
class SQLComparison(SQLExpr):
    left: SQLExpr
    op: str
    right: SQLExpr

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise SQLEngineError(f"unsupported comparison operator {self.op!r}")

    def evaluate(self, row: Dict[str, Any], engine: Any) -> bool:
        try:
            return bool(_OPS[self.op](self.left.evaluate(row, engine), self.right.evaluate(row, engine)))
        except TypeError:
            return False

    def output_name(self) -> str:
        return "condition"


# ---------------------------------------------------------------------------
# UDFs
# ---------------------------------------------------------------------------


@dataclass
class UDF:
    """A registered user-defined function.

    ``func`` receives the evaluated arguments, plus keyword access to the
    current row and the engine (for clock charging).  A UDF may return a
    scalar (one output column named after the function) or a dict (one
    column per key — EVA's dataframe-returning UDFs).
    """

    name: str
    func: Callable[..., Any]
    #: Additional per-call virtual cost charged on top of the engine's fixed
    #: per-row UDF overhead (e.g. the wrapped model's own cost is charged by
    #: the model itself).
    extra_cost_ms: float = 0.0

    def __call__(self, args: Sequence[Any], row: Dict[str, Any], engine: Any) -> Any:
        return self.func(*args, row=row, engine=engine)
