"""A parser for the SQL subset used by the EVA-style workloads.

The grammar covers exactly the statement shapes of the paper's appendix
(Figures 20, 22, 24):

* ``LOAD VIDEO '<path>' INTO <table>;``
* ``CREATE FUNCTION <name> IMPL '<path>';``
* ``CREATE TABLE <name> AS <select>;``
* ``SELECT <items> FROM <table> [JOIN <table> ON <eq> [AND <eq>]...]
  [JOIN LATERAL UNNEST(EXTRACT_OBJECT(<col>, <detector>, <tracker>))
  AS <alias>(<cols>)] [WHERE <predicates>];``
* ``DROP TABLE [IF EXISTS] <name>;`` / ``DROP FUNCTION [IF EXISTS] <name>;``

The parser is deliberately small — it tokenises, then uses recursive descent
for expressions (identifiers, dotted columns, literals, nested function
calls, comparisons, AND-conjunctions).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.baselines.sqlengine.relational import ColumnRef, FuncCall, SQLComparison, SQLExpr, SQLLiteral
from repro.common.errors import SQLEngineError


# ---------------------------------------------------------------------------
# Statement dataclasses
# ---------------------------------------------------------------------------


@dataclass
class LoadVideo:
    path: str
    table: str


@dataclass
class CreateFunction:
    name: str
    impl: str


@dataclass
class Lateral:
    """``JOIN LATERAL UNNEST(EXTRACT_OBJECT(col, Detector, Tracker)) AS T(cols)``."""

    data_column: str
    detector: str
    tracker: str
    alias: str
    columns: List[str]


@dataclass
class Join:
    table: str
    on: List[Tuple[str, str]]


@dataclass
class Select:
    items: List[SQLExpr]
    from_table: str
    joins: List[Join] = field(default_factory=list)
    lateral: Optional[Lateral] = None
    where: List[SQLExpr] = field(default_factory=list)


@dataclass
class CreateTableAs:
    name: str
    select: Select


@dataclass
class DropTable:
    name: str
    if_exists: bool = False


@dataclass
class DropFunction:
    name: str
    if_exists: bool = False


Statement = Any


# ---------------------------------------------------------------------------
# Tokeniser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(
        '(?:[^']*)'            |   # quoted string
        >=|<=|!=|<>            |   # two-char operators
        [(),;=<>*]             |   # punctuation / single-char operators
        [A-Za-z_][\w.]*        |   # identifiers (possibly dotted)
        -?\d+\.\d+|-?\d+           # numbers
    )
    """,
    re.VERBOSE,
)


def _tokenize(sql: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if not match:
            if sql[pos:].strip() == "":
                break
            raise SQLEngineError(f"cannot tokenise SQL near: {sql[pos:pos + 30]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _TokenStream:
    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self, offset: int = 0) -> Optional[str]:
        idx = self.pos + offset
        return self.tokens[idx] if idx < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise SQLEngineError("unexpected end of SQL statement")
        self.pos += 1
        return token

    def expect(self, *expected: str) -> str:
        token = self.next()
        if token.upper() not in {e.upper() for e in expected}:
            raise SQLEngineError(f"expected {expected}, got {token!r}")
        return token

    def accept(self, keyword: str) -> bool:
        token = self.peek()
        if token is not None and token.upper() == keyword.upper():
            self.pos += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.peek() is None


# ---------------------------------------------------------------------------
# Expression parsing
# ---------------------------------------------------------------------------


def _parse_expr(stream: _TokenStream) -> SQLExpr:
    token = stream.next()
    if token.startswith("'") and token.endswith("'"):
        return SQLLiteral(token[1:-1])
    if re.fullmatch(r"-?\d+\.\d+", token):
        return SQLLiteral(float(token))
    if re.fullmatch(r"-?\d+", token):
        return SQLLiteral(int(token))
    if token == "*":
        return ColumnRef("*")
    if not re.fullmatch(r"[A-Za-z_][\w.]*", token):
        raise SQLEngineError(f"unexpected token {token!r} in expression")
    # Function call?
    if stream.peek() == "(":
        stream.next()  # consume "("
        args: List[SQLExpr] = []
        if stream.peek() != ")":
            args.append(_parse_expr(stream))
            while stream.accept(","):
                args.append(_parse_expr(stream))
        stream.expect(")")
        return FuncCall(token, args)
    return ColumnRef(token)


def _parse_condition(stream: _TokenStream) -> SQLExpr:
    left = _parse_expr(stream)
    op = stream.peek()
    if op in ("=", "!=", "<>", ">", ">=", "<", "<="):
        stream.next()
        right = _parse_expr(stream)
        return SQLComparison(left, op, right)
    return left


def _parse_conditions(stream: _TokenStream) -> List[SQLExpr]:
    conditions = [_parse_condition(stream)]
    while stream.accept("AND"):
        conditions.append(_parse_condition(stream))
    return conditions


# ---------------------------------------------------------------------------
# Statement parsing
# ---------------------------------------------------------------------------


def _parse_select(stream: _TokenStream) -> Select:
    stream.expect("SELECT")
    items = [_parse_expr(stream)]
    while stream.accept(","):
        items.append(_parse_expr(stream))
    stream.expect("FROM")
    from_table = stream.next()

    joins: List[Join] = []
    lateral: Optional[Lateral] = None
    while stream.peek() is not None and stream.peek().upper() == "JOIN":
        stream.next()
        if stream.peek() is not None and stream.peek().upper() == "LATERAL":
            stream.next()
            stream.expect("UNNEST")
            stream.expect("(")
            stream.expect("EXTRACT_OBJECT")
            stream.expect("(")
            data_column = stream.next()
            stream.expect(",")
            detector = stream.next()
            stream.expect(",")
            tracker = stream.next()
            stream.expect(")")
            stream.expect(")")
            stream.expect("AS")
            alias = stream.next()
            stream.expect("(")
            columns = [stream.next()]
            while stream.accept(","):
                columns.append(stream.next())
            stream.expect(")")
            lateral = Lateral(data_column, detector, tracker, alias, columns)
        else:
            table = stream.next()
            stream.expect("ON")
            on: List[Tuple[str, str]] = []
            conditions = _parse_conditions(stream)
            for cond in conditions:
                if not isinstance(cond, SQLComparison) or cond.op != "=":
                    raise SQLEngineError("JOIN ... ON only supports equality conditions")
                if not isinstance(cond.left, ColumnRef) or not isinstance(cond.right, ColumnRef):
                    raise SQLEngineError("JOIN ... ON conditions must compare columns")
                on.append((cond.left.name, cond.right.name))
            joins.append(Join(table, on))

    where: List[SQLExpr] = []
    if stream.accept("WHERE"):
        where = _parse_conditions(stream)
    return Select(items=items, from_table=from_table, joins=joins, lateral=lateral, where=where)


def parse_statement(sql: str) -> Statement:
    """Parse a single SQL statement (without a trailing semicolon)."""
    stream = _TokenStream(_tokenize(sql))
    head = stream.peek()
    if head is None:
        raise SQLEngineError("empty SQL statement")
    head = head.upper()

    if head == "LOAD":
        stream.expect("LOAD")
        stream.expect("VIDEO")
        path = stream.next().strip("'")
        stream.expect("INTO")
        return LoadVideo(path=path, table=stream.next())

    if head == "CREATE":
        stream.expect("CREATE")
        kind = stream.next().upper()
        if kind == "FUNCTION":
            name = stream.next()
            stream.expect("IMPL")
            return CreateFunction(name=name, impl=stream.next().strip("'"))
        if kind == "TABLE":
            name = stream.next()
            stream.expect("AS")
            return CreateTableAs(name=name, select=_parse_select(stream))
        raise SQLEngineError(f"unsupported CREATE {kind}")

    if head == "SELECT":
        return _parse_select(stream)

    if head == "DROP":
        stream.expect("DROP")
        kind = stream.next().upper()
        if_exists = False
        if stream.accept("IF"):
            stream.expect("EXISTS")
            if_exists = True
        name = stream.next()
        if kind == "TABLE":
            return DropTable(name=name, if_exists=if_exists)
        if kind == "FUNCTION":
            return DropFunction(name=name, if_exists=if_exists)
        raise SQLEngineError(f"unsupported DROP {kind}")

    raise SQLEngineError(f"unsupported statement starting with {head!r}")


def parse_statements(sql: str) -> List[Statement]:
    """Parse a script of semicolon-separated statements."""
    statements: List[Statement] = []
    for chunk in sql.split(";"):
        if chunk.strip():
            statements.append(parse_statement(chunk))
    return statements
