"""A miniature EVA-like SQL video DBMS (the §5.2 baseline).

The engine deliberately mirrors the structural properties the paper blames
for EVA's slowness:

* the data model is **tabular** — every detected object on every frame is an
  independent row, and there is no notion of a persistent video object, so
  per-object memoisation of property UDFs is impossible;
* UDFs are evaluated **per row** with a fixed invocation overhead (the
  pandas-DataFrame wrapping EVA requires);
* stateful properties (speed) require materialising lagged tables and
  **joining** them back;
* each ``CREATE TABLE ... AS SELECT`` **materialises eagerly**; filters in a
  later statement cannot be pushed into an earlier one (no views), unless
  the user rewrites the SQL by hand — the "EVA (refined)" variant.

The SQL surface supports the statement shapes used in the paper's appendix
(Figures 20, 22, 24): ``LOAD VIDEO``, ``CREATE FUNCTION``, ``CREATE TABLE AS
SELECT``, ``SELECT`` with inner joins and ``JOIN LATERAL
UNNEST(EXTRACT_OBJECT(...))``, ``WHERE`` conjunctions, and ``DROP``.
"""

from repro.baselines.sqlengine.engine import SQLEngine
from repro.baselines.sqlengine.relational import Table
from repro.baselines.sqlengine.parser import parse_statements

__all__ = ["SQLEngine", "Table", "parse_statements"]
