"""The EVA-like SQL engine: statement execution over a tabular data model.

Cost model
----------
Besides the simulated model costs charged inside UDFs (detection, colour,
tracking, ...), the engine charges the structural overheads that the paper
identifies as EVA's weaknesses:

* ``UDF_CALL_OVERHEAD_MS`` per UDF invocation per row — EVA passes crops and
  boxes through pandas DataFrames, so every row pays a wrapping cost;
* ``SCAN_MS_PER_ROW`` for reading a materialised table;
* ``MATERIALIZE_MS_PER_ROW`` for writing one (``CREATE TABLE AS`` is eager);
* ``JOIN_MS_PER_ROW`` per joined output row.

Because the data model has no object identity, a property UDF (e.g. colour)
is re-evaluated for the same physical car on every frame — the object-level
memoisation VQPy performs is structurally unavailable here (§4.2).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.baselines.sqlengine.parser import (
    CreateFunction,
    CreateTableAs,
    DropFunction,
    DropTable,
    Join,
    Lateral,
    LoadVideo,
    Select,
    Statement,
    parse_statements,
)
from repro.baselines.sqlengine.relational import ColumnRef, FuncCall, SQLExpr, Table, UDF
from repro.common.clock import SimClock
from repro.common.errors import SQLEngineError
from repro.models.zoo import ModelZoo
from repro.videosim.video import SyntheticVideo

#: Structural overheads (virtual ms); see module docstring.
UDF_CALL_OVERHEAD_MS = 2.0
SCAN_MS_PER_ROW = 0.02
MATERIALIZE_MS_PER_ROW = 0.10
JOIN_MS_PER_ROW = 0.05
#: Extra cost of EVA's Crop builtin: slicing the frame and converting the
#: crop into the pandas payload the property UDF consumes.
CROP_MS = 10.0

#: Detector/tracker names EVA exposes inside EXTRACT_OBJECT, mapped onto the
#: simulated zoo models.
_DETECTOR_ALIASES = {"yolo": "yolox", "yolox": "yolox", "yolov8m": "yolov8m", "yolov5s": "yolov5s"}
_TRACKER_ALIASES = {"norfairtracker": "norfair_tracker", "norfair": "norfair_tracker", "kalman": "kalman_tracker"}


class SQLEngine:
    """Executes the supported SQL subset against synthetic videos."""

    def __init__(self, zoo: ModelZoo, clock: Optional[SimClock] = None, seed: int = 0) -> None:
        self.zoo = zoo
        self.clock = clock if clock is not None else SimClock()
        self.seed = seed
        self.tables: Dict[str, Table] = {}
        self.videos: Dict[str, SyntheticVideo] = {}
        self.functions: Dict[str, UDF] = {}
        self._available_impls: Dict[str, UDF] = {}
        self._register_builtin_impls()

    # ------------------------------------------------------------------- UDFs --
    def _register_builtin_impls(self) -> None:
        """UDF implementations that CREATE FUNCTION can bind to by name."""
        color_model = self.zoo.get("color_detect", fresh=True)
        speed_model = self.zoo.get("speed_estimator", fresh=True)

        def color_impl(crop, *, row, engine):
            detection = crop if crop is not None else row.get("_detection")
            if detection is None:
                return "unknown"
            return color_model.predict(detection, row["_frame"], engine.clock)

        def velocity_impl(bbox, last_bbox, *, row, engine):
            if bbox is None or last_bbox is None:
                return 0.0
            return speed_model.predict([last_bbox, bbox], engine.clock)

        def add1_impl(frame_id, iid, bbox, *, row, engine):
            # EVA-style lag helper: emit the row keyed to the *next* frame so
            # joining on added_id = id pairs each detection with its previous
            # frame's box.
            return {"added_id": frame_id + 1, "cur_iid": iid, "last_bbox": bbox}

        def crop_impl(data, bbox, *, row, engine):
            return row.get("_detection")

        self._available_impls = {
            "color": UDF("Color", color_impl),
            "velocity": UDF("Velocity", velocity_impl),
            "add1": UDF("Add1", add1_impl),
        }
        # Crop is always available without CREATE FUNCTION (EVA builtin).
        self.functions["crop"] = UDF("Crop", crop_impl, extra_cost_ms=CROP_MS)

    def call_function(self, name: str, args: Sequence[Any], row: Dict[str, Any]) -> Any:
        udf = self.functions.get(name.lower())
        if udf is None:
            raise SQLEngineError(f"unknown function {name!r}; did you CREATE FUNCTION it?")
        self.clock.charge(f"sql:udf_overhead:{udf.name}", UDF_CALL_OVERHEAD_MS + udf.extra_cost_ms)
        return udf(args, row, self)

    # -------------------------------------------------------------- statements --
    def execute(self, sql: str) -> List[Dict[str, Any]]:
        """Execute a script of SQL statements; returns the last SELECT's rows."""
        result: List[Dict[str, Any]] = []
        for statement in parse_statements(sql):
            out = self.execute_statement(statement)
            if out is not None:
                result = out
        return result

    def execute_statement(self, statement: Statement) -> Optional[List[Dict[str, Any]]]:
        if isinstance(statement, LoadVideo):
            return self._load_video(statement)
        if isinstance(statement, CreateFunction):
            return self._create_function(statement)
        if isinstance(statement, CreateTableAs):
            rows, columns = self._run_select(statement.select)
            self.tables[statement.name.lower()] = Table(statement.name.lower(), columns, rows)
            self.clock.charge("sql:materialize", MATERIALIZE_MS_PER_ROW * len(rows))
            return None
        if isinstance(statement, Select):
            rows, _ = self._run_select(statement)
            return [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
        if isinstance(statement, DropTable):
            if statement.name.lower() not in self.tables and not statement.if_exists:
                raise SQLEngineError(f"table {statement.name!r} does not exist")
            self.tables.pop(statement.name.lower(), None)
            self.videos.pop(statement.name.lower(), None)
            return None
        if isinstance(statement, DropFunction):
            if statement.name.lower() not in self.functions and not statement.if_exists:
                raise SQLEngineError(f"function {statement.name!r} does not exist")
            self.functions.pop(statement.name.lower(), None)
            return None
        raise SQLEngineError(f"unsupported statement {statement!r}")

    # -------------------------------------------------------------------- video --
    def register_video(self, path: str, video: SyntheticVideo) -> None:
        """Make a synthetic video available under a path for LOAD VIDEO."""
        self._available_videos = getattr(self, "_available_videos", {})
        self._available_videos[path] = video

    def _load_video(self, statement: LoadVideo) -> None:
        available = getattr(self, "_available_videos", {})
        if statement.path not in available:
            raise SQLEngineError(
                f"no video registered under {statement.path!r}; call register_video() first"
            )
        self.videos[statement.table.lower()] = available[statement.path]
        return None

    def _create_function(self, statement: CreateFunction) -> None:
        impl = self._available_impls.get(statement.name.lower())
        if impl is None:
            raise SQLEngineError(
                f"no implementation available for function {statement.name!r}; "
                f"known implementations: {sorted(self._available_impls)}"
            )
        self.functions[statement.name.lower()] = impl
        return None

    # -------------------------------------------------------------------- select --
    def _source_rows(self, select: Select) -> List[Dict[str, Any]]:
        name = select.from_table.lower()
        if name in self.videos:
            return self._video_rows(name, select.lateral)
        if name in self.tables:
            table = self.tables[name]
            self.clock.charge("sql:scan", SCAN_MS_PER_ROW * table.num_rows)
            return [dict(row, **{f"{name}.{k}": v for k, v in row.items() if not k.startswith("_")}) for row in table.rows]
        raise SQLEngineError(f"unknown table or video {select.from_table!r}")

    def _video_rows(self, name: str, lateral: Optional[Lateral]) -> List[Dict[str, Any]]:
        video = self.videos[name]
        if lateral is None:
            rows = [{"id": f.frame_id, "data": f, "_frame": f} for f in video.frames()]
            self.clock.charge("sql:scan", SCAN_MS_PER_ROW * len(rows))
            return rows
        detector_name = _DETECTOR_ALIASES.get(lateral.detector.lower())
        tracker_name = _TRACKER_ALIASES.get(lateral.tracker.lower())
        if detector_name is None or tracker_name is None:
            raise SQLEngineError(
                f"EXTRACT_OBJECT supports detectors {sorted(_DETECTOR_ALIASES)} and trackers {sorted(_TRACKER_ALIASES)}"
            )
        detector = self.zoo.get(detector_name, fresh=True)
        tracker = self.zoo.get(tracker_name, fresh=True)
        rows: List[Dict[str, Any]] = []
        for frame in video.frames():
            detections = detector.detect(frame, self.clock)
            tracked = tracker.update(detections, self.clock)
            for det in tracked:
                row = {
                    "id": frame.frame_id,
                    "data": frame,
                    "iid": det.track_id,
                    "label": det.class_name,
                    "bbox": det.bbox,
                    "score": det.score,
                    "_frame": frame,
                    "_detection": det,
                }
                for col in ("iid", "label", "bbox", "score"):
                    row[f"{lateral.alias.lower()}.{col}"] = row[col]
                rows.append(row)
        self.clock.charge("sql:scan", SCAN_MS_PER_ROW * len(rows))
        return rows

    def _apply_joins(self, rows: List[Dict[str, Any]], joins: List[Join]) -> List[Dict[str, Any]]:
        for join in joins:
            right_name = join.table.lower()
            right = self.tables.get(right_name)
            if right is None:
                raise SQLEngineError(f"unknown table {join.table!r} in JOIN")
            self.clock.charge("sql:scan", SCAN_MS_PER_ROW * right.num_rows)
            # Hash join on the first equality; remaining equalities filter.
            first_left, first_right = join.on[0]
            build: Dict[Any, List[Dict[str, Any]]] = {}
            for row in right.rows:
                qualified = dict(row, **{f"{right_name}.{k}": v for k, v in row.items() if not k.startswith("_")})
                key = _resolve(qualified, first_right) if _has(qualified, first_right) else _resolve(qualified, first_left)
                build.setdefault(key, []).append(qualified)
            joined: List[Dict[str, Any]] = []
            for row in rows:
                key = _resolve(row, first_left) if _has(row, first_left) else _resolve(row, first_right)
                for candidate in build.get(key, ()):  # matching right rows
                    merged = {**candidate, **row}
                    if all(_resolve(merged, l) == _resolve(merged, r) for l, r in join.on[1:]):
                        joined.append(merged)
            self.clock.charge("sql:join", JOIN_MS_PER_ROW * max(len(joined), 1))
            rows = joined
        return rows

    def _run_select(self, select: Select) -> tuple[List[Dict[str, Any]], List[str]]:
        rows = self._source_rows(select)
        rows = self._apply_joins(rows, select.joins)

        # WHERE: evaluated per row, over the full conjunction — the engine
        # has no per-conjunct short-circuiting of UDF work beyond Python's
        # `and` semantics on the already-materialised columns.
        if select.where:
            rows = [row for row in rows if all(cond.evaluate(row, self) for cond in select.where)]

        # Projection.
        out_rows: List[Dict[str, Any]] = []
        columns: List[str] = []
        for row in rows:
            out: Dict[str, Any] = {}
            for item in select.items:
                if isinstance(item, ColumnRef) and item.name == "*":
                    out.update({k: v for k, v in row.items() if not k.startswith("_") and "." not in k})
                    continue
                value = item.evaluate(row, self)
                if isinstance(value, dict):
                    out.update(value)
                else:
                    out[item.output_name()] = value
            # Hidden columns survive into materialised tables so later UDFs
            # (e.g. Color over a crop) can still reach the frame/detection.
            for hidden in ("_frame", "_detection"):
                if hidden in row:
                    out[hidden] = row[hidden]
            out_rows.append(out)
            if not columns:
                columns = list(out.keys())
        return out_rows, columns


def _has(row: Dict[str, Any], column: str) -> bool:
    key = column.lower()
    return key in row or key.split(".")[-1] in row


def _resolve(row: Dict[str, Any], column: str) -> Any:
    key = column.lower()
    if key in row:
        return row[key]
    return row.get(key.split(".")[-1])
