"""The EVA workloads of §5.2, written as SQL scripts (Appendix A).

Three queries are compared against VQPy: red cars (stateless property),
speeding cars (stateful property), and red speeding cars (both).  For the
third query a hand-"refined" variant manually pushes the colour/label
filters into an earlier statement — the optimisation the paper applied to
give EVA its best case (it still cannot reuse per-object computation).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.backend.results import QueryResult
from repro.baselines.sqlengine.engine import SQLEngine
from repro.common.clock import SimClock
from repro.models.zoo import ModelZoo
from repro.videosim.video import SyntheticVideo

#: SQL mirroring Figure 20 (red cars).
RED_CAR_SQL = """
LOAD VIDEO 'video.mp4' INTO MyVideo;
CREATE FUNCTION Color IMPL './color.py';
CREATE TABLE TrackResult AS
  SELECT id, Color(Crop(data, bbox)), T.iid, T.bbox, T.score, T.label
  FROM MyVideo
  JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker)) AS T(iid, label, bbox, score);
SELECT id, iid, bbox
  FROM TrackResult
  WHERE label = 'car' AND color = 'red' AND score > 0.6;
DROP TABLE IF EXISTS MyVideo;
DROP TABLE IF EXISTS TrackResult;
DROP FUNCTION IF EXISTS Color;
"""

#: SQL mirroring Figure 22 (speeding cars).
SPEEDING_CAR_SQL = """
LOAD VIDEO 'video.mp4' INTO MyVideo;
CREATE FUNCTION Add1 IMPL './add1.py';
CREATE FUNCTION Velocity IMPL './velocity.py';
CREATE TABLE TrackResult AS
  SELECT id, data, T.iid, T.bbox, T.score, T.label
  FROM MyVideo
  JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker)) AS T(iid, label, bbox, score);
CREATE TABLE TrackResultAdd1 AS
  SELECT Add1(id, iid, bbox)
  FROM TrackResult;
SELECT trackresult.id, trackresult.iid, trackresult.bbox
  FROM TrackResult
  JOIN TrackResultAdd1
    ON trackresult.id = trackresultadd1.added_id
   AND trackresult.iid = trackresultadd1.cur_iid
  WHERE trackresult.label = 'car'
    AND Velocity(trackresult.bbox, trackresultadd1.last_bbox) > {speed_threshold};
DROP TABLE IF EXISTS MyVideo;
DROP TABLE IF EXISTS TrackResult;
DROP TABLE IF EXISTS TrackResultAdd1;
DROP FUNCTION IF EXISTS Add1;
DROP FUNCTION IF EXISTS Velocity;
"""

#: SQL mirroring Figure 24 (red speeding cars, unrefined).
#:
#: EVA only allows a single statement per query, so the paper had to express
#: this query through *nesting*; because EVA cannot create views from
#: queries, the expensive inner pipeline (object extraction plus the colour
#: UDF over every crop) is executed again when the lag table is derived —
#: the "redundant executions of UDFs" the paper calls out.  The script below
#: makes that re-execution explicit as a second, identical extraction.
RED_SPEEDING_CAR_SQL = """
LOAD VIDEO 'video.mp4' INTO MyVideo;
CREATE FUNCTION Add1 IMPL './add1.py';
CREATE FUNCTION Velocity IMPL './velocity.py';
CREATE FUNCTION Color IMPL './color.py';
CREATE TABLE TrackResult AS
  SELECT id, Color(Crop(data, bbox)), T.iid, T.bbox, T.score, T.label
  FROM MyVideo
  JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker)) AS T(iid, label, bbox, score);
CREATE TABLE TrackResultInner AS
  SELECT id, Color(Crop(data, bbox)), T.iid, T.bbox, T.score, T.label
  FROM MyVideo
  JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker)) AS T(iid, label, bbox, score);
CREATE TABLE TrackResultAdd1 AS
  SELECT Add1(id, iid, bbox)
  FROM TrackResultInner;
CREATE TABLE TrackResultJoin AS
  SELECT trackresult.id, trackresult.iid, trackresult.color, trackresult.bbox,
         trackresult.label, trackresult.score, trackresultadd1.last_bbox
  FROM TrackResult
  JOIN TrackResultAdd1
    ON trackresult.id = trackresultadd1.added_id
   AND trackresult.iid = trackresultadd1.cur_iid;
SELECT id, iid, bbox
  FROM TrackResultJoin
  WHERE Velocity(bbox, last_bbox) > {speed_threshold}
    AND color = 'red' AND label = 'car';
DROP TABLE IF EXISTS MyVideo;
DROP TABLE IF EXISTS TrackResult;
DROP TABLE IF EXISTS TrackResultInner;
DROP TABLE IF EXISTS TrackResultAdd1;
DROP TABLE IF EXISTS TrackResultJoin;
DROP FUNCTION IF EXISTS Add1;
DROP FUNCTION IF EXISTS Velocity;
DROP FUNCTION IF EXISTS Color;
"""

#: Hand-refined red-speeding-car query: the colour/label filters are pushed
#: into an intermediate table so the lag-join and Velocity UDF only process
#: red cars.  Colour itself is still computed for every row of every frame —
#: the object-level reuse VQPy performs has no tabular equivalent.
RED_SPEEDING_CAR_REFINED_SQL = """
LOAD VIDEO 'video.mp4' INTO MyVideo;
CREATE FUNCTION Add1 IMPL './add1.py';
CREATE FUNCTION Velocity IMPL './velocity.py';
CREATE FUNCTION Color IMPL './color.py';
CREATE TABLE TrackResult AS
  SELECT id, Color(Crop(data, bbox)), T.iid, T.bbox, T.score, T.label
  FROM MyVideo
  JOIN LATERAL UNNEST(EXTRACT_OBJECT(data, Yolo, NorFairTracker)) AS T(iid, label, bbox, score);
CREATE TABLE RedCars AS
  SELECT id, iid, color, bbox, label, score
  FROM TrackResult
  WHERE color = 'red' AND label = 'car';
CREATE TABLE RedCarsAdd1 AS
  SELECT Add1(id, iid, bbox)
  FROM RedCars;
SELECT redcars.id, redcars.iid, redcars.bbox
  FROM RedCars
  JOIN RedCarsAdd1
    ON redcars.id = redcarsadd1.added_id
   AND redcars.iid = redcarsadd1.cur_iid
  WHERE Velocity(redcars.bbox, redcarsadd1.last_bbox) > {speed_threshold};
DROP TABLE IF EXISTS MyVideo;
DROP TABLE IF EXISTS TrackResult;
DROP TABLE IF EXISTS RedCars;
DROP TABLE IF EXISTS RedCarsAdd1;
DROP FUNCTION IF EXISTS Add1;
DROP FUNCTION IF EXISTS Velocity;
DROP FUNCTION IF EXISTS Color;
"""

EVA_QUERIES: Dict[str, str] = {
    "red_car": RED_CAR_SQL,
    "speeding_car": SPEEDING_CAR_SQL,
    "red_speeding_car": RED_SPEEDING_CAR_SQL,
    "red_speeding_car_refined": RED_SPEEDING_CAR_REFINED_SQL,
}


def run_eva_query(
    query_name: str,
    video: SyntheticVideo,
    zoo: ModelZoo,
    clock: Optional[SimClock] = None,
    speed_threshold: float = 10.0,
) -> QueryResult:
    """Run one of the EVA workloads on a video and package the result.

    The returned :class:`QueryResult` carries the matched frame ids and the
    total virtual cost, so experiments can compare EVA and VQPy directly.
    """
    if query_name not in EVA_QUERIES:
        raise KeyError(f"unknown EVA query {query_name!r}; choose from {sorted(EVA_QUERIES)}")
    clock = clock or SimClock()
    engine = SQLEngine(zoo, clock=clock)
    engine.register_video("video.mp4", video)
    start = clock.snapshot()
    sql = EVA_QUERIES[query_name].format(speed_threshold=speed_threshold)
    rows = engine.execute(sql)

    result = QueryResult(query_name=f"EVA[{query_name}]", plan_variant="eva")
    result.num_frames_processed = video.num_frames
    result.matched_frames = sorted({int(row["id"]) for row in rows})
    result.total_ms = clock.since(start)
    result.cost_breakdown = dict(clock.breakdown())
    result.aggregates["num_rows"] = len(rows)
    return result
