"""MLLM (VideoChat-style) baseline workflow for the §5.3 comparison.

VideoChat answers questions about a whole clip, not individual frames, and
its GPU memory grows with clip length — so, exactly as the paper had to, the
baseline splits a long video into one-second clips, pre-computes each clip's
embedding, and asks every question per clip.  Images (the V-COCO setting)
are handled one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.common.clock import SimClock
from repro.common.config import VideoSpec
from repro.models.mllm import MLLMVariantProfile, VideoChatSim
from repro.videosim.video import SyntheticVideo


@dataclass
class MLLMAnswerSet:
    """Per-clip answers plus the cost of producing them."""

    question_id: str
    answers: List[Optional[object]] = field(default_factory=list)
    truths: List[object] = field(default_factory=list)
    precompute_ms: float = 0.0
    query_ms: float = 0.0
    num_frames: int = 0

    @property
    def ms_per_frame(self) -> float:
        if self.num_frames == 0:
            return 0.0
        return self.query_ms / self.num_frames

    @property
    def precompute_ms_per_frame(self) -> float:
        if self.num_frames == 0:
            return 0.0
        return self.precompute_ms / self.num_frames


def split_into_clips(video: SyntheticVideo, clip_seconds: float = 1.0) -> List[SyntheticVideo]:
    """Split a video into consecutive fixed-length clips (last may be shorter).

    Each clip reuses the parent's scripted objects but covers a shifted frame
    window, implemented by offsetting every object's enter/exit frames.
    """
    clips: List[SyntheticVideo] = []
    frames_per_clip = max(int(round(clip_seconds * video.fps)), 1)
    num_clips = (video.num_frames + frames_per_clip - 1) // frames_per_clip
    for i in range(num_clips):
        start = i * frames_per_clip
        length = min(frames_per_clip, video.num_frames - start)
        spec = VideoSpec(
            f"{video.spec.name}_clip{i:04d}",
            video.fps,
            video.spec.width,
            video.spec.height,
            duration_s=length / video.fps,
        )
        clips.append(_ClipView(spec, video, start))
    return clips


class _ClipView(SyntheticVideo):
    """A window onto a parent video: frame ``k`` maps to parent ``offset + k``."""

    def __init__(self, spec: VideoSpec, parent: SyntheticVideo, offset: int) -> None:
        super().__init__(spec, objects=[], events=[], scene_attributes=parent.scene_attributes, seed=parent.seed)
        self._parent = parent
        self._offset = offset

    def frame(self, frame_id: int):
        if not 0 <= frame_id < self.num_frames:
            raise IndexError(frame_id)
        parent_frame = self._parent.frame(self._offset + frame_id)
        return parent_frame

    @property
    def offset(self) -> int:
        return self._offset


class MLLMBaseline:
    """Runs VideoChat-style question answering over clip splits."""

    def __init__(self, sim: VideoChatSim, clip_seconds: float = 1.0) -> None:
        self.sim = sim
        self.clip_seconds = clip_seconds

    def boolean_over_video(
        self,
        video: SyntheticVideo,
        question_id: str,
        truth_fn: Callable[[SyntheticVideo], bool],
        clock: Optional[SimClock] = None,
    ) -> MLLMAnswerSet:
        """Ask a yes/no question about every one-second clip of the video."""
        clock = clock or SimClock()
        result = MLLMAnswerSet(question_id=question_id, num_frames=video.num_frames)
        for clip in split_into_clips(video, self.clip_seconds):
            pre_start = clock.snapshot()
            self.sim.precompute(clip, clock)
            result.precompute_ms += clock.since(pre_start)
            truth = truth_fn(clip)
            q_start = clock.snapshot()
            answer = self.sim.answer_boolean(question_id, truth, clock)
            result.query_ms += clock.since(q_start)
            result.answers.append(answer)
            result.truths.append(truth)
        return result

    def count_over_video(
        self,
        video: SyntheticVideo,
        question_id: str,
        truth_fn: Callable[[SyntheticVideo], float],
        clock: Optional[SimClock] = None,
    ) -> MLLMAnswerSet:
        """Ask an aggregation question about every one-second clip."""
        clock = clock or SimClock()
        result = MLLMAnswerSet(question_id=question_id, num_frames=video.num_frames)
        for clip in split_into_clips(video, self.clip_seconds):
            pre_start = clock.snapshot()
            self.sim.precompute(clip, clock)
            result.precompute_ms += clock.since(pre_start)
            truth = truth_fn(clip)
            q_start = clock.snapshot()
            answer = self.sim.answer_count(question_id, truth, clock)
            result.query_ms += clock.since(q_start)
            result.answers.append(answer)
            result.truths.append(truth)
        return result

    def boolean_over_images(
        self,
        images: Sequence[SyntheticVideo],
        question_id: str,
        truth_fn: Callable[[SyntheticVideo], bool],
        clock: Optional[SimClock] = None,
    ) -> MLLMAnswerSet:
        """Ask a yes/no question about each image (the Q6 / V-COCO setting)."""
        clock = clock or SimClock()
        result = MLLMAnswerSet(question_id=question_id, num_frames=len(images))
        for image in images:
            truth = truth_fn(image)
            q_start = clock.snapshot()
            answer = self.sim.answer_image_boolean(question_id, image, truth, clock)
            result.query_ms += clock.since(q_start)
            result.answers.append(answer)
            result.truths.append(truth)
        return result
