"""Index schema: keys, versions, and (de)serialization of stored values.

Everything the index persists must survive a JSON round trip *exactly*:
a warm run that reads a detection back must behave byte-identically to the
cold run that produced it.  Python's ``json`` round-trips floats via
``repr``, so bbox coordinates and scores come back bit-equal; embeddings
are stored as plain float lists and rebuilt as float64 arrays.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.common.geometry import BBox
from repro.models.base import Detection

#: Bumped whenever the on-disk layout changes incompatibly; a file with a
#: different schema version is treated like a corrupt file (warn + rescan).
SCHEMA_VERSION = 1

#: The value kinds one ``(video, model, version)`` bucket may hold.
KIND_DETECTIONS = "detections"
KIND_FILTER = "filter"
KIND_EMBEDDING = "embedding"


def video_key(video: Any) -> str:
    """The identity of a video's *content* for indexing purposes.

    Synthetic videos are fully determined by their spec and seed; the frame
    count is folded in so a re-cut of the same camera (different duration)
    never aliases the original clip's entries.
    """
    return f"{video.spec.name}#s{video.seed}#f{video.num_frames}"


def model_version(model: Any) -> str:
    """The identity of a model's *behaviour* for indexing purposes.

    Simulated models are pure functions of their class and seed, so those
    two are the version: retraining (a new seed) or swapping the
    implementation (a new class) invalidates every entry recorded under the
    old version — the reader sees a mismatch and falls back to a live
    invocation.
    """
    return f"{type(model).__name__}@{getattr(model, 'seed', 0)}"


def detection_key(detection: Detection) -> str:
    """Content key of one detection (for values attached to a detection).

    Embeddings are keyed by the *source detection* they were computed on,
    not by track id: track ids are allocated per execution batch, so the
    same physical track can carry different ids in different sessions,
    while its source detection (frame, class, box) is reproducible.
    ``repr`` keeps full float precision, so equal detections — and only
    equal detections — share a key.
    """
    b = detection.bbox
    return (
        f"{detection.frame_id}|{detection.class_name}|"
        f"{b.x1!r}|{b.y1!r}|{b.x2!r}|{b.y2!r}"
    )


def detection_to_record(detection: Detection) -> Dict[str, Any]:
    """One detection as a JSON-safe record (full fidelity round trip)."""
    return {
        "class_name": detection.class_name,
        "bbox": [detection.bbox.x1, detection.bbox.y1, detection.bbox.x2, detection.bbox.y2],
        "score": detection.score,
        "frame_id": detection.frame_id,
        "gt_object_id": detection.gt_object_id,
        "track_id": detection.track_id,
    }


def detection_from_record(record: Dict[str, Any]) -> Detection:
    x1, y1, x2, y2 = record["bbox"]
    return Detection(
        class_name=record["class_name"],
        bbox=BBox(x1, y1, x2, y2),
        score=record["score"],
        frame_id=record["frame_id"],
        gt_object_id=record.get("gt_object_id"),
        track_id=record.get("track_id"),
    )


def detections_to_value(detections: Sequence[Detection]) -> List[Dict[str, Any]]:
    return [detection_to_record(det) for det in detections]


def detections_from_value(value: Sequence[Dict[str, Any]]) -> List[Detection]:
    return [detection_from_record(record) for record in value]


def embedding_to_value(embedding: Any) -> List[float]:
    return [float(x) for x in np.asarray(embedding).ravel()]


def embedding_from_value(value: Sequence[float]) -> np.ndarray:
    return np.asarray(value, dtype=np.float64)


def empty_payload() -> Dict[str, Any]:
    """A fresh (or post-corruption) index payload."""
    return {"schema_version": SCHEMA_VERSION, "videos": {}}


def validate_payload(payload: Any) -> Optional[str]:
    """None when ``payload`` is a structurally sound index, else the defect."""
    if not isinstance(payload, dict):
        return "top level is not an object"
    if payload.get("schema_version") != SCHEMA_VERSION:
        return f"schema version {payload.get('schema_version')!r} != {SCHEMA_VERSION}"
    videos = payload.get("videos")
    if not isinstance(videos, dict):
        return "missing 'videos' table"
    for key, bucket in videos.items():
        if not isinstance(bucket, dict):
            return f"video bucket {key!r} is not an object"
        for table in ("kinds", "tracks", "stats"):
            if table in bucket and not isinstance(bucket[table], dict):
                return f"video bucket {key!r} table {table!r} is not an object"
    return None
