"""The persistent video index store and its per-execution views.

One :class:`VideoIndexStore` holds every indexed video, keyed by
:func:`~repro.index.schema.video_key`; under each video, per-frame model
results live in ``(model, version)`` buckets, so a retrained model (new
version) invalidates exactly its own entries and nothing else.  The store
is process-wide state shared by every feed of a multi-camera session: all
mutation happens under one re-entrant lock, so concurrent per-feed scans
interleave their writes without corrupting the tables, and the canonical
JSON serialization is deterministic regardless of write order
(``sort_keys=True``).

Sessions never touch the store directly during a scan; they go through an
:class:`IndexView` bound to one ``(video, zoo, obs)`` triple, which owns
the model-version resolution, the hit/miss/stale/written counters that
``explain()`` reports, and the observability hooks.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.index import schema
from repro.models.base import Detection

#: Lookup outcomes (the store's vocabulary; the view translates to obs).
_HIT = "hit"
_MISS = "miss"
_STALE = "stale"


class VideoIndexStore:
    """JSON-backed persistent store of per-frame model results.

    ``path=None`` keeps the index in memory only: it persists across
    executions within one process (every session handed the store shares
    it) but is not written to disk.  A readable-but-corrupt file — truncated
    write, foreign JSON, schema drift — is *not* an error: the store warns
    and starts empty, so the affected videos are simply rescanned in full
    and the index rebuilt.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._lock = threading.RLock()
        self._payload: Dict[str, Any] = schema.empty_payload()
        if path is not None and os.path.exists(path):
            self._load(path)

    # ------------------------------------------------------------ persistence --
    def _load(self, path: str) -> None:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            defect = schema.validate_payload(payload)
        except (OSError, ValueError) as exc:
            defect = str(exc)
            payload = None
        if defect is not None:
            warnings.warn(
                f"video index at {path!r} is unreadable ({defect}); "
                "starting from an empty index — affected videos will be "
                "rescanned in full and the index rebuilt",
                stacklevel=3,
            )
            return
        self._payload = payload

    def save(self) -> None:
        """Atomically write the canonical serialization (no-op in memory)."""
        if self.path is None:
            return
        data = self.to_json()
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(data)
        os.replace(tmp, self.path)

    def to_json(self) -> str:
        """Canonical JSON: key-sorted, so equal contents serialize equally."""
        with self._lock:
            return json.dumps(self._payload, sort_keys=True)

    # ------------------------------------------------------------------ views --
    def view(self, video: Any, zoo: Any, obs: Optional[Any] = None) -> "IndexView":
        """A per-execution view bound to one video's entries."""
        return IndexView(self, video, zoo, obs=obs)

    # ------------------------------------------------------------- raw access --
    def _video(self, video_key: str) -> Dict[str, Any]:
        """The video's bucket, created on demand.  Caller holds the lock."""
        return self._payload["videos"].setdefault(
            video_key, {"kinds": {}, "tracks": {}, "stats": {}}
        )

    def lookup(
        self, video_key: str, kind: str, model_name: str, version: str, entry_key: str
    ) -> Tuple[str, Any]:
        """``(status, value)`` for one entry; status is hit / miss / stale.

        Stale means the bucket exists but was recorded under a different
        model version: the caller must invoke the model live (its fresh
        result then supersedes the whole stale bucket on the next write).
        """
        with self._lock:
            bucket = (
                self._payload["videos"]
                .get(video_key, {})
                .get("kinds", {})
                .get(kind, {})
                .get(model_name)
            )
            if bucket is None:
                return _MISS, None
            if bucket.get("version") != version:
                return _STALE, None
            entries = bucket.get("entries", {})
            if entry_key not in entries:
                return _MISS, None
            return _HIT, entries[entry_key]

    def record(
        self, video_key: str, kind: str, model_name: str, version: str, entry_key: str, value: Any
    ) -> None:
        """Store one entry, replacing any stale (other-version) bucket."""
        with self._lock:
            kinds = self._video(video_key)["kinds"].setdefault(kind, {})
            bucket = kinds.get(model_name)
            if bucket is None or bucket.get("version") != version:
                bucket = {"version": version, "entries": {}}
                kinds[model_name] = bucket
            bucket["entries"][entry_key] = value

    def record_tracks(
        self, video_key: str, pair_key: str, version: str, tracks: Dict[str, Any]
    ) -> None:
        """Merge one (tracker, detector) pair's track summaries."""
        with self._lock:
            table = self._video(video_key)["tracks"]
            bucket = table.get(pair_key)
            if bucket is None or bucket.get("version") != version:
                bucket = {"version": version, "tracks": {}}
                table[pair_key] = bucket
            bucket["tracks"].update(tracks)

    def record_stats(self, video_key: str, stats: Dict[str, Any]) -> None:
        """Merge observed per-video scan statistics."""
        with self._lock:
            self._video(video_key)["stats"].update(stats)

    def video_stats(self, video_key: str) -> Dict[str, Any]:
        with self._lock:
            return dict(self._payload["videos"].get(video_key, {}).get("stats", {}))

    def tracks(self, video_key: str) -> Dict[str, Any]:
        with self._lock:
            table = self._payload["videos"].get(video_key, {}).get("tracks", {})
            return {pair: dict(bucket.get("tracks", {})) for pair, bucket in table.items()}

    def observed_stable_fraction(
        self, video_key: str, min_frames: int = 1
    ) -> Optional[float]:
        """The video's observed tracker-predictable fraction, if trustworthy.

        None until a stride-sampling scan observed at least ``min_frames``
        frames of the video — a short canary must not override the
        configured prior with a noisy measurement.
        """
        stats = self.video_stats(video_key)
        fraction = stats.get("stable_fraction")
        if fraction is None:
            return None
        if int(stats.get("frames_scanned", 0)) < min_frames:
            return None
        return float(fraction)

    def filter_selectivities(self, video_key: str) -> Dict[str, float]:
        """Per-filter keep rates computed from the stored verdicts."""
        with self._lock:
            kinds = self._payload["videos"].get(video_key, {}).get("kinds", {})
            out: Dict[str, float] = {}
            for model_name, bucket in kinds.get(schema.KIND_FILTER, {}).items():
                entries = bucket.get("entries", {})
                if entries:
                    kept = sum(1 for verdict in entries.values() if verdict)
                    out[model_name] = kept / len(entries)
            return out


class IndexView:
    """One execution's window onto the store, bound to a (video, zoo) pair.

    The view resolves model versions against the zoo it was created with,
    translates store lookups into the engine's vocabulary (decisions,
    metrics, explain counters), and owns the post-scan finalization that
    records track summaries and per-video statistics.
    """

    def __init__(self, store: VideoIndexStore, video: Any, zoo: Any, obs: Optional[Any] = None) -> None:
        self.store = store
        self.video_key = schema.video_key(video)
        self.zoo = zoo
        self.obs = obs
        #: Counters surfaced by ``explain()``'s Index section.
        self.counters: Dict[str, int] = {"hits": 0, "misses": 0, "stale": 0, "written": 0}
        self._versions: Dict[str, str] = {}
        #: (kind, model) pairs whose staleness was already logged — one
        #: decision record per stale bucket, not one per frame.
        self._stale_noted: set = set()

    # -------------------------------------------------------------- internals --
    def _version(self, model_name: str) -> str:
        version = self._versions.get(model_name)
        if version is None:
            version = schema.model_version(self.zoo.get(model_name))
            self._versions[model_name] = version
        return version

    def _lookup(self, kind: str, model_name: str, entry_key: str, frame_id: Optional[int]) -> Tuple[str, Any]:
        status, value = self.store.lookup(
            self.video_key, kind, model_name, self._version(model_name), entry_key
        )
        obs = self.obs
        if status == _HIT:
            self.counters["hits"] += 1
            if obs is not None:
                obs.decisions.record("index-hit", kind, model=model_name, frame_id=frame_id)
                obs.metrics.inc("index_hits", model=model_name, kind=kind)
        elif status == _STALE:
            self.counters["stale"] += 1
            if obs is not None:
                obs.metrics.inc("index_stale", model=model_name, kind=kind)
                if (kind, model_name) not in self._stale_noted:
                    self._stale_noted.add((kind, model_name))
                    obs.decisions.record(
                        "index-stale",
                        "model-version-mismatch",
                        model=model_name,
                        frame_id=frame_id,
                        expected=self._version(model_name),
                    )
        else:
            self.counters["misses"] += 1
            if obs is not None:
                obs.decisions.record("index-miss", kind, model=model_name, frame_id=frame_id)
                obs.metrics.inc("index_misses", model=model_name, kind=kind)
        return status, value

    def _record(self, kind: str, model_name: str, entry_key: str, value: Any, frame_id: Optional[int]) -> None:
        self.store.record(
            self.video_key, kind, model_name, self._version(model_name), entry_key, value
        )
        self.counters["written"] += 1
        if self.obs is not None:
            self.obs.decisions.record("index-written", kind, model=model_name, frame_id=frame_id)
            self.obs.metrics.inc("index_writes", model=model_name, kind=kind)

    # ------------------------------------------------------------- detections --
    def lookup_detections(self, model_name: str, frame_id: int) -> Optional[List[Detection]]:
        status, value = self._lookup(schema.KIND_DETECTIONS, model_name, str(frame_id), frame_id)
        if status != _HIT:
            return None
        return schema.detections_from_value(value)

    def record_detections(self, model_name: str, frame_id: int, detections: List[Detection]) -> None:
        self._record(
            schema.KIND_DETECTIONS,
            model_name,
            str(frame_id),
            schema.detections_to_value(detections),
            frame_id,
        )

    # -------------------------------------------------------- filter verdicts --
    def lookup_filter_verdict(self, model_name: str, frame_id: int) -> Optional[bool]:
        status, value = self._lookup(schema.KIND_FILTER, model_name, str(frame_id), frame_id)
        if status != _HIT:
            return None
        return bool(value)

    def record_filter_verdict(self, model_name: str, frame_id: int, verdict: bool) -> None:
        self._record(schema.KIND_FILTER, model_name, str(frame_id), bool(verdict), frame_id)

    # -------------------------------------------------------------- embeddings --
    def lookup_embedding(self, model_name: str, detection: Detection) -> Optional[np.ndarray]:
        status, value = self._lookup(
            schema.KIND_EMBEDDING, model_name, schema.detection_key(detection), detection.frame_id
        )
        if status != _HIT:
            return None
        return schema.embedding_from_value(value)

    def record_embedding(self, model_name: str, detection: Detection, embedding: Any) -> None:
        self._record(
            schema.KIND_EMBEDDING,
            model_name,
            schema.detection_key(detection),
            schema.embedding_to_value(embedding),
            detection.frame_id,
        )

    # ------------------------------------------------------------ finalization --
    def finalize(self, ctx: Any, observe_stability: bool = False) -> None:
        """Record the finished scan's track summaries and video statistics.

        ``observe_stability`` must be True only when stride sampling drove
        the scan: without sampling no frame is ever tracker-predicted, and
        recording the resulting 0.0 would poison the planner's stable-
        fraction prior for every later query over this video.
        """
        sources = ctx.track_sources()
        by_pair: Dict[Tuple[str, str], Dict[str, Any]] = {}
        for track_id in sorted(sources):
            pair = ctx.track_pair(track_id)
            if pair is None:
                continue
            detection = sources[track_id]
            first = ctx.track_first_seen(track_id)
            by_pair.setdefault(pair, {})[str(track_id)] = {
                "class_name": detection.class_name,
                "first_frame": detection.frame_id if first is None else first,
                "last_frame": detection.frame_id,
            }
        for pair, tracks in by_pair.items():
            self.store.record_tracks(
                self.video_key, f"{pair[0]}|{pair[1]}", self._version(pair[1]), tracks
            )
            self.counters["written"] += len(tracks)

        stats = ctx.scan_stats
        payload: Dict[str, Any] = {}
        if stats is not None:
            scanned = int(getattr(stats, "frames_scanned", 0) or 0)
            payload["frames_scanned"] = scanned
            if observe_stability and scanned > 0:
                interpolated = int(getattr(stats, "frames_interpolated", 0) or 0)
                payload["stable_fraction"] = interpolated / scanned
        selectivities = self.store.filter_selectivities(self.video_key)
        if selectivities:
            payload["filter_selectivity"] = selectivities
        if payload:
            self.store.record_stats(self.video_key, payload)
            if self.obs is not None:
                self.obs.decisions.record(
                    "index-written", "video-stats", video=self.video_key
                )

    def summary(self) -> Dict[str, Any]:
        """The counters ``explain()`` renders in its Index section."""
        return {"video": self.video_key, **self.counters}
