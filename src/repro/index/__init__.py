"""The persistent video index: never pay for the same frame twice.

Scanning a video is expensive because of the models, not the queries: two
different queries over the same clip re-run the same detector on the same
frames and re-embed the same tracks.  The index persists those per-frame
model results — detector outputs, frame-filter verdicts, re-id embeddings,
plus per-track summaries and per-video scan statistics — keyed by
``(video, model, model version)``, so any later session over the same video
serves them from the index instead of re-invoking the model.

Enable with ``PlannerConfig(enable_video_index=True)`` (tune via
:class:`~repro.common.config.IndexConfig`).  Off by default: no index
objects are created and execution is byte-identical to an index-free run.
"""

from repro.index.schema import (
    SCHEMA_VERSION,
    detection_from_record,
    detection_key,
    detection_to_record,
    model_version,
    video_key,
)
from repro.index.store import IndexView, VideoIndexStore

__all__ = [
    "SCHEMA_VERSION",
    "IndexView",
    "VideoIndexStore",
    "detection_from_record",
    "detection_key",
    "detection_to_record",
    "model_version",
    "video_key",
]
