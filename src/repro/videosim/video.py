"""Frame materialisation and video reading.

A :class:`SyntheticVideo` combines a :class:`~repro.common.config.VideoSpec`
with the scripted :class:`~repro.videosim.entities.ObjectSpec` population and
:class:`~repro.videosim.entities.InteractionEvent` list produced by a dataset
preset.  Frames are materialised on demand; each frame carries the ground
truth that the simulated models observe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.common.config import VideoSpec
from repro.videosim.entities import GTInstance, InteractionEvent, ObjectSpec

#: Minimum visible area (px^2) for an object to appear in a frame's ground truth.
MIN_VISIBLE_AREA = 16.0


@dataclass(frozen=True)
class Frame:
    """One video frame's ground truth."""

    frame_id: int
    timestamp: float
    width: int
    height: int
    instances: Tuple[GTInstance, ...]
    scene_attributes: Mapping[str, object] = field(default_factory=dict)

    def instances_of(self, class_name: str) -> List[GTInstance]:
        return [inst for inst in self.instances if inst.class_name == class_name]

    def instance_by_id(self, object_id: int) -> Optional[GTInstance]:
        for inst in self.instances:
            if inst.object_id == object_id:
                return inst
        return None

    @property
    def num_objects(self) -> int:
        return len(self.instances)


class SyntheticVideo:
    """A scripted video: spec + object population + interaction events."""

    def __init__(
        self,
        spec: VideoSpec,
        objects: Sequence[ObjectSpec],
        events: Sequence[InteractionEvent] = (),
        scene_attributes: Optional[Mapping[str, object]] = None,
        seed: int = 0,
    ) -> None:
        ids = [o.object_id for o in objects]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate object ids in video")
        self.spec = spec
        self.objects: List[ObjectSpec] = list(objects)
        self.events: List[InteractionEvent] = list(events)
        self.scene_attributes: Dict[str, object] = dict(scene_attributes or {})
        self.seed = seed
        self._objects_by_id = {o.object_id: o for o in self.objects}
        # Index events by participant so per-frame lookup is cheap.
        self._events_by_object: Dict[int, List[InteractionEvent]] = {}
        for ev in self.events:
            self._events_by_object.setdefault(ev.subject_id, []).append(ev)
            self._events_by_object.setdefault(ev.object_id, []).append(ev)

    # -- basic info -------------------------------------------------------
    @property
    def num_frames(self) -> int:
        return self.spec.num_frames

    @property
    def fps(self) -> int:
        return self.spec.fps

    def object_by_id(self, object_id: int) -> ObjectSpec:
        return self._objects_by_id[object_id]

    def __len__(self) -> int:
        return self.num_frames

    # -- frame materialisation ---------------------------------------------
    def _interactions_for(self, object_id: int, frame_id: int) -> Tuple[Tuple[str, int, bool], ...]:
        out: List[Tuple[str, int, bool]] = []
        for ev in self._events_by_object.get(object_id, ()):
            if ev.active_at(frame_id):
                if ev.subject_id == object_id:
                    out.append((ev.kind, ev.object_id, True))
                else:
                    out.append((ev.kind, ev.subject_id, False))
        return tuple(out)

    def frame(self, frame_id: int) -> Frame:
        """Materialise the ground truth of one frame."""
        if not 0 <= frame_id < self.num_frames:
            raise IndexError(f"frame {frame_id} out of range [0, {self.num_frames})")
        instances: List[GTInstance] = []
        for obj in self.objects:
            if not obj.alive_at(frame_id):
                continue
            bbox = obj.bbox_at(frame_id).clipped(self.spec.width, self.spec.height)
            if bbox.area < MIN_VISIBLE_AREA:
                continue
            instances.append(
                GTInstance(
                    object_id=obj.object_id,
                    class_name=obj.class_name,
                    bbox=bbox,
                    frame_id=frame_id,
                    attributes=obj.attributes,
                    velocity=obj.trajectory.velocity(frame_id),
                    action=obj.action_at(frame_id),
                    interactions=self._interactions_for(obj.object_id, frame_id),
                )
            )
        return Frame(
            frame_id=frame_id,
            timestamp=frame_id / self.fps,
            width=self.spec.width,
            height=self.spec.height,
            instances=tuple(instances),
            scene_attributes=self.scene_attributes,
        )

    def frames(self, start: int = 0, stop: Optional[int] = None) -> Iterator[Frame]:
        stop = self.num_frames if stop is None else min(stop, self.num_frames)
        for fid in range(start, stop):
            yield self.frame(fid)

    def canary(self, num_frames: int = 60) -> "SyntheticVideo":
        """A short prefix clip used by the planner for profiling (§4.3)."""
        duration = min(num_frames, self.num_frames) / self.fps
        return SyntheticVideo(
            self.spec.with_duration(duration),
            self.objects,
            self.events,
            self.scene_attributes,
            seed=self.seed,
        )

    # -- ground-truth queries (used to score accuracy) ----------------------
    def ground_truth_tracks(self, class_name: Optional[str] = None) -> List[ObjectSpec]:
        """All scripted objects, optionally restricted to one class."""
        if class_name is None:
            return list(self.objects)
        return [o for o in self.objects if o.class_name == class_name]


class VideoReader:
    """Iterates a video's frames, optionally in fixed-size batches.

    This is the source operator of every pipeline (paper §4.1).  Reading a
    frame charges a small decode cost to the clock when one is attached, so
    pipelines cannot be faster than the stream itself.
    """

    #: Virtual decode cost per frame-megapixel.
    DECODE_MS_PER_MEGAPIXEL = 0.05

    def __init__(
        self,
        video: SyntheticVideo,
        batch_size: int = 1,
        clock=None,
        start: int = 0,
        frame_hook=None,
    ) -> None:
        """``start`` begins reading mid-video (scan checkpoint resume);
        ``frame_hook`` is an optional per-frame transform — the fault layer's
        injection point — that may replace the frame or drop it entirely by
        returning None (decode cost is charged either way: a dropped frame
        still crossed the wire).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if start < 0:
            raise ValueError("start must be >= 0")
        self.video = video
        self.batch_size = batch_size
        self.clock = clock
        self.start = start
        self.frame_hook = frame_hook

    def __iter__(self) -> Iterator[Frame]:
        for frame in self.video.frames(self.start):
            if self.clock is not None:
                self.clock.charge("video_reader", self.DECODE_MS_PER_MEGAPIXEL * self.video.spec.megapixels)
            if self.frame_hook is not None:
                frame = self.frame_hook(frame)
                if frame is None:
                    continue
            yield frame

    def batches(self) -> Iterator[List[Frame]]:
        batch: List[Frame] = []
        for frame in self:
            batch.append(frame)
            if len(batch) == self.batch_size:
                yield batch
                batch = []
        if batch:
            yield batch
