"""Dataset presets mirroring the paper's evaluation videos.

The paper evaluates on five real datasets (§5):

* **CityFlow-NL** (36 intersection clips, 10 fps, ≥960p, 184 vehicle tracks)
  for the CVIP comparison (Figure 13, Table 1),
* three public traffic cameras — **Banff**, **Jackson Hole**,
  **Southampton** (Table 3) — for the EVA comparison (Figures 14–16),
* the **Auburn** crossroad camera and the **V-COCO** image set for the
  MLLM comparison (Tables 4–7).

Each preset here builds a synthetic stand-in with the same frame rate,
resolution and the attribute/event statistics the evaluation depends on.
Durations are parameters so tests and benchmarks can run scaled-down clips
while experiments label results with the paper's nominal 3/10-minute values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.config import VideoSpec
from repro.common.rng import derive_rng
from repro.videosim import events as ev
from repro.videosim.entities import InteractionEvent, ObjectSpec
from repro.videosim.scene import SceneGenerator, TrafficSceneConfig
from repro.videosim.trajectory import LinearTrajectory, TurnTrajectory
from repro.videosim.video import SyntheticVideo

# ---------------------------------------------------------------------------
# Table 3: public surveillance cameras
# ---------------------------------------------------------------------------

#: Camera presets from Table 3 (plus Auburn used in §5.3).
CAMERA_SPECS: Dict[str, VideoSpec] = {
    "banff": VideoSpec("banff", fps=15, width=1280, height=720, duration_s=180),
    "jackson": VideoSpec("jackson", fps=15, width=1920, height=1080, duration_s=180),
    "southampton": VideoSpec("southampton", fps=30, width=1920, height=1080, duration_s=180),
    "auburn": VideoSpec("auburn", fps=15, width=1920, height=1080, duration_s=600),
}

#: Per-camera traffic densities (vehicles / pedestrians per minute).  Banff
#: and Jackson are town squares with light traffic; Southampton is a busier
#: road; Auburn is a crossroad with a crosswalk.
_CAMERA_TRAFFIC: Dict[str, TrafficSceneConfig] = {
    "banff": TrafficSceneConfig(vehicles_per_minute=8, pedestrians_per_minute=6, speeding_fraction=0.10),
    "jackson": TrafficSceneConfig(vehicles_per_minute=14, pedestrians_per_minute=8, speeding_fraction=0.15),
    "southampton": TrafficSceneConfig(vehicles_per_minute=20, pedestrians_per_minute=3, speeding_fraction=0.20),
    "auburn": TrafficSceneConfig(vehicles_per_minute=10, pedestrians_per_minute=10, speeding_fraction=0.10),
}


def camera_clip(
    camera: str,
    duration_s: float,
    seed: int = 0,
    config: Optional[TrafficSceneConfig] = None,
) -> SyntheticVideo:
    """A clip from one of the Table-3 cameras with its default traffic mix."""
    if camera not in CAMERA_SPECS:
        raise KeyError(f"unknown camera {camera!r}; choose from {sorted(CAMERA_SPECS)}")
    spec = CAMERA_SPECS[camera].with_duration(duration_s)
    cfg = config or _CAMERA_TRAFFIC[camera]
    return SceneGenerator(spec, cfg, seed=seed).generate_video()


def eva_comparison_clips(
    duration_s: float,
    num_clips: int = 5,
    seed: int = 0,
) -> Dict[str, List[SyntheticVideo]]:
    """The §5.2 dataset: ``num_clips`` clips per camera at the given duration.

    The paper uses 5 clips of 3 minutes and 5 clips of 10 minutes per camera.
    """
    out: Dict[str, List[SyntheticVideo]] = {}
    for camera in ("banff", "jackson", "southampton"):
        out[camera] = [camera_clip(camera, duration_s, seed=seed * 1000 + i) for i in range(num_clips)]
    return out


# ---------------------------------------------------------------------------
# CityFlow-NL-like intersection clips (Figure 13 / Table 1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CityFlowQuery:
    """A standardised CityFlow-NL query: colour + vehicle type + direction."""

    query_id: str
    natural_language: str
    color: str
    vehicle_type: str
    direction: str

    @property
    def standardized(self) -> str:
        direction = {"go_straight": "go straight", "turn_right": "turn right", "turn_left": "turn left"}[self.direction]
        return f"{self.color} {self.vehicle_type} {direction}"


#: Table 1: the five queries selected from CityFlow-NL.
CITYFLOW_QUERIES: Tuple[CityFlowQuery, ...] = (
    CityFlowQuery("Q1", "A green sedan is keeping straight.", "green", "sedan", "go_straight"),
    CityFlowQuery("Q2", "A green bus going straight down the street followed by a white car.", "green", "bus", "go_straight"),
    CityFlowQuery("Q3", "A red sedan runs down the street.", "red", "sedan", "go_straight"),
    CityFlowQuery("Q4", "A black sedan keeps driving forward.", "black", "sedan", "go_straight"),
    CityFlowQuery("Q5", "A large black SUV turns right.", "black", "suv", "turn_right"),
)


def cityflow_clip(
    clip_index: int,
    seed: int = 0,
    duration_s: float = 60.0,
    tracks_per_clip: int = 5,
) -> SyntheticVideo:
    """One CityFlow-like intersection clip with ``tracks_per_clip`` vehicle tracks.

    Track attributes follow the default colour/type skew so that the
    Table-1 queries have the relative selectivities the paper observes
    (green vehicles rare, black vehicles common).
    """
    spec = VideoSpec(f"cityflow_{clip_index:02d}", fps=10, width=1280, height=960, duration_s=duration_s)
    rng = derive_rng(seed, "cityflow", clip_index)
    gen = SceneGenerator(spec, TrafficSceneConfig(vehicles_per_minute=0, pedestrians_per_minute=2), seed=seed * 101 + clip_index)
    objects: List[ObjectSpec] = []
    # Hand-build the vehicle tracks so each clip has exactly the requested
    # number and they stay in frame for most of the clip (like the annotated
    # CityFlow tracks).
    base_gen = SceneGenerator(spec, TrafficSceneConfig(), seed=seed * 919 + clip_index)
    num_frames = spec.num_frames
    for t in range(tracks_per_clip):
        enter = int(rng.integers(0, max(num_frames // 3, 1)))
        vehicle = base_gen._make_vehicle(rng, enter)
        # The scripted tracks get a disjoint id range so they never collide
        # with the background objects generated by `gen`.
        vehicle.object_id = 500_000 + t
        # Re-balance attributes so each query has some positives across the
        # 36-clip dataset: occasionally force a query-matching combination.
        if rng.random() < 0.18:
            query = CITYFLOW_QUERIES[int(rng.integers(0, len(CITYFLOW_QUERIES)))]
            vehicle.attributes["color"] = query.color
            vehicle.attributes["vehicle_type"] = query.vehicle_type
            vehicle.attributes["direction"] = query.direction
            if query.vehicle_type == "bus":
                vehicle.class_name = "bus"
                vehicle.size = (260.0, 110.0)
        objects.append(vehicle)
    return gen.generate_video(extra_objects=objects)


def cityflow_dataset(
    num_clips: int = 36,
    seed: int = 0,
    duration_s: float = 60.0,
    tracks_per_clip: int = 5,
) -> List[SyntheticVideo]:
    """The full CityFlow-like test set (36 clips, ~184 tracks at defaults)."""
    return [cityflow_clip(i, seed=seed, duration_s=duration_s, tracks_per_clip=tracks_per_clip) for i in range(num_clips)]


# ---------------------------------------------------------------------------
# Auburn crossroad (Q1–Q5 of the MLLM comparison)
# ---------------------------------------------------------------------------


def auburn_clip(duration_s: float = 600.0, seed: int = 0) -> SyntheticVideo:
    """The Auburn-like crossroad clip used for MLLM queries Q1–Q5.

    The generator keeps the ground truth consistent with the paper's
    spot-checks: never more than ~4 cars on the crossing at once and never
    more than 10 walking people, with people regularly using the crosswalk
    and a minority of vehicles turning left at the crossing.
    """
    spec = CAMERA_SPECS["auburn"].with_duration(duration_s)
    cfg = TrafficSceneConfig(
        vehicles_per_minute=9,
        pedestrians_per_minute=8,
        speeding_fraction=0.08,
        direction_dist={"go_straight": 0.6, "turn_left": 0.25, "turn_right": 0.15},
        color_dist={"black": 0.22, "white": 0.22, "gray": 0.16, "silver": 0.10, "red": 0.18, "blue": 0.08, "green": 0.04},
    )
    return SceneGenerator(spec, cfg, seed=seed).generate_video(
        scene_attributes={"time_of_day": "day", "weather": "clear", "location": "crossroad"}
    )


# ---------------------------------------------------------------------------
# V-COCO-like human-object-interaction image set (Q6)
# ---------------------------------------------------------------------------


def vcoco_images(
    num_images: int = 400,
    seed: int = 0,
    positive_rate: float = 0.049,
) -> List[SyntheticVideo]:
    """Single-frame "videos" with person/ball layouts; ~4.9% contain a *hit*.

    The paper treats each V-COCO image as an independent clip and queries
    "is anyone hitting the ball?"; the low positive rate (4.9%) is what makes
    the F1 comparison in Table 6 stark.
    """
    rng = derive_rng(seed, "vcoco")
    images: List[SyntheticVideo] = []
    for i in range(num_images):
        spec = VideoSpec(f"vcoco_{i:05d}", fps=1, width=640, height=480, duration_s=1.0)
        objects: List[ObjectSpec] = []
        interaction_events: List[InteractionEvent] = []
        is_positive = rng.random() < positive_rate
        if is_positive:
            objs, evs = ev.person_hits_ball(person_id=1, ball_id=2, position=(float(rng.uniform(150, 500)), float(rng.uniform(150, 380))))
            objects += objs
            interaction_events += evs
        else:
            # Negatives: people and/or balls present but no hit interaction,
            # mirroring V-COCO's hard negatives.
            n_people = int(rng.integers(0, 3))
            for p in range(n_people):
                person = ObjectSpec(
                    object_id=10 + p,
                    class_name="person",
                    trajectory=LinearTrajectory((float(rng.uniform(50, 590)), float(rng.uniform(100, 430))), (0.0, 0.0)),
                    size=(40.0, 100.0),
                    exit_frame=0,
                    attributes={"clothing": "jeans", "hair": "black"},
                    default_action="standing",
                )
                objects.append(person)
            if rng.random() < 0.4:
                ball = ObjectSpec(
                    object_id=30,
                    class_name="ball",
                    trajectory=LinearTrajectory((float(rng.uniform(50, 590)), float(rng.uniform(100, 430))), (0.0, 0.0)),
                    size=(18.0, 18.0),
                    exit_frame=0,
                    attributes={"color": "white"},
                )
                objects.append(ball)
        images.append(SyntheticVideo(spec, objects, events=interaction_events, seed=seed * 7919 + i))
    return images


# ---------------------------------------------------------------------------
# Scenario clips for the examples (suspect-into-red-car, hit-and-run, ...)
# ---------------------------------------------------------------------------


def suspect_scenario_clip(duration_s: float = 120.0, seed: int = 3) -> SyntheticVideo:
    """Background traffic plus a scripted "suspect gets into a red car" event."""
    spec = CAMERA_SPECS["jackson"].with_duration(duration_s)
    gen = SceneGenerator(spec, _CAMERA_TRAFFIC["jackson"], seed=seed)
    objs, evs = ev.person_gets_into_car(
        person_id=900001,
        car_id=900002,
        car_position=(spec.width * 0.55, spec.height * 0.6),
        start_frame=int(spec.num_frames * 0.2),
        car_color="red",
        person_attributes={"is_suspect": True},
    )
    return gen.generate_video(extra_objects=objs, events=evs)


def hit_and_run_clip(duration_s: float = 120.0, seed: int = 4) -> SyntheticVideo:
    """Background traffic plus a scripted hit-and-run event (Figure 8)."""
    spec = CAMERA_SPECS["banff"].with_duration(duration_s)
    gen = SceneGenerator(spec, _CAMERA_TRAFFIC["banff"], seed=seed)
    objs, evs = ev.hit_and_run(
        car_id=910001,
        person_id=910002,
        collision_point=(spec.width * 0.5, spec.height * 0.55),
        collision_frame=int(spec.num_frames * 0.4),
    )
    return gen.generate_video(extra_objects=objs, events=evs)


def loitering_clip(duration_s: float = 300.0, seed: int = 5, loiter_seconds: float = 120.0) -> SyntheticVideo:
    """A clip with one long-duration loiterer plus passers-by (§5.4)."""
    spec = CAMERA_SPECS["banff"].with_duration(duration_s)
    gen = SceneGenerator(
        spec,
        TrafficSceneConfig(vehicles_per_minute=4, pedestrians_per_minute=6, loiter_fraction=0.0),
        seed=seed,
    )
    objs, evs = ev.loitering_person(
        person_id=920001,
        region_center=(spec.width * 0.3, spec.height * 0.6),
        start_frame=int(spec.fps * 5),
        duration_frames=int(spec.fps * loiter_seconds),
    )
    return gen.generate_video(extra_objects=objs, events=evs)


def queue_clip(duration_s: float = 180.0, seed: int = 6, queue_length: int = 6) -> SyntheticVideo:
    """A retail checkout scene with a persistent queue of people (§5.4)."""
    spec = VideoSpec("retail", fps=15, width=1280, height=720, duration_s=duration_s)
    gen = SceneGenerator(
        spec,
        TrafficSceneConfig(vehicles_per_minute=0, pedestrians_per_minute=4, loiter_fraction=0.0),
        seed=seed,
    )
    objs, evs = ev.checkout_queue(
        first_person_id=930001,
        queue_head=(spec.width * 0.25, spec.height * 0.55),
        num_people=queue_length,
        start_frame=int(spec.fps * 2),
        duration_frames=int(spec.num_frames - spec.fps * 4),
    )
    return gen.generate_video(extra_objects=objs, events=evs)
