"""Scripted multi-object events.

These helpers build coordinated object groups and interaction events for the
scenarios the paper's example queries search for: a suspect getting into a
red car (Figures 9–10), hit-and-run (Figure 8), a person hitting a ball
(Q6, V-COCO), loitering (§5.4), and a checkout queue (§5.4).

Each helper returns ``(objects, events)`` that can be merged into a scene
via :meth:`repro.videosim.scene.SceneGenerator.generate_video`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.videosim.entities import InteractionEvent, ObjectSpec
from repro.videosim.trajectory import (
    LinearTrajectory,
    LoiterTrajectory,
    StationaryTrajectory,
    WaypointTrajectory,
)

BuiltEvent = Tuple[List[ObjectSpec], List[InteractionEvent]]


def person_gets_into_car(
    person_id: int,
    car_id: int,
    car_position: Tuple[float, float],
    start_frame: int,
    *,
    approach_frames: int = 120,
    car_color: str = "red",
    car_attributes: Optional[Dict[str, object]] = None,
    person_attributes: Optional[Dict[str, object]] = None,
    drive_off: bool = True,
    drive_speed: float = 8.0,
) -> BuiltEvent:
    """A person walks to a parked car, gets in, and the car (optionally) drives off."""
    cx, cy = car_position
    enter_frame = start_frame + approach_frames
    leave_frame = enter_frame + 30

    person_start = (cx - 300.0, cy + 120.0)
    person = ObjectSpec(
        object_id=person_id,
        class_name="person",
        trajectory=WaypointTrajectory(
            [(start_frame, person_start), (enter_frame, (cx, cy)), (leave_frame, (cx, cy))]
        ),
        size=(35.0, 90.0),
        enter_frame=start_frame,
        exit_frame=leave_frame,
        attributes={"clothing": "jeans", "hair": "black", **(person_attributes or {})},
        default_action="walking",
        action_schedule={f: "getting_into_car" for f in range(enter_frame, leave_frame + 1)},
    )

    car_waypoints = [(start_frame, (cx, cy)), (leave_frame, (cx, cy))]
    if drive_off:
        car_waypoints.append((leave_frame + 200, (cx + drive_speed * 200, cy)))
    car = ObjectSpec(
        object_id=car_id,
        class_name="car",
        trajectory=WaypointTrajectory(car_waypoints, hold_at_end=not drive_off),
        size=(120.0, 60.0),
        enter_frame=0,
        attributes={
            "color": car_color,
            "vehicle_type": "sedan",
            "license_plate": "SUS4545",
            "direction": "go_straight",
            "speeding": False,
            **(car_attributes or {}),
        },
    )
    events = [
        InteractionEvent(person_id, car_id, "get_into", enter_frame, leave_frame),
    ]
    return [person, car], events


def hit_and_run(
    car_id: int,
    person_id: int,
    collision_point: Tuple[float, float],
    collision_frame: int,
    *,
    car_color: str = "white",
    flee_speed: float = 18.0,
    approach_speed: float = 6.0,
) -> BuiltEvent:
    """A car collides with a pedestrian, then speeds away (Figure 8's scenario)."""
    cx, cy = collision_point
    approach_frames = 150
    start_frame = max(collision_frame - approach_frames, 0)

    car_start = (cx - approach_speed * (collision_frame - start_frame), cy)
    flee_end_frame = collision_frame + 200
    car = ObjectSpec(
        object_id=car_id,
        class_name="car",
        trajectory=WaypointTrajectory(
            [
                (start_frame, car_start),
                (collision_frame, (cx, cy)),
                (flee_end_frame, (cx + flee_speed * (flee_end_frame - collision_frame), cy)),
            ],
            hold_at_end=False,
        ),
        size=(120.0, 60.0),
        enter_frame=start_frame,
        attributes={
            "color": car_color,
            "vehicle_type": "sedan",
            "license_plate": "RUN0911",
            "direction": "go_straight",
            "speeding": True,
        },
    )
    person = ObjectSpec(
        object_id=person_id,
        class_name="person",
        trajectory=WaypointTrajectory(
            [
                (start_frame, (cx, cy + 250.0)),
                (collision_frame, (cx + 10.0, cy + 5.0)),
                (collision_frame + 600, (cx + 15.0, cy + 10.0)),
            ]
        ),
        size=(35.0, 90.0),
        enter_frame=start_frame,
        attributes={"clothing": "jeans", "hair": "brown"},
        default_action="crossing",
        action_schedule={f: "fallen" for f in range(collision_frame, collision_frame + 600)},
    )
    events = [
        InteractionEvent(car_id, person_id, "collide", collision_frame - 3, collision_frame + 3),
    ]
    return [car, person], events


def person_hits_ball(
    person_id: int,
    ball_id: int,
    position: Tuple[float, float],
    start_frame: int = 0,
    duration: int = 1,
) -> BuiltEvent:
    """A person–ball "hit" interaction (the V-COCO style HOI for Q6)."""
    px, py = position
    end_frame = start_frame + max(duration - 1, 0)
    person = ObjectSpec(
        object_id=person_id,
        class_name="person",
        trajectory=StationaryTrajectory((px, py)),
        size=(40.0, 100.0),
        enter_frame=start_frame,
        exit_frame=end_frame,
        attributes={"clothing": "shorts", "hair": "black"},
        default_action="hitting",
    )
    ball = ObjectSpec(
        object_id=ball_id,
        class_name="ball",
        trajectory=StationaryTrajectory((px + 45.0, py - 20.0)),
        size=(18.0, 18.0),
        enter_frame=start_frame,
        exit_frame=end_frame,
        attributes={"color": "white"},
    )
    events = [InteractionEvent(person_id, ball_id, "hit", start_frame, end_frame)]
    return [person, ball], events


def loitering_person(
    person_id: int,
    region_center: Tuple[float, float],
    start_frame: int,
    duration_frames: int,
    *,
    radius: float = 60.0,
) -> BuiltEvent:
    """A person who stays inside a region for ``duration_frames`` (loitering alert)."""
    person = ObjectSpec(
        object_id=person_id,
        class_name="person",
        trajectory=LoiterTrajectory(region_center, radius=radius, period_frames=240),
        size=(35.0, 90.0),
        enter_frame=start_frame,
        exit_frame=start_frame + duration_frames,
        attributes={"clothing": "suit", "hair": "gray"},
        default_action="loitering",
    )
    return [person], []


def checkout_queue(
    first_person_id: int,
    queue_head: Tuple[float, float],
    num_people: int,
    start_frame: int,
    duration_frames: int,
    *,
    spacing: float = 60.0,
) -> BuiltEvent:
    """A line of people waiting at a checkout (queue-analysis use case)."""
    if num_people < 1:
        raise ValueError("queue needs at least one person")
    hx, hy = queue_head
    people: List[ObjectSpec] = []
    for i in range(num_people):
        people.append(
            ObjectSpec(
                object_id=first_person_id + i,
                class_name="person",
                trajectory=StationaryTrajectory((hx + spacing * i, hy), jitter=2.0, seed=first_person_id + i),
                size=(35.0, 90.0),
                enter_frame=start_frame,
                exit_frame=start_frame + duration_frames,
                attributes={"clothing": "jeans", "hair": "brown", "in_queue": True},
                default_action="standing",
            )
        )
    return people, []


def abandoned_bag(
    bag_id: int,
    position: Tuple[float, float],
    start_frame: int,
    duration_frames: int,
) -> BuiltEvent:
    """A stationary unattended bag (the DurationQuery example from §3)."""
    bag = ObjectSpec(
        object_id=bag_id,
        class_name="bag",
        trajectory=StationaryTrajectory(position),
        size=(30.0, 25.0),
        enter_frame=start_frame,
        exit_frame=start_frame + duration_frames,
        attributes={"color": "black"},
    )
    return [bag], []


def jaywalking_person(
    person_id: int,
    road_y: float,
    frame_width: float,
    start_frame: int,
    *,
    speed: float = 2.0,
) -> BuiltEvent:
    """A pedestrian crossing mid-road, used by the traffic-hazard examples."""
    person = ObjectSpec(
        object_id=person_id,
        class_name="person",
        trajectory=LinearTrajectory((frame_width * 0.5, road_y + 300.0), (0.0, -speed)),
        size=(35.0, 90.0),
        enter_frame=start_frame,
        exit_frame=start_frame + int(600 / speed),
        attributes={"clothing": "shorts", "hair": "black"},
        default_action="crossing",
    )
    return [person], []
