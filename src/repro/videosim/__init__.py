"""Synthetic video substrate.

The paper evaluates on real surveillance footage (CityFlow-NL, public
traffic cameras, V-COCO images).  We have no access to that footage, so this
package generates *synthetic videos*: frame sequences whose ground truth —
objects, attributes, trajectories, actions, and interactions — is scripted
by dataset presets that mirror the statistical structure the paper relies on
(e.g. green vehicles are rare, there are never more than four cars on the
Auburn crossing at once).

The simulated model zoo in :mod:`repro.models` reads this ground truth and
perturbs it with seeded error models; no pixel data is ever materialised.
"""

from repro.videosim.entities import ObjectSpec, GTInstance, InteractionEvent
from repro.videosim.trajectory import (
    Trajectory,
    LinearTrajectory,
    TurnTrajectory,
    StationaryTrajectory,
    LoiterTrajectory,
    WaypointTrajectory,
)
from repro.videosim.livefeed import Delivery, LiveFeed
from repro.videosim.video import Frame, SyntheticVideo, VideoReader
from repro.videosim.scene import SceneGenerator, TrafficSceneConfig
from repro.videosim.multicam import (
    CameraPlacement,
    MultiCameraScenario,
    handoff_scenario,
)
from repro.videosim import datasets

__all__ = [
    "ObjectSpec",
    "GTInstance",
    "InteractionEvent",
    "Trajectory",
    "LinearTrajectory",
    "TurnTrajectory",
    "StationaryTrajectory",
    "LoiterTrajectory",
    "WaypointTrajectory",
    "Delivery",
    "LiveFeed",
    "Frame",
    "SyntheticVideo",
    "VideoReader",
    "SceneGenerator",
    "TrafficSceneConfig",
    "CameraPlacement",
    "MultiCameraScenario",
    "handoff_scenario",
    "datasets",
]
