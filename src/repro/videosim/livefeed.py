"""Paced live-feed adapter: push a video's frames along a virtual timeline.

Batch execution pulls frames as fast as the scan can process them; a live
source pushes them at its own pace, with network latency, jitter, lag
bursts, out-of-order delivery, duplicates, and mid-stream disconnects.
:class:`LiveFeed` turns a finite :class:`~repro.videosim.video.SyntheticVideo`
into such a source on the ``SimClock``'s virtual-ms axis:

* frame ``i`` is *captured* at ``i * 1000 / fps`` virtual ms and *delivered*
  after a base latency plus deterministic jitter;
* lag bursts add latency to a frame range (the overload lever: deliveries
  bunch up behind the burst and arrive together when it ends);
* a reordered frame is held back past its successors; a duplicated frame is
  delivered twice;
* frames captured inside a disconnect window are lost outright, and
  :meth:`reconnect` fails while the window is still open — driving the live
  session's watchdog through its retry/backoff + breaker machinery.

Every perturbation is drawn via :func:`~repro.common.rng.stable_uniform`
keyed by ``(seed, "live", feed, kind, frame)``, the same keyed-draw scheme
the fault injector uses, so a chaos schedule is a pure function of the seed
— independent of poll timing, worker count, or interleaving — and composes
deterministically with :class:`~repro.common.config.FaultConfig` seeding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.rng import stable_uniform
from repro.videosim.video import Frame, SyntheticVideo


@dataclass(frozen=True)
class Delivery:
    """One scheduled frame arrival on the virtual timeline."""

    delivery_ms: float
    capture_ms: float
    frame_id: int
    duplicate: bool = False


class LiveFeed:
    """Delivers a video's frames at paced virtual times, with disorder.

    The schedule is fully precomputed at construction (it is a pure function
    of the constructor arguments), so delivery order and loss accounting are
    identical however often — or rarely — the consumer polls.
    """

    def __init__(
        self,
        video: SyntheticVideo,
        fps: Optional[float] = None,
        seed: int = 0,
        base_latency_ms: float = 0.0,
        jitter_ms: float = 0.0,
        lag_bursts: Sequence[Tuple[int, int, float]] = (),
        reorder_rate: float = 0.0,
        reorder_delay_ms: Optional[float] = None,
        duplicate_rate: float = 0.0,
        disconnects: Sequence[Tuple[float, float]] = (),
    ) -> None:
        """``fps`` overrides the video's native rate (ingest pacing);
        ``lag_bursts`` are ``(first_frame, last_frame, extra_ms)`` ranges;
        ``disconnects`` are ``(start_ms, end_ms)`` outage windows on the
        capture timeline; ``reorder_delay_ms`` defaults to 2.5 frame
        intervals — enough to land a frame behind its two successors.
        """
        if fps is not None and fps <= 0:
            raise ValueError("fps must be positive")
        for rate_name, rate in (("reorder_rate", reorder_rate), ("duplicate_rate", duplicate_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_name} must be a probability in [0, 1]")
        for start_ms, end_ms in disconnects:
            if end_ms <= start_ms:
                raise ValueError("disconnect windows need end_ms > start_ms")
        self.video = video
        self.feed = video.spec.name
        self.fps = float(fps if fps is not None else video.fps)
        self.interval_ms = 1000.0 / self.fps
        self.seed = seed
        self._windows: List[Tuple[float, float]] = sorted(
            (float(a), float(b)) for a, b in disconnects
        )
        if reorder_delay_ms is None:
            reorder_delay_ms = 2.5 * self.interval_ms

        schedule: List[Delivery] = []
        #: (capture_ms, frame_id) of frames lost to disconnect windows, not
        #: yet surfaced by :meth:`lost_before`.
        self._lost: List[Tuple[float, int]] = []
        #: Frame ids the schedule holds back past a successor (ground truth
        #: for the session's ``frames_reordered`` accounting in tests).
        self.reordered_frame_ids: List[int] = []
        for fid in range(video.num_frames):
            capture_ms = fid * self.interval_ms
            if any(a <= capture_ms < b for a, b in self._windows):
                self._lost.append((capture_ms, fid))
                continue
            latency = base_latency_ms
            if jitter_ms > 0:
                latency += jitter_ms * stable_uniform(seed, "live", self.feed, "jitter", fid)
            for first, last, extra_ms in lag_bursts:
                if first <= fid <= last:
                    latency += extra_ms
            if reorder_rate > 0 and stable_uniform(
                seed, "live", self.feed, "reorder", fid
            ) < reorder_rate:
                latency += reorder_delay_ms
                self.reordered_frame_ids.append(fid)
            schedule.append(Delivery(capture_ms + latency, capture_ms, fid))
            if duplicate_rate > 0 and stable_uniform(
                seed, "live", self.feed, "duplicate", fid
            ) < duplicate_rate:
                schedule.append(
                    Delivery(capture_ms + latency + self.interval_ms, capture_ms, fid, True)
                )
        schedule.sort(key=lambda d: (d.delivery_ms, d.frame_id, d.duplicate))
        self._schedule = schedule
        self._cursor = 0
        self._lost_drained = 0
        #: Frame objects handed out by :meth:`poll` (duplicates included).
        self.frames_delivered = 0
        self.duplicates_delivered = 0

    # ------------------------------------------------------------- delivery --
    @property
    def exhausted(self) -> bool:
        """True once every scheduled delivery has been handed out."""
        return self._cursor >= len(self._schedule)

    def next_delivery_ms(self) -> Optional[float]:
        """Virtual time of the next undelivered arrival (None = exhausted)."""
        if self.exhausted:
            return None
        return self._schedule[self._cursor].delivery_ms

    def poll(self, now_ms: float) -> List[Tuple[Frame, Delivery]]:
        """All arrivals due at or before ``now_ms``, in delivery order."""
        out: List[Tuple[Frame, Delivery]] = []
        while not self.exhausted and self._schedule[self._cursor].delivery_ms <= now_ms:
            delivery = self._schedule[self._cursor]
            self._cursor += 1
            out.append((self.video.frame(delivery.frame_id), delivery))
            self.frames_delivered += 1
            if delivery.duplicate:
                self.duplicates_delivered += 1
        return out

    # ----------------------------------------------------------- disconnects --
    def in_outage(self, now_ms: float) -> bool:
        """True while ``now_ms`` sits inside a disconnect window."""
        return any(a <= now_ms < b for a, b in self._windows)

    def reconnect(self, now_ms: float) -> bool:
        """Attempt to re-establish the feed; fails while an outage is open."""
        return not self.in_outage(now_ms)

    def lost_before(self, now_ms: float) -> List[int]:
        """Frame ids lost to outages with capture time ≤ ``now_ms`` (drained).

        The consumer labels these as missing (``Event.skipped_frames``) the
        moment the timeline passes their capture instant; draining keeps the
        accounting exactly-once.
        """
        due = [fid for capture_ms, fid in self._lost if capture_ms <= now_ms]
        if due:
            self._lost = [(c, f) for c, f in self._lost if c > now_ms]
            self._lost_drained += len(due)
        return due

    @property
    def frames_lost(self) -> int:
        """Frames inside disconnect windows (fixed at construction)."""
        return len(self._lost) + self._lost_drained
