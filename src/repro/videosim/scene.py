"""Stochastic traffic-scene generation.

The :class:`SceneGenerator` spawns vehicles and pedestrians with configurable
arrival rates and attribute distributions, producing the object population of
a :class:`~repro.videosim.video.SyntheticVideo`.  Dataset presets in
:mod:`repro.videosim.datasets` wrap it with distributions matching each of
the paper's evaluation videos.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.config import VideoSpec
from repro.common.rng import derive_rng
from repro.videosim.entities import (
    InteractionEvent,
    ObjectSpec,
    VEHICLE_COLORS,
    VEHICLE_TYPES,
)
from repro.videosim.trajectory import (
    LinearTrajectory,
    LoiterTrajectory,
    TurnTrajectory,
)
from repro.videosim.video import SyntheticVideo


def _normalise(dist: Dict[str, float]) -> Dict[str, float]:
    total = sum(dist.values())
    if total <= 0:
        raise ValueError("distribution weights must sum to a positive value")
    return {k: v / total for k, v in dist.items()}


#: Default vehicle colour distribution: dark/neutral colours dominate, green
#: is rare — this is the skew §5.1 relies on ("green vehicles ... are less
#: common in the dataset", so filters prune more work for green queries).
DEFAULT_COLOR_DIST: Dict[str, float] = {
    "black": 0.28,
    "white": 0.24,
    "gray": 0.18,
    "silver": 0.10,
    "red": 0.09,
    "blue": 0.08,
    "green": 0.03,
}

DEFAULT_TYPE_DIST: Dict[str, float] = {
    "sedan": 0.45,
    "suv": 0.25,
    "hatchback": 0.15,
    "pickup": 0.10,
    "van": 0.05,
}

DEFAULT_DIRECTION_DIST: Dict[str, float] = {
    "go_straight": 0.70,
    "turn_right": 0.15,
    "turn_left": 0.15,
}


@dataclass
class TrafficSceneConfig:
    """Knobs for the stochastic traffic scene generator."""

    #: Expected number of vehicles entering the scene per minute.
    vehicles_per_minute: float = 12.0
    #: Expected number of pedestrians entering the scene per minute.
    pedestrians_per_minute: float = 4.0
    #: Fraction of vehicles that are speeding (fast velocity).
    speeding_fraction: float = 0.15
    #: Fraction of vehicles that are buses / trucks rather than cars.
    bus_fraction: float = 0.05
    truck_fraction: float = 0.05
    color_dist: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_COLOR_DIST))
    type_dist: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_TYPE_DIST))
    direction_dist: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_DIRECTION_DIST))
    #: Pixels/frame speed ranges (normal, speeding).
    normal_speed: Tuple[float, float] = (3.0, 8.0)
    speeding_speed: Tuple[float, float] = (14.0, 22.0)
    pedestrian_speed: Tuple[float, float] = (0.8, 2.5)
    #: Fraction of pedestrians that loiter instead of crossing.
    loiter_fraction: float = 0.1

    def __post_init__(self) -> None:
        self.color_dist = _normalise(self.color_dist)
        self.type_dist = _normalise(self.type_dist)
        self.direction_dist = _normalise(self.direction_dist)
        for name in ("vehicles_per_minute", "pedestrians_per_minute"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class SceneGenerator:
    """Generates the object population of a traffic scene."""

    def __init__(self, spec: VideoSpec, config: Optional[TrafficSceneConfig] = None, seed: int = 0) -> None:
        self.spec = spec
        self.config = config or TrafficSceneConfig()
        self.seed = seed
        self._id_counter = itertools.count(1)

    # -- helpers -----------------------------------------------------------
    def _next_id(self) -> int:
        return next(self._id_counter)

    def _sample(self, rng: np.random.Generator, dist: Dict[str, float]) -> str:
        keys = sorted(dist)
        probs = np.array([dist[k] for k in keys])
        return str(rng.choice(keys, p=probs / probs.sum()))

    def _license_plate(self, rng: np.random.Generator) -> str:
        letters = "".join(rng.choice(list("ABCDEFGHJKLMNPRSTUVWXYZ"), size=3))
        digits = "".join(str(d) for d in rng.integers(0, 10, size=4))
        return f"{letters}{digits}"

    def _arrival_frames(self, rng: np.random.Generator, per_minute: float) -> List[int]:
        """Poisson arrivals over the clip duration, as frame indices."""
        duration_min = self.spec.duration_s / 60.0
        expected = per_minute * duration_min
        count = int(rng.poisson(expected)) if expected > 0 else 0
        if count == 0:
            return []
        frames = np.sort(rng.integers(0, max(self.spec.num_frames - 1, 1), size=count))
        return [int(f) for f in frames]

    # -- vehicles ----------------------------------------------------------
    def _make_vehicle(self, rng: np.random.Generator, enter_frame: int) -> ObjectSpec:
        cfg = self.config
        roll = rng.random()
        if roll < cfg.bus_fraction:
            class_name, size = "bus", (260.0, 110.0)
        elif roll < cfg.bus_fraction + cfg.truck_fraction:
            class_name, size = "truck", (220.0, 100.0)
        else:
            class_name, size = "car", (120.0, 60.0)

        speeding = rng.random() < cfg.speeding_fraction
        lo, hi = cfg.speeding_speed if speeding else cfg.normal_speed
        speed = float(rng.uniform(lo, hi))

        # Vehicles cross the frame horizontally on one of two lanes.
        going_right = rng.random() < 0.5
        lane_y = float(rng.uniform(0.45, 0.75) * self.spec.height)
        start_x = -150.0 if going_right else self.spec.width + 150.0
        vx = speed if going_right else -speed

        direction = self._sample(rng, cfg.direction_dist)
        if direction == "go_straight":
            trajectory = LinearTrajectory((start_x, lane_y), (vx, 0.0))
        else:
            turn_deg = 80.0 if direction == "turn_right" else -80.0
            if not going_right:
                turn_deg = -turn_deg
            turn_frame = enter_frame + int(rng.integers(30, 90))
            trajectory = TurnTrajectory((start_x, lane_y), (vx, 0.0), turn_frame=turn_frame - enter_frame, turn_deg=turn_deg)

        travel_frames = int((self.spec.width + 400) / max(speed, 1e-6))
        attributes = {
            "color": self._sample(rng, cfg.color_dist),
            "vehicle_type": self._sample(rng, cfg.type_dist),
            "license_plate": self._license_plate(rng),
            "direction": direction,
            "speeding": speeding,
        }
        if class_name == "bus":
            attributes["vehicle_type"] = "bus"
        elif class_name == "truck":
            attributes["vehicle_type"] = "pickup"
        return ObjectSpec(
            object_id=self._next_id(),
            class_name=class_name,
            trajectory=_shifted(trajectory, enter_frame),
            size=size,
            enter_frame=enter_frame,
            exit_frame=min(enter_frame + travel_frames, self.spec.num_frames - 1),
            attributes=attributes,
        )

    # -- pedestrians ---------------------------------------------------------
    def _make_pedestrian(self, rng: np.random.Generator, enter_frame: int) -> ObjectSpec:
        cfg = self.config
        speed = float(rng.uniform(*cfg.pedestrian_speed))
        loiters = rng.random() < cfg.loiter_fraction
        size = (35.0, 90.0)
        if loiters:
            center = (
                float(rng.uniform(0.2, 0.8) * self.spec.width),
                float(rng.uniform(0.3, 0.9) * self.spec.height),
            )
            trajectory = LoiterTrajectory(center, radius=float(rng.uniform(30, 80)), period_frames=int(rng.integers(150, 400)))
            action = "loitering"
            lifetime = int(rng.integers(self.spec.fps * 30, self.spec.fps * 200))
        else:
            # Cross the frame vertically (a crosswalk crossing).
            going_down = rng.random() < 0.5
            x = float(rng.uniform(0.25, 0.75) * self.spec.width)
            start_y = -100.0 if going_down else self.spec.height + 100.0
            vy = speed if going_down else -speed
            trajectory = LinearTrajectory((x, start_y), (0.0, vy))
            action = "crossing"
            lifetime = int((self.spec.height + 250) / max(speed, 1e-6))
        attributes = {
            "clothing": str(rng.choice(["jeans", "shorts", "dress", "suit"])),
            "hair": str(rng.choice(["black", "brown", "blond", "gray"])),
        }
        return ObjectSpec(
            object_id=self._next_id(),
            class_name="person",
            trajectory=_shifted(trajectory, enter_frame),
            size=size,
            enter_frame=enter_frame,
            exit_frame=min(enter_frame + lifetime, self.spec.num_frames - 1),
            attributes=attributes,
            default_action=action,
        )

    # -- public API ----------------------------------------------------------
    def generate_objects(self) -> List[ObjectSpec]:
        """Generate the full object population for the clip."""
        rng_v = derive_rng(self.seed, "scene", self.spec.name, "vehicles")
        rng_p = derive_rng(self.seed, "scene", self.spec.name, "pedestrians")
        objects: List[ObjectSpec] = []
        for enter in self._arrival_frames(rng_v, self.config.vehicles_per_minute):
            objects.append(self._make_vehicle(rng_v, enter))
        for enter in self._arrival_frames(rng_p, self.config.pedestrians_per_minute):
            objects.append(self._make_pedestrian(rng_p, enter))
        return objects

    def generate_video(
        self,
        extra_objects: Sequence[ObjectSpec] = (),
        events: Sequence[InteractionEvent] = (),
        scene_attributes: Optional[Dict[str, object]] = None,
    ) -> SyntheticVideo:
        """Generate the video, optionally merging scripted extra objects/events."""
        objects = self.generate_objects()
        objects.extend(extra_objects)
        return SyntheticVideo(
            self.spec,
            objects,
            events=events,
            scene_attributes=scene_attributes or {"time_of_day": "day", "weather": "clear"},
            seed=self.seed,
        )

    def reserve_id(self) -> int:
        """Reserve an object id for externally scripted objects."""
        return self._next_id() + 1_000_000


class _ShiftedTrajectory:
    """Re-bases a trajectory so frame ``enter_frame`` maps to its local t=0."""

    def __init__(self, inner, enter_frame: int) -> None:
        self._inner = inner
        self._enter = enter_frame

    def _local(self, frame_id: int) -> int:
        return max(frame_id - self._enter, 0)

    def position(self, frame_id: int):
        return self._inner.position(self._local(frame_id))

    def velocity(self, frame_id: int):
        return self._inner.velocity(self._local(frame_id))

    def speed(self, frame_id: int) -> float:
        return self._inner.speed(self._local(frame_id))

    def heading_deg(self, frame_id: int) -> float:
        return self._inner.heading_deg(self._local(frame_id))

    def direction_label(self, frame_id: int, window: int = 10) -> str:
        return self._inner.direction_label(self._local(frame_id), window)


def _shifted(trajectory, enter_frame: int):
    """Wrap ``trajectory`` so it starts when the object enters the scene."""
    if enter_frame == 0:
        return trajectory
    return _ShiftedTrajectory(trajectory, enter_frame)
