"""Multi-camera scenario generation with shared ground-truth identities.

Cross-camera workloads (the amber-alert chase, hit-and-run reconstruction)
need the *same* physical entity to appear on several feeds — recorded at
different frame rates, started at different wall-clock moments — with a
known ground-truth identity, so re-identification accuracy is measurable.

:func:`handoff_scenario` scripts exactly that: each entity crosses the
cameras in order, dwelling ``dwell_s`` seconds on each and travelling
(unseen) ``travel_gap_s`` seconds between them.  The entity keeps one
``object_id`` across every feed, which is what makes the simulated
``reid_feature`` model produce consistent embeddings for it — the same
mechanism a real re-id model's appearance features provide.  Per-camera
background traffic uses camera-disjoint id ranges so distractors can never
share an identity across feeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.config import VideoSpec
from repro.common.rng import derive_rng
from repro.videosim.entities import ObjectSpec
from repro.videosim.scene import SceneGenerator, TrafficSceneConfig, _shifted
from repro.videosim.trajectory import LinearTrajectory
from repro.videosim.video import SyntheticVideo

#: Scripted cross-camera entities use ids from this base, far above anything
#: the background generators produce.
ENTITY_ID_BASE = 800_000

#: Background objects of camera ``k`` are offset by ``(k + 1) * this``, so a
#: distractor on one feed never shares a ground-truth id (and therefore never
#: a re-id embedding) with a distractor on another feed.
BACKGROUND_ID_STRIDE = 10_000

#: Default per-entity colours: distinct, so colour queries stay selective.
DEFAULT_ENTITY_COLORS = ("red", "blue", "green", "white", "black", "silver", "gray")


@dataclass(frozen=True)
class CameraPlacement:
    """One camera in a multi-feed scenario."""

    name: str
    fps: int
    #: Wall-clock second (on the shared global clock) the camera's frame 0
    #: was captured at.
    start_offset_s: float = 0.0
    width: int = 640
    height: int = 480
    #: Recording duration; None sizes the clip to cover every scripted visit.
    duration_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ValueError("fps must be positive")
        if self.start_offset_s < 0:
            raise ValueError("start_offset_s must be non-negative")


#: The default two-camera handoff: mixed frame rates, staggered starts.
DEFAULT_PLACEMENTS: Tuple[CameraPlacement, ...] = (
    CameraPlacement("cam_a", fps=10, start_offset_s=0.0),
    CameraPlacement("cam_b", fps=15, start_offset_s=3.0),
)


@dataclass
class MultiCameraScenario:
    """A generated multi-feed scenario plus its identity ground truth."""

    #: Feed name -> video, in camera order (feed the session directly).
    videos: Dict[str, SyntheticVideo]
    #: Feed name -> wall-clock start offset (feed the session directly).
    start_offsets: Dict[str, float]
    #: Entity object_id -> its (camera, enter_ts, exit_ts) visits on the
    #: global wall clock, in visit order.  This is the re-id ground truth:
    #: tracks on different cameras stemming from the same object_id are the
    #: same physical entity.
    itineraries: Dict[int, List[Tuple[str, float, float]]] = field(default_factory=dict)

    @property
    def cameras(self) -> List[str]:
        return list(self.videos)

    @property
    def entity_ids(self) -> List[int]:
        return sorted(self.itineraries)


def _entity_attributes(index: int, entity_class: str, seed: int) -> Dict[str, object]:
    rng = derive_rng(seed, "multicam", "entity", index)
    if entity_class == "person":
        return {
            "clothing": str(rng.choice(["jeans", "shorts", "dress", "suit"])),
            "hair": str(rng.choice(["black", "brown", "blond", "gray"])),
        }
    letters = "".join(rng.choice(list("ABCDEFGHJKLMNPRSTUVWXYZ"), size=3))
    digits = "".join(str(d) for d in rng.integers(0, 10, size=4))
    return {
        "color": DEFAULT_ENTITY_COLORS[index % len(DEFAULT_ENTITY_COLORS)],
        "vehicle_type": "sedan",
        "license_plate": f"{letters}{digits}",
        "direction": "go_straight",
        "speeding": False,
    }


def handoff_scenario(
    cameras: Sequence[CameraPlacement] = DEFAULT_PLACEMENTS,
    num_entities: int = 3,
    dwell_s: float = 6.0,
    travel_gap_s: float = 4.0,
    stagger_s: float = 1.5,
    entity_class: str = "car",
    entity_attributes: Optional[Sequence[Mapping[str, object]]] = None,
    background_vehicles_per_minute: float = 0.0,
    background_pedestrians_per_minute: float = 0.0,
    tail_s: float = 2.0,
    seed: int = 0,
) -> MultiCameraScenario:
    """Script ``num_entities`` entities crossing every camera in order.

    Entity ``i`` enters the first camera at global time ``i * stagger_s``,
    crosses each camera's view left-to-right in ``dwell_s`` seconds, and
    takes ``travel_gap_s`` seconds of unseen travel between consecutive
    cameras.  Visits that would begin before a camera started recording are
    dropped (the camera simply missed that entity).  ``entity_attributes``
    overrides the generated per-entity attribute dicts positionally.
    """
    if num_entities < 1:
        raise ValueError("need at least one entity")
    if not cameras:
        raise ValueError("need at least one camera")
    if len({cam.name for cam in cameras}) != len(cameras):
        raise ValueError("camera names must be unique")
    if dwell_s <= 0:
        raise ValueError("dwell_s must be positive")

    size = (35.0, 90.0) if entity_class == "person" else (120.0, 60.0)
    margin = 80.0

    itineraries: Dict[int, List[Tuple[str, float, float]]] = {}
    per_camera_objects: Dict[str, List[ObjectSpec]] = {cam.name: [] for cam in cameras}
    last_visit_end: Dict[str, float] = {cam.name: 0.0 for cam in cameras}

    for i in range(num_entities):
        object_id = ENTITY_ID_BASE + i
        attributes = dict(
            entity_attributes[i]
            if entity_attributes is not None and i < len(entity_attributes)
            else _entity_attributes(i, entity_class, seed)
        )
        visits: List[Tuple[str, float, float]] = []
        for k, cam in enumerate(cameras):
            enter_ts = i * stagger_s + k * (dwell_s + travel_gap_s)
            exit_ts = enter_ts + dwell_s
            if enter_ts < cam.start_offset_s:
                continue  # the camera was not yet recording
            enter_frame = int(round((enter_ts - cam.start_offset_s) * cam.fps))
            exit_frame = int(round((exit_ts - cam.start_offset_s) * cam.fps))
            if cam.duration_s is not None:
                # A fixed-length recording may end before (or during) the
                # visit; the itinerary must only claim what the footage can
                # show, or it would depress measured re-id recall unfairly.
                num_frames = int(round(cam.fps * cam.duration_s))
                if enter_frame >= num_frames:
                    continue
                exit_frame = min(exit_frame, num_frames - 1)
                exit_ts = cam.start_offset_s + exit_frame / cam.fps
            dwell_frames = max(exit_frame - enter_frame, 1)
            speed = (cam.width + 2 * margin) / dwell_frames
            lane_y = (0.40 + 0.08 * (i % 5)) * cam.height
            trajectory = _shifted(
                LinearTrajectory((-margin, lane_y), (speed, 0.0)), enter_frame
            )
            per_camera_objects[cam.name].append(
                ObjectSpec(
                    object_id=object_id,
                    class_name=entity_class,
                    trajectory=trajectory,
                    size=size,
                    enter_frame=enter_frame,
                    exit_frame=exit_frame,
                    attributes=attributes,
                    default_action="walking" if entity_class == "person" else None,
                )
            )
            visits.append((cam.name, enter_ts, exit_ts))
            last_visit_end[cam.name] = max(last_visit_end[cam.name], exit_ts)
        itineraries[object_id] = visits

    videos: Dict[str, SyntheticVideo] = {}
    start_offsets: Dict[str, float] = {}
    for idx, cam in enumerate(cameras):
        duration = cam.duration_s
        if duration is None:
            duration = max(last_visit_end[cam.name] - cam.start_offset_s + tail_s, dwell_s)
        spec = VideoSpec(cam.name, fps=cam.fps, width=cam.width, height=cam.height, duration_s=duration)
        extra = list(per_camera_objects[cam.name])
        if background_vehicles_per_minute > 0 or background_pedestrians_per_minute > 0:
            generator = SceneGenerator(
                spec,
                TrafficSceneConfig(
                    vehicles_per_minute=background_vehicles_per_minute,
                    pedestrians_per_minute=background_pedestrians_per_minute,
                    loiter_fraction=0.0,
                ),
                seed=seed * 31 + idx,
            )
            for obj in generator.generate_objects():
                # Camera-disjoint id ranges: background entities exist on one
                # feed only, so they must never alias a ground-truth identity
                # on another feed.
                obj.object_id += BACKGROUND_ID_STRIDE * (idx + 1)
                extra.append(obj)
        videos[cam.name] = SyntheticVideo(spec, extra, seed=seed * 7 + idx)
        start_offsets[cam.name] = cam.start_offset_s

    return MultiCameraScenario(videos=videos, start_offsets=start_offsets, itineraries=itineraries)
