"""Motion models for ground-truth objects.

A :class:`Trajectory` maps a frame index to the object's centre position.
Dataset presets compose trajectories to script the scenarios the paper's
queries look for: vehicles keeping straight or turning, speeding cars,
loitering pedestrians, a car hitting a person and driving away, etc.

All trajectories expose:

* ``position(frame_id)`` — centre ``(x, y)`` in pixels,
* ``velocity(frame_id)`` — instantaneous velocity in pixels/frame,
* ``direction_label(frame_id)`` — the coarse label used by the CityFlow-like
  queries (``"go_straight"``, ``"turn_left"``, ``"turn_right"``,
  ``"stopped"``).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.common.rng import derive_rng

Point = Tuple[float, float]

#: Speed (pixels/frame) below which an object counts as stopped.
STOPPED_SPEED = 0.5

#: Turn-rate (degrees/frame) above which motion counts as a turn.
TURN_RATE_DEG = 1.0


class Trajectory(ABC):
    """Abstract motion model evaluated at integer frame indices."""

    @abstractmethod
    def position(self, frame_id: int) -> Point:
        """Centre position at ``frame_id`` (pixels)."""

    def velocity(self, frame_id: int) -> Point:
        """Finite-difference velocity in pixels/frame."""
        x0, y0 = self.position(max(frame_id - 1, 0))
        x1, y1 = self.position(frame_id)
        if frame_id == 0:
            x1, y1 = self.position(1)
            x0, y0 = self.position(0)
        return (x1 - x0, y1 - y0)

    def speed(self, frame_id: int) -> float:
        vx, vy = self.velocity(frame_id)
        return float(math.hypot(vx, vy))

    def heading_deg(self, frame_id: int) -> float:
        """Heading angle in degrees; 0 points along +x, 90 along +y."""
        vx, vy = self.velocity(frame_id)
        if abs(vx) < 1e-9 and abs(vy) < 1e-9:
            return 0.0
        return math.degrees(math.atan2(vy, vx))

    def direction_label(self, frame_id: int, window: int = 10) -> str:
        """Coarse direction label over a trailing window of frames."""
        if self.speed(frame_id) < STOPPED_SPEED:
            return "stopped"
        past = max(frame_id - window, 0)
        if past == frame_id:
            return "go_straight"
        h0 = self.heading_deg(past + 1)
        h1 = self.heading_deg(frame_id)
        delta = _wrap_angle(h1 - h0)
        rate = abs(delta) / max(frame_id - past, 1)
        if rate < TURN_RATE_DEG:
            return "go_straight"
        # Screen coordinates: +y is down, so a positive heading change is a
        # clockwise turn which reads as a right turn on screen.
        return "turn_right" if delta > 0 else "turn_left"


def _wrap_angle(deg: float) -> float:
    """Wrap an angle difference to (-180, 180]."""
    while deg <= -180.0:
        deg += 360.0
    while deg > 180.0:
        deg -= 360.0
    return deg


@dataclass
class LinearTrajectory(Trajectory):
    """Constant-velocity straight-line motion."""

    start: Point
    velocity_vec: Point

    def position(self, frame_id: int) -> Point:
        return (
            self.start[0] + self.velocity_vec[0] * frame_id,
            self.start[1] + self.velocity_vec[1] * frame_id,
        )

    def velocity(self, frame_id: int) -> Point:  # noqa: D102 - exact, no FD noise
        return self.velocity_vec


@dataclass
class TurnTrajectory(Trajectory):
    """Straight motion that turns by ``turn_deg`` over ``turn_duration`` frames.

    The turn starts at ``turn_frame``; before it the object moves with the
    initial velocity, after it with the rotated velocity.  Positive
    ``turn_deg`` is a clockwise (on-screen right) turn.
    """

    start: Point
    velocity_vec: Point
    turn_frame: int
    turn_deg: float
    turn_duration: int = 20
    _positions: List[Point] = field(init=False, repr=False, default_factory=list)

    def _heading_at(self, frame_id: int) -> float:
        base = math.atan2(self.velocity_vec[1], self.velocity_vec[0])
        if frame_id <= self.turn_frame:
            extra = 0.0
        elif frame_id >= self.turn_frame + self.turn_duration:
            extra = math.radians(self.turn_deg)
        else:
            frac = (frame_id - self.turn_frame) / self.turn_duration
            extra = math.radians(self.turn_deg) * frac
        return base + extra

    def position(self, frame_id: int) -> Point:
        # Positions are the running integral of a piecewise-rotating velocity;
        # cache the prefix so repeated queries stay O(1) amortised.
        if not self._positions:
            self._positions.append(self.start)
        speed = math.hypot(*self.velocity_vec)
        while len(self._positions) <= frame_id:
            f = len(self._positions) - 1
            x, y = self._positions[-1]
            h = self._heading_at(f)
            self._positions.append((x + speed * math.cos(h), y + speed * math.sin(h)))
        return self._positions[frame_id]

    def velocity(self, frame_id: int) -> Point:
        speed = math.hypot(*self.velocity_vec)
        h = self._heading_at(frame_id)
        return (speed * math.cos(h), speed * math.sin(h))


@dataclass
class StationaryTrajectory(Trajectory):
    """An object that stays (approximately) in place, e.g. a parked car."""

    center: Point
    jitter: float = 0.0
    seed: int = 0

    def position(self, frame_id: int) -> Point:
        if self.jitter <= 0:
            return self.center
        rng = derive_rng(self.seed, "stationary_jitter", frame_id)
        dx, dy = rng.normal(0.0, self.jitter, size=2)
        return (self.center[0] + float(dx), self.center[1] + float(dy))


@dataclass
class LoiterTrajectory(Trajectory):
    """Slow wandering inside a bounded region (a loitering person).

    The object follows a Lissajous-like path scaled to ``radius`` so it keeps
    moving (above the stopped threshold when ``radius``/``period`` allow) but
    never leaves the region — which is what loitering queries look for.
    """

    center: Point
    radius: float
    period_frames: int = 200
    phase: float = 0.0

    def position(self, frame_id: int) -> Point:
        t = 2.0 * math.pi * frame_id / max(self.period_frames, 1) + self.phase
        return (
            self.center[0] + self.radius * math.sin(t),
            self.center[1] + self.radius * 0.6 * math.sin(2.0 * t + 0.7),
        )


@dataclass
class WaypointTrajectory(Trajectory):
    """Piecewise-linear motion through ``(frame_id, point)`` waypoints.

    Used to script coordinated multi-object events (a person walking to a
    car and getting in, a car swerving into a pedestrian and fleeing).
    Positions before the first waypoint clamp to it; after the last waypoint
    the object continues at its final velocity unless ``hold_at_end`` is set.
    """

    waypoints: Sequence[Tuple[int, Point]]
    hold_at_end: bool = True
    _frames: List[int] = field(init=False, repr=False)
    _points: List[Point] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("WaypointTrajectory needs at least two waypoints")
        wp = sorted(self.waypoints, key=lambda fp: fp[0])
        frames = [f for f, _ in wp]
        if len(set(frames)) != len(frames):
            raise ValueError("duplicate waypoint frame ids")
        self._frames = frames
        self._points = [p for _, p in wp]

    def position(self, frame_id: int) -> Point:
        frames, points = self._frames, self._points
        if frame_id <= frames[0]:
            return points[0]
        if frame_id >= frames[-1]:
            if self.hold_at_end:
                return points[-1]
            # extrapolate with the last segment's velocity
            f0, f1 = frames[-2], frames[-1]
            (x0, y0), (x1, y1) = points[-2], points[-1]
            vx = (x1 - x0) / (f1 - f0)
            vy = (y1 - y0) / (f1 - f0)
            dt = frame_id - f1
            return (x1 + vx * dt, y1 + vy * dt)
        idx = int(np.searchsorted(frames, frame_id, side="right")) - 1
        f0, f1 = frames[idx], frames[idx + 1]
        (x0, y0), (x1, y1) = points[idx], points[idx + 1]
        frac = (frame_id - f0) / (f1 - f0)
        return (x0 + (x1 - x0) * frac, y0 + (y1 - y0) * frac)
