"""Ground-truth entities that populate synthetic videos.

An :class:`ObjectSpec` describes one real-world entity across its lifetime
in a clip (class, static attributes, trajectory, size, lifespan).  The video
generator materialises one :class:`GTInstance` per visible object per frame.
:class:`InteractionEvent` scripts object–object interactions (person gets
into car, car hits person, person hits ball) over a frame range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.common.geometry import BBox
from repro.videosim.trajectory import Trajectory

#: Object classes understood by the simulated detectors.
VEHICLE_CLASSES = ("car", "bus", "truck")
PERSON_CLASSES = ("person",)
OTHER_CLASSES = ("ball", "bicycle", "bag")
ALL_CLASSES = VEHICLE_CLASSES + PERSON_CLASSES + OTHER_CLASSES

#: Attribute vocabularies (mirroring the CityFlow-NL standardised queries).
VEHICLE_COLORS = ("black", "white", "gray", "red", "blue", "green", "silver")
VEHICLE_TYPES = ("sedan", "suv", "hatchback", "pickup", "van")
PERSON_ACTIONS = ("walking", "standing", "running", "crossing", "loitering")


@dataclass
class ObjectSpec:
    """One ground-truth entity over its lifetime in a clip."""

    object_id: int
    class_name: str
    trajectory: Trajectory
    size: Tuple[float, float]
    enter_frame: int = 0
    exit_frame: Optional[int] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    #: Per-frame action overrides, e.g. {120: "getting_into_car"}.
    action_schedule: Dict[int, str] = field(default_factory=dict)
    default_action: Optional[str] = None

    def __post_init__(self) -> None:
        if self.class_name not in ALL_CLASSES:
            raise ValueError(f"unknown object class {self.class_name!r}")
        if self.exit_frame is not None and self.exit_frame < self.enter_frame:
            raise ValueError("exit_frame must be >= enter_frame")

    def alive_at(self, frame_id: int) -> bool:
        if frame_id < self.enter_frame:
            return False
        if self.exit_frame is not None and frame_id > self.exit_frame:
            return False
        return True

    def action_at(self, frame_id: int) -> Optional[str]:
        return self.action_schedule.get(frame_id, self.default_action)

    def bbox_at(self, frame_id: int) -> BBox:
        cx, cy = self.trajectory.position(frame_id)
        w, h = self.size
        return BBox.from_center(cx, cy, w, h)


@dataclass(frozen=True)
class InteractionEvent:
    """A scripted interaction between two objects over a frame interval.

    ``kind`` is free-form text matched by interaction models, e.g.
    ``"get_into"``, ``"hit"``, ``"hold"``, ``"collide"``.
    """

    subject_id: int
    object_id: int
    kind: str
    start_frame: int
    end_frame: int

    def __post_init__(self) -> None:
        if self.end_frame < self.start_frame:
            raise ValueError("end_frame must be >= start_frame")

    def active_at(self, frame_id: int) -> bool:
        return self.start_frame <= frame_id <= self.end_frame


@dataclass(frozen=True)
class GTInstance:
    """The per-frame ground-truth record of one visible object.

    This is what simulated models observe (and corrupt) — it carries every
    attribute a real model could in principle recover from pixels.
    """

    object_id: int
    class_name: str
    bbox: BBox
    frame_id: int
    attributes: Mapping[str, Any]
    velocity: Tuple[float, float]
    action: Optional[str] = None
    #: interactions this object participates in on this frame, as
    #: (kind, other_object_id, is_subject) triples.
    interactions: Tuple[Tuple[str, int, bool], ...] = ()

    @property
    def speed(self) -> float:
        vx, vy = self.velocity
        return float((vx * vx + vy * vy) ** 0.5)

    def attribute(self, name: str, default: Any = None) -> Any:
        return self.attributes.get(name, default)

    def interacts(self, kind: str) -> bool:
        """True when this instance participates in an interaction of ``kind``."""
        return any(k == kind for k, _, _ in self.interactions)
