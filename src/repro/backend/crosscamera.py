"""Cross-camera re-identification and wall-clock-aligned global timelines.

The paper's headline workloads — amber alerts, hit-and-run reconstruction,
cross-camera chases — are inherently multi-feed: an object must be
recognised as *the same object* when it reappears on another camera, and
events from feeds with different frame rates must be ordered on one shared
wall-clock axis.  This module supplies both halves:

* :class:`ReidMatcher` — links tracks across feeds by cosine-matching their
  re-id embeddings (the ``feature_vector`` intrinsic, cached by object-level
  reuse, or a fresh ``reid_feature`` invocation on a cache miss) against a
  growing gallery of global identities.  Assignment within a camera is
  one-to-one (Hungarian, or greedy as a cheaper fallback), so two tracks
  from the same feed can never collapse into one identity.  Matching work is
  charged to a :class:`~repro.common.clock.SimClock` like every other model.
* :class:`GlobalTimeline` — maps each feed's ``frame_id / fps`` (plus a
  per-camera start offset) onto the shared wall-clock axis, so feeds with
  different frame rates and staggered recording starts merge into one
  ordered timeline.
* :class:`GlobalEvent` / :func:`stitch_global_events` — stitch the
  per-camera events of one global identity into camera-spanning story arcs.
* :class:`CrossCameraSequence` / :func:`pair_cross_camera_events` — the
  cross-camera temporal operator: "a red car on camera A, then the *same*
  car on camera B within 30 seconds".  Per-feed sides compile to the
  existing streaming machinery (each feed's batch still runs as one adaptive
  scan); only the identity-aware wall-clock pairing happens here.

Everything in this module is read-only over finished per-feed results: the
disabled path (:class:`~repro.common.config.ReidConfig` ``enabled=False``,
the default) leaves multi-camera execution byte-identical to the unlinked
merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.backend.results import Event
from repro.common.clock import SimClock
from repro.common.config import ReidConfig
from repro.common.errors import ExecutionError
from repro.metrics.accuracy import PrecisionRecall
from repro.models.base import Detection
from repro.models.properties import FeatureVectorModel


# ---------------------------------------------------------------------------
# Track profiles and link results
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class TrackProfile:
    """One feed-local track as seen by the cross-camera matcher."""

    camera: str
    track_id: int
    class_name: str
    #: Unit-norm re-id embedding (cached intrinsic value or a fresh model call).
    embedding: np.ndarray
    #: Frame span the track was actually observed over (feed-local ids).
    first_frame: int
    last_frame: int
    #: The last real (tracker-observed) detection backing the embedding.
    source: Optional[Detection] = None

    @property
    def key(self) -> Tuple[str, int]:
        return (self.camera, self.track_id)


@dataclass
class CrossCameraLinks:
    """The identity assignment produced by one :meth:`ReidMatcher.link` run."""

    #: (camera, track_id) -> global identity id (dense, 0-based).
    identities: Dict[Tuple[str, int], int] = field(default_factory=dict)
    #: (camera, track_id) -> cosine similarity to the gallery identity it
    #: joined (1.0 for the identity's founding track).
    scores: Dict[Tuple[str, int], float] = field(default_factory=dict)
    #: camera -> the profiles that were linked (insertion order preserved).
    profiles: Dict[str, List[TrackProfile]] = field(default_factory=dict)
    #: The similarity threshold the assignment was made with.
    threshold: float = 0.0

    def global_id(self, camera: str, track_id: int) -> Optional[int]:
        """The global identity of a feed-local track (None if unlinked)."""
        return self.identities.get((camera, track_id))

    @property
    def num_identities(self) -> int:
        return len(set(self.identities.values()))

    def global_tracks(self) -> Dict[int, List[Tuple[str, int]]]:
        """global id -> the (camera, track_id) members, in camera order."""
        out: Dict[int, List[Tuple[str, int]]] = {}
        for key, gid in self.identities.items():
            out.setdefault(gid, []).append(key)
        return {gid: members for gid, members in sorted(out.items())}

    def cross_camera_identities(self) -> Dict[int, List[Tuple[str, int]]]:
        """Only the identities observed on more than one camera."""
        return {
            gid: members
            for gid, members in self.global_tracks().items()
            if len({camera for camera, _ in members}) > 1
        }


def reid_identity_scores(links: CrossCameraLinks) -> PrecisionRecall:
    """Pairwise identity precision/recall of a link result vs ground truth.

    Measurement-only oracle access (like every accuracy metric in this
    repo): the true identity behind a track is its source detection's
    ``gt_object_id``.  Counted over all cross-camera track pairs whose
    ground truth is known: a pair is positive when both tracks stem from
    the same ground-truth entity, predicted-positive when the matcher gave
    them the same global id.
    """
    labelled = [
        profile
        for profiles in links.profiles.values()
        for profile in profiles
        if profile.source is not None and profile.source.gt_object_id is not None
    ]
    tp = fp = fn = 0
    for i, a in enumerate(labelled):
        for b in labelled[i + 1 :]:
            if a.camera == b.camera:
                continue
            actual = a.source.gt_object_id == b.source.gt_object_id
            predicted = links.identities.get(a.key) == links.identities.get(b.key)
            if predicted and actual:
                tp += 1
            elif predicted and not actual:
                fp += 1
            elif actual and not predicted:
                fn += 1
    return PrecisionRecall(tp, fp, fn)


# ---------------------------------------------------------------------------
# The matcher
# ---------------------------------------------------------------------------


class ReidMatcher:
    """Cosine matching of track embeddings into a gallery of global identities.

    Cameras are processed in insertion order; each camera's tracks are
    assigned one-to-one against the gallery built from the preceding
    cameras (so two tracks of one feed can never share an identity), and
    unmatched tracks found new identities.  Gallery centroids are the
    renormalised mean of their member embeddings.  The whole procedure is
    deterministic for a fixed input order, which the session guarantees
    regardless of how many worker threads executed the feeds.
    """

    #: Virtual cost of one matching pass over a camera's tracks.
    MATCH_BASE_MS = 2.0
    #: Virtual cost per (track, gallery identity) similarity comparison.
    MATCH_PER_PAIR_MS = 0.02

    def __init__(
        self,
        config: Optional[ReidConfig] = None,
        clock: Optional[SimClock] = None,
        obs=None,
    ) -> None:
        self.config = config or ReidConfig(enabled=True)
        self.clock = clock
        self.obs = obs

    # -- assignment strategies ---------------------------------------------------
    def _assign_hungarian(self, sims: np.ndarray) -> List[Tuple[int, int]]:
        from scipy.optimize import linear_sum_assignment

        rows, cols = linear_sum_assignment(-sims)
        return [
            (int(r), int(c))
            for r, c in zip(rows, cols)
            if sims[r, c] >= self.config.threshold
        ]

    def _assign_greedy(self, sims: np.ndarray) -> List[Tuple[int, int]]:
        order = np.dstack(np.unravel_index(np.argsort(-sims, axis=None), sims.shape))[0]
        taken_rows: set = set()
        taken_cols: set = set()
        pairs: List[Tuple[int, int]] = []
        for r, c in order:
            r, c = int(r), int(c)
            if sims[r, c] < self.config.threshold:
                break
            if r in taken_rows or c in taken_cols:
                continue
            pairs.append((r, c))
            taken_rows.add(r)
            taken_cols.add(c)
        return pairs

    # -- public API ----------------------------------------------------------------
    def link(self, profiles_by_camera: Mapping[str, Sequence[TrackProfile]]) -> CrossCameraLinks:
        """Assign a global identity to every profile, camera by camera."""
        links = CrossCameraLinks(threshold=self.config.threshold)
        links.profiles = {name: list(profiles) for name, profiles in profiles_by_camera.items()}
        centroids: List[np.ndarray] = []       # unit-norm gallery centroids
        sums: List[np.ndarray] = []            # running member sums
        classes: List[str] = []                # one class per identity
        for camera, profiles in links.profiles.items():
            pairs: List[Tuple[int, int]] = []
            sims = raw = None
            if profiles and centroids:
                if self.clock is not None:
                    self.clock.charge(
                        "reid_matcher",
                        self.MATCH_BASE_MS + self.MATCH_PER_PAIR_MS * len(profiles) * len(centroids),
                    )
                sims = FeatureVectorModel.similarity_matrix(
                    [p.embedding for p in profiles], centroids
                )
                if self.obs is not None:
                    # Pre-mask similarities disambiguate *why* a track went
                    # unmatched (class mismatch vs genuinely below threshold).
                    raw = sims.copy()
                # An identity only ever holds one object class; mismatched
                # classes are pushed below any admissible threshold.
                for i, profile in enumerate(profiles):
                    for j, class_name in enumerate(classes):
                        if profile.class_name != class_name:
                            sims[i, j] = -1.0
                if self.config.assignment == "hungarian":
                    pairs = self._assign_hungarian(sims)
                else:
                    pairs = self._assign_greedy(sims)
            matched = {i: j for i, j in pairs}
            for i, profile in enumerate(profiles):
                j = matched.get(i)
                if j is None:
                    if self.obs is not None:
                        self._note_unmatched(profile, i, sims, raw)
                    gid = len(centroids)
                    centroids.append(profile.embedding)
                    sums.append(np.asarray(profile.embedding, dtype=float).copy())
                    classes.append(profile.class_name)
                    links.scores[profile.key] = 1.0
                else:
                    gid = j
                    links.scores[profile.key] = float(sims[i, j])
                    sums[j] = sums[j] + profile.embedding
                    norm = float(np.linalg.norm(sums[j]))
                    centroids[j] = sums[j] / norm if norm > 0 else sums[j]
                links.identities[profile.key] = gid
        return links

    def _note_unmatched(self, profile: TrackProfile, i: int, sims, raw) -> None:
        """Record why a track founded a new identity instead of matching."""
        if raw is None:
            reason, best = "empty-gallery", None
        else:
            raw_best = float(raw[i].max())
            masked_best = float(sims[i].max())
            best = raw_best
            if raw_best < self.config.threshold:
                reason = "below-threshold"
            elif masked_best < self.config.threshold:
                reason = "class-mismatch"
            else:
                # Its best gallery identity cleared the threshold but was
                # won by a same-camera sibling in the one-to-one assignment.
                reason = "identity-contended"
        attrs = {} if best is None else {"best_similarity": round(best, 4)}
        self.obs.decisions.record(
            "reid-unmatched",
            reason,
            subject=f"{profile.camera}:{profile.track_id}",
            camera=profile.camera,
            track_id=profile.track_id,
            **attrs,
        )


# ---------------------------------------------------------------------------
# The global timeline
# ---------------------------------------------------------------------------


class GlobalTimeline:
    """Maps (camera, frame_id) onto one shared wall-clock axis.

    Each camera contributes its frame rate and a start offset (seconds on
    the global clock at which its frame 0 was captured), so feeds recorded
    at different frame rates — and started at different moments — become
    comparable: ``wall_clock(camera, frame_id) = offset + frame_id / fps``.
    """

    def __init__(
        self,
        fps_by_camera: Mapping[str, float],
        start_offsets: Optional[Mapping[str, float]] = None,
        max_clock_skew_s: float = 0.0,
    ) -> None:
        if not fps_by_camera:
            raise ValueError("GlobalTimeline needs at least one camera")
        for camera, fps in fps_by_camera.items():
            if fps <= 0:
                raise ValueError(f"camera {camera!r} has non-positive fps {fps}")
        offsets = dict(start_offsets or {})
        unknown = set(offsets) - set(fps_by_camera)
        if unknown:
            raise ValueError(f"start offsets for unknown cameras: {sorted(unknown)}")
        self._fps = dict(fps_by_camera)
        self._offsets = {name: float(offsets.get(name, 0.0)) for name in fps_by_camera}
        if max_clock_skew_s < 0:
            raise ValueError("max_clock_skew_s must be non-negative")
        self.max_clock_skew_s = max_clock_skew_s

    @property
    def cameras(self) -> List[str]:
        return list(self._fps)

    def _check(self, camera: str) -> None:
        if camera not in self._fps:
            raise KeyError(f"no camera {camera!r} on this timeline; have {sorted(self._fps)}")

    def fps(self, camera: str) -> float:
        self._check(camera)
        return self._fps[camera]

    def start_offset(self, camera: str) -> float:
        self._check(camera)
        return self._offsets[camera]

    def wall_clock(self, camera: str, frame_id: int) -> float:
        """Global capture time (seconds) of a feed-local frame."""
        self._check(camera)
        return self._offsets[camera] + frame_id / self._fps[camera]

    def frame_at(self, camera: str, wall_clock_s: float) -> int:
        """The feed-local frame nearest a global timestamp (clamped at 0)."""
        self._check(camera)
        return max(int(round((wall_clock_s - self._offsets[camera]) * self._fps[camera])), 0)

    def event_interval(self, camera: str, event: Event) -> Tuple[float, float]:
        """An event's (start, end) on the wall clock."""
        return (
            self.wall_clock(camera, event.start_frame),
            self.wall_clock(camera, event.end_frame),
        )

    def order_events(self, tagged: Sequence[Tuple[str, Event]]) -> List[Tuple[str, Event]]:
        """Camera-tagged events sorted by wall-clock (start, end), then camera."""
        return sorted(
            tagged,
            key=lambda pair: (*self.event_interval(pair[0], pair[1]), pair[0]),
        )


# ---------------------------------------------------------------------------
# Global (camera-spanning) events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GlobalEvent:
    """A wall-clock span of one global identity, stitched across cameras."""

    #: The identity the span belongs to (None for events whose signature
    #: carries no linked track, e.g. untracked plans).
    global_id: Optional[int]
    start_ts: float
    end_ts: float
    #: The per-camera events making up the span, in wall-clock order.
    segments: Tuple[Tuple[str, Event], ...]

    @property
    def duration_s(self) -> float:
        return self.end_ts - self.start_ts

    @property
    def cameras(self) -> Tuple[str, ...]:
        """Cameras in order of first appearance within the span."""
        seen: List[str] = []
        for camera, _ in self.segments:
            if camera not in seen:
                seen.append(camera)
        return tuple(seen)

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def is_cross_camera(self) -> bool:
        return len(self.cameras) > 1


def _event_global_ids(camera: str, event: Event, links: CrossCameraLinks) -> List[int]:
    """The global identities referenced by an event's binding signature."""
    gids = {
        links.identities.get((camera, track_id))
        for _, track_id in event.signature
        if isinstance(track_id, int)
    }
    gids.discard(None)
    return sorted(gids)  # type: ignore[arg-type]


def _sorted_spans(spans: List[GlobalEvent]) -> List[GlobalEvent]:
    return sorted(
        spans,
        key=lambda s: (s.start_ts, s.end_ts, s.global_id is None, s.global_id or 0),
    )


def stitch_global_events(
    tagged_events: Sequence[Tuple[str, Event]],
    links: CrossCameraLinks,
    timeline: GlobalTimeline,
    max_gap_s: Optional[float] = None,
) -> List[GlobalEvent]:
    """Stitch per-camera events of each global identity into spans.

    Events whose signatures reference the same global identity are grouped,
    ordered on the wall clock, and merged into :class:`GlobalEvent` spans.
    With ``max_gap_s`` set, a silence longer than ``max_gap_s`` plus the
    timeline's clock-skew tolerance splits the identity's story into
    separate spans; by default the whole sighting history forms one span
    (the "chase arc" view).  An event that references several identities
    (multi-variable queries) contributes a segment to each; events with no
    linked track become standalone single-segment spans.
    """
    by_identity: Dict[int, List[Tuple[float, float, str, Event]]] = {}
    spans: List[GlobalEvent] = []
    for camera, event in tagged_events:
        start_ts, end_ts = timeline.event_interval(camera, event)
        gids = _event_global_ids(camera, event, links)
        if not gids:
            spans.append(
                GlobalEvent(
                    global_id=None,
                    start_ts=start_ts,
                    end_ts=end_ts,
                    segments=((camera, event),),
                )
            )
            continue
        for gid in gids:
            by_identity.setdefault(gid, []).append((start_ts, end_ts, camera, event))

    slack = timeline.max_clock_skew_s
    for gid, entries in by_identity.items():
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        current: List[Tuple[str, Event]] = []
        span_start = span_end = 0.0
        for start_ts, end_ts, camera, event in entries:
            if current and max_gap_s is not None and start_ts - span_end > max_gap_s + slack:
                spans.append(GlobalEvent(gid, span_start, span_end, tuple(current)))
                current = []
            if not current:
                span_start = start_ts
                span_end = end_ts
            current.append((camera, event))
            span_end = max(span_end, end_ts)
        if current:
            spans.append(GlobalEvent(gid, span_start, span_end, tuple(current)))
    return _sorted_spans(spans)


# ---------------------------------------------------------------------------
# The cross-camera temporal operator
# ---------------------------------------------------------------------------


class CrossCameraSequence:
    """"X on camera A, then the *same* object on camera B within T seconds."

    The per-feed sides are ordinary queries and compile to the existing
    streaming machinery (both execute in each feed's one adaptive scan);
    :meth:`~repro.backend.session.MultiCameraSession.execute_sequence` then
    pairs the resulting events across cameras on the wall clock, requiring
    the two sightings to share a global identity (unless
    ``same_identity=False``).  With ``second`` omitted, the same query is
    used for both hops — the classic chase.  Camera filters of ``None``
    accept any camera, with the two hops still required to be *different*
    cameras unless both filters explicitly name the same one.
    """

    def __init__(
        self,
        first,
        second=None,
        first_camera: Optional[str] = None,
        second_camera: Optional[str] = None,
        min_gap_s: float = 0.0,
        max_gap_s: float = 30.0,
        same_identity: bool = True,
    ) -> None:
        if max_gap_s < min_gap_s:
            raise ValueError("CrossCameraSequence: max_gap_s must be >= min_gap_s")
        self.first = first
        self.second = second if second is not None else first
        self.first_camera = first_camera
        self.second_camera = second_camera
        self.min_gap_s = min_gap_s
        self.max_gap_s = max_gap_s
        self.same_identity = same_identity

    @property
    def queries(self) -> List:
        """The distinct queries the sequence needs executed per feed."""
        return [self.first] if self.second is self.first else [self.first, self.second]


def pair_cross_camera_events(
    first_tagged: Sequence[Tuple[str, Event]],
    second_tagged: Sequence[Tuple[str, Event]],
    links: CrossCameraLinks,
    timeline: GlobalTimeline,
    sequence: CrossCameraSequence,
) -> List[GlobalEvent]:
    """Pair first-hop and second-hop events across cameras on the wall clock.

    A pair forms when the second event starts between ``min_gap_s`` and
    ``max_gap_s`` after the first event ends — widened by the timeline's
    clock-skew tolerance on both sides, since independent camera clocks may
    disagree by up to that much — and (by default) the two events share a
    global identity.  Each pair becomes a two-segment :class:`GlobalEvent`.
    """
    skew = timeline.max_clock_skew_s
    allow_same_camera = (
        sequence.first_camera is not None
        and sequence.first_camera == sequence.second_camera
    )
    # Intervals and identity sets of the second hop are loop-invariant:
    # precompute them once instead of per (first, second) combination.
    seconds = [
        (cam_b, ev_b, timeline.event_interval(cam_b, ev_b), set(_event_global_ids(cam_b, ev_b, links)))
        for cam_b, ev_b in second_tagged
        if sequence.second_camera is None or cam_b == sequence.second_camera
    ]
    pairs: List[GlobalEvent] = []
    for cam_a, ev_a in first_tagged:
        if sequence.first_camera is not None and cam_a != sequence.first_camera:
            continue
        a_start, a_end = timeline.event_interval(cam_a, ev_a)
        gids_a = set(_event_global_ids(cam_a, ev_a, links))
        for cam_b, ev_b, (b_start, b_end), gids_b in seconds:
            if cam_a == cam_b and not allow_same_camera:
                continue
            gap = b_start - a_end
            if not (sequence.min_gap_s - skew <= gap <= sequence.max_gap_s + skew):
                continue
            shared = gids_a & gids_b
            if sequence.same_identity and not shared:
                continue
            pairs.append(
                GlobalEvent(
                    global_id=min(shared) if shared else None,
                    start_ts=a_start,
                    end_ts=b_end,
                    segments=((cam_a, ev_a), (cam_b, ev_b)),
                )
            )
    return _sorted_spans(pairs)


def build_track_profiles(
    camera: str,
    ctx,
    config: ReidConfig,
    model,
    clock: Optional[SimClock] = None,
    obs=None,
) -> List[TrackProfile]:
    """Profile every track of one finished execution context.

    Embeddings come from the object-level reuse cache when the feed's
    pipelines already computed the track's ``feature_vector`` intrinsic
    (counted as a reuse hit, no model invocation); the remaining tracks'
    crops are embedded in **one batched** re-id invocation (base cost paid
    once, per-item cost per crop), charged to ``clock``.  A synthesized
    crop is never embedded: interpolation-seeded frames produce no track
    sources, and cached intrinsics *computed on* a seeded frame are
    bypassed in favour of a fresh embedding of the real source.  Tracks
    observed over fewer than ``config.min_track_frames`` frames are
    dropped entirely — sliver fragments at the frame edge and
    false-positive births would otherwise fragment identities (and waste
    embedding invocations) — as are track ids a batch saw from several
    (tracker, detector) pairs, which cannot be attributed to one object.
    """
    cached = ctx.intrinsic_track_values(
        config.embedding_property, exclude_frames=ctx.seeded_frames
    )
    seeded_only: set = set()
    if obs is not None and ctx.seeded_frames:
        # Tracks whose only cached intrinsic was computed on an
        # interpolation-seeded frame: the cache is bypassed and the real
        # source re-embedded — worth a decision record.
        seeded_only = set(ctx.intrinsic_track_values(config.embedding_property)) - set(cached)
    sources = ctx.track_sources()
    ambiguous = ctx.ambiguous_track_ids()
    kept: List[Tuple[int, Detection, int]] = []  # (track_id, source, first frame)
    misses: List[Detection] = []
    for track_id in sorted(sources):
        if track_id in ambiguous:
            if obs is not None:
                obs.decisions.record(
                    "reid-excluded",
                    "ambiguous-track-id",
                    subject=f"{camera}:{track_id}",
                    camera=camera,
                    track_id=track_id,
                )
            continue
        detection = sources[track_id]
        first = ctx.track_first_seen(track_id)
        if first is None:
            first = detection.frame_id
        observed = detection.frame_id - first + 1
        if observed < config.min_track_frames:
            if obs is not None:
                obs.decisions.record(
                    "reid-excluded",
                    "below-min-track-frames",
                    subject=f"{camera}:{track_id}",
                    camera=camera,
                    track_id=track_id,
                    observed=observed,
                    required=config.min_track_frames,
                )
            continue
        kept.append((track_id, detection, first))
        if track_id in cached:
            ctx.count_reuse(config.embedding_property)
        else:
            if obs is not None and track_id in seeded_only:
                obs.decisions.record(
                    "reid-embedding-recomputed",
                    "seeded-frame-provenance",
                    frame_id=detection.frame_id,
                    subject=f"{camera}:{track_id}",
                    camera=camera,
                    track_id=track_id,
                )
            misses.append(detection)
    embeddings = dict(cached)
    if misses:
        # The persistent index stores embeddings keyed by *source detection*
        # (track ids are batch-local): consult it per miss, then embed only
        # the remainder in one batched invocation and write those through.
        index = getattr(ctx, "index", None)
        remaining: List[Detection] = []
        if index is None:
            remaining = misses
        else:
            for detection in misses:
                vector = index.lookup_embedding(model.name, detection)
                if vector is not None:
                    embeddings[detection.track_id] = vector
                else:
                    remaining.append(detection)
        if remaining:
            for detection, embedding in zip(
                remaining, model.predict_batch(remaining, clock=clock)
            ):
                embeddings[detection.track_id] = embedding
                if index is not None:
                    index.record_embedding(model.name, detection, embedding)
    return [
        TrackProfile(
            camera=camera,
            track_id=track_id,
            class_name=detection.class_name,
            embedding=embeddings[track_id],
            first_frame=first,
            last_frame=detection.frame_id,
            source=detection,
        )
        for track_id, detection, first in kept
    ]


def require_links(links: Optional[CrossCameraLinks], what: str) -> CrossCameraLinks:
    """Raise a helpful error when a cross-camera view is used without re-id."""
    if links is None:
        raise ExecutionError(
            f"{what} needs cross-camera re-identification: enable it with "
            "PlannerConfig(enable_cross_camera_reid=True) and re-run the batch"
        )
    return links
