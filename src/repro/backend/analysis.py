"""Query analysis: from a frontend ``Query`` to planner-ready structure.

The analysis extracts, per VObj variable, which properties the query needs
(with their dependency closure), which single-variable predicates can be
pushed onto that variable's branch, whether tracking is required, and which
properties are intrinsic; plus the residual multi-variable predicates, the
relation variables, the outputs, and the video-level parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.common.errors import PlanError
from repro.frontend.expr import Predicate, TRUE, ValueExpr, split_by_variable
from repro.frontend.query import Aggregate, Query
from repro.frontend.relation import Relation
from repro.frontend.vobj import Scene, VObj


@dataclass
class VariableInfo:
    """Planner-facing description of one VObj query variable."""

    variable: VObj
    vobj_type: type
    #: Properties referenced by constraints/outputs (declared ones only).
    needed_properties: List[str] = field(default_factory=list)
    #: Single-variable conjuncts that can be pushed onto this branch.
    conjuncts: List[Predicate] = field(default_factory=list)
    requires_tracking: bool = False
    intrinsic_properties: Set[str] = field(default_factory=set)
    detector_model: str = ""
    tracker_model: str = "kalman_tracker"
    is_scene: bool = False

    @property
    def var_name(self) -> str:
        return self.variable.var_name


@dataclass
class RelationInfo:
    """Planner-facing description of one Relation query variable."""

    relation: Relation
    relation_type: type
    needed_properties: List[str] = field(default_factory=list)
    conjuncts: List[Predicate] = field(default_factory=list)

    @property
    def var_name(self) -> str:
        return self.relation.var_name


@dataclass
class QueryAnalysis:
    """Everything the planner needs to build operator DAGs for a query."""

    query: Query
    variables: List[VariableInfo]
    relations: List[RelationInfo]
    #: Conjuncts over multiple VObj variables (evaluated after the join).
    residual_conjuncts: List[Predicate]
    frame_outputs: Tuple[ValueExpr, ...]
    video_outputs: Tuple[Aggregate, ...]
    frame_predicate: Predicate
    video_predicate: Predicate
    #: True when the pushed-down filters come from the video constraint
    #: (frame constraint was trivial).
    filters_from_video_constraint: bool

    def variable_info(self, variable: VObj) -> VariableInfo:
        for info in self.variables:
            if info.variable is variable:
                return info
        # An equal-but-distinct VObj (e.g. rebuilt from a shipped plan or a
        # re-declared query) still names the same logical variable; fall back
        # to equality, then to the variable name.
        for info in self.variables:
            if info.variable == variable:
                return info
        for info in self.variables:
            if info.var_name == variable.var_name:
                return info
        raise PlanError(f"unknown variable {variable.var_name!r}")

    @property
    def vobj_variables(self) -> List[VObj]:
        return [info.variable for info in self.variables]

    @property
    def is_video_level(self) -> bool:
        return bool(self.video_outputs) or self.video_predicate is not TRUE


def analyze_query(query: Query) -> QueryAnalysis:
    """Analyze a (basic or spatial) query for planning."""
    query.validate()

    frame_pred = query.frame_predicate()
    video_pred = query.video_predicate()
    frame_outputs = query.frame_outputs()
    video_outputs = query.video_outputs()

    # Decide which constraint drives the pushed-down object filters.  Frame
    # constraints take priority; a purely video-level query (Figure 7) pushes
    # its video-constraint conjuncts instead so filtering still prunes work.
    filters_from_video = frame_pred is TRUE and video_pred is not TRUE
    pushdown_pred = video_pred if filters_from_video else frame_pred

    # Video-constraint conjuncts not pushed down are evaluated at the sink;
    # they still contribute property requirements via required_properties().
    per_var, multi = split_by_variable(pushdown_pred)

    # -- property requirements per variable --------------------------------------
    needed: Dict[Union[VObj, Relation], Set[str]] = {}
    for var, props in query.required_properties().items():
        needed.setdefault(var, set()).update(props)

    variables: List[VariableInfo] = []
    for var in query.vobj_variables():
        vobj_type = type(var)
        declared_needed = [p for p in sorted(needed.get(var, set())) if vobj_type.property_spec(p) is not None]
        closure = vobj_type.dependency_order(declared_needed)
        conjuncts = per_var.get(var, [])
        intrinsics = {p for p in closure if p in vobj_type.intrinsic_properties()}
        # Tracking is needed for stateful properties, and also whenever the
        # query refers to the object's track id (e.g. in its outputs or in a
        # count_distinct aggregate) — identities only exist with a tracker.
        requires_tracking = vobj_type.requires_tracking(closure) or "track_id" in needed.get(var, set())
        variables.append(
            VariableInfo(
                variable=var,
                vobj_type=vobj_type,
                needed_properties=closure,
                conjuncts=conjuncts,
                requires_tracking=requires_tracking,
                intrinsic_properties=intrinsics,
                detector_model=vobj_type.detector_model(),
                tracker_model=getattr(vobj_type, "tracker", "kalman_tracker"),
                is_scene=issubclass(vobj_type, Scene),
            )
        )

    relations: List[RelationInfo] = []
    for rel in query.relation_variables():
        rel_type = type(rel)
        declared_needed = [p for p in sorted(needed.get(rel, set())) if rel_type.property_spec(p) is not None]
        builtin_needed = [p for p in sorted(needed.get(rel, set())) if rel_type.property_spec(p) is None]
        conjuncts = per_var.get(rel, [])
        relations.append(
            RelationInfo(
                relation=rel,
                relation_type=rel_type,
                needed_properties=list(dict.fromkeys(builtin_needed + rel_type.dependency_order(declared_needed))),
                conjuncts=conjuncts,
            )
        )

    # Residual conjuncts: anything touching more than one variable.  Relation
    # variables' own conjuncts are handled by RelationFilter operators.
    residual = [c for c in multi]

    return QueryAnalysis(
        query=query,
        variables=variables,
        relations=relations,
        residual_conjuncts=residual,
        frame_outputs=frame_outputs,
        video_outputs=video_outputs,
        frame_predicate=frame_pred,
        video_predicate=video_pred,
        filters_from_video_constraint=filters_from_video,
    )
