"""Runtime object state: lazy, memoised property evaluation.

This module is where the paper's two object-level optimizations live:

* **Lazy evaluation** — a :class:`VObjState` computes a property only when an
  operator (filter/projector) actually asks for it, and caches it for the
  rest of the frame.  Because the planner orders filters cheapest-first,
  objects that fail an early predicate never pay for later properties
  (the §5.1 gain over CVIP).
* **Object-level computation reuse (§4.2)** — properties flagged intrinsic
  are cached on the object's :class:`TrackState`; once the lightweight
  tracker re-identifies the object on a later frame, the cached value is
  returned without invoking the property model at all (the additional ~10×
  of "VQPy with annotation").

The :class:`ExecutionContext` also provides cross-query sharing of detector,
tracker, and property-model results, which implements the paper's
query-level computation reuse.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.clock import SimClock
from repro.common.errors import ExecutionError
from repro.common.geometry import BBox
from repro.frontend.properties import PropertySpec
from repro.frontend.relation import Relation
from repro.frontend.vobj import Scene, VObj
from repro.models.base import Detection
from repro.models.zoo import ModelZoo
from repro.videosim.video import Frame, SyntheticVideo

#: Virtual cost charged for evaluating a pure-Python property body.
PYTHON_PROPERTY_MS = 0.02


class TrackState:
    """Cross-frame state of one tracked object (per VObj type).

    Holds the sliding windows of property history that stateful properties
    consume, and the intrinsic-property cache used for computation reuse.
    """

    def __init__(self, vobj_type: type, track_id: int) -> None:
        self.vobj_type = vobj_type
        self.track_id = track_id
        self._history: Dict[str, deque] = {}
        self._history_frames: Dict[str, int] = {}
        self.intrinsic_values: Dict[str, Any] = {}
        #: Frame each cached intrinsic was computed on (its provenance —
        #: consumers can tell values backed by a real observation from ones
        #: computed over an interpolation-seeded detection).
        self.intrinsic_frames: Dict[str, int] = {}
        self.first_frame_id: Optional[int] = None
        self.last_frame_id: Optional[int] = None

    def observe_frame(self, frame_id: int) -> None:
        if self.first_frame_id is None:
            self.first_frame_id = frame_id
        self.last_frame_id = frame_id

    def record(self, prop: str, frame_id: int, value: Any, window: int) -> None:
        """Append ``value`` to the property's sliding window (once per frame)."""
        dq = self._history.get(prop)
        if dq is None or dq.maxlen != window:
            dq = deque(dq or (), maxlen=window)
            self._history[prop] = dq
        if self._history_frames.get(prop) == frame_id:
            dq[-1] = value
        else:
            dq.append(value)
            self._history_frames[prop] = frame_id
        self.observe_frame(frame_id)

    def history(self, prop: str) -> List[Any]:
        """The recorded window for ``prop`` (oldest first)."""
        return list(self._history.get(prop, ()))


class VObjState:
    """Per-frame lazy property accessor for one detected object."""

    def __init__(
        self,
        vobj_type: type,
        detection: Detection,
        frame: Frame,
        context: "ExecutionContext",
        track_state: Optional[TrackState] = None,
    ) -> None:
        self.vobj_type = vobj_type
        self.detection = detection
        self.frame = frame
        self.context = context
        self.track_state = track_state
        self._cache: Dict[str, Any] = {}

    # -- property resolution -------------------------------------------------
    def get(self, name: str) -> Any:
        if name in self._cache:
            return self._cache[name]
        value = self._resolve(name)
        self._cache[name] = value
        return value

    def _resolve(self, name: str) -> Any:
        builtin = self._builtin(name)
        if builtin is not _SENTINEL:
            return builtin
        spec = self.vobj_type.property_spec(name)
        if spec is None:
            raise ExecutionError(f"{self.vobj_type.__name__} has no property {name!r}")
        if spec.kind == "stateless":
            return self._resolve_stateless(spec)
        return self._resolve_stateful(spec)

    def _builtin(self, name: str) -> Any:
        det = self.detection
        if name == "bbox":
            return det.bbox
        if name == "score":
            return det.score
        if name == "class_name":
            return det.class_name
        if name == "track_id":
            return det.track_id
        if name == "frame_id":
            return det.frame_id
        if name == "frame_rate":
            return self.context.frame_rate
        if name == "image":
            # No pixels exist in the simulation; the detection itself stands
            # in for the crop that a property model would consume.
            return det
        if name == "center":
            return det.bbox.center
        if name == "bottom_center":
            return det.bbox.bottom_center
        return _SENTINEL

    def _resolve_stateless(self, spec: PropertySpec) -> Any:
        reusable = (
            spec.intrinsic
            and self.context.reuse_enabled
            and self.track_state is not None
        )
        if reusable and spec.name in self.track_state.intrinsic_values:
            self.context.count_reuse(spec.name)
            return self.track_state.intrinsic_values[spec.name]

        if spec.is_model_backed:
            model = self.context.property_model(spec.model)
            value = self.context.invoke_model(
                spec.model,
                self.frame.frame_id,
                lambda: model.predict(self.detection, self.frame, self.context.clock),
                kind="property",
            )
        else:
            inputs = [self.get(dep) for dep in spec.inputs]
            self.context.charge_python(spec.name)
            value = spec.func(self, *inputs)

        if reusable:
            self.track_state.intrinsic_values[spec.name] = value
            self.track_state.intrinsic_frames[spec.name] = self.frame.frame_id
        return value

    def _resolve_stateful(self, spec: PropertySpec) -> Any:
        if self.track_state is None:
            raise ExecutionError(
                f"stateful property {spec.name!r} needs tracking, but no track state is bound "
                f"(is a tracker operator missing from the plan?)"
            )
        histories: List[List[Any]] = []
        for dep in spec.inputs:
            current = self.get(dep)
            # history_len counts past frames; the window also holds the
            # current value so the function sees history_len + 1 entries.
            self.track_state.record(dep, self.frame.frame_id, current, spec.history_len + 1)
            histories.append(self.track_state.history(dep))
        self.context.charge_python(spec.name)
        if spec.is_model_backed:
            model = self.context.property_model(spec.model)
            args = histories[0] if len(histories) == 1 else histories
            return self.context.invoke_model(
                spec.model,
                self.frame.frame_id,
                lambda: model.predict(args, clock=self.context.clock),
                kind="property",
            )
        args = histories[0] if len(histories) == 1 else histories
        return spec.func(self, args) if len(histories) == 1 else spec.func(self, *histories)


class SceneState:
    """Per-frame lazy, memoised property accessor for the Scene VObj.

    Scene instances are cached per (scene type, frame) on the execution
    context, so scene properties are computed (and charged to the clock)
    once per frame rather than once per enumerated binding.
    """

    def __init__(self, scene_type: type, frame: Frame, context: "ExecutionContext") -> None:
        self.scene_type = scene_type
        self.frame = frame
        self.context = context
        self._cache: Dict[str, Any] = {}

    def get(self, name: str) -> Any:
        if name in self._cache:
            return self._cache[name]
        value = self._resolve(name)
        self._cache[name] = value
        return value

    def _resolve(self, name: str) -> Any:
        frame = self.frame
        if name == "frame_id":
            return frame.frame_id
        if name == "bbox":
            return BBox(0, 0, frame.width, frame.height)
        if name == "num_objects":
            return frame.num_objects
        if name in ("time_of_day", "weather", "location"):
            return frame.scene_attributes.get(name)
        if name in ("score", "track_id"):
            return 1.0 if name == "score" else 0
        spec = self.scene_type.property_spec(name)
        if spec is not None and spec.func is not None:
            inputs = [self.get(dep) for dep in spec.inputs]
            self.context.charge_python(name)
            return spec.func(self, *inputs)
        return frame.scene_attributes.get(name)


class RelationState:
    """Lazy property accessor for one (subject, object) relation instance."""

    def __init__(
        self,
        relation_type: type,
        subject: VObjState,
        object_: VObjState,
        frame: Frame,
        context: "ExecutionContext",
    ) -> None:
        self.relation_type = relation_type
        self.subject = subject
        self.object = object_
        self.frame = frame
        self.context = context
        self._cache: Dict[str, Any] = {}

    def get(self, name: str) -> Any:
        if name in self._cache:
            return self._cache[name]
        value = self._resolve(name)
        self._cache[name] = value
        return value

    def _resolve(self, name: str) -> Any:
        s_bbox: BBox = self.subject.get("bbox")
        o_bbox: BBox = self.object.get("bbox")
        if name == "distance":
            return s_bbox.center_distance(o_bbox)
        if name == "edge_distance":
            return s_bbox.edge_distance(o_bbox)
        if name == "iou":
            return s_bbox.iou(o_bbox)
        if name == "frame_id":
            return self.frame.frame_id
        if name == "subject_bbox":
            return s_bbox
        if name == "object_bbox":
            return o_bbox
        spec = self.relation_type.property_spec(name)
        if spec is None:
            raise ExecutionError(f"{self.relation_type.__name__} has no relation property {name!r}")
        if spec.is_model_backed:
            return self._model_backed(spec)
        inputs = [self.get(dep) for dep in spec.inputs]
        self.context.charge_python(name)
        return spec.func(self, *inputs)

    def _model_backed(self, spec: PropertySpec) -> Any:
        predictions = self.context.interactions(
            spec.model, self.subject.detection, self.object.detection, self.frame
        )
        allowed = getattr(self.relation_type, "interaction_kinds", None)
        for kind in predictions:
            if allowed is None or kind in allowed:
                return kind
        return None


class _Sentinel:
    pass


_SENTINEL = _Sentinel()


@dataclass
class ReuseStats:
    """Counters describing how much work object-level reuse avoided."""

    property_hits: Dict[str, int] = field(default_factory=dict)

    def count(self, prop: str) -> None:
        self.property_hits[prop] = self.property_hits.get(prop, 0) + 1

    @property
    def total_hits(self) -> int:
        return sum(self.property_hits.values())


class ExecutionContext:
    """Shared execution state for one video (possibly across several queries).

    Caches detector, tracker, property-model, and interaction-model results
    per frame so that (a) two query variables backed by the same model pay
    for it once, and (b) several queries executed against the same context
    share all of that work — the paper's query-level computation reuse.
    """

    def __init__(
        self,
        video: SyntheticVideo,
        zoo: ModelZoo,
        clock: Optional[SimClock] = None,
        reuse_enabled: bool = True,
    ) -> None:
        self.video = video
        self.zoo = zoo
        self.clock = clock if clock is not None else SimClock()
        self.reuse_enabled = reuse_enabled
        self.frame_rate = video.fps
        self.reuse_stats = ReuseStats()
        #: Filled by the executor with the scan scheduler's ScanStats for
        #: the most recent scan over this context (frames gated, streams
        #: retired, early-exit frame); None before any scan ran.
        self.scan_stats: Optional[Any] = None
        #: Observability bundle (:class:`repro.obs.Obs`) set by the executor
        #: when tracing is enabled; None = zero-instrumentation fast path.
        self.obs: Optional[Any] = None
        #: Fault layer (:class:`repro.faults.FaultManager`) set by the
        #: executor when fault tolerance is enabled; None = every model
        #: invocation runs bare (the default, byte-identical fast path).
        self.faults: Optional[Any] = None
        #: Persistent-index view (:class:`repro.index.store.IndexView`) set
        #: by the session when the video index is enabled; None = models are
        #: always invoked live (the default, byte-identical fast path).
        self.index: Optional[Any] = None

        #: Last *real* (tracker-observed) detection per track id, plus the
        #: frame each track was first seen on.  These survive frame-cache
        #: eviction so cross-camera re-identification can embed a track long
        #: after its frames were released; interpolation-seeded frames never
        #: pass through the tracker, so they can never land here.
        self._track_sources: Dict[int, Detection] = {}
        self._track_first_seen: Dict[int, int] = {}
        #: track id -> the (tracker, detector) pairs that emitted it.  Global
        #: ids are allocated per pair (see :meth:`_global_track_id`), so each
        #: entry holds exactly one pair — the attribution record the
        #: persistent index and cross-camera linking rely on.
        self._track_id_pairs: Dict[int, set] = {}
        #: (tracker, detector, tracker-local id) -> batch-global track id.
        #: Each pair's tracker numbers its tracks from 1, so a batch running
        #: several pairs would otherwise reuse one id for different physical
        #: objects.  Globals are allocated sequentially from 1 in first-seen
        #: order: with a single pair the mapping is the identity (trackers
        #: also number 1, 2, ... in first-seen order), so single-plan results
        #: are byte-identical to the pre-namespacing engine.
        self._track_id_map: Dict[Tuple[str, str, int], int] = {}
        self._next_global_track_id: int = 1
        #: Frame ids whose detector/tracker caches were interpolation-seeded
        #: by the stride sampler (never detector-observed).
        self.seeded_frames: set = set()

        # Per-frame caches are indexed by frame id first, so releasing a
        # frame pops one bucket in O(1) instead of rebuilding whole dicts.
        self._detections: Dict[int, Dict[str, List[Detection]]] = {}
        self._tracked: Dict[int, Dict[Tuple[str, str], List[Detection]]] = {}
        self._trackers: Dict[Tuple[str, str], Any] = {}
        self._models: Dict[str, Any] = {}
        self._track_states: Dict[Tuple[type, int], TrackState] = {}
        self._vobj_states: Dict[int, Dict[Tuple[type, Detection], VObjState]] = {}
        self._interactions: Dict[int, Dict[Tuple[str, Detection, Detection], Tuple[str, ...]]] = {}
        self._scene_states: Dict[int, Dict[type, SceneState]] = {}

    # -- model access -----------------------------------------------------------
    def model(self, name: str) -> Any:
        if name not in self._models:
            self._models[name] = self.zoo.get(name, fresh=True)
        return self._models[name]

    def property_model(self, name: str) -> Any:
        return self.model(name)

    def invoke_model(self, model_name: str, frame_id: int, fn, kind: str = "model"):
        """Run one model invocation, through the fault layer when present.

        With fault tolerance off this is a plain call; with it on, the
        :class:`~repro.faults.FaultManager` adds injection, bounded retries
        with clock-charged backoff, timeout budgets, and circuit breaking.
        A permanently failed invocation surfaces as
        :class:`~repro.common.errors.TransientModelError`, which the scan
        scheduler turns into frame degradation.
        """
        if self.faults is None:
            return fn()
        return self.faults.invoke(model_name, frame_id, fn, kind=kind)

    def charge_python(self, prop_name: str) -> None:
        self.clock.charge(f"python:{prop_name}", PYTHON_PROPERTY_MS)

    def count_reuse(self, prop_name: str) -> None:
        self.reuse_stats.count(prop_name)

    # -- shared per-frame computations ----------------------------------------------
    def detect(self, model_name: str, frame: Frame) -> List[Detection]:
        per_frame = self._detections.setdefault(frame.frame_id, {})
        if model_name not in per_frame:
            index = self.index
            if index is not None:
                cached = index.lookup_detections(model_name, frame.frame_id)
                if cached is not None:
                    # Served from the persistent index: no model invocation,
                    # no clock charge — the whole point of indexing.
                    per_frame[model_name] = cached
                    return cached

            def run() -> List[Detection]:
                return self.invoke_model(
                    model_name,
                    frame.frame_id,
                    lambda: self.model(model_name).detect(frame, self.clock),
                    kind="detector",
                )

            obs = self.obs
            if obs is not None:
                with obs.tracer.span(
                    "model-invocation",
                    clock=self.clock,
                    model=model_name,
                    frame=frame.frame_id,
                    kind="detector",
                ):
                    per_frame[model_name] = run()
                obs.metrics.inc("detector_invocations", model=model_name)
            else:
                per_frame[model_name] = run()
            if index is not None and frame.frame_id not in self.seeded_frames:
                # Write-through as a side effect of scanning.  Seeded frames
                # never reach here (their caches are pre-populated), but the
                # guard keeps the provenance contract explicit: synthesized
                # results must never be persisted as model outputs.
                index.record_detections(model_name, frame.frame_id, per_frame[model_name])
        return per_frame[model_name]

    def _global_track_id(self, pair: Tuple[str, str], local_id: int) -> int:
        """Map a tracker-local track id to its batch-global identity.

        Allocated sequentially in first-seen order per ``(tracker, detector)``
        pair, so ids from different pairs can never collide (the former
        silent exclusion from cross-camera linking) and every persisted or
        linked id is attributable to exactly one pair.
        """
        key = (pair[0], pair[1], local_id)
        gid = self._track_id_map.get(key)
        if gid is None:
            gid = self._next_global_track_id
            self._next_global_track_id += 1
            self._track_id_map[key] = gid
        return gid

    def _namespace_tracks(self, pair: Tuple[str, str], detections: Sequence[Detection]) -> List[Detection]:
        """Rewrite tracker-local ids on ``detections`` to batch-global ones."""
        return [
            det if det.track_id is None else det.with_track(self._global_track_id(pair, det.track_id))
            for det in detections
        ]

    def track(self, tracker_name: str, detector_name: str, frame: Frame, detections: Sequence[Detection]) -> List[Detection]:
        per_frame = self._tracked.setdefault(frame.frame_id, {})
        key = (tracker_name, detector_name)
        if key not in per_frame:
            if key not in self._trackers:
                self._trackers[key] = self.zoo.get(tracker_name, fresh=True)
            tracker = self._trackers[key]
            obs = self.obs
            if obs is not None:
                with obs.tracer.span(
                    "model-invocation",
                    clock=self.clock,
                    model=tracker_name,
                    frame=frame.frame_id,
                    kind="tracker",
                ):
                    tracked = tracker.update(list(detections), self.clock)
                obs.metrics.inc("tracker_invocations", model=tracker_name)
            else:
                tracked = tracker.update(list(detections), self.clock)
            # The tracker numbers tracks locally from 1; everything past this
            # point (results, signatures, re-id, the persistent index) sees
            # only the namespaced global ids.
            per_frame[key] = self._namespace_tracks(key, tracked)
            for det in per_frame[key]:
                if det.track_id is not None:
                    self._track_first_seen.setdefault(det.track_id, frame.frame_id)
                    self._track_sources[det.track_id] = det
                    self._track_id_pairs.setdefault(det.track_id, set()).add(key)
        return per_frame[key]

    def peek_tracker(self, tracker_name: str, detector_name: str) -> Optional[Any]:
        """The live tracker instance for the pair, or None if it never ran.

        Used by the scan scheduler's stride sampler to read the tracker's
        active tracks for prediction/validation without instantiating (and
        thus resetting) a tracker that no pipeline has touched yet.
        """
        return self._trackers.get((tracker_name, detector_name))

    def seed_frame(
        self,
        frame_id: int,
        detector_name: str,
        tracker_key: Tuple[str, str],
        detections: Sequence[Detection],
    ) -> None:
        """Pre-populate a frame's detector/tracker caches with synthesized results.

        The stride sampler fills skipped frames with track-interpolated
        detections; seeding them here lets the ordinary operator pipelines
        run over the frame without invoking the detector or advancing the
        tracker.  Existing (real) cached results are never overwritten, so a
        stream that did run models on the frame always wins.
        """
        # Seeds are built from tracker internals (``Track.last_detection``),
        # which carry tracker-local ids — namespace them so seeded frames
        # agree with the global ids the tracked pipeline emits.
        seeded = self._namespace_tracks(tracker_key, detections)
        per_frame = self._detections.setdefault(frame_id, {})
        per_frame.setdefault(detector_name, seeded)
        tracked = self._tracked.setdefault(frame_id, {})
        tracked.setdefault(tracker_key, list(seeded))
        self.seeded_frames.add(frame_id)

    def interactions(self, model_name: str, subject: Detection, object_: Detection, frame: Frame) -> Tuple[str, ...]:
        per_frame = self._interactions.setdefault(frame.frame_id, {})
        key = (model_name, subject, object_)
        if key not in per_frame:
            model = self.model(model_name)
            preds = self.invoke_model(
                model_name,
                frame.frame_id,
                lambda: model.predict([subject], [object_], frame, self.clock),
                kind="interaction",
            )
            per_frame[key] = tuple(p.kind for p in preds)
        return per_frame[key]

    # -- cross-camera re-identification support ------------------------------------
    def track_sources(self) -> Dict[int, Detection]:
        """Last real tracked detection per track id, across the whole scan.

        Only tracker-observed detections land here — frames filled by stride
        interpolation are seeded past the tracker and therefore cannot
        contribute a source (re-id must never embed a synthesized crop).
        Track ids are batch-global (see :meth:`_global_track_id`), so each
        id belongs to exactly one (tracker, detector) pair.
        """
        return dict(self._track_sources)

    def ambiguous_track_ids(self) -> set:
        """Track ids emitted by more than one (tracker, detector) pair.

        Global id allocation makes cross-pair collisions impossible, so this
        is empty by construction; it remains as a defensive invariant check
        for cross-camera linking (a non-empty set means the namespacing
        contract was violated).
        """
        return {tid for tid, pairs in self._track_id_pairs.items() if len(pairs) > 1}

    def track_pair(self, track_id: int) -> Optional[Tuple[str, str]]:
        """The (tracker, detector) pair that emitted a global track id.

        This is the attribution record the persistent index stores with
        every track, so indexed identities can be replayed against the
        right pipeline.  None for unknown ids.
        """
        pairs = self._track_id_pairs.get(track_id)
        if not pairs:
            return None
        return next(iter(pairs))

    def track_first_seen(self, track_id: int) -> Optional[int]:
        """Frame id a track was first observed on (None for unknown tracks)."""
        return self._track_first_seen.get(track_id)

    def intrinsic_track_values(
        self, prop_name: str, exclude_frames: Optional[set] = None
    ) -> Dict[int, Any]:
        """Cached intrinsic values of ``prop_name``, keyed by track id.

        This is the object-level reuse cache (§4.2) read sideways: when a
        query already computed a track's re-id embedding, cross-camera
        linking reuses the cached value instead of invoking the embedding
        model again.  ``exclude_frames`` drops values whose recorded
        computation frame is in the set — linking passes the interpolation-
        seeded frames here, since a value computed over a synthesized
        detection is not a real observation.  If several VObj types cached
        the property for the same track id, the first one (iteration order)
        wins.
        """
        out: Dict[int, Any] = {}
        for (_vobj_type, track_id), state in self._track_states.items():
            if prop_name in state.intrinsic_values and track_id not in out:
                if exclude_frames and state.intrinsic_frames.get(prop_name) in exclude_frames:
                    continue
                out[track_id] = state.intrinsic_values[prop_name]
        return out

    # -- state management --------------------------------------------------------------
    def track_state(self, vobj_type: type, track_id: Optional[int]) -> Optional[TrackState]:
        if track_id is None:
            return None
        key = (vobj_type, track_id)
        if key not in self._track_states:
            self._track_states[key] = TrackState(vobj_type, track_id)
        return self._track_states[key]

    def vobj_state(self, vobj_type: type, detection: Detection, frame: Frame) -> VObjState:
        per_frame = self._vobj_states.setdefault(frame.frame_id, {})
        key = (vobj_type, detection)
        state = per_frame.get(key)
        if state is None:
            state = VObjState(
                vobj_type,
                detection,
                frame,
                self,
                track_state=self.track_state(vobj_type, detection.track_id),
            )
            per_frame[key] = state
        return state

    def scene_state(self, scene_type: type, frame: Frame) -> SceneState:
        per_frame = self._scene_states.setdefault(frame.frame_id, {})
        state = per_frame.get(scene_type)
        if state is None:
            state = SceneState(scene_type, frame, self)
            per_frame[scene_type] = state
        return state

    def relation_state(self, relation_type: type, subject: VObjState, object_: VObjState, frame: Frame) -> RelationState:
        return RelationState(relation_type, subject, object_, frame, self)

    # -- scan checkpointing -------------------------------------------------------------
    #: The mutable per-scan state a checkpoint must capture.  Everything
    #: else on the context is either configuration (video, zoo, flags) or
    #: restored separately (the clock) / deliberately persistent (obs,
    #: faults).
    _CHECKPOINT_ATTRS: Tuple[str, ...] = (
        "reuse_stats",
        "seeded_frames",
        "_track_sources",
        "_track_first_seen",
        "_track_id_pairs",
        "_track_id_map",
        "_next_global_track_id",
        "_detections",
        "_tracked",
        "_trackers",
        "_models",
        "_track_states",
        "_vobj_states",
        "_interactions",
        "_scene_states",
    )

    def checkpoint_state(self) -> Dict[str, Any]:
        """Live references to the mutable per-scan state (no copies).

        The :class:`~repro.faults.checkpoint.ScanCheckpointer` deep-copies
        this dict together with the scheduler in one pass, so objects shared
        between the two (trackers, track states) stay shared in the snapshot.
        """
        return {name: getattr(self, name) for name in self._CHECKPOINT_ATTRS}

    def restore_checkpoint_state(self, state: Dict[str, Any]) -> None:
        """Install a checkpointed state *in place*, preserving identity.

        ``state`` must be a private copy (the checkpointer re-copies its
        snapshot on every restore); references to this context held by
        sessions, VObj states, or readers all stay valid.
        """
        for name in self._CHECKPOINT_ATTRS:
            setattr(self, name, state[name])

    # -- housekeeping -------------------------------------------------------------------
    def release_frame(self, frame_id: int) -> None:
        """Drop the frame's caches in O(evicted entries), not O(cache size)."""
        self._detections.pop(frame_id, None)
        self._tracked.pop(frame_id, None)
        self._vobj_states.pop(frame_id, None)
        self._interactions.pop(frame_id, None)
        self._scene_states.pop(frame_id, None)
