"""Result records returned by the execution engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class MatchRecord:
    """One matching binding (objects for each query variable) on one frame."""

    frame_id: int
    #: variable name -> track id (or None when the plan has no tracker).
    binding: Tuple[Tuple[str, Optional[int]], ...]
    #: Values of the query's frame_output expressions.
    outputs: Tuple[Any, ...] = ()
    #: Whether the binding satisfies the frame-level constraint.
    frame_match: bool = True
    #: Whether the binding also satisfies the video-level constraint.
    video_match: bool = False
    #: Values of the video_output aggregate expressions (aligned by index).
    aggregate_values: Tuple[Any, ...] = ()

    @property
    def signature(self) -> Tuple[Tuple[str, Optional[int]], ...]:
        """Identity of the participating objects (used to group events)."""
        return self.binding


@dataclass(frozen=True)
class Event:
    """A time interval during which a condition held for a fixed object set."""

    start_frame: int
    end_frame: int
    signature: Tuple[Tuple[str, Optional[int]], ...] = ()
    label: str = ""

    @property
    def num_frames(self) -> int:
        return self.end_frame - self.start_frame + 1


@dataclass
class QueryResult:
    """The full result of executing one query over one video."""

    query_name: str
    num_frames_processed: int = 0
    matched_frames: List[int] = field(default_factory=list)
    #: frame_id -> match records for that frame (only frames with matches).
    matches: Dict[int, List[MatchRecord]] = field(default_factory=dict)
    #: Video-level aggregate results keyed by the aggregate's label.
    aggregates: Dict[str, Any] = field(default_factory=dict)
    #: Duration / temporal events (higher-order queries).
    events: List[Event] = field(default_factory=list)
    #: Virtual milliseconds charged while processing each frame (in order).
    per_frame_ms: List[float] = field(default_factory=list)
    total_ms: float = 0.0
    cost_breakdown: Dict[str, float] = field(default_factory=dict)
    #: Number of property computations avoided by intrinsic reuse.
    reuse_hits: int = 0
    plan_variant: str = "base"

    @property
    def num_matches(self) -> int:
        return sum(len(records) for records in self.matches.values())

    @property
    def ms_per_frame(self) -> float:
        if self.num_frames_processed == 0:
            return 0.0
        return self.total_ms / self.num_frames_processed

    def all_records(self) -> List[MatchRecord]:
        out: List[MatchRecord] = []
        for frame_id in sorted(self.matches):
            out.extend(self.matches[frame_id])
        return out

    def video_records(self) -> List[MatchRecord]:
        return [r for r in self.all_records() if r.video_match]

    def distinct_tracks(self, var_name: Optional[str] = None) -> set:
        """Distinct track ids across matches (optionally for one variable)."""
        tracks = set()
        for record in self.all_records():
            for name, track_id in record.binding:
                if track_id is None:
                    continue
                if var_name is None or name == var_name:
                    tracks.add((name, track_id))
        return tracks
