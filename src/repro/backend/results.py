"""Result records returned by the execution engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.backend.crosscamera import CrossCameraLinks, GlobalEvent, GlobalTimeline
    from repro.obs.explain import ExplainData


@dataclass(frozen=True)
class MatchRecord:
    """One matching binding (objects for each query variable) on one frame."""

    frame_id: int
    #: variable name -> object identity: the track id, or an ``"@<node_id>"``
    #: positional fallback when the plan has no tracker.
    binding: Tuple[Tuple[str, Any], ...]
    #: Values of the query's frame_output expressions.
    outputs: Tuple[Any, ...] = ()
    #: Whether the binding satisfies the frame-level constraint.
    frame_match: bool = True
    #: Whether the binding also satisfies the video-level constraint.
    video_match: bool = False
    #: Values of the video_output aggregate expressions (aligned by index).
    aggregate_values: Tuple[Any, ...] = ()

    @property
    def signature(self) -> Tuple[Tuple[str, Any], ...]:
        """Identity of the participating objects (used to group events)."""
        return self.binding


@dataclass(frozen=True)
class Event:
    """A time interval during which a condition held for a fixed object set."""

    start_frame: int
    end_frame: int
    signature: Tuple[Tuple[str, Optional[int]], ...] = ()
    label: str = ""
    #: Frames inside [start_frame, end_frame] that the scan scheduler's
    #: frame-filter gate skipped (never ran detectors on).  The reported
    #: range stays contiguous; this records where it was sampled.
    skipped_frames: Tuple[int, ...] = ()

    @property
    def num_frames(self) -> int:
        return self.end_frame - self.start_frame + 1

    @property
    def num_observed_frames(self) -> int:
        """Frames in the range that were actually inspected (not gate-skipped)."""
        return self.num_frames - len(self.skipped_frames)


@dataclass
class QueryResult:
    """The full result of executing one query over one video."""

    query_name: str
    num_frames_processed: int = 0
    matched_frames: List[int] = field(default_factory=list)
    #: frame_id -> match records for that frame (only frames with matches).
    matches: Dict[int, List[MatchRecord]] = field(default_factory=dict)
    #: Video-level aggregate results keyed by the aggregate's label.
    aggregates: Dict[str, Any] = field(default_factory=dict)
    #: label -> aggregate kind ("count_distinct", "max_per_frame", ...); lets
    #: multi-camera merging combine each aggregate the right way.
    aggregate_kinds: Dict[str, str] = field(default_factory=dict)
    #: Duration / temporal events (higher-order queries).
    events: List[Event] = field(default_factory=list)
    #: Virtual milliseconds charged while processing each frame (in order).
    per_frame_ms: List[float] = field(default_factory=list)
    total_ms: float = 0.0
    cost_breakdown: Dict[str, float] = field(default_factory=dict)
    #: Number of property computations avoided by intrinsic reuse.
    reuse_hits: int = 0
    plan_variant: str = "base"
    #: EXPLAIN ANALYZE payload attached by the executor when tracing is
    #: enabled (``PlannerConfig.enable_tracing``).  Excluded from equality
    #: and repr so traced and untraced results compare byte-identical.
    obs: Optional["ExplainData"] = field(default=None, compare=False, repr=False)

    def explain(self) -> str:
        """EXPLAIN ANALYZE-style report: planner candidates (estimated vs.
        profiled vs. actual cost), gate hit rates, the stride timeline,
        detector-budget consumption, and the decision summary."""
        if self.obs is None:
            raise ValueError(
                "no observability data on this result — execute with "
                "PlannerConfig(enable_tracing=True) to populate explain()"
            )
        from repro.obs.explain import render_explain

        return render_explain(self.obs)

    @property
    def num_matches(self) -> int:
        return sum(len(records) for records in self.matches.values())

    @property
    def ms_per_frame(self) -> float:
        if self.num_frames_processed == 0:
            return 0.0
        return self.total_ms / self.num_frames_processed

    def all_records(self) -> List[MatchRecord]:
        out: List[MatchRecord] = []
        for frame_id in sorted(self.matches):
            out.extend(self.matches[frame_id])
        return out

    def video_records(self) -> List[MatchRecord]:
        return [r for r in self.all_records() if r.video_match]

    def distinct_tracks(self, var_name: Optional[str] = None) -> set:
        """Distinct track ids across matches (optionally for one variable).

        Only real tracker-assigned ids count; the positional ``"@<node_id>"``
        fallback identities of untracked plans are not object identities.
        """
        tracks = set()
        for record in self.all_records():
            for name, track_id in record.binding:
                if not isinstance(track_id, int):
                    continue
                if var_name is None or name == var_name:
                    tracks.add((name, track_id))
        return tracks


@dataclass(frozen=True)
class FeedFailure:
    """Structured status of one camera feed that died during an execution.

    Attached to :attr:`MultiCameraResult.feed_failures` when per-feed
    isolation (``enable_fault_tolerance``) lets the surviving feeds finish;
    the failed feed simply has no entry in ``per_camera``.
    """

    #: The feed's alias in the session (the ``per_camera`` key it would have had).
    feed: str
    #: Human-readable failure description (the underlying error message).
    error: str
    #: Frame the feed died at, when known (injected feed death records it).
    frame_id: Optional[int] = None


@dataclass
class MultiCameraResult:
    """One query's results sharded across several camera feeds.

    Cameras keep their insertion order (the order the session was built
    with), so every merged view below is deterministic.
    """

    query_name: str
    #: camera name -> that feed's QueryResult (insertion-ordered).
    per_camera: Dict[str, QueryResult] = field(default_factory=dict)
    #: camera name -> structured failure status for feeds that died mid-scan
    #: under fault-tolerant execution (empty when every feed survived; never
    #: populated with fault tolerance off — a dead feed then aborts the batch
    #: with :class:`~repro.common.errors.ExecutionError`).
    feed_failures: Dict[str, FeedFailure] = field(default_factory=dict)
    #: Cross-camera identity links (set by the session when
    #: ``enable_cross_camera_reid`` is on; None otherwise).
    links: Optional["CrossCameraLinks"] = None
    #: The wall-clock timeline the feeds are aligned on (set alongside
    #: ``links``; None keeps the frame-ordered PR-4 merge semantics).
    timeline: Optional["GlobalTimeline"] = None

    def camera(self, name: str) -> QueryResult:
        try:
            return self.per_camera[name]
        except KeyError:
            raise KeyError(f"no camera {name!r}; have {sorted(self.per_camera)}") from None

    @property
    def cameras(self) -> List[str]:
        return list(self.per_camera)

    def __iter__(self) -> Iterator[Tuple[str, QueryResult]]:
        return iter(self.per_camera.items())

    # -- merged views ------------------------------------------------------
    @property
    def total_ms(self) -> float:
        """Total virtual compute across all feeds."""
        return sum(r.total_ms for r in self.per_camera.values())

    @property
    def num_matches(self) -> int:
        return sum(r.num_matches for r in self.per_camera.values())

    @property
    def num_frames_processed(self) -> int:
        return sum(r.num_frames_processed for r in self.per_camera.values())

    def matched_frames(self) -> Dict[str, List[int]]:
        """Matching frame ids per camera (frame ids are feed-local)."""
        return {name: list(r.matched_frames) for name, r in self.per_camera.items()}

    def merged_events(self) -> List[Tuple[str, Event]]:
        """All events across feeds, tagged with their camera, in time order.

        Without a timeline, "time" is the feed-local frame id (the PR-4
        merge; only meaningful when the feeds are frame-aligned).  When the
        session attached a :class:`GlobalTimeline` (cross-camera re-id
        runs), events order by their wall-clock interval instead, so feeds
        with different frame rates and start offsets interleave correctly.
        Ties break by camera name either way, keeping the merge
        deterministic regardless of per-feed event counts.
        """
        tagged = [
            (name, event)
            for name, result in self.per_camera.items()
            for event in result.events
        ]
        if self.timeline is not None:
            return self.timeline.order_events(tagged)
        tagged.sort(key=lambda pair: (pair[1].start_frame, pair[1].end_frame, pair[0]))
        return tagged

    # -- cross-camera views (require enable_cross_camera_reid) ----------------
    def global_tracks(self) -> Dict[int, List[Tuple[str, int]]]:
        """global identity -> this query's (camera, track_id) sightings.

        Restricted to tracks that actually appear in this query's match
        records; the session-wide assignment (every track of every feed)
        lives on ``links.global_tracks()``.
        """
        from repro.backend.crosscamera import require_links

        links = require_links(self.links, "MultiCameraResult.global_tracks()")
        out: Dict[int, List[Tuple[str, int]]] = {}
        for camera, result in self.per_camera.items():
            for _, track_id in sorted(result.distinct_tracks(), key=lambda t: t[1]):
                gid = links.identities.get((camera, track_id))
                if gid is not None and (camera, track_id) not in out.get(gid, ()):
                    out.setdefault(gid, []).append((camera, track_id))
        return {gid: members for gid, members in sorted(out.items())}

    def global_events(self, max_gap_s: Optional[float] = None) -> List["GlobalEvent"]:
        """Per-identity spans stitching this query's events across cameras.

        ``max_gap_s`` splits an identity's story when it goes unseen longer
        than that (plus the clock-skew tolerance); the default ``None``
        keeps each identity's whole sighting history as one span.
        """
        from repro.backend.crosscamera import require_links, stitch_global_events

        links = require_links(self.links, "MultiCameraResult.global_events()")
        if self.timeline is None:
            raise ValueError("global_events() needs the session's GlobalTimeline")
        return stitch_global_events(self.merged_events(), links, self.timeline, max_gap_s)

    def cost_breakdown(self) -> Dict[str, float]:
        """Per-account virtual-ms summed across feeds.

        Each feed's breakdown covers the scan the query ran in (shared with
        its batch mates, like ``QueryResult.cost_breakdown``); the sum here
        is the multi-camera view of that same accounting.
        """
        merged: Dict[str, float] = {}
        for result in self.per_camera.values():
            for account, ms in result.cost_breakdown.items():
                merged[account] = merged.get(account, 0.0) + ms
        return dict(sorted(merged.items(), key=lambda kv: -kv[1]))

    def merged_aggregates(self) -> Dict[str, Any]:
        """Combine per-camera aggregates under each label, by aggregate kind.

        Counts (``count_distinct``, event counts) sum across feeds.
        ``max_per_frame`` takes the maximum (it is an extremum, not a
        count), ``collect`` lists concatenate in camera order, and
        ``average_per_frame`` merges as a frame-weighted average.  Labels
        without kind metadata fall back to the same rules keyed on the
        value's type (lists concatenate, ints sum, floats average).

        Caveat: only the per-feed *counts* survive into ``aggregates``, so
        summed ``count_distinct`` is exact for feed-local identities (track
        ids) but over-counts values that can recur across feeds (license
        plates, colors).  For a cross-feed distinct count, aggregate with
        ``collect`` and dedupe the concatenated values instead.
        """
        merged: Dict[str, Any] = {}
        weights: Dict[str, int] = {}
        for result in self.per_camera.values():
            frames = max(result.num_frames_processed, 1)
            for label, value in result.aggregates.items():
                kind = result.aggregate_kinds.get(label, "")
                if label not in merged:
                    merged[label] = list(value) if isinstance(value, list) else value
                    weights[label] = frames
                elif kind == "collect" or isinstance(value, list):
                    merged[label] = list(merged[label]) + list(value)
                elif kind == "max_per_frame":
                    merged[label] = max(merged[label], value)
                elif kind == "average_per_frame":
                    seen = weights[label]
                    merged[label] = (merged[label] * seen + value * frames) / (seen + frames)
                    weights[label] = seen + frames
                elif kind in ("count_distinct", "count"):
                    merged[label] += value
                elif isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue  # non-numeric without kind: keep the first camera's value
                elif isinstance(value, int) and isinstance(merged[label], int):
                    merged[label] += value
                else:
                    seen = weights[label]
                    merged[label] = (merged[label] * seen + value * frames) / (seen + frames)
                    weights[label] = seen + frames
        return merged
