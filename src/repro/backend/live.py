"""Push-driven live execution: standing queries over a paced, unbounded feed.

Batch execution (:class:`~repro.backend.session.QuerySession`) pulls frames
as fast as the scan can process them and finalizes results from history.  A
live source inverts both assumptions: frames arrive at the *feed's* pace —
possibly faster than compute, out of order, duplicated, or not at all — and
the scan never ends, so nothing may accumulate without bound and answers
must leave the engine the moment they exist.

:class:`LiveSession` is the push-driven counterpart.  Standing queries are
registered once and run indefinitely; closed events are emitted immediately
as :class:`Alert`\\ s to pluggable sinks instead of waiting for a
``finalize()`` that never comes.  Between the feed and the scan sit four
cooperating mechanisms, all on the ``SimClock``'s virtual timeline:

* **Re-sequencing** — arrivals are held in a reorder buffer of at most
  ``LiveConfig.reorder_window`` frames and released in frame-id order;
  frames arriving behind the release watermark (too late, or duplicates)
  are counted and discarded with a decision-log entry.
* **Backpressure that sheds accuracy first** — when the buffered depth
  crosses ``pressure_high`` the session doubles the scheduler's *pressure
  stride* (``ScanScheduler.set_pressure_stride``): interpolation-capable
  cohorts sample coarser and reconstruct the gaps, trading accuracy for
  throughput while every frame still gets an answer.  The stride floor
  halves back as the queue drains below ``pressure_low``.
* **Hard shedding as the last resort** — only past ``max_buffered_frames``
  are frames dropped outright (oldest first), each labelled into event
  provenance via ``ScanScheduler.note_missing_frame`` so any event spanning
  the loss carries it in ``Event.skipped_frames``.  Accounting is exact:
  ``delivered == processed + shed + late_dropped``, always.
* **A per-feed watchdog** — silence past ``stall_timeout_ms`` marks the
  feed stalled and drives disconnect → reconnect through the same
  retry/backoff + circuit-breaker machinery the fault layer uses
  (:class:`~repro.faults.resilience.CircuitBreaker`), with all waiting
  charged under ``"live-reconnect"``.  Standing-query state (open runs,
  tracker state, watermarks) survives the reconnection; frames lost to the
  outage are labelled missing exactly once.

Memory stays bounded forever: the ingest buffer is capped, alert queues are
bounded deques, the decision log is a ring buffer, and every
``prune_interval_frames`` dispatched frames each stream's
``prune_live()`` releases match/event history behind its own watermarks
(safe because a standing query never finalizes from history).

Everything here is gated behind ``PlannerConfig(enable_live=True)``; with
the flag off this module is never imported by the batch path, which stays
byte-identical.
"""

from __future__ import annotations

import math
from bisect import insort
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Union

from repro.backend.executor import Executor
from repro.backend.planner import Planner, PlannerConfig
from repro.backend.results import Event
from repro.backend.runtime import ExecutionContext
from repro.backend.scheduler import ScanScheduler
from repro.backend.streaming import QueryStream
from repro.common.clock import SimClock
from repro.common.config import LiveConfig
from repro.common.errors import ExecutionError, FeedFailedError
from repro.faults.resilience import CircuitBreaker, FaultManager
from repro.frontend.query import Query
from repro.frontend.registry import get_library_zoo
from repro.models.zoo import ModelZoo
from repro.obs.core import Obs
from repro.videosim.livefeed import LiveFeed
from repro.videosim.video import Frame, SyntheticVideo, VideoReader


# --------------------------------------------------------------------- alerts --
@dataclass(frozen=True)
class Alert:
    """One standing-query event, emitted the moment the engine closed it."""

    feed: str
    query_name: str
    event: Event
    emitted_at_ms: float


class CallbackSink:
    """Delivers each alert to a user callback as it is emitted."""

    def __init__(self, fn: Callable[[Alert], None]) -> None:
        self.fn = fn

    def emit(self, alert: Alert) -> None:
        self.fn(alert)


class QueueSink:
    """Bounded in-memory alert queue: oldest alerts are evicted past the cap.

    The cap is what keeps a never-ending session's alert path bounded when
    nobody drains; ``evicted`` counts the loss so it is visible, not silent.
    """

    def __init__(self, max_alerts: int = 1024) -> None:
        if max_alerts < 1:
            raise ValueError(f"max_alerts must be >= 1, got {max_alerts}")
        self._queue: Deque[Alert] = deque(maxlen=max_alerts)
        self.evicted = 0

    def emit(self, alert: Alert) -> None:
        if len(self._queue) == self._queue.maxlen:
            self.evicted += 1
        self._queue.append(alert)

    def drain(self) -> List[Alert]:
        """All queued alerts, oldest first (the queue is left empty)."""
        out = list(self._queue)
        self._queue.clear()
        return out

    def __len__(self) -> int:
        return len(self._queue)


# ------------------------------------------------------------------ accounting --
@dataclass
class LiveStats:
    """Exact frame/alert accounting for one live run.

    The load-shedding invariant — checked by the live benchmark's gate —
    is that every delivered frame is accounted exactly once:
    ``frames_delivered == frames_processed + frames_shed +
    frames_late_dropped``.  ``frames_lost`` counts outage losses the feed
    never delivered (they are labelled, not processed), so it sits outside
    that identity on purpose.
    """

    frames_delivered: int = 0
    frames_processed: int = 0
    frames_shed: int = 0
    frames_late_dropped: int = 0
    frames_reordered: int = 0
    frames_lost: int = 0
    duplicates_delivered: int = 0
    reconnects: int = 0
    reconnect_failures: int = 0
    stalls: int = 0
    alerts_emitted: int = 0
    peak_buffered: int = 0
    peak_pressure_stride: int = 1
    pressure_raises: int = 0

    def accounted(self) -> int:
        """Frames whose fate is settled; equals ``frames_delivered``."""
        return self.frames_processed + self.frames_shed + self.frames_late_dropped

    def as_dict(self) -> Dict[str, int]:
        return {
            "frames_delivered": self.frames_delivered,
            "frames_processed": self.frames_processed,
            "frames_shed": self.frames_shed,
            "frames_late_dropped": self.frames_late_dropped,
            "frames_reordered": self.frames_reordered,
            "frames_lost": self.frames_lost,
            "duplicates_delivered": self.duplicates_delivered,
            "reconnects": self.reconnects,
            "reconnect_failures": self.reconnect_failures,
            "stalls": self.stalls,
            "alerts_emitted": self.alerts_emitted,
            "peak_buffered": self.peak_buffered,
            "peak_pressure_stride": self.peak_pressure_stride,
            "pressure_raises": self.pressure_raises,
        }


class _SequencedFrame:
    """Reorder-buffer entry ordered by frame id (duplicates after originals)."""

    __slots__ = ("frame", "duplicate")

    def __init__(self, frame: Frame, duplicate: bool) -> None:
        self.frame = frame
        self.duplicate = duplicate

    def __lt__(self, other: "_SequencedFrame") -> bool:
        return (self.frame.frame_id, self.duplicate) < (
            other.frame.frame_id,
            other.duplicate,
        )


# -------------------------------------------------------------------- session --
class LiveSession:
    """Runs standing queries against a paced live feed until it ends.

    Construction mirrors :class:`~repro.backend.session.QuerySession`
    (same zoo, planner, executor, and — when tracing is on — one shared
    :class:`~repro.obs.core.Obs` bundle), but execution is push-driven by
    :meth:`run`: the session polls the feed on the virtual clock, pays the
    decode cost per arrival, re-sequences, sheds, and steps the very same
    :class:`~repro.backend.scheduler.ScanScheduler` the batch path uses —
    so a replay of a finite recording with no overload produces exactly the
    events a batch execution would.

    Requires ``PlannerConfig(enable_live=True)``; the constructor refuses
    to build otherwise so the flag stays the single opt-in switch.
    """

    def __init__(
        self,
        feed: Union[LiveFeed, SyntheticVideo],
        zoo: Optional[ModelZoo] = None,
        config: Optional[PlannerConfig] = None,
        sinks: Optional[Sequence[Any]] = None,
    ) -> None:
        self.config = config or PlannerConfig()
        if not self.config.enable_live:
            raise ExecutionError(
                "live execution is opt-in: construct the session with "
                "PlannerConfig(enable_live=True)"
            )
        self.live: LiveConfig = self.config.live()
        self.feed = feed if isinstance(feed, LiveFeed) else LiveFeed(feed)
        self.video = self.feed.video
        self.zoo = zoo or get_library_zoo()
        self.planner = Planner(self.zoo, self.config)
        self.executor = Executor(self.config)
        self.clock = SimClock()
        self.stats = LiveStats()
        #: Always-attached bounded queue; ``alerts()`` drains it.
        self.queue_sink = QueueSink(self.live.max_alert_queue)
        self.sinks: List[Any] = [self.queue_sink] + list(sinks or [])
        #: Observability bundle of the run; None unless ``enable_tracing``.
        self.last_obs: Optional[Obs] = None
        self.last_context: Optional[ExecutionContext] = None
        self._scheduler: Optional[ScanScheduler] = None
        self._streams: List[QueryStream] = []
        self._closed = False

        # -- ingest state ----------------------------------------------------
        #: Released-but-not-dispatched frames, in frame-id order.
        self._queue: Deque[_SequencedFrame] = deque()
        #: Out-of-order arrivals awaiting their predecessors.
        self._reorder: List[_SequencedFrame] = []
        #: Next frame id the re-sequencer wants to release.
        self._next_expected = 0
        #: Outage losses already labelled missing; the re-sequencer skips them.
        self._missing: set = set()
        #: Highest frame id seen arriving (out-of-order detection).
        self._highest_arrived = -1
        #: Frame id of the most recent dispatch (prune watermark).
        self._dispatched = -1
        self._last_prune = 0
        self._pressure = 1
        self._last_arrival_ms = 0.0
        self._breaker = CircuitBreaker(
            self.live.breaker_threshold, self.live.breaker_cooldown_ms
        )

    # -- public surface ----------------------------------------------------------
    def alerts(self) -> List[Alert]:
        """Drain the session's bounded alert queue (oldest first)."""
        return self.queue_sink.drain()

    def run(self, queries: Sequence[Query]) -> LiveStats:
        """Drive the standing queries until the feed is exhausted.

        Returns the session's exact frame accounting; events reach the
        sinks as they close during the run, with still-open runs flushed
        at shutdown (:meth:`close` semantics are folded in).
        """
        queries = list(queries)
        if not queries:
            raise ExecutionError("a live session needs at least one standing query")
        obs = Obs.from_config(self.config.obs()) if self.config.enable_tracing else None
        self.last_obs = obs
        ctx = ExecutionContext(
            self.video, self.zoo, clock=self.clock, reuse_enabled=self.config.enable_reuse
        )
        self.last_context = ctx
        self.planner.begin_batch(queries)
        self._streams = [
            self.executor.compile(q, self.video, self.planner, ensure_events=True, obs=obs)
            for q in queries
        ]
        faults = None
        fault_cfg = self.config.faults()
        if fault_cfg.enabled:
            faults = FaultManager(fault_cfg, ctx.clock, feed=self.feed.feed, obs=obs)
            ctx.faults = faults
        # Standing queries never early-exit: done() can fire for bounded
        # queries, but the feed — not the answer set — ends a live scan.
        scheduler = ScanScheduler(
            self._streams,
            ctx,
            gating=self.config.enable_scan_gating,
            early_exit=False,
            stride=self.config.stride(),
            obs=obs,
            faults=faults,
        )
        ctx.scan_stats = scheduler.stats
        if obs is not None:
            ctx.obs = obs
        if faults is not None:
            faults.stats = scheduler.stats
        self._scheduler = scheduler

        if obs is not None:
            with obs.tracer.span(
                "live-session", clock=self.clock, feed=self.feed.feed,
                queries=len(queries),
            ):
                self._loop(scheduler, faults, obs)
        else:
            self._loop(scheduler, faults, obs)
        self._shutdown(scheduler, obs)
        return self.stats

    # -- main loop ---------------------------------------------------------------
    def _loop(self, scheduler: ScanScheduler, faults: Optional[FaultManager], obs) -> None:
        decode_ms = VideoReader.DECODE_MS_PER_MEGAPIXEL * self.video.spec.megapixels
        while True:
            now = self.clock.elapsed_ms
            self._label_outage_losses(scheduler, now, obs)
            for frame, delivery in self.feed.poll(now):
                # A live source decodes on arrival, not on demand.
                self.clock.charge("video_reader", decode_ms)
                self._last_arrival_ms = max(self._last_arrival_ms, delivery.delivery_ms)
                self.stats.frames_delivered += 1
                if delivery.duplicate:
                    self.stats.duplicates_delivered += 1
                if obs is not None:
                    obs.metrics.observe(
                        "live_lag_ms", now - delivery.capture_ms, feed=self.feed.feed
                    )
                self._admit(frame, delivery.duplicate, scheduler, obs)
            self._release_in_order(obs)
            # Accuracy first, frames last: widen the stride floor the moment
            # the high watermark is crossed — before the hard cap may shed in
            # the very same iteration — so coarsening always precedes drops.
            self._update_pressure(scheduler, obs)
            self._shed_over_cap(scheduler, obs)
            if self._queue:
                self._dispatch(scheduler, faults, obs)
                continue
            if not self._idle(scheduler, obs):
                return

    # -- ingest ------------------------------------------------------------------
    def _admit(self, frame: Frame, duplicate: bool, scheduler: ScanScheduler, obs) -> None:
        """Route one arrival: late-drop behind the watermark, else buffer."""
        fid = frame.frame_id
        if fid < self._next_expected:
            # Behind the release watermark: a duplicate of a frame already
            # sequenced, or an out-of-order frame the window gave up on.
            self._drop_late(fid, duplicate, scheduler, obs)
            return
        if fid < self._highest_arrived:
            self.stats.frames_reordered += 1
            if obs is not None:
                obs.metrics.inc("frames_reordered", feed=self.feed.feed)
                obs.decisions.record(
                    "frame-reordered", "out-of-order-arrival", frame_id=fid,
                    behind=self._highest_arrived,
                )
        self._highest_arrived = max(self._highest_arrived, fid)
        insort(self._reorder, _SequencedFrame(frame, duplicate))

    def _drop_late(self, fid: int, duplicate: bool, scheduler: ScanScheduler, obs) -> None:
        self.stats.frames_late_dropped += 1
        if not duplicate:
            # The original copy: it was never sequenced, so the scan will
            # never step it — label the gap into event provenance.
            scheduler.note_missing_frame(fid)
        if obs is not None:
            obs.metrics.inc("frames_late_dropped", feed=self.feed.feed)
            obs.decisions.record(
                "late-frame-dropped",
                "duplicate-delivery" if duplicate else "behind-watermark",
                frame_id=fid,
                watermark=self._next_expected - 1,
            )

    def _release_in_order(self, obs) -> None:
        """Move contiguous (or timed-out) reorder-buffer frames to the queue."""
        window = self.live.reorder_window
        while self._reorder:
            while self._next_expected in self._missing:
                self._missing.discard(self._next_expected)
                self._next_expected += 1
            head = self._reorder[0]
            fid = head.frame.frame_id
            if fid < self._next_expected:
                # A duplicate buffered while its original was still pending;
                # the original has since been released ahead of it.
                self._reorder.pop(0)
                self._drop_late(fid, head.duplicate, self._scheduler, obs)
                continue
            if fid == self._next_expected or len(self._reorder) > window:
                # In order — or the window is full and the gap frame has not
                # shown up: release out of order and let the gap frame be
                # late-dropped (and labelled missing) if it ever arrives.
                self._reorder.pop(0)
                self._queue.append(head)
                self._next_expected = fid + 1
                continue
            break

    def _buffered(self) -> int:
        return len(self._queue) + len(self._reorder)

    def _shed_over_cap(self, scheduler: ScanScheduler, obs) -> None:
        """Hard cap: drop the oldest buffered frames past ``max_buffered_frames``."""
        cap = self.live.max_buffered_frames
        while self._buffered() > cap:
            if self._queue:
                victim = self._queue.popleft()
            else:
                victim = self._reorder.pop(0)
                self._next_expected = max(self._next_expected, victim.frame.frame_id + 1)
            fid = victim.frame.frame_id
            self.stats.frames_shed += 1
            if not victim.duplicate:
                scheduler.note_missing_frame(fid)
            if obs is not None:
                obs.metrics.inc("frames_shed", feed=self.feed.feed)
                obs.decisions.record(
                    "frame-shed", "queue-over-cap", frame_id=fid,
                    buffered=self._buffered() + 1, cap=cap,
                )
        depth = self._buffered()
        self.stats.peak_buffered = max(self.stats.peak_buffered, depth)
        if obs is not None:
            obs.metrics.observe("live_queue_depth", depth, feed=self.feed.feed)

    def _update_pressure(self, scheduler: ScanScheduler, obs) -> None:
        """Shed accuracy before frames: widen the stride floor under load."""
        cap = self.live.max_buffered_frames
        frac = self._buffered() / cap
        if frac >= self.live.pressure_high and self._pressure < self.live.max_pressure_stride:
            new = min(max(2, self._pressure * 2), self.live.max_pressure_stride)
            if scheduler.set_pressure_stride(new):
                if obs is not None:
                    obs.decisions.record(
                        "pressure-stride-raised", "queue-pressure",
                        frame_id=self._next_expected,
                        stride_from=self._pressure, stride_to=new,
                        queue_depth=self._buffered(),
                    )
                self._pressure = new
                self.stats.pressure_raises += 1
                self.stats.peak_pressure_stride = max(
                    self.stats.peak_pressure_stride, new
                )
        elif frac <= self.live.pressure_low and self._pressure > 1:
            new = max(1, self._pressure // 2)
            if scheduler.set_pressure_stride(new):
                self._pressure = new

    # -- dispatch ----------------------------------------------------------------
    def _dispatch(self, scheduler: ScanScheduler, faults: Optional[FaultManager], obs) -> None:
        entry = self._queue.popleft()
        frame = entry.frame
        self.stats.frames_processed += 1
        self._dispatched = frame.frame_id
        if faults is not None:
            frame = faults.reader_hook(frame)
        scheduler.step(frame)
        self._emit_alerts(obs)
        if self._dispatched - self._last_prune >= self.live.prune_interval_frames:
            for stream in self._streams:
                stream.prune_live(self._dispatched)
            self._last_prune = self._dispatched

    def _emit_alerts(self, obs) -> None:
        now = self.clock.elapsed_ms
        for stream in self._streams:
            for event in stream.drain_events():
                self._emit(Alert(self.feed.feed, stream.query_name, event, now))

    def _emit(self, alert: Alert) -> None:
        self.stats.alerts_emitted += 1
        for sink in self.sinks:
            sink.emit(alert)

    # -- idle / watchdog ---------------------------------------------------------
    def _idle(self, scheduler: ScanScheduler, obs) -> bool:
        """Nothing to dispatch: wait for the feed, or handle its silence.

        Returns False when the feed is exhausted and fully drained — the
        only clean way out of the loop.
        """
        now = self.clock.elapsed_ms
        next_ms = self.feed.next_delivery_ms()
        if next_ms is None:
            if self._reorder:
                # No more arrivals will ever fill the gaps: flush the tail.
                while self._reorder:
                    head = self._reorder.pop(0)
                    if head.frame.frame_id < self._next_expected:
                        self._drop_late(head.frame.frame_id, head.duplicate, scheduler, obs)
                        continue
                    self._queue.append(head)
                    self._next_expected = head.frame.frame_id + 1
                return True
            # Surface any outage losses scheduled past the last delivery.
            self._label_outage_losses(scheduler, math.inf, obs)
            return False
        if next_ms <= now:
            return True
        deadline = self._last_arrival_ms + self.live.stall_timeout_ms
        if next_ms <= deadline:
            # Ordinary pacing gap: sleep the virtual clock to the arrival.
            self.clock.charge("live-idle", next_ms - now)
            return True
        if deadline > now:
            # Sleep only as far as the watchdog allows before declaring a stall.
            self.clock.charge("live-idle", deadline - now)
            return True
        self._handle_stall(scheduler, obs)
        return True

    def _handle_stall(self, scheduler: ScanScheduler, obs) -> None:
        """The watchdog path: silence past the deadline → reconnect or die."""
        now = self.clock.elapsed_ms
        self.stats.stalls += 1
        if obs is not None:
            obs.decisions.record(
                "feed-stalled", "no-arrivals", frame_id=self._dispatched,
                subject=self.feed.feed, silent_ms=round(now - self._last_arrival_ms, 3),
            )
        backoff = self.live.reconnect_backoff_base_ms
        for attempt in range(1, self.live.max_reconnect_attempts + 1):
            self.clock.charge("live-reconnect", backoff)
            if not self._breaker.allow(self.clock.elapsed_ms):
                # Circuit open: wait the cooldown out before probing again.
                self.clock.charge("live-reconnect", self.live.breaker_cooldown_ms)
            now = self.clock.elapsed_ms
            if self.feed.reconnect(now):
                self._breaker.record_success()
                self.stats.reconnects += 1
                # Losses inside the outage are labelled on reconnect, before
                # post-outage frames reach the scan.
                self._label_outage_losses(scheduler, now, obs)
                self._last_arrival_ms = now
                if obs is not None:
                    obs.metrics.inc("reconnects", feed=self.feed.feed)
                    obs.decisions.record(
                        "feed-reconnected", "reconnect-success",
                        subject=self.feed.feed, attempt=attempt,
                    )
                return
            self.stats.reconnect_failures += 1
            self._breaker.record_failure(now)
            backoff *= self.live.reconnect_backoff_factor
        raise FeedFailedError(
            f"live feed {self.feed.feed!r} stalled and "
            f"{self.live.max_reconnect_attempts} reconnect attempts failed",
            feed=self.feed.feed,
            frame_id=self._dispatched if self._dispatched >= 0 else None,
        )

    def _label_outage_losses(self, scheduler: ScanScheduler, now: float, obs) -> None:
        for fid in self.feed.lost_before(now):
            scheduler.note_missing_frame(fid)
            self._missing.add(fid)
            self.stats.frames_lost += 1
            if obs is not None:
                obs.decisions.record(
                    "frame-lost", "feed-outage", frame_id=fid, subject=self.feed.feed
                )

    # -- shutdown ----------------------------------------------------------------
    def _shutdown(self, scheduler: ScanScheduler, obs) -> None:
        """Resolve deferred tails, then force-close and emit open runs."""
        if self._closed:
            return
        self._closed = True
        scheduler.drain()
        self._emit_alerts(obs)
        now = self.clock.elapsed_ms
        for stream in self._streams:
            for event in stream.flush_events():
                self._emit(Alert(self.feed.feed, stream.query_name, event, now))

    # -- reporting ---------------------------------------------------------------
    @property
    def last_scan_stats(self) -> Optional[Dict[str, object]]:
        """The scan scheduler's counters for the run (None before ``run``)."""
        if self._scheduler is None:
            return None
        return self._scheduler.stats.as_dict()

    def explain(self) -> str:
        """EXPLAIN ANALYZE-style report of the run, with a live section.

        Requires ``enable_tracing`` (the decision log and metrics feed the
        report); raises before :meth:`run`.
        """
        from repro.obs.explain import ExplainData, render_explain

        if self._scheduler is None:
            raise ExecutionError("explain() needs a completed run() first")
        obs = self.last_obs
        data = ExplainData(
            query_name=f"live[{self.feed.feed}]",
            plan_variant="live",
            scan_stats=self._scheduler.stats.as_dict(),
            cost_breakdown=dict(self.clock.breakdown()),
            model_calls=dict(self.clock.calls),
            total_ms=self.clock.elapsed_ms,
            decisions=obs.decisions if obs is not None else None,
            tracer=obs.tracer if obs is not None else None,
            live=self.stats.as_dict(),
        )
        return render_explain(data)
