"""VQPy backend: the object-centric optimization framework (paper §4)."""

from repro.backend.analysis import QueryAnalysis, analyze_query
from repro.backend.crosscamera import (
    CrossCameraLinks,
    CrossCameraSequence,
    GlobalEvent,
    GlobalTimeline,
    ReidMatcher,
    TrackProfile,
    pair_cross_camera_events,
    reid_identity_scores,
    stitch_global_events,
)
from repro.backend.executor import Executor, extract_events
from repro.backend.graph import FrameGraph, RelationEdge, VObjNode
from repro.backend.live import Alert, CallbackSink, LiveSession, LiveStats, QueueSink
from repro.backend.operators import (
    DetectorOp,
    FrameFilterOp,
    FusedOp,
    JoinOp,
    Operator,
    ProjectorOp,
    RelationFilterOp,
    RelationProjectorOp,
    TrackerOp,
    VObjFilterOp,
)
from repro.backend.plan import QueryPlan
from repro.backend.planner import Planner, PlannerConfig
from repro.backend.results import Event, MatchRecord, MultiCameraResult, QueryResult
from repro.backend.runtime import ExecutionContext, TrackState, VObjState
from repro.backend.scheduler import FrameGate, ScanScheduler, ScanStats
from repro.backend.session import MultiCameraSession, QuerySession
from repro.backend.streaming import (
    DurationStream,
    OnlineEventGrouper,
    PlanStream,
    QueryStream,
    TemporalStream,
)

__all__ = [
    "QueryAnalysis",
    "analyze_query",
    "CrossCameraLinks",
    "CrossCameraSequence",
    "GlobalEvent",
    "GlobalTimeline",
    "ReidMatcher",
    "TrackProfile",
    "pair_cross_camera_events",
    "reid_identity_scores",
    "stitch_global_events",
    "Executor",
    "extract_events",
    "FrameGraph",
    "RelationEdge",
    "VObjNode",
    "Alert",
    "CallbackSink",
    "LiveSession",
    "LiveStats",
    "QueueSink",
    "DetectorOp",
    "FrameFilterOp",
    "FusedOp",
    "JoinOp",
    "Operator",
    "ProjectorOp",
    "RelationFilterOp",
    "RelationProjectorOp",
    "TrackerOp",
    "VObjFilterOp",
    "QueryPlan",
    "Planner",
    "PlannerConfig",
    "Event",
    "MatchRecord",
    "MultiCameraResult",
    "QueryResult",
    "ExecutionContext",
    "TrackState",
    "VObjState",
    "FrameGate",
    "ScanScheduler",
    "ScanStats",
    "MultiCameraSession",
    "QuerySession",
    "DurationStream",
    "OnlineEventGrouper",
    "PlanStream",
    "QueryStream",
    "TemporalStream",
]
