"""The execution engine (paper §4.1).

The executor walks a plan's operators over every frame of a video, then runs
the sink: it enumerates bindings of the surviving objects, re-checks the full
frame/video constraints (cheap — property values are already cached on the
object states), resolves the outputs, and accumulates video-level aggregates.

Higher-order queries are composed on top of the per-frame match streams:

* :class:`~repro.frontend.higher_order.DurationQuery` groups matches into
  per-object runs and keeps those lasting at least the required duration;
* :class:`~repro.frontend.higher_order.TemporalQuery` pairs the events of its
  two sub-queries that occur in order within the time window.

Several plans can be executed in one pass over the video with a shared
execution context; detector, tracker, and property-model results are then
computed once — the paper's query-level computation reuse (§4.2, §5.3).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.backend.analysis import QueryAnalysis
from repro.backend.graph import FrameGraph
from repro.backend.plan import QueryPlan
from repro.backend.planner import Planner, PlannerConfig
from repro.backend.results import Event, MatchRecord, QueryResult
from repro.backend.runtime import ExecutionContext
from repro.common.errors import ExecutionError
from repro.frontend.expr import Environment, MISSING, TRUE
from repro.frontend.higher_order import DurationQuery, TemporalQuery
from repro.frontend.query import Aggregate, Query
from repro.videosim.video import SyntheticVideo, VideoReader


class Executor:
    """Runs query plans over videos."""

    def __init__(self, config: Optional[PlannerConfig] = None) -> None:
        self.config = config or PlannerConfig()

    # ------------------------------------------------------------------ plans --
    def execute_plan(self, plan: QueryPlan, video: SyntheticVideo, ctx: ExecutionContext) -> QueryResult:
        """Execute a single plan over the whole video."""
        return self.execute_plans([plan], video, ctx)[0]

    def execute_plans(
        self, plans: Sequence[QueryPlan], video: SyntheticVideo, ctx: ExecutionContext
    ) -> List[QueryResult]:
        """Execute several plans in one pass, sharing per-frame computations."""
        results = [
            QueryResult(query_name=plan.query_name, plan_variant=plan.variant) for plan in plans
        ]
        operators = [plan.operators() for plan in plans]
        reader = VideoReader(video, batch_size=self.config.batch_size, clock=ctx.clock)
        start_snapshot = ctx.clock.snapshot()

        for batch in reader.batches():
            for frame in batch:
                frame_start = ctx.clock.snapshot()
                for plan, plan_ops, result in zip(plans, operators, results):
                    graph = FrameGraph(frame)
                    for op in plan_ops:
                        graph = op.run(graph, ctx)
                        if graph.dropped:
                            break
                    self._sink(plan.analysis, graph, ctx, result)
                    result.num_frames_processed += 1
                frame_ms = ctx.clock.since(frame_start)
                per_plan_ms = frame_ms / max(len(plans), 1)
                for result in results:
                    result.per_frame_ms.append(per_plan_ms)
                ctx.release_frame(frame.frame_id)

        total = ctx.clock.since(start_snapshot)
        for plan, result in zip(plans, results):
            result.total_ms = total / max(len(plans), 1)
            result.cost_breakdown = dict(ctx.clock.breakdown())
            result.reuse_hits = ctx.reuse_stats.total_hits
            self._finalize_aggregates(plan.analysis, result, video)
        return results

    # ------------------------------------------------------------------- sink --
    def _sink(
        self, analysis: QueryAnalysis, graph: FrameGraph, ctx: ExecutionContext, result: QueryResult
    ) -> None:
        """Enumerate bindings, evaluate residual constraints, emit matches."""
        if graph.dropped:
            return
        frame = graph.frame
        vobj_vars = [info.variable for info in analysis.variables if not info.is_scene]
        scene_vars = [info.variable for info in analysis.variables if info.is_scene]

        scene_bindings = {
            var: graph.metadata.get("scene_states", {}).get(id(var)) or ctx.scene_state(type(var), frame)
            for var in scene_vars
        }

        relation_states = graph.metadata.get("relation_states", {})
        frame_matches: List[MatchRecord] = []

        for binding in graph.bindings(vobj_vars) if vobj_vars else iter([{}]):
            env_map: Dict[Any, Any] = dict(scene_bindings)
            for var, node in binding.items():
                env_map[var] = node.state
            ok = True
            for rel_info in analysis.relations:
                rel = rel_info.relation
                subj_node = binding.get(rel.subject)
                obj_node = binding.get(rel.object)
                if subj_node is None or obj_node is None:
                    ok = False
                    break
                rel_state = relation_states.get(id(rel), {}).get((subj_node.node_id, obj_node.node_id))
                if rel_state is None:
                    ok = False
                    break
                env_map[rel] = rel_state
            if not ok:
                continue
            env = Environment(env_map)

            frame_ok = analysis.frame_predicate.evaluate(env)
            video_ok = analysis.video_predicate is not TRUE and analysis.video_predicate.evaluate(env)
            if analysis.video_predicate is TRUE and analysis.video_outputs:
                # A pure aggregation query counts every frame-matching binding.
                video_ok = frame_ok
            if not frame_ok and not video_ok:
                continue

            signature = tuple(
                (var.var_name, node.state.get("track_id")) for var, node in sorted(binding.items(), key=lambda kv: kv[0].var_name)
            )
            outputs = tuple(self._resolve_value(expr, env) for expr in analysis.frame_outputs) if frame_ok else ()
            agg_values = tuple(self._resolve_value(agg.expr, env) for agg in analysis.video_outputs) if video_ok else ()
            frame_matches.append(
                MatchRecord(
                    frame_id=frame.frame_id,
                    binding=signature,
                    outputs=outputs,
                    frame_match=frame_ok,
                    video_match=video_ok,
                    aggregate_values=agg_values,
                )
            )

        if frame_matches:
            if any(m.frame_match for m in frame_matches):
                result.matched_frames.append(frame.frame_id)
            result.matches[frame.frame_id] = frame_matches

    @staticmethod
    def _resolve_value(expr, env: Environment) -> Any:
        value = expr.resolve(env)
        return None if value is MISSING else value

    # -------------------------------------------------------------- aggregates --
    def _finalize_aggregates(self, analysis: QueryAnalysis, result: QueryResult, video: SyntheticVideo) -> None:
        if not analysis.video_outputs:
            return
        video_records = result.video_records()
        frames = max(result.num_frames_processed, 1)
        for idx, agg in enumerate(analysis.video_outputs):
            label = agg.label or f"{agg.kind}_{idx}"
            values = [r.aggregate_values[idx] for r in video_records if len(r.aggregate_values) > idx]
            if agg.kind == "count_distinct":
                result.aggregates[label] = len({v for v in values if v is not None})
            elif agg.kind == "average_per_frame":
                result.aggregates[label] = len(values) / frames
            elif agg.kind == "max_per_frame":
                per_frame: Dict[int, int] = defaultdict(int)
                for r in video_records:
                    per_frame[r.frame_id] += 1
                result.aggregates[label] = max(per_frame.values(), default=0)
            elif agg.kind == "collect":
                result.aggregates[label] = values

    # ------------------------------------------------------- higher-order queries --
    def execute(
        self,
        query: Query,
        video: SyntheticVideo,
        ctx: ExecutionContext,
        planner: Planner,
    ) -> QueryResult:
        """Execute any query, including higher-order compositions."""
        if isinstance(query, TemporalQuery):
            return self._execute_temporal(query, video, ctx, planner)
        if isinstance(query, DurationQuery):
            return self._execute_duration(query, video, ctx, planner)
        plan = planner.plan(query, video)
        return self.execute_plan(plan, video, ctx)

    def _execute_duration(
        self, query: DurationQuery, video: SyntheticVideo, ctx: ExecutionContext, planner: Planner
    ) -> QueryResult:
        plan = planner.plan(query, video)
        result = self.execute_plan(plan, video, ctx)
        required = query.required_duration_frames(video.fps)
        events = extract_events(result, max_gap=query.max_gap_frames, min_length=required)
        qualifying_frames = set()
        for event in events:
            qualifying_frames.update(range(event.start_frame, event.end_frame + 1))
        result.events = events
        result.matched_frames = sorted(set(result.matched_frames) & qualifying_frames)
        result.aggregates.setdefault("num_events", len(events))
        return result

    def _execute_temporal(
        self, query: TemporalQuery, video: SyntheticVideo, ctx: ExecutionContext, planner: Planner
    ) -> QueryResult:
        first = self.execute(query.first, video, ctx, planner)
        second = self.execute(query.second, video, ctx, planner)
        first_events = first.events or extract_events(first)
        second_events = second.events or extract_events(second)

        min_gap = int(query.min_gap_s * video.fps)
        max_gap = int(query.max_gap_s * video.fps)
        pairs: List[Event] = []
        matched_frames: set = set()
        for ev_a in first_events:
            for ev_b in second_events:
                gap = ev_b.start_frame - ev_a.end_frame
                if min_gap <= gap <= max_gap:
                    pairs.append(
                        Event(
                            start_frame=ev_a.start_frame,
                            end_frame=ev_b.end_frame,
                            signature=ev_a.signature + ev_b.signature,
                            label=f"{first.query_name}->{second.query_name}",
                        )
                    )
                    matched_frames.update(range(ev_a.start_frame, ev_b.end_frame + 1))

        result = QueryResult(query_name=query.query_name)
        result.num_frames_processed = max(first.num_frames_processed, second.num_frames_processed)
        result.events = pairs
        result.matched_frames = sorted(matched_frames & (set(first.matched_frames) | set(second.matched_frames)))
        result.total_ms = first.total_ms + second.total_ms
        result.per_frame_ms = [a + b for a, b in zip(first.per_frame_ms, second.per_frame_ms)] or first.per_frame_ms
        result.aggregates["num_event_pairs"] = len(pairs)
        result.reuse_hits = max(first.reuse_hits, second.reuse_hits)
        return result


def extract_events(result: QueryResult, max_gap: int = 5, min_length: int = 1) -> List[Event]:
    """Group a result's matches into per-object-set events (continuous runs).

    Matches sharing the same binding signature that occur within ``max_gap``
    frames of each other belong to the same event; events shorter than
    ``min_length`` frames are dropped.
    """
    by_signature: Dict[Tuple, List[int]] = defaultdict(list)
    for frame_id, records in result.matches.items():
        for record in records:
            by_signature[record.signature].append(frame_id)

    events: List[Event] = []
    for signature, frame_ids in by_signature.items():
        frame_ids = sorted(set(frame_ids))
        start = prev = frame_ids[0]
        for fid in frame_ids[1:]:
            if fid - prev > max_gap:
                if prev - start + 1 >= min_length:
                    events.append(Event(start_frame=start, end_frame=prev, signature=signature))
                start = fid
            prev = fid
        if prev - start + 1 >= min_length:
            events.append(Event(start_frame=start, end_frame=prev, signature=signature))
    return sorted(events, key=lambda e: (e.start_frame, e.end_frame))
