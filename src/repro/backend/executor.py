"""The execution engine (paper §4.1): a single-pass streaming executor.

Every query — basic, spatial, duration, temporal — is compiled into a
:class:`~repro.backend.streaming.QueryStream` whose leaves are operator
pipelines and whose inner nodes are incremental composition operators
(online run-length event grouping for :class:`DurationQuery`, windowed
event pairing for :class:`TemporalQuery`).  A batch of streams advances
frame-by-frame over **one** :class:`VideoReader` scan with one shared
:class:`ExecutionContext`, so detector, tracker, and property-model results
are computed exactly once per (model, frame) — the paper's query-level
computation reuse (§4.2, §5.3) — and per-frame caches are released in O(1)
once a frame has aged out of every stream's lookback window.

The scan itself is adaptive (:mod:`repro.backend.scheduler`): each plan's
cheap frame filters are hoisted into a batch-level gate so rejected frames
skip the detector/tracker/property pipeline per stream, bounded queries
(``Query.bounded`` / ``Query.exists``) retire as soon as their answer is
determined, and the scan terminates early once every stream is done.

The sink enumerates bindings of the surviving objects, re-checks the full
frame/video constraints (cheap — property values are already cached on the
object states), resolves the outputs, and accumulates video-level
aggregates.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence

from repro.backend.analysis import QueryAnalysis
from repro.backend.graph import FrameGraph, VObjNode
from repro.backend.plan import QueryPlan
from repro.backend.planner import Planner, PlannerConfig
from repro.backend.results import Event, MatchRecord, QueryResult
from repro.backend.runtime import ExecutionContext
from repro.backend.scheduler import ScanScheduler
from repro.backend.streaming import (
    DurationStream,
    OnlineEventGrouper,
    PlanStream,
    QueryStream,
    TemporalStream,
)
from repro.common.errors import ExecutionError, FeedFailedError
from repro.faults import FaultManager, ScanCheckpointer
from repro.frontend.expr import Environment, MISSING, TRUE
from repro.frontend.higher_order import DurationQuery, TemporalQuery
from repro.frontend.query import Query
from repro.videosim.video import SyntheticVideo, VideoReader


class Executor:
    """Compiles queries to streams and runs them over videos in one pass."""

    def __init__(self, config: Optional[PlannerConfig] = None) -> None:
        self.config = config or PlannerConfig()

    # ------------------------------------------------------------- compilation --
    def compile(
        self,
        query: Query,
        video: SyntheticVideo,
        planner: Planner,
        ensure_events: bool = False,
        obs: Optional[Any] = None,
    ) -> QueryStream:
        """Compile any query (including higher-order compositions) to a stream.

        With ``ensure_events`` a bare basic query gets a default event
        grouper attached, so its result carries grouped events off the same
        single scan (cross-camera linking consumes them).  Higher-order
        streams already produce events; their children keep the groupers
        their composition layer attaches.
        """
        gated = self.config.enable_scan_gating
        limit = self._stream_limit(query)
        if isinstance(query, TemporalQuery):
            min_gap, max_gap = query.gap_window_frames(video.fps)
            return TemporalStream(
                query.query_name,
                self.compile(query.first, video, planner, obs=obs),
                self.compile(query.second, video, planner, obs=obs),
                min_gap_frames=min_gap,
                max_gap_frames=max_gap,
                limit=limit,
            )
        if isinstance(query, DurationQuery):
            base = PlanStream(planner.plan(query, video, obs=obs), self, gated=gated)
            return DurationStream(
                base,
                required_frames=query.required_duration_frames(video.fps),
                max_gap=query.max_gap_frames,
                limit=limit,
            )
        stream = PlanStream(planner.plan(query, video, obs=obs), self, gated=gated, limit=limit)
        if ensure_events:
            stream.ensure_event_stream()
        return stream

    def _stream_limit(self, query: Query) -> Optional[int]:
        """The query's result bound, when the stream can honour it.

        The bound always shapes the result (finalize truncates to the first
        ``limit`` matches/events); ``enable_early_exit`` only controls
        whether the scheduler may additionally *retire* the stream mid-scan.
        Aggregating queries (video outputs or a video-level constraint) need
        the whole video regardless of any declared bound; temporal queries
        are bounded on their *pairs*, which incremental pairing makes
        decidable mid-scan.
        """
        limit = getattr(query, "limit", None)
        if limit is None:
            return None
        if isinstance(query, TemporalQuery):
            return limit
        if query.video_outputs() or query.video_predicate() is not TRUE:
            return None
        return limit

    # ------------------------------------------------------------------ plans --
    def execute_plan(self, plan: QueryPlan, video: SyntheticVideo, ctx: ExecutionContext) -> QueryResult:
        """Execute a single plan over the whole video."""
        return self.execute_plans([plan], video, ctx)[0]

    def execute_plans(
        self, plans: Sequence[QueryPlan], video: SyntheticVideo, ctx: ExecutionContext
    ) -> List[QueryResult]:
        """Execute several pre-built plans in one pass, sharing computations."""
        gated = self.config.enable_scan_gating
        return self.execute_streams(
            [PlanStream(plan, self, gated=gated) for plan in plans], video, ctx
        )

    # ---------------------------------------------------------------- streams --
    def execute_streams(
        self,
        streams: Sequence[QueryStream],
        video: SyntheticVideo,
        ctx: ExecutionContext,
        obs: Optional[Any] = None,
        candidate_reports: Optional[Dict[str, List[Any]]] = None,
    ) -> List[QueryResult]:
        """Advance all streams through one adaptive scan, then finalize."""
        if not streams:
            return []
        faults, checkpointer = self._build_fault_layer(video, ctx, obs)
        scheduler = ScanScheduler(
            streams,
            ctx,
            gating=self.config.enable_scan_gating,
            early_exit=self.config.enable_early_exit,
            stride=self.config.stride(),
            obs=obs,
            faults=faults,
        )
        ctx.scan_stats = scheduler.stats
        if obs is not None:
            ctx.obs = obs
        if faults is not None:
            faults.stats = scheduler.stats
        start_snapshot = ctx.clock.snapshot()

        if obs is not None:
            with obs.tracer.span(
                "scan", clock=ctx.clock, video=video.spec.name, streams=len(streams)
            ):
                scheduler = self._scan(video, scheduler, ctx, faults, checkpointer)
        else:
            scheduler = self._scan(video, scheduler, ctx, faults, checkpointer)

        # A checkpoint resume replaces the scheduler (and with it the stream
        # objects); finalize over the streams that actually finished the scan.
        streams = scheduler.streams
        leaves = [leaf for stream in streams for leaf in stream.plan_streams()]
        total = ctx.clock.since(start_snapshot)
        for leaf in leaves:
            leaf.result.total_ms = total / max(len(leaves), 1)
            leaf.result.cost_breakdown = dict(ctx.clock.breakdown())
            leaf.result.reuse_hits = ctx.reuse_stats.total_hits
            self._finalize_aggregates(leaf.plan.analysis, leaf.result, video)
        results = [stream.finalize(video, ctx) for stream in streams]
        if ctx.index is not None:
            # Post-scan index finalization: track summaries and observed
            # per-video statistics (stable fraction only when stride
            # sampling actually measured it).
            ctx.index.finalize(
                ctx, observe_stability=self.config.enable_stride_sampling
            )
        if obs is not None:
            self._attach_explain(results, scheduler, ctx, obs, candidate_reports or {})
        return results

    def _build_fault_layer(self, video: SyntheticVideo, ctx: ExecutionContext, obs: Optional[Any]):
        """The feed's fault manager + checkpointer, or ``(None, None)``.

        Built per scan so breaker/injector state never leaks across videos
        or interleaves across the concurrent feeds of a multi-camera session
        (each feed's scan owns its own manager, keyed by the feed name).
        """
        fault_cfg = self.config.faults()
        if not fault_cfg.enabled:
            return None, None
        faults = FaultManager(fault_cfg, ctx.clock, feed=video.spec.name, obs=obs)
        ctx.faults = faults
        checkpointer = None
        if fault_cfg.checkpoint_interval > 0:
            checkpointer = ScanCheckpointer(
                fault_cfg.checkpoint_interval, fault_cfg.max_resumes
            )
        return faults, checkpointer

    def _scan(
        self,
        video: SyntheticVideo,
        scheduler: ScanScheduler,
        ctx: ExecutionContext,
        faults: Optional[Any] = None,
        checkpointer: Optional[ScanCheckpointer] = None,
    ) -> ScanScheduler:
        """The frame loop, wrapped in crash recovery when checkpointing is on.

        A mid-scan :class:`ExecutionError` (the fault layer's injected crash,
        or any unexpected abort) resumes from the last checkpoint — up to
        ``max_resumes`` times — by restoring the scheduler/context/clock and
        restarting the reader at the checkpointed frame.  A
        :class:`FeedFailedError` is *not* recoverable here: the feed itself
        died, and the multi-camera session isolates it instead.  Returns the
        scheduler that finished the scan (a restored copy after any resume).
        """
        start = 0
        hook = faults.reader_hook if faults is not None else None
        while True:
            if checkpointer is not None:
                # Anchor a checkpoint at loop entry (frame 0; after a resume
                # the capture guard makes this a no-op), then capture *after*
                # each stepped frame.  A checkpoint taken after the reader
                # has charged its own resume frame would re-charge that read
                # on every resume, breaking timeline identity.
                checkpointer.maybe_capture(scheduler, start)
            reader = VideoReader(
                video,
                batch_size=self.config.batch_size,
                clock=ctx.clock,
                start=start,
                frame_hook=hook,
            )
            try:
                for frame in reader:
                    if not scheduler.step(frame):
                        break
                    if checkpointer is not None:
                        checkpointer.maybe_capture(scheduler, frame.frame_id + 1)
                scheduler.drain()
                return scheduler
            except FeedFailedError:
                raise
            except ExecutionError:
                if checkpointer is None or not checkpointer.can_resume:
                    raise
                scheduler, start = checkpointer.restore()

    @staticmethod
    def _attach_explain(
        results: Sequence[QueryResult],
        scheduler: ScanScheduler,
        ctx: ExecutionContext,
        obs: Any,
        candidate_reports: Dict[str, List[Any]],
    ) -> None:
        """Hang an ``ExplainData`` payload off each result (tracing mode)."""
        from repro.obs.explain import ExplainData, mark_chosen

        for result in results:
            reports = mark_chosen(
                candidate_reports.get(result.query_name, []), result.plan_variant
            )
            result.obs = ExplainData(
                query_name=result.query_name,
                plan_variant=result.plan_variant,
                candidates=reports,
                scan_stats=scheduler.stats.as_dict(),
                cost_breakdown=dict(ctx.clock.breakdown()),
                model_calls=dict(ctx.clock.calls),
                total_ms=result.total_ms,
                decisions=obs.decisions,
                tracer=obs.tracer,
                index=ctx.index.summary() if ctx.index is not None else None,
            )

    # ---------------------------------------------------------------- queries --
    def execute(
        self,
        query: Query,
        video: SyntheticVideo,
        ctx: ExecutionContext,
        planner: Planner,
    ) -> QueryResult:
        """Execute any query, including higher-order compositions."""
        return self.execute_queries([query], video, ctx, planner)[0]

    def execute_queries(
        self,
        queries: Sequence[Query],
        video: SyntheticVideo,
        ctx: ExecutionContext,
        planner: Planner,
        ensure_events: bool = False,
        obs: Optional[Any] = None,
    ) -> List[QueryResult]:
        """Execute a mixed batch of queries in exactly one video scan."""
        # Let the planner's cost model see the whole batch: frame filters
        # hoisted into the scan gate are paid once per batch, and candidate
        # pricing must reflect that sharing (gate-aware cost model).
        planner.begin_batch(queries)
        streams = [
            self.compile(query, video, planner, ensure_events=ensure_events, obs=obs)
            for query in queries
        ]
        reports = getattr(planner, "last_candidate_reports", None)
        return self.execute_streams(
            streams, video, ctx, obs=obs, candidate_reports=reports
        )

    # ------------------------------------------------------------------- sink --
    def _sink(
        self, analysis: QueryAnalysis, graph: FrameGraph, ctx: ExecutionContext, result: QueryResult
    ) -> None:
        """Enumerate bindings, evaluate residual constraints, emit matches."""
        if graph.dropped:
            return
        frame = graph.frame
        vobj_vars = [info.variable for info in analysis.variables if not info.is_scene]
        scene_vars = [info.variable for info in analysis.variables if info.is_scene]

        scene_bindings = {
            var: graph.metadata.get("scene_states", {}).get(id(var)) or ctx.scene_state(type(var), frame)
            for var in scene_vars
        }

        relation_states = graph.metadata.get("relation_states", {})
        frame_matches: List[MatchRecord] = []

        for binding in graph.bindings(vobj_vars) if vobj_vars else iter([{}]):
            env_map: Dict[Any, Any] = dict(scene_bindings)
            for var, node in binding.items():
                env_map[var] = node.state
            ok = True
            for rel_info in analysis.relations:
                rel = rel_info.relation
                subj_node = binding.get(rel.subject)
                obj_node = binding.get(rel.object)
                if subj_node is None or obj_node is None:
                    ok = False
                    break
                rel_state = relation_states.get(id(rel), {}).get((subj_node.node_id, obj_node.node_id))
                if rel_state is None:
                    ok = False
                    break
                env_map[rel] = rel_state
            if not ok:
                continue
            env = Environment(env_map)

            frame_ok = analysis.frame_predicate.evaluate(env)
            video_ok = analysis.video_predicate is not TRUE and analysis.video_predicate.evaluate(env)
            if analysis.video_predicate is TRUE and analysis.video_outputs:
                # A pure aggregation query counts every frame-matching binding.
                video_ok = frame_ok
            if not frame_ok and not video_ok:
                continue

            signature = tuple(
                (var.var_name, self._binding_identity(node))
                for var, node in sorted(binding.items(), key=lambda kv: kv[0].var_name)
            )
            outputs = tuple(self._resolve_value(expr, env) for expr in analysis.frame_outputs) if frame_ok else ()
            agg_values = tuple(self._resolve_value(agg.expr, env) for agg in analysis.video_outputs) if video_ok else ()
            frame_matches.append(
                MatchRecord(
                    frame_id=frame.frame_id,
                    binding=signature,
                    outputs=outputs,
                    frame_match=frame_ok,
                    video_match=video_ok,
                    aggregate_values=agg_values,
                )
            )

        if frame_matches:
            if any(m.frame_match for m in frame_matches):
                result.matched_frames.append(frame.frame_id)
            result.matches[frame.frame_id] = frame_matches

    @staticmethod
    def _binding_identity(node: VObjNode) -> Any:
        """The object identity recorded in a match signature.

        Tracked plans use the track id.  Plans without a tracker have no
        track id; falling back to the frame-graph node id keeps distinct
        objects in the same frame distinct instead of collapsing every
        untracked object into one ``None`` signature (which merged separate
        events in event extraction).  The ``@`` prefix marks the value as a
        positional, non-track identity.
        """
        track_id = node.state.get("track_id")
        if track_id is not None:
            return track_id
        return f"@{node.node_id}"

    @staticmethod
    def _resolve_value(expr, env: Environment) -> Any:
        value = expr.resolve(env)
        return None if value is MISSING else value

    # -------------------------------------------------------------- aggregates --
    def _finalize_aggregates(self, analysis: QueryAnalysis, result: QueryResult, video: SyntheticVideo) -> None:
        if not analysis.video_outputs:
            return
        video_records = result.video_records()
        frames = max(result.num_frames_processed, 1)
        for idx, agg in enumerate(analysis.video_outputs):
            label = agg.label or f"{agg.kind}_{idx}"
            result.aggregate_kinds[label] = agg.kind
            values = [r.aggregate_values[idx] for r in video_records if len(r.aggregate_values) > idx]
            if agg.kind == "count_distinct":
                result.aggregates[label] = len({v for v in values if v is not None})
            elif agg.kind == "average_per_frame":
                result.aggregates[label] = len(values) / frames
            elif agg.kind == "max_per_frame":
                per_frame: Dict[int, int] = defaultdict(int)
                for r in video_records:
                    per_frame[r.frame_id] += 1
                result.aggregates[label] = max(per_frame.values(), default=0)
            elif agg.kind == "collect":
                result.aggregates[label] = values


def extract_events(result: QueryResult, max_gap: int = 5, min_length: int = 1) -> List[Event]:
    """Group a result's matches into per-object-set events (continuous runs).

    Matches sharing the same binding signature that occur within ``max_gap``
    frames of each other belong to the same event; events shorter than
    ``min_length`` frames are dropped.  This is the offline counterpart of
    :class:`~repro.backend.streaming.OnlineEventGrouper`, which the executor
    uses to group events incrementally during the scan.
    """
    grouper = OnlineEventGrouper(max_gap=max_gap, min_length=min_length)
    for frame_id in sorted(result.matches):
        grouper.observe(frame_id, (record.signature for record in result.matches[frame_id]))
    return grouper.finish()
